"""Program recording/lowering tests."""

import pytest

from repro.classifiers import ExpCutsClassifier, LinearSearchClassifier
from repro.npsim.program import (
    append_app_tail,
    compile_programs,
    synthetic_program_set,
)
from repro.traffic import matched_trace


class TestCompile:
    def test_regions_and_counts(self, tiny_ruleset):
        clf = ExpCutsClassifier.build(tiny_ruleset)
        trace = matched_trace(tiny_ruleset, 32, seed=2)
        ps = compile_programs(clf, trace)
        assert len(ps.programs) == 32
        assert all(r.startswith("level:") for r in ps.regions)
        # ExpCuts: exactly 2 reads per level traversed, 1 word each.
        assert ps.words_per_packet() == ps.accesses_per_packet()
        assert ps.words_per_packet() <= 26

    def test_limit(self, tiny_ruleset):
        clf = LinearSearchClassifier.build(tiny_ruleset)
        trace = matched_trace(tiny_ruleset, 100, seed=2)
        ps = compile_programs(clf, trace, limit=10)
        assert len(ps.programs) == 10

    def test_results_recorded(self, tiny_ruleset):
        clf = ExpCutsClassifier.build(tiny_ruleset)
        trace = matched_trace(tiny_ruleset, 16, seed=3)
        ps = compile_programs(clf, trace)
        for idx, prog in enumerate(ps.programs):
            expected = clf.classify(trace.header(idx))
            assert prog.result == expected

    def test_compute_accounting(self):
        ps = synthetic_program_set(
            [("a", 0, 1, 10), ("b", 4, 2, 20)], tail_compute=5,
        )
        assert ps.compute_per_packet() == 35
        assert ps.words_per_packet() == 3
        assert ps.accesses_per_packet() == 2
        assert ps.region_id("a") == 0 and ps.region_id("b") == 1


class TestAppTail:
    def test_segments_added(self):
        ps = synthetic_program_set([("a", 0, 1, 10)], tail_compute=5)
        tailed = append_app_tail(ps, overhead_cycles=100, num_segments=5)
        prog = tailed.programs[0]
        assert len(prog.reads) == 1 + 4          # original + 4 scratch refs
        assert "scratch" in tailed.regions
        # total added compute == overhead
        added = sum(r[3] for r in prog.reads[1:]) + prog.tail_compute - 5
        assert added == 100

    def test_zero_overhead_is_identity(self):
        ps = synthetic_program_set([("a", 0, 1, 10)], tail_compute=5)
        assert append_app_tail(ps, 0) is ps

    def test_single_segment_pure_compute(self):
        ps = synthetic_program_set([("a", 0, 1, 10)], tail_compute=5)
        tailed = append_app_tail(ps, 100, num_segments=1)
        assert len(tailed.programs[0].reads) == 1
        assert tailed.programs[0].tail_compute == 105

    def test_bad_arguments(self):
        ps = synthetic_program_set([("a", 0, 1, 10)], tail_compute=5)
        with pytest.raises(ValueError):
            append_app_tail(ps, -1)
        with pytest.raises(ValueError):
            append_app_tail(ps, 10, num_segments=0)

    def test_reuses_existing_region(self):
        ps = synthetic_program_set([("scratch", 0, 1, 1)], tail_compute=0)
        tailed = append_app_tail(ps, 50, num_segments=2)
        assert tailed.regions.count("scratch") == 1
