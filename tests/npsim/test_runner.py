"""End-to-end runner tests: classifier + trace -> throughput."""

import pytest

from repro.classifiers import ExpCutsClassifier, HiCutsClassifier
from repro.npsim.runner import simulate_throughput
from repro.traffic import matched_trace


@pytest.fixture(scope="module")
def fw_setup(request):
    from repro.rulesets import generate
    from repro.rulesets.profiles import PROFILES

    ruleset = generate(PROFILES["FW01"], size=40, seed=11).with_default()
    trace = matched_trace(ruleset, 300, seed=21)
    return ruleset, trace


class TestSimulateThroughput:
    def test_basic_run(self, fw_setup):
        ruleset, trace = fw_setup
        clf = ExpCutsClassifier.build(ruleset)
        res = simulate_throughput(clf, trace, num_threads=23,
                                  max_packets=2000, trace_limit=200)
        assert res.gbps > 0
        assert res.packets == 2000
        assert res.classifier_name == "expcuts"
        assert res.num_channels == 4
        assert 0 < res.me_busy_fraction <= 1
        assert res.words_per_packet <= 26

    def test_more_threads_more_throughput(self, fw_setup):
        ruleset, trace = fw_setup
        clf = ExpCutsClassifier.build(ruleset)
        slow = simulate_throughput(clf, trace, num_threads=7,
                                   max_packets=2000, trace_limit=200)
        fast = simulate_throughput(clf, trace, num_threads=39,
                                   max_packets=2000, trace_limit=200)
        assert fast.gbps > 2 * slow.gbps

    def test_channel_sweep_monotone(self, fw_setup):
        ruleset, trace = fw_setup
        clf = ExpCutsClassifier.build(ruleset)
        results = [
            simulate_throughput(clf, trace, num_threads=71, num_channels=n,
                                max_packets=2000, trace_limit=200).gbps
            for n in (1, 4)
        ]
        assert results[1] > results[0]

    def test_requires_trace_for_classifier(self, fw_setup):
        ruleset, _ = fw_setup
        clf = ExpCutsClassifier.build(ruleset)
        with pytest.raises(ValueError):
            simulate_throughput(clf, None)

    def test_program_set_requires_placement(self):
        from repro.npsim.program import synthetic_program_set

        ps = synthetic_program_set([("r", 0, 1, 5)], tail_compute=0)
        with pytest.raises(ValueError):
            simulate_throughput(ps)

    def test_sim_close_to_analytic(self, fw_setup):
        ruleset, trace = fw_setup
        clf = ExpCutsClassifier.build(ruleset)
        res = simulate_throughput(clf, trace, num_threads=55,
                                  max_packets=4000, trace_limit=200)
        # The DES never beats the bound and should come reasonably close.
        assert res.gbps <= res.analytic_gbps * 1.02
        assert res.gbps >= res.analytic_gbps * 0.6

    def test_expcuts_beats_hicuts(self, fw_setup):
        """The headline comparison must hold on any realistic setup."""
        ruleset, trace = fw_setup
        exp = simulate_throughput(ExpCutsClassifier.build(ruleset), trace,
                                  num_threads=71, max_packets=2000,
                                  trace_limit=200)
        hic = simulate_throughput(HiCutsClassifier.build(ruleset), trace,
                                  num_threads=71, max_packets=2000,
                                  trace_limit=200)
        assert exp.gbps > hic.gbps

    def test_str_summary(self, fw_setup):
        ruleset, trace = fw_setup
        clf = ExpCutsClassifier.build(ruleset)
        res = simulate_throughput(clf, trace, num_threads=7,
                                  max_packets=500, trace_limit=100)
        text = str(res)
        assert "expcuts" in text and "Gbps" in text
