"""Staged application-pipeline simulation tests."""

import pytest

from repro.npsim.application import build_application, run_application
from repro.npsim.appsim import StageConfig, StagedSimulator
from repro.npsim.chip import ChipConfig, IXP2850, default_sram_channels
from repro.npsim.memory import MemoryChannel
from repro.npsim.pipeline import MicroengineAllocation
from repro.npsim.program import synthetic_program_set


def two_stage(stage_a_cycles=50, stage_b_cycles=50, mes=(1, 1),
              ring_capacity=16, source_rate=None, packets=2000):
    a = synthetic_program_set([("ra", 0, 1, 10)], tail_compute=stage_a_cycles,
                              name="a", copies=4)
    b = synthetic_program_set([("rb", 0, 1, 10)], tail_compute=stage_b_cycles,
                              name="b", copies=4)
    chip = ChipConfig(sram_channels=default_sram_channels(2, (0.0, 0.0)))
    channels = [MemoryChannel(c) for c in chip.sram_channels]
    sim = StagedSimulator.from_program_sets(
        [("alpha", mes[0], a), ("beta", mes[1], b)],
        {"ra": 0, "rb": 1}, channels, chip=chip,
        ring_capacity=ring_capacity, source_rate=source_rate,
    )
    return sim, sim.run(packets)


class TestStagedBasics:
    def test_all_packets_flow_through(self):
        sim, res = two_stage()
        assert res.packets == 2000
        assert res.stage_reports[0].packets >= res.packets
        assert res.stage_reports[1].packets >= res.packets

    def test_slow_stage_is_bottleneck(self):
        _, res = two_stage(stage_a_cycles=20, stage_b_cycles=400)
        assert res.bottleneck_stage == "beta"
        _, res2 = two_stage(stage_a_cycles=400, stage_b_cycles=20)
        assert res2.bottleneck_stage == "alpha"

    def test_throughput_set_by_bottleneck(self):
        _, res = two_stage(stage_a_cycles=20, stage_b_cycles=400, mes=(1, 1))
        # beta ME-bound: ~1/(400 + ring/get overheads) packets per cycle.
        mpps = res.mpps(1.0)
        assert mpps == pytest.approx(1 / 460, rel=0.15)

    def test_more_mes_on_bottleneck_help(self):
        _, slow = two_stage(stage_a_cycles=20, stage_b_cycles=400, mes=(1, 1))
        _, fast = two_stage(stage_a_cycles=20, stage_b_cycles=400, mes=(1, 3))
        assert fast.mpps(1.0) > 2 * slow.mpps(1.0)

    def test_backpressure_via_ring(self):
        _, res = two_stage(stage_a_cycles=5, stage_b_cycles=600,
                           ring_capacity=4)
        # alpha gets blocked putting into the tiny ring.
        assert res.stage_reports[0].output_wait_fraction > 0.1
        assert res.ring_peaks[1] <= 4

    def test_open_loop_rate(self):
        _, saturated = two_stage()
        sat = saturated.mpps(1.0)
        _, res = two_stage(source_rate=sat * 0.4)
        assert res.mpps(1.0) == pytest.approx(sat * 0.4, rel=0.1)

    def test_validation(self):
        ps = synthetic_program_set([("r", 0, 1, 1)], tail_compute=1)
        with pytest.raises(ValueError):
            StageConfig(name="x", num_mes=0, programs=ps.programs)
        with pytest.raises(ValueError):
            StagedSimulator([], {}, [])
        chip = IXP2850
        with pytest.raises(ValueError):
            StagedSimulator(
                [StageConfig(name="x", num_mes=17, programs=ps.programs)],
                {}, [], chip=chip,
            )


class TestStandardApplication:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.harness import get_classifier, get_trace

        return get_classifier("FW01", "expcuts"), get_trace("FW01", count=300)

    def test_processing_is_bottleneck(self, setup):
        clf, trace = setup
        res = run_application(clf, trace, max_packets=3000, trace_limit=200)
        assert res.bottleneck_stage.startswith("processing")
        assert res.gbps(1400.0, 64) > 3.0

    def test_scales_with_processing_mes(self, setup):
        clf, trace = setup
        small = run_application(
            clf, trace, max_packets=2500, trace_limit=200,
            allocation=MicroengineAllocation(processing=2))
        large = run_application(
            clf, trace, max_packets=2500, trace_limit=200,
            allocation=MicroengineAllocation(processing=8))
        assert large.gbps(1400.0, 64) > 2.5 * small.gbps(1400.0, 64)

    def test_pipelined_processing_loses(self, setup):
        """Table 2 through the staged simulator."""
        clf, trace = setup
        mono = run_application(clf, trace, max_packets=2500, trace_limit=200)
        split = build_application(clf, trace, trace_limit=200,
                                  split_processing=2).run(2500)
        assert split.gbps(1400.0, 64) < mono.gbps(1400.0, 64)

    def test_open_loop_application(self, setup):
        clf, trace = setup
        res = run_application(clf, trace, max_packets=2500, trace_limit=200,
                              source_rate_gbps=1.5)
        assert res.gbps(1400.0, 64) == pytest.approx(1.5, rel=0.1)
