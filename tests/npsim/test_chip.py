"""Chip model tests (Table 1 facts)."""

import pytest

from repro.npsim.chip import (
    ChipConfig,
    IXP2850,
    SCRATCH_CHANNEL,
    SRAM_CYCLES_PER_WORD,
    default_sram_channels,
    hardware_overview,
)


class TestTable1Facts:
    def test_microengines(self):
        assert IXP2850.num_microengines == 16
        assert IXP2850.threads_per_me == 8
        assert IXP2850.me_clock_mhz == 1400.0

    def test_memory_channels(self):
        assert len(IXP2850.sram_channels) == 4
        assert len(IXP2850.dram_channels) == 3
        assert all(c.kind == "sram" for c in IXP2850.sram_channels)

    def test_clock_ratio(self):
        # 1.4 GHz ME vs 233 MHz QDR SRAM: six ME cycles per word.
        assert SRAM_CYCLES_PER_WORD == pytest.approx(1400 / 233, rel=0.01)

    def test_overview_rows(self):
        rows = hardware_overview()
        assert len(rows) == 4
        assert any("XScale" in r[0] for r in rows)
        assert any("16 MEs x 8" in r[1] for r in rows)


class TestChannelConfig:
    def test_table4_backgrounds(self):
        bg = [c.background_utilization for c in IXP2850.sram_channels]
        assert bg == [0.56, 0.0, 0.47, 0.31]
        headrooms = [c.headroom for c in IXP2850.sram_channels]
        assert headrooms == pytest.approx([0.44, 1.0, 0.53, 0.69])

    def test_with_sram_channels_subset(self):
        one = IXP2850.with_sram_channels(1)
        assert len(one.sram_channels) == 1
        # least-utilised channel first
        assert one.sram_channels[0].background_utilization == 0.0
        two = IXP2850.with_sram_channels(2)
        assert [c.background_utilization for c in two.sram_channels] == [0.0, 0.31]

    def test_with_all_channels_keeps_order(self):
        assert IXP2850.with_sram_channels(4) is IXP2850

    def test_explicit_background(self):
        chip = IXP2850.with_sram_channels(2, (0.1, 0.2))
        assert [c.background_utilization for c in chip.sram_channels] == [0.1, 0.2]

    def test_scratch_channel(self):
        assert SCRATCH_CHANNEL.kind == "scratch"
        assert SCRATCH_CHANNEL.latency_cycles < IXP2850.sram_channels[0].latency_cycles

    def test_custom_chip(self):
        chip = ChipConfig(me_clock_mhz=700.0,
                          sram_channels=default_sram_channels(2, (0.0, 0.0)))
        assert len(chip.sram_channels) == 2
