"""Application pipeline model tests (Tables 2 and 3)."""

import pytest

from repro.npsim.pipeline import (
    DEFAULT_ALLOCATION,
    MicroengineAllocation,
    PROCESSING_OVERHEAD_CYCLES,
    mapping_tradeoffs,
    per_packet_overhead,
)


class TestAllocation:
    def test_table3_defaults(self):
        assert DEFAULT_ALLOCATION.receive == 2
        assert DEFAULT_ALLOCATION.processing == 9
        assert DEFAULT_ALLOCATION.scheduling == 3
        assert DEFAULT_ALLOCATION.transmit == 2
        assert DEFAULT_ALLOCATION.total == 16  # the whole IXP2850

    def test_rows(self):
        rows = dict(DEFAULT_ALLOCATION.rows())
        assert rows["Processing"] == 9

    def test_custom(self):
        alloc = MicroengineAllocation(processing=4)
        assert alloc.total == 11


class TestOverhead:
    def test_multiprocessing_base(self):
        assert per_packet_overhead("multiprocessing") == PROCESSING_OVERHEAD_CYCLES

    def test_context_pipelining_pays_handoffs(self):
        two = per_packet_overhead("context_pipelining", num_stages=2)
        three = per_packet_overhead("context_pipelining", num_stages=3)
        assert two > PROCESSING_OVERHEAD_CYCLES
        assert three > two

    def test_one_stage_pipelining_equals_base(self):
        assert (per_packet_overhead("context_pipelining", num_stages=1)
                == PROCESSING_OVERHEAD_CYCLES)

    def test_unknown_mapping(self):
        with pytest.raises(ValueError):
            per_packet_overhead("magic")


class TestTradeoffs:
    def test_table2_rows_present(self):
        table = mapping_tradeoffs()
        assert set(table) == {"multiprocessing", "context_pipelining"}
        for sides in table.values():
            assert sides["advantages"] and sides["disadvantages"]
