"""Memory-channel queueing model tests."""

import math

import pytest

from repro.core.errors import ChannelError, ChannelOfflineError
from repro.npsim.chip import ChannelConfig
from repro.npsim.memory import ChannelReport, MemoryChannel


def make_channel(cycles_per_word=6.0, latency=150, depth=4, background=0.0):
    return MemoryChannel(ChannelConfig(
        name="test", kind="sram", cycles_per_word=cycles_per_word,
        latency_cycles=latency, fifo_depth=depth,
        background_utilization=background,
    ))


class TestServiceTiming:
    def test_single_read(self):
        ch = make_channel()
        issue_done, ready = ch.issue(0.0, 1)
        assert issue_done == 0.0                 # FIFO empty: no stall
        assert ready == pytest.approx(6.0 + 150)

    def test_burst_read(self):
        ch = make_channel()
        _, ready = ch.issue(0.0, 6)
        assert ready == pytest.approx(36.0 + 150)

    def test_sequential_service(self):
        ch = make_channel()
        _, r1 = ch.issue(0.0, 1)
        _, r2 = ch.issue(0.0, 1)
        assert r2 == pytest.approx(r1 + 6.0)     # second queues behind first

    def test_idle_gap_resets(self):
        ch = make_channel()
        ch.issue(0.0, 1)
        _, ready = ch.issue(1000.0, 1)
        assert ready == pytest.approx(1000.0 + 6.0 + 150)

    def test_background_slows_service(self):
        clean = make_channel(background=0.0)
        busy = make_channel(background=0.5)
        _, clean_ready = clean.issue(0.0, 4)
        _, busy_ready = busy.issue(0.0, 4)
        assert busy_ready > clean_ready
        assert busy.effective_cycles_per_word == pytest.approx(12.0)

    def test_zero_headroom_rejected(self):
        with pytest.raises(ValueError):
            make_channel(background=1.0)

    def test_zero_headroom_error_is_typed(self):
        with pytest.raises(ChannelError):
            make_channel(background=1.0)

    def test_zero_headroom_admitted_as_dead_server(self):
        cfg = ChannelConfig(name="dead", kind="sram", cycles_per_word=6.0,
                            latency_cycles=150, fifo_depth=4,
                            background_utilization=1.0)
        ch = MemoryChannel(cfg, allow_offline=True)
        assert ch.is_offline(0.0)
        assert ch.effective_cycles_per_word == math.inf
        with pytest.raises(ChannelOfflineError):
            ch.issue(0.0, 1)

    def test_zero_words_rejected(self):
        with pytest.raises(ValueError):
            make_channel().issue(0.0, 0)


class TestFaultHooks:
    def test_fail_at_takes_channel_offline(self):
        ch = make_channel()
        ch.fail_at(100.0)
        assert not ch.is_offline(99.0)
        assert ch.is_offline(100.0)
        _, ready = ch.issue(50.0, 1)             # still serving before the cut
        assert ready > 50.0
        with pytest.raises(ChannelOfflineError) as excinfo:
            ch.issue(100.0, 1)
        assert excinfo.value.channel == "test"
        assert excinfo.value.at == 100.0

    def test_earliest_failure_wins(self):
        ch = make_channel()
        ch.fail_at(500.0)
        ch.fail_at(200.0)
        ch.fail_at(900.0)
        assert ch.offline_at == 200.0

    def test_latency_spike_window(self):
        ch = make_channel()
        ch.add_latency_spike(100.0, 200.0, 4.0)
        _, before = ch.issue(0.0, 1)
        assert before == pytest.approx(6.0 + 150)
        _, during = ch.issue(150.0, 1)
        assert during == pytest.approx(150.0 + 6.0 + 600)
        _, after = ch.issue(1000.0, 1)
        assert after == pytest.approx(1000.0 + 6.0 + 150)

    def test_bad_spike_rejected(self):
        ch = make_channel()
        with pytest.raises(ChannelError):
            ch.add_latency_spike(10.0, 10.0, 2.0)
        with pytest.raises(ChannelError):
            ch.add_latency_spike(0.0, 10.0, 0.5)


class TestFifoBackpressure:
    def test_stall_when_full(self):
        ch = make_channel(depth=2)
        ch.issue(0.0, 10)   # busy until 60
        ch.issue(0.0, 10)   # queued, done 120
        issue_done, _ = ch.issue(0.0, 1)
        # FIFO (depth 2) full: the ME stalls until the first completes.
        assert issue_done == pytest.approx(60.0)
        assert ch.stats.stalled_commands == 1
        assert ch.stats.stall_cycles == pytest.approx(60.0)

    def test_no_stall_after_drain(self):
        ch = make_channel(depth=2)
        ch.issue(0.0, 10)
        ch.issue(0.0, 10)
        issue_done, _ = ch.issue(500.0, 1)
        assert issue_done == 500.0

    def test_peak_outstanding_tracked(self):
        ch = make_channel(depth=8)
        for _ in range(5):
            ch.issue(0.0, 10)
        assert ch.stats.peak_outstanding == 5


class TestStats:
    def test_word_accounting(self):
        ch = make_channel()
        ch.issue(0.0, 3)
        ch.issue(10.0, 2)
        assert ch.stats.commands == 2
        assert ch.stats.words == 5
        assert ch.stats.busy_cycles == pytest.approx(30.0)

    def test_utilization(self):
        ch = make_channel()
        ch.issue(0.0, 10)
        assert ch.stats.utilization(120.0) == pytest.approx(0.5)
        assert ch.stats.utilization(0.0) == 0.0

    def test_report(self):
        ch = make_channel(background=0.25)
        ch.issue(0.0, 2)
        report = ChannelReport.from_channel(ch, elapsed=100.0)
        assert report.name == "test"
        assert report.words == 2
        assert report.background_utilization == 0.25

    def test_capacity(self):
        ch = make_channel(background=0.5)
        assert ch.words_per_cycle_capacity == pytest.approx(1 / 12.0)
