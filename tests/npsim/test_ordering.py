"""Packet-ordering analysis tests (§3.2 programming challenge #3)."""

import pytest
from hypothesis import given, strategies as st

from repro.npsim.ordering import analyze_completion_order, commit_latencies


class TestAnalyze:
    def test_empty(self):
        stats = analyze_completion_order([])
        assert stats.packets == 0 and stats.in_order

    def test_in_order(self):
        stats = analyze_completion_order([0, 1, 2, 3])
        assert stats.in_order
        assert stats.reordered_fraction == 0.0
        assert stats.reorder_buffer_peak == 1  # each commits immediately

    def test_single_swap(self):
        stats = analyze_completion_order([1, 0, 2, 3])
        assert stats.reordered_fraction == pytest.approx(0.25)
        assert stats.max_displacement == 1
        assert stats.reorder_buffer_peak == 2

    def test_reversed(self):
        stats = analyze_completion_order([3, 2, 1, 0])
        assert stats.reordered_fraction == pytest.approx(0.75)
        assert stats.reorder_buffer_peak == 4

    @given(st.permutations(list(range(12))))
    def test_buffer_always_drains(self, order):
        stats = analyze_completion_order(order)
        assert 1 <= stats.reorder_buffer_peak <= len(order)
        assert 0.0 <= stats.reordered_fraction < 1.0


class TestCommitLatencies:
    def test_in_order_zero_extra(self):
        extra = commit_latencies([0, 1, 2], [10.0, 20.0, 30.0])
        assert extra == [0.0, 0.0, 0.0]

    def test_swap_adds_wait(self):
        # Packet 0 completes last: packet 1 waits from t=10 to t=20.
        extra = commit_latencies([1, 0], [10.0, 20.0])
        assert extra == [0.0, 10.0]

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            commit_latencies([0, 1], [1.0])

    @given(st.permutations(list(range(8))))
    def test_every_packet_commits(self, order):
        times = [float(i * 10) for i in range(len(order))]
        extra = commit_latencies(order, times)
        assert len(extra) == len(order)
        assert all(x >= 0 for x in extra)


class TestSimulatorIntegration:
    def _run(self, threads, **kwargs):
        from repro.npsim.chip import ChipConfig, default_sram_channels
        from repro.npsim.memory import MemoryChannel
        from repro.npsim.microengine import Simulator
        from repro.npsim.program import synthetic_program_set

        ps = synthetic_program_set([("r0", 0, 1, 8)], tail_compute=30, copies=8)
        chip = ChipConfig(sram_channels=default_sram_channels(1, (0.0,)))
        channels = [MemoryChannel(c) for c in chip.sram_channels]
        sim = Simulator(chip, channels, {"r0": 0}, ps, threads)
        return sim.run(1500, **kwargs)

    def test_single_thread_stays_ordered(self):
        res = self._run(1)
        assert analyze_completion_order(res.completion_order).in_order

    def test_parallelism_reorders(self):
        res = self._run(16)
        stats = analyze_completion_order(res.completion_order)
        assert stats.reordered_fraction > 0.0
        assert stats.reorder_buffer_peak <= 16 + 1

    def test_completion_bookkeeping_aligned(self):
        res = self._run(8)
        assert len(res.completion_order) == len(res.completion_times) == 1500
        assert sorted(res.completion_order) == list(range(1500))
