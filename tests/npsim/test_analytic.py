"""Analytic bottleneck model tests, incl. the DES cross-validation."""

import pytest

from repro.npsim.allocator import Placement
from repro.npsim.analytic import saturation_bounds
from repro.npsim.chip import ChipConfig, default_sram_channels
from repro.npsim.memory import MemoryChannel
from repro.npsim.microengine import Simulator
from repro.npsim.program import synthetic_program_set


def setup(reads, tail, channels=2, backgrounds=None):
    backgrounds = backgrounds or tuple(0.0 for _ in range(channels))
    chip = ChipConfig(sram_channels=default_sram_channels(channels, backgrounds))
    ps = synthetic_program_set(reads, tail_compute=tail, copies=8)
    regions = sorted({r[0] for r in reads})
    placement = Placement({r: i % channels for i, r in enumerate(regions)}, "manual")
    return chip, ps, placement


class TestBounds:
    def test_me_bound_formula(self):
        chip, ps, placement = setup([("r0", 0, 1, 10)], tail=100)
        bounds = saturation_bounds(chip, list(chip.sram_channels), ps,
                                   placement, num_threads=8)
        # per packet: tail 100 + compute 10 + issue 1 + switch 1 = 112
        assert bounds.me_bound == pytest.approx(1 / 112)

    def test_channel_bound_formula(self):
        chip, ps, placement = setup([("r0", 0, 12, 0)], tail=0, channels=1)
        bounds = saturation_bounds(chip, list(chip.sram_channels), ps,
                                   placement, num_threads=64)
        assert bounds.channel_bound == pytest.approx((1 / 6.0) / 12)

    def test_headroom_scales_channel_bound(self):
        chip, ps, placement = setup([("r0", 0, 12, 0)], tail=0, channels=1,
                                    backgrounds=(0.5,))
        bounds = saturation_bounds(chip, list(chip.sram_channels), ps,
                                   placement, num_threads=64)
        assert bounds.channel_bound == pytest.approx((0.5 / 6.0) / 12)

    def test_concurrency_bound_scales_with_threads(self):
        chip, ps, placement = setup([("r0", 0, 1, 10)], tail=10)
        b1 = saturation_bounds(chip, list(chip.sram_channels), ps, placement, 1)
        b4 = saturation_bounds(chip, list(chip.sram_channels), ps, placement, 4)
        assert b4.concurrency_bound == pytest.approx(4 * b1.concurrency_bound)

    def test_binding_resource_named(self):
        chip, ps, placement = setup([("r0", 0, 32, 0)], tail=0, channels=1)
        bounds = saturation_bounds(chip, list(chip.sram_channels), ps,
                                   placement, num_threads=128)
        assert bounds.binding.startswith("channel:")
        assert bounds.rate == bounds.channel_bound

    def test_gbps_conversion(self):
        chip, ps, placement = setup([("r0", 0, 1, 10)], tail=100)
        bounds = saturation_bounds(chip, list(chip.sram_channels), ps,
                                   placement, num_threads=8)
        assert bounds.gbps(1400.0, 64) == pytest.approx(
            bounds.mpps(1400.0) * 64 * 8 / 1000
        )


class TestDesAgreesWithAnalytic:
    """The mutual-validation property from DESIGN.md: the DES must land
    within tolerance of min(bounds) in each clearly-bound regime."""

    @pytest.mark.parametrize("threads,reads,tail", [
        (1, [("r0", 0, 1, 10)], 10),          # concurrency bound
        (8, [("r0", 0, 1, 0)], 200),          # ME bound
        (48, [("r0", 0, 16, 0)] * 2, 0),      # channel bound
    ])
    def test_regimes(self, threads, reads, tail):
        chip, ps, placement = setup(reads, tail, channels=1)
        bounds = saturation_bounds(chip, list(chip.sram_channels), ps,
                                   placement, threads)
        channels = [MemoryChannel(c) for c in chip.sram_channels]
        sim = Simulator(chip, channels, placement.mapping, ps, threads)
        res = sim.run(4000)
        measured = res.mpps(1.0)
        assert measured <= bounds.rate * 1.02   # bounds are real bounds
        assert measured >= bounds.rate * 0.75   # and reasonably tight
