"""DES scheduler tests: exact small cases, scaling and masking behaviour."""

import math

import pytest

from repro.npsim.allocator import Placement
from repro.npsim.chip import ChipConfig, default_sram_channels
from repro.npsim.memory import MemoryChannel
from repro.npsim.microengine import Simulator
from repro.npsim.program import synthetic_program_set


def simulate(reads, tail=0, threads=1, channels=1, overhead=0,
             packets=2000, backgrounds=None, chip_kwargs=None):
    backgrounds = backgrounds or tuple(0.0 for _ in range(channels))
    chip = ChipConfig(
        sram_channels=default_sram_channels(channels, backgrounds),
        **(chip_kwargs or {}),
    )
    ps = synthetic_program_set(reads, tail_compute=tail, copies=16)
    regions = sorted({r[0] for r in reads})
    placement = Placement({r: i % channels for i, r in enumerate(regions)}, "manual")
    mem = [MemoryChannel(c) for c in chip.sram_channels]
    sim = Simulator(chip, mem, placement.mapping, ps, threads,
                    per_packet_overhead=overhead)
    return sim, sim.run(packets)


class TestExactSmallCases:
    def test_single_thread_latency_bound(self):
        """1 thread, 1 read/packet: throughput = 1 / residence time."""
        sim, res = simulate([("r0", 0, 1, 10)], tail=5, threads=1)
        # residence = switch(1) + compute(10) + issue(1) + latency(156)
        #           + switch(1) + tail(5)
        expected_cycles = 1 + 10 + 1 + 156 + 1 + 5
        mpps = res.mpps(1.0)  # packets per cycle with clock=1
        assert mpps == pytest.approx(1 / expected_cycles, rel=0.02)

    def test_compute_only_program(self):
        sim, res = simulate([], tail=100, threads=1)
        # pure compute: one switch + 100 cycles per packet... the thread
        # never yields, so successive packets run back to back.
        assert res.mpps(1.0) == pytest.approx(1 / 100, rel=0.05)

    def test_two_threads_double_throughput_when_latency_bound(self):
        _, res1 = simulate([("r0", 0, 1, 10)], tail=5, threads=1)
        _, res2 = simulate([("r0", 0, 1, 10)], tail=5, threads=2)
        assert res2.mpps(1.0) == pytest.approx(2 * res1.mpps(1.0), rel=0.05)

    def test_me_saturation(self):
        """Enough threads: throughput pinned by pipeline occupancy."""
        sim, res = simulate([("r0", 0, 1, 0)], tail=100, threads=8)
        # per packet ME work ~ switch+issue (2) + switch+tail (101)
        assert res.me_busy_fraction > 0.95
        assert res.mpps(1.0) == pytest.approx(1 / 104, rel=0.05)


class TestChannelBound:
    def test_bandwidth_binds(self):
        """Many threads, heavy reads on one channel: words/cycle capped."""
        reads = [("r0", 0, 8, 0) for _ in range(4)]  # 32 words/packet
        sim, res = simulate(reads, tail=0, threads=32, channels=1,
                            packets=4000)
        words_per_cycle = 32 * res.mpps(1.0)
        assert words_per_cycle == pytest.approx(1 / 6.0, rel=0.05)

    def test_two_channels_double_bandwidth(self):
        reads = [("r0", 0, 8, 0), ("r1", 0, 8, 0)] * 2
        _, res1 = simulate(reads, threads=32, channels=1, packets=4000)
        _, res2 = simulate(reads, threads=32, channels=2, packets=4000)
        assert res2.mpps(1.0) > 1.7 * res1.mpps(1.0)

    def test_background_reduces_throughput(self):
        reads = [("r0", 0, 8, 0) for _ in range(4)]
        _, clean = simulate(reads, threads=32, channels=1, packets=4000)
        _, busy = simulate(reads, threads=32, channels=1, packets=4000,
                           backgrounds=(0.5,))
        assert busy.mpps(1.0) == pytest.approx(0.5 * clean.mpps(1.0), rel=0.1)


class TestThreadPacking:
    def test_me_count(self):
        sim, _ = simulate([("r0", 0, 1, 0)], threads=17, packets=100)
        assert len(sim.mes) == math.ceil(17 / 8)

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            simulate([("r0", 0, 1, 0)], threads=8 * 16 + 1, packets=10)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            simulate([("r0", 0, 1, 0)], threads=0, packets=10)

    def test_unplaced_region_rejected(self):
        chip = ChipConfig(sram_channels=default_sram_channels(1, (0.0,)))
        ps = synthetic_program_set([("mystery", 0, 1, 0)], tail_compute=0)
        with pytest.raises(KeyError):
            Simulator(chip, [MemoryChannel(chip.sram_channels[0])], {}, ps, 1)


class TestDeterminism:
    def test_same_seedless_run_twice(self):
        _, a = simulate([("r0", 0, 2, 7)], tail=13, threads=13, packets=3000)
        _, b = simulate([("r0", 0, 2, 7)], tail=13, threads=13, packets=3000)
        assert a.elapsed_cycles == b.elapsed_cycles
        assert a.window_cycles == b.window_cycles

    def test_packet_accounting(self):
        sim, res = simulate([("r0", 0, 1, 1)], threads=5, packets=777)
        assert res.packets == 777
        assert sum(t.packets_done for t in sim.threads) == 777
        assert sum(m.packets_done for m in sim.mes) == 777

    def test_fair_thread_progress(self):
        sim, _ = simulate([("r0", 0, 1, 3)], tail=3, threads=8, packets=4000)
        done = [t.packets_done for t in sim.threads]
        assert max(done) - min(done) <= 0.2 * max(done)
