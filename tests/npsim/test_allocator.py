"""Placement-policy tests, including the Table 4 grouping."""

import pytest

from repro.classifiers.base import MemoryRegion
from repro.npsim.allocator import (
    allocation_table,
    headroom_proportional,
    place,
    round_robin,
    single_channel,
)
from repro.npsim.chip import IXP2850, default_sram_channels


def level_regions(count=13, words=1000):
    return [MemoryRegion(f"level:{i}", words, 1 / count) for i in range(count)]


class TestHeadroomProportional:
    def test_paper_grouping(self):
        """Table 4's pattern over the measured headrooms 44/100/53/69:
        contiguous groups of 2 / 5 / 3 / 3 levels (13-level tree)."""
        placement = headroom_proportional(
            level_regions(), list(IXP2850.sram_channels)
        )
        groups = placement.groups()
        counts = [len(groups.get(i, [])) for i in range(4)]
        assert counts == [2, 5, 3, 3]
        # Contiguity: channel 0 gets levels 0-1, channel 1 gets 2-6, ...
        assert sorted(groups[0]) == ["level:0", "level:1"]
        assert sorted(groups[1], key=lambda n: int(n.split(":")[1])) == [
            "level:2", "level:3", "level:4", "level:5", "level:6"
        ]

    def test_levels_stay_contiguous(self):
        placement = headroom_proportional(
            level_regions(26), list(IXP2850.sram_channels)
        )
        last_channel = -1
        for level in range(26):
            channel = placement.channel_of(f"level:{level}")
            assert channel >= last_channel
            last_channel = channel

    def test_non_level_regions_balanced(self):
        regions = [MemoryRegion(f"x{i}", 100, w)
                   for i, w in enumerate((0.5, 0.3, 0.1, 0.1))]
        placement = headroom_proportional(regions, list(IXP2850.sram_channels))
        # The heaviest region must land on the channel with most headroom.
        assert placement.channel_of("x0") == 1

    def test_single_channel_chip(self):
        channels = list(default_sram_channels(1, (0.0,)))
        placement = headroom_proportional(level_regions(), channels)
        assert set(placement.mapping.values()) == {0}

    def test_no_channels_rejected(self):
        with pytest.raises(ValueError):
            headroom_proportional(level_regions(), [])


class TestOtherPolicies:
    def test_single_channel_picks_cleanest(self):
        placement = single_channel(level_regions(), list(IXP2850.sram_channels))
        assert set(placement.mapping.values()) == {1}  # the 0 %-utilised one

    def test_round_robin_spreads(self):
        placement = round_robin(level_regions(8), list(IXP2850.sram_channels))
        assert set(placement.mapping.values()) == {0, 1, 2, 3}

    def test_place_dispatch(self):
        for policy in ("headroom_proportional", "single_channel", "round_robin",
                       "failover"):
            placement = place(level_regions(), list(IXP2850.sram_channels), policy)
            assert placement.policy == policy
        with pytest.raises(ValueError):
            place(level_regions(), list(IXP2850.sram_channels), "nope")

    def test_failover_replicas_off_primary(self):
        placement = place(level_regions(), list(IXP2850.sram_channels), "failover")
        assert placement.replicas  # equal weights: every region is "hot"
        for name, backup in placement.replicas.items():
            assert backup != placement.channel_of(name)

    def test_single_channel_has_no_replica_room(self):
        channels = list(default_sram_channels(1, (0.0,)))
        placement = place(level_regions(), channels, "failover")
        assert placement.replicas == {}


class TestSaturatedChannels:
    def saturated_mix(self):
        # Channel 1 has zero headroom; 0/2/3 stay usable.
        return list(default_sram_channels(4, (0.3, 1.0, 0.5, 0.2)))

    def test_saturated_channel_excluded(self, caplog):
        channels = self.saturated_mix()
        with caplog.at_level("WARNING", logger="repro.npsim.allocator"):
            placement = place(level_regions(), channels, "headroom_proportional")
        assert 1 not in set(placement.mapping.values())
        assert any("saturated" in rec.message for rec in caplog.records)

    def test_indices_stay_aligned_with_chip(self):
        channels = self.saturated_mix()
        placement = place(level_regions(), channels, "failover")
        used = set(placement.mapping.values()) | set(placement.replicas.values())
        assert used <= {0, 2, 3}
        # Heaviest-headroom channel in the *original* numbering still
        # receives the largest contiguous level group.
        groups = placement.groups()
        assert len(groups.get(3, [])) >= len(groups.get(0, []))

    def test_all_saturated_rejected(self):
        channels = list(default_sram_channels(2, (1.0, 1.0)))
        with pytest.raises(ValueError):
            place(level_regions(), channels, "headroom_proportional")


class TestAllocationTable:
    def test_table4_rows(self):
        regions = level_regions()
        channels = list(IXP2850.sram_channels)
        placement = headroom_proportional(regions, channels)
        rows = allocation_table(regions, channels, placement)
        assert len(rows) == 4
        assert rows[0]["allocation"] == "level 0~1"
        assert rows[1]["allocation"] == "level 2~6"
        assert rows[0]["utilization"] == 0.56
        assert rows[1]["headroom"] == 1.0
        assert sum(r["words"] for r in rows) == 13 * 1000
