"""Flow-cache model tests."""

import pytest

from repro.npsim.flowcache import (
    FlowCache,
    cached_program_set,
    simulate_hit_rate,
)
from repro.npsim.program import compile_programs
from repro.traffic import Trace, matched_trace


class TestFlowCache:
    def test_lru_eviction(self):
        cache = FlowCache(2)
        assert not cache.access(("a",))
        assert not cache.access(("b",))
        assert cache.access(("a",))          # refreshes a
        assert not cache.access(("c",))      # evicts b (LRU)
        assert not cache.access(("b",))
        assert cache.access(("c",))

    def test_hit_rate(self):
        cache = FlowCache(8)
        for _ in range(3):
            cache.access((1,))
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_capacity_bound(self):
        cache = FlowCache(4)
        for i in range(100):
            cache.access((i,))
        assert len(cache) == 4

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            FlowCache(0)


class TestHitRates:
    def test_repeating_flows_hit(self):
        headers = [(1, 2, 3, 4, 5), (6, 7, 8, 9, 10)] * 50
        trace = Trace.from_headers(headers)
        assert simulate_hit_rate(trace, capacity=8) > 0.9

    def test_diverse_headers_miss(self):
        """§1's point: diverse traffic defeats caching."""
        headers = [(i, i, i % 65536, i % 65536, i % 256) for i in range(500)]
        trace = Trace.from_headers(headers)
        assert simulate_hit_rate(trace, capacity=64) == 0.0

    def test_skew_raises_hit_rate(self, small_fw_ruleset):
        from repro.traffic import flow_trace

        flat = flow_trace(small_fw_ruleset, 600, num_flows=1000, seed=1,
                          zipf_skew=0.0)
        skewed = flow_trace(small_fw_ruleset, 600, num_flows=1000, seed=1,
                            zipf_skew=1.6)
        assert (simulate_hit_rate(skewed, 128)
                > simulate_hit_rate(flat, 128))

    def test_flow_trace_repeats_flows(self, small_fw_ruleset):
        from repro.traffic import flow_trace

        trace = flow_trace(small_fw_ruleset, 500, num_flows=50, seed=2)
        distinct = len(set(trace.headers()))
        assert distinct <= 50 < len(trace)


class TestCachedPrograms:
    @pytest.fixture()
    def setup(self, small_fw_ruleset):
        from repro.classifiers import ExpCutsClassifier

        # A trace with heavy repetition so the cache has something to do.
        headers = list(matched_trace(small_fw_ruleset, 40, seed=2).headers())
        trace = Trace.from_headers(headers * 5)
        clf = ExpCutsClassifier.build(small_fw_ruleset)
        return clf, trace

    def test_hits_shrink_programs(self, setup):
        clf, trace = setup
        ps = compile_programs(clf, trace)
        outcome = cached_program_set(ps, trace, capacity=64)
        assert outcome.hit_rate > 0.5
        hit_progs = [p for p in outcome.program_set.programs
                     if len(p.reads) == 1]
        assert len(hit_progs) == outcome.hits
        # Results preserved on hits and misses alike.
        for orig, new in zip(ps.programs, outcome.program_set.programs):
            assert orig.result == new.result

    def test_misses_pay_probe_plus_lookup(self, setup):
        clf, trace = setup
        ps = compile_programs(clf, trace)
        outcome = cached_program_set(ps, trace, capacity=64)
        miss = next(p for p in outcome.program_set.programs
                    if len(p.reads) > 1)
        orig = ps.programs[0]
        assert len(miss.reads) == len(orig.reads) + 1
        assert "flowcache" in outcome.program_set.regions

    def test_throughput_improves_with_locality(self, setup):
        """End to end: a cache in front of ExpCuts helps skewed traffic."""
        from repro.npsim import IXP2850, place, simulate_throughput
        from repro.npsim.allocator import Placement

        clf, trace = setup
        ps = compile_programs(clf, trace)
        outcome = cached_program_set(ps, trace, capacity=256)
        base_placement = place(clf.memory_regions(),
                               list(IXP2850.sram_channels))
        # The flow cache lives beside the scratch pseudo-channel; the
        # runner appends scratch last, so borrow its slot via override
        # after placement resolution: easiest is placing it on the
        # cleanest SRAM channel for this test.
        cached_placement = Placement(
            {**base_placement.mapping, "flowcache": 1}, "test",
        )
        plain = simulate_throughput(ps, num_threads=71, max_packets=4000,
                                    placement=base_placement)
        cached = simulate_throughput(outcome.program_set, num_threads=71,
                                     max_packets=4000,
                                     placement=cached_placement)
        assert cached.gbps > plain.gbps

    def test_trace_too_short_rejected(self, setup):
        clf, trace = setup
        ps = compile_programs(clf, trace)
        short = Trace.from_headers(list(trace.headers())[:3])
        with pytest.raises(ValueError):
            cached_program_set(ps, short, capacity=8)


class TestPerClassAttribution:
    """Hit/miss/eviction attribution by traffic class — what makes a
    cache-busting scan visible instead of an anonymous hit-rate drag."""

    def test_hits_and_misses_attributed(self):
        cache = FlowCache(8)
        cache.access((1,), klass="bulk")      # miss
        cache.access((1,), klass="bulk")      # hit
        cache.access((2,), klass="scan")      # miss
        report = cache.class_report()
        assert report["bulk"] == {"hits": 1, "misses": 1, "evictions": 0,
                                  "hit_rate": 0.5}
        assert report["scan"]["misses"] == 1
        assert report["scan"]["hit_rate"] == 0.0

    def test_eviction_charged_to_victim(self):
        cache = FlowCache(1)
        cache.access((1,), klass="bulk")
        cache.access((2,), klass="scan")      # evicts bulk's entry
        report = cache.class_report()
        assert report["bulk"]["evictions"] == 1
        assert report["scan"]["evictions"] == 0
        assert cache.evictions == 1

    def test_unlabelled_accesses_only_count_globally(self):
        cache = FlowCache(4)
        cache.access((1,))
        cache.access((1,))
        assert cache.class_report() == {}
        assert cache.hits == 1 and cache.misses == 1

    def test_simulate_class_hit_rates_scan_collapse(self):
        from repro.npsim.flowcache import simulate_class_hit_rates

        legit = [(1, 2, 3, 4, 5), (6, 7, 8, 9, 10)] * 100
        scan = [(i, i + 1, i % 65536, i % 1024, 6) for i in range(200)]
        headers, classes = [], []
        for pair in zip(legit, scan):
            headers.extend(pair)
            classes.extend(["bulk", "scan"])
        trace = Trace.from_headers(headers)
        report = simulate_class_hit_rates(trace, capacity=16, classes=classes)
        assert report["bulk"]["hit_rate"] > 0.9
        assert report["scan"]["hit_rate"] == 0.0
        assert report["overall"]["hits"] == \
            report["bulk"]["hits"] + report["scan"]["hits"]

    def test_simulate_class_hit_rates_length_mismatch(self):
        from repro.npsim.flowcache import simulate_class_hit_rates

        trace = Trace.from_headers([(1, 2, 3, 4, 5)] * 4)
        with pytest.raises(ValueError):
            simulate_class_hit_rates(trace, capacity=4, classes=["a"])

    def test_cached_program_set_classes_validated(self, small_fw_ruleset):
        from repro.classifiers import ALGORITHMS
        from repro.traffic import matched_trace

        clf = ALGORITHMS["expcuts"].build(small_fw_ruleset)
        trace = matched_trace(small_fw_ruleset, 50, seed=3)
        ps = compile_programs(clf, trace)
        with pytest.raises(ValueError):
            cached_program_set(ps, trace, capacity=8, classes=["x"] * 10)
        outcome = cached_program_set(ps, trace, capacity=8,
                                     classes=["bulk"] * 50)
        assert outcome.hits + outcome.misses == 50
