"""Fault-injection layer: plan validation, determinism, degradation."""

import pytest

from repro.classifiers import ExpCutsClassifier
from repro.classifiers.base import MemoryRegion
from repro.core.errors import FaultPlanError
from repro.npsim import (
    ChannelFailure,
    FaultPlan,
    LatencySpike,
    MicroengineStall,
    WorkerFault,
)
from repro.npsim.allocator import place
from repro.npsim.chip import IXP2850
from repro.npsim.faults import (
    PACKET_CORRUPT,
    PACKET_DROP,
    PACKET_OK,
    FaultInjector,
    _uniform,
)
from repro.npsim.runner import simulate_throughput
from repro.traffic import matched_trace


@pytest.fixture(scope="module")
def fw_setup():
    from repro.rulesets import generate
    from repro.rulesets.profiles import PROFILES

    ruleset = generate(PROFILES["FW01"], size=40, seed=11).with_default()
    trace = matched_trace(ruleset, 300, seed=21)
    return ExpCutsClassifier.build(ruleset), trace


class TestFaultPlanValidation:
    def test_default_plan_is_empty(self):
        assert FaultPlan().is_empty()

    def test_bad_rates_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(corrupt_rate=-0.1)
        # Every packet faulty would never complete a run.
        with pytest.raises(FaultPlanError):
            FaultPlan(drop_rate=0.6, corrupt_rate=0.4)

    def test_bad_spike_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(latency_spikes=(LatencySpike("sram0", 10.0, 5.0, 2.0),))
        with pytest.raises(ValueError):
            FaultPlan(latency_spikes=(LatencySpike("sram0", 0.0, 10.0, 0.5),))

    def test_bad_stall_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(me_stalls=(MicroengineStall(0, 0.0, 0.0),))
        with pytest.raises(FaultPlanError):
            FaultPlan(me_stalls=(MicroengineStall(-1, 0.0, 10.0),))

    def test_negative_failure_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(channel_failures=(ChannelFailure("sram0", -1.0),))

    def test_first_failure_cycle(self):
        plan = FaultPlan(channel_failures=(
            ChannelFailure("sram0", 500.0), ChannelFailure("sram1", 100.0)))
        assert plan.first_failure_cycle == 100.0
        assert FaultPlan().first_failure_cycle is None

    def test_dict_round_trip(self):
        plan = FaultPlan(
            seed=7,
            channel_failures=(ChannelFailure("sram2", 1000.0),),
            latency_spikes=(LatencySpike("sram0", 10.0, 90.0, 3.0),),
            me_stalls=(MicroengineStall(2, 50.0, 25.0),),
            drop_rate=0.01, corrupt_rate=0.02,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_malformed_dict_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"channel_failures": [{"channel": "sram0"}]})


class TestWorkerFaults:
    """Process-level faults the serving fabric's chaos soak injects."""

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown worker fault"):
            FaultPlan(worker_faults=(WorkerFault("shard0", "segfault", 10),))

    def test_negative_packet_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(worker_faults=(WorkerFault("shard0", "kill", -1),))

    def test_bad_factor_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(worker_faults=(
                WorkerFault("shard0", "slow_start", 5, factor=0.5),))

    def test_dict_round_trip(self):
        plan = FaultPlan(seed=2007, worker_faults=(
            WorkerFault("shard0", "kill", 100),
            WorkerFault("shard2", "corrupt_snapshot", 470),
            WorkerFault("shard1", "slow_start", 790, factor=4.0),
        ))
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert not plan.is_empty()

    def test_schedule_groups_by_packet(self):
        plan = FaultPlan(worker_faults=(
            WorkerFault("shard0", "kill", 100),
            WorkerFault("shard1", "hang", 100),
            WorkerFault("shard2", "kill", 300),
        ))
        schedule = plan.worker_fault_schedule()
        assert set(schedule) == {100, 300}
        assert [f.shard for f in schedule[100]] == ["shard0", "shard1"]
        assert [f.kind for f in schedule[300]] == ["kill"]

    def test_unknown_channel_rejected_at_prepare(self, fw_setup):
        clf, trace = fw_setup
        plan = FaultPlan(channel_failures=(ChannelFailure("nvram9", 100.0),))
        with pytest.raises(FaultPlanError):
            simulate_throughput(clf, trace, num_threads=7, max_packets=500,
                                trace_limit=100, fault_plan=plan)


class TestDeterministicSchedule:
    def test_uniform_is_order_independent(self):
        values = [_uniform(2007, seq) for seq in range(200)]
        assert values == [_uniform(2007, seq) for seq in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        # Different seeds give a different schedule.
        assert values != [_uniform(2008, seq) for seq in range(200)]

    def test_verdict_fractions(self):
        inj = FaultInjector(FaultPlan(drop_rate=0.1, corrupt_rate=0.05))
        verdicts = [inj.packet_verdict(seq) for seq in range(20_000)]
        drops = verdicts.count(PACKET_DROP) / len(verdicts)
        corrupts = verdicts.count(PACKET_CORRUPT) / len(verdicts)
        assert drops == pytest.approx(0.1, abs=0.01)
        assert corrupts == pytest.approx(0.05, abs=0.01)

    def test_no_header_checks_when_rates_zero(self):
        inj = FaultInjector(FaultPlan())
        assert all(inj.packet_verdict(seq) == PACKET_OK for seq in range(100))

    def test_same_plan_same_result(self, fw_setup):
        clf, trace = fw_setup
        plan = FaultPlan(
            channel_failures=(ChannelFailure("sram1", 20_000.0),),
            drop_rate=0.02,
        )
        runs = [
            simulate_throughput(clf, trace, num_threads=23, max_packets=1500,
                                trace_limit=150, placement_policy="failover",
                                fault_plan=plan)
            for _ in range(2)
        ]
        assert runs[0].gbps == runs[1].gbps
        assert (runs[0].resilience.total_discarded
                == runs[1].resilience.total_discarded)


class TestFailoverPlacement:
    def test_hot_regions_get_replicas(self):
        regions = [MemoryRegion(f"level:{i}", 1000, w)
                   for i, w in enumerate((0.4, 0.3, 0.2, 0.05, 0.05))]
        placement = place(regions, list(IXP2850.sram_channels), "failover")
        assert placement.policy == "failover"
        # The hot regions (weight >= mean 0.2) are replicated...
        for name in ("level:0", "level:1", "level:2"):
            replica = placement.replica_of(name)
            assert replica is not None
            assert replica != placement.channel_of(name)
        # ...the cold tail is not.
        assert placement.replica_of("level:4") is None


class TestDegradedRuns:
    def test_channel_loss_completes_and_degrades(self, fw_setup):
        """The acceptance scenario: 1-of-4 channels dies mid-run."""
        clf, trace = fw_setup
        plan = FaultPlan(channel_failures=(ChannelFailure("sram1", 15_000.0),))
        res = simulate_throughput(clf, trace, num_threads=23, max_packets=2500,
                                  trace_limit=150, placement_policy="failover",
                                  fault_plan=plan)
        rep = res.resilience
        assert rep is not None
        assert res.gbps > 0
        assert any(e.kind == "channel_failed" for e in rep.events)
        # Something actually re-routed: replicas or emergency remap served reads.
        assert rep.replica_reads + rep.remapped_reads > 0
        assert "Resilience report" in rep.summary()

    def test_no_plan_no_report(self, fw_setup):
        clf, trace = fw_setup
        res = simulate_throughput(clf, trace, num_threads=7, max_packets=500,
                                  trace_limit=100)
        assert res.resilience is None

    def test_header_faults_counted(self, fw_setup):
        clf, trace = fw_setup
        plan = FaultPlan(drop_rate=0.05, corrupt_rate=0.05)
        res = simulate_throughput(clf, trace, num_threads=7, max_packets=1000,
                                  trace_limit=100, fault_plan=plan)
        rep = res.resilience
        assert res.packets == 1000              # completed on top of the drops
        assert rep.packets_dropped > 0
        assert rep.packets_corrupted > 0
        assert res.sim.packets_discarded == rep.total_discarded

    def test_latency_spike_slows_window(self, fw_setup):
        clf, trace = fw_setup
        spike = LatencySpike("sram1", 0.0, 1e9, 8.0)  # whole-run spike
        slow = simulate_throughput(clf, trace, num_threads=23, max_packets=1500,
                                   trace_limit=150,
                                   fault_plan=FaultPlan(latency_spikes=(spike,)))
        clean = simulate_throughput(clf, trace, num_threads=23, max_packets=1500,
                                    trace_limit=150, fault_plan=FaultPlan())
        assert slow.gbps < clean.gbps
        assert any(e.kind == "latency_spike" for e in slow.resilience.events)

    def test_me_stall_recorded(self, fw_setup):
        clf, trace = fw_setup
        plan = FaultPlan(me_stalls=(MicroengineStall(0, 1000.0, 50_000.0),))
        res = simulate_throughput(clf, trace, num_threads=23, max_packets=1500,
                                  trace_limit=150, fault_plan=plan)
        rep = res.resilience
        assert rep.stalled_me_cycles > 0
        assert any(e.kind == "me_stalled" for e in rep.events)

    def test_empty_plan_matches_no_plan(self, fw_setup):
        """An injector with nothing scheduled must not change the numbers."""
        clf, trace = fw_setup
        base = simulate_throughput(clf, trace, num_threads=23, max_packets=1500,
                                   trace_limit=150)
        empty = simulate_throughput(clf, trace, num_threads=23, max_packets=1500,
                                    trace_limit=150, fault_plan=FaultPlan())
        assert empty.gbps == base.gbps
        assert empty.resilience.total_discarded == 0
