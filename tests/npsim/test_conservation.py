"""Simulator conservation invariants: nothing appears or vanishes."""


from repro.npsim.chip import ChipConfig, default_sram_channels
from repro.npsim.memory import MemoryChannel
from repro.npsim.microengine import Simulator
from repro.npsim.program import synthetic_program_set


def build(reads, tail=20, threads=13, channels=2):
    ps = synthetic_program_set(reads, tail_compute=tail, copies=7)
    chip = ChipConfig(
        sram_channels=default_sram_channels(channels,
                                            tuple(0.0 for _ in range(channels)))
    )
    mem = [MemoryChannel(c) for c in chip.sram_channels]
    regions = sorted({r[0] for r in reads})
    placement = {r: i % channels for i, r in enumerate(regions)}
    return Simulator(chip, mem, placement, ps, threads), chip


class TestConservation:
    def test_packet_counts_balance(self):
        sim, _ = build([("a", 0, 1, 5), ("b", 0, 2, 5)])
        res = sim.run(1234)
        assert res.packets == 1234
        assert sum(t.packets_done for t in sim.threads) == 1234
        assert sum(m.packets_done for m in sim.mes) == 1234
        assert len(res.completion_order) == 1234
        assert sorted(res.completion_order) == list(range(1234))

    def test_channel_words_match_programs(self):
        reads = [("a", 0, 3, 5), ("b", 0, 2, 5), ("a", 8, 1, 5)]
        sim, _ = build(reads)
        res = sim.run(1000)
        served = sum(ch.stats.words for ch in sim.channels)
        # Completed packets moved exactly their programs' words; packets
        # still in flight at the cut-off may have issued a few more.
        expected_min = 1000 * 6
        assert served >= expected_min
        assert served <= expected_min + len(sim.threads) * 6

    def test_commands_match_reads(self):
        reads = [("a", 0, 1, 5)] * 4
        sim, _ = build(reads)
        res = sim.run(500)
        commands = sum(ch.stats.commands for ch in sim.channels)
        assert commands >= 500 * 4
        assert commands <= 500 * 4 + len(sim.threads) * 4
        del res

    def test_busy_cycles_below_elapsed(self):
        sim, _ = build([("a", 0, 1, 5)])
        res = sim.run(2000)
        for me in sim.mes:
            assert 0 <= me.busy_cycles <= res.elapsed_cycles * 1.001
        for ch in sim.channels:
            assert ch.stats.busy_cycles <= res.elapsed_cycles * 1.001

    def test_completions_monotone(self):
        sim, _ = build([("a", 0, 1, 5)])
        res = sim.run(800)
        times = res.completion_times
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_determinism_across_runs(self):
        a, _ = build([("a", 0, 2, 9), ("b", 4, 1, 3)], threads=19)
        b, _ = build([("a", 0, 2, 9), ("b", 4, 1, 3)], threads=19)
        ra, rb = a.run(1500), b.run(1500)
        assert ra.completion_times == rb.completion_times
        assert ra.completion_order == rb.completion_order

    def test_open_loop_conservation(self):
        sim, _ = build([("a", 0, 1, 5)])
        res = sim.run(600, arrival_rate=0.001)
        assert res.packets == 600
        assert len(res.latencies) == 600
        assert all(lat > 0 for lat in res.latencies)
