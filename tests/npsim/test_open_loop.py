"""Open-loop arrival process and latency measurement tests."""

import pytest

from repro.npsim.chip import ChipConfig, default_sram_channels
from repro.npsim.memory import MemoryChannel
from repro.npsim.microengine import Simulator
from repro.npsim.program import synthetic_program_set


def run(threads=16, packets=2000, **kwargs):
    ps = synthetic_program_set([("r0", 0, 1, 8)], tail_compute=40, copies=8)
    chip = ChipConfig(sram_channels=default_sram_channels(1, (0.0,)))
    channels = [MemoryChannel(c) for c in chip.sram_channels]
    sim = Simulator(chip, channels, {"r0": 0}, ps, threads)
    return sim.run(packets, **kwargs)


class TestOpenLoop:
    def test_achieved_rate_matches_offered(self):
        saturated = run()
        sat_rate = saturated.window_packets / saturated.window_cycles
        res = run(arrival_rate=sat_rate * 0.5)
        achieved = res.window_packets / res.window_cycles
        assert achieved == pytest.approx(sat_rate * 0.5, rel=0.05)

    def test_latencies_recorded_only_open_loop(self):
        saturated = run()
        assert saturated.latencies == []
        with pytest.raises(ValueError):
            saturated.latency_percentiles(0.5)
        open_loop = run(arrival_rate=0.001)
        assert len(open_loop.latencies) == open_loop.packets

    def test_latency_grows_with_load(self):
        saturated = run()
        sat_rate = saturated.window_packets / saturated.window_cycles
        light = run(arrival_rate=sat_rate * 0.3)
        heavy = run(arrival_rate=sat_rate * 0.95)
        p99_light = light.latency_percentiles(0.99)[0]
        p99_heavy = heavy.latency_percentiles(0.99)[0]
        assert p99_heavy > p99_light

    def test_light_load_latency_is_service_time(self):
        # At trivial load there is no queueing: latency ~= the packet's
        # unloaded residence time (switch+compute+issue+mem+tail).
        res = run(threads=4, packets=500, arrival_rate=1e-4)
        p50 = res.latency_percentiles(0.5)[0]
        # residence: 1 + 8 + 1 + 156 + 1 + 40 + ~switches
        assert p50 == pytest.approx(208, rel=0.1)

    def test_bursts_increase_tail_latency(self):
        saturated = run()
        sat_rate = saturated.window_packets / saturated.window_cycles
        smooth = run(arrival_rate=sat_rate * 0.6, burst_size=1)
        bursty = run(arrival_rate=sat_rate * 0.6, burst_size=32)
        assert (bursty.latency_percentiles(0.99)[0]
                > smooth.latency_percentiles(0.99)[0])

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            run(arrival_rate=-1.0)
        with pytest.raises(ValueError):
            run(burst_size=0)

    def test_percentile_validation(self):
        res = run(arrival_rate=0.001, packets=200)
        with pytest.raises(ValueError):
            res.latency_percentiles(1.5)


class TestRunnerIntegration:
    def test_gbps_offered_load(self):
        from repro.npsim import simulate_throughput
        from repro.npsim.program import synthetic_program_set

        ps = synthetic_program_set(
            [(f"level:{i}", 0, 1, 8) for i in range(4)], tail_compute=10,
            copies=16,
        )
        from repro.classifiers.base import MemoryRegion
        from repro.npsim import IXP2850, place

        placement = place(
            [MemoryRegion(f"level:{i}", 64, 0.25) for i in range(4)],
            list(IXP2850.sram_channels),
        )
        res = simulate_throughput(ps, num_threads=39, max_packets=3000,
                                  placement=placement, arrival_rate_gbps=1.5)
        assert res.gbps == pytest.approx(1.5, rel=0.08)
        assert res.sim.latencies

    def test_dram_slower_than_sram(self):
        from repro.harness import get_classifier, get_trace
        from repro.npsim import simulate_throughput

        clf = get_classifier("FW01", "expcuts")
        trace = get_trace("FW01", count=300)
        sram = simulate_throughput(clf, trace, num_threads=23,
                                   max_packets=1500, trace_limit=150)
        dram = simulate_throughput(clf, trace, num_threads=23,
                                   max_packets=1500, trace_limit=150,
                                   memory_kind="dram")
        assert dram.gbps < sram.gbps

    def test_unknown_memory_kind(self):
        from repro.harness import get_classifier, get_trace
        from repro.npsim import simulate_throughput

        clf = get_classifier("FW01", "expcuts")
        trace = get_trace("FW01", count=50)
        with pytest.raises(ValueError):
            simulate_throughput(clf, trace, memory_kind="optane")
