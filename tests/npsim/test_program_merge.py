"""merge_program_sets and the FIB-integrated application."""

import pytest

from repro.npsim.program import (
    PacketProgram,
    ProgramSet,
    merge_program_sets,
    synthetic_program_set,
)


class TestMerge:
    def test_reads_concatenate(self):
        a = synthetic_program_set([("x", 0, 1, 5)], tail_compute=9, name="a")
        b = synthetic_program_set([("y", 4, 2, 3)], tail_compute=7, name="b")
        merged = merge_program_sets(a, b)
        prog = merged.programs[0]
        assert len(prog.reads) == 2
        # a's tail compute lands before b's first read.
        assert prog.reads[1][3] == 3 + 9
        assert prog.tail_compute == 7
        assert merged.regions == ["x", "y"]
        assert merged.classifier_name == "a+b"

    def test_region_dedup(self):
        a = synthetic_program_set([("shared", 0, 1, 1)], tail_compute=0)
        b = synthetic_program_set([("shared", 8, 1, 1)], tail_compute=0)
        merged = merge_program_sets(a, b)
        assert merged.regions == ["shared"]
        assert merged.programs[0].reads[1][0] == 0

    def test_second_set_cycles(self):
        a = ProgramSet(
            regions=["x"],
            programs=[PacketProgram(((0, 0, 1, 1),), 0, None)] * 4,
            classifier_name="a", packet_bytes=64,
        )
        b = ProgramSet(
            regions=["y"],
            programs=[PacketProgram(((0, i, 1, 1),), 0, None) for i in range(2)],
            classifier_name="b", packet_bytes=64,
        )
        merged = merge_program_sets(a, b)
        assert len(merged.programs) == 4
        assert merged.programs[2].reads[1][1] == 0  # b cycles back
        assert merged.programs[3].reads[1][1] == 1

    def test_readless_second(self):
        a = synthetic_program_set([("x", 0, 1, 5)], tail_compute=9)
        b = ProgramSet(regions=[], programs=[PacketProgram((), 11, None)],
                       classifier_name="b", packet_bytes=64)
        merged = merge_program_sets(a, b)
        assert merged.programs[0].tail_compute == 20

    def test_empty_rejected(self):
        a = synthetic_program_set([("x", 0, 1, 5)], tail_compute=0)
        empty = ProgramSet(regions=[], programs=[], classifier_name="e",
                           packet_bytes=64)
        with pytest.raises(ValueError):
            merge_program_sets(a, empty)

    def test_result_preserved(self):
        a = ProgramSet(regions=["x"],
                       programs=[PacketProgram(((0, 0, 1, 1),), 0, 42)],
                       classifier_name="a", packet_bytes=64)
        b = synthetic_program_set([("y", 0, 1, 1)], tail_compute=0)
        assert merge_program_sets(a, b).programs[0].result == 42


class TestApplicationWithFib:
    def test_runs_and_stays_processing_bound(self):
        from repro.forwarding import generate_fib
        from repro.harness import get_classifier, get_trace
        from repro.npsim.application import run_application

        clf = get_classifier("FW01", "expcuts")
        trace = get_trace("FW01", count=300)
        fib = generate_fib(400, seed=8)
        res = run_application(clf, trace, max_packets=2500,
                              trace_limit=200, fib=fib)
        assert res.packets == 2500
        assert res.gbps(1400.0, 64) > 3.0
        # With a tiny rule set and the recorded (cheap) LPM, processing
        # and transmit run neck-and-neck; processing must still be within
        # a whisker of the busiest stage.
        busiest = max(r.me_busy_fraction for r in res.stage_reports)
        processing = next(r for r in res.stage_reports
                          if r.name.startswith("processing"))
        assert processing.me_busy_fraction >= busiest - 0.05
