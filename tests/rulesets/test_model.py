"""Profile model tests."""

import pytest

from repro.rulesets.model import (
    CORE_SPORT_IDIOMS,
    DEFAULT_PORT_IDIOMS,
    DEFAULT_PROTO_MIX,
    RuleSetProfile,
)
from repro.rulesets.profiles import PAPER_ORDER, PROFILES


class TestProfiles:
    def test_all_paper_sets_registered(self):
        assert set(PAPER_ORDER) <= set(PROFILES)
        assert len(PAPER_ORDER) == 7

    def test_kinds(self):
        for name in PAPER_ORDER:
            profile = PROFILES[name]
            expected = "firewall" if name.startswith("FW") else "core_router"
            assert profile.kind == expected

    def test_sizes_increase_within_family(self):
        fw = [PROFILES[n].size for n in PAPER_ORDER if n.startswith("FW")]
        cr = [PROFILES[n].size for n in PAPER_ORDER if n.startswith("CR")]
        assert fw == sorted(fw) and cr == sorted(cr)

    def test_normalized_weights(self):
        weights = PROFILES["CR01"].normalized_prefix_weights()
        assert abs(sum(w for _, w in weights) - 1.0) < 1e-9

    def test_empty_weights_rejected(self):
        profile = RuleSetProfile(name="x", kind="firewall", size=1, seed=1)
        with pytest.raises(ValueError):
            profile.normalized_prefix_weights()


class TestIdioms:
    def test_port_idiom_kinds(self):
        kinds = {i.kind for i in DEFAULT_PORT_IDIOMS}
        assert kinds == {"any", "exact", "range", "high", "low"}

    def test_core_sport_mostly_any(self):
        weights = {i.kind: i.weight for i in CORE_SPORT_IDIOMS}
        assert weights["any"] >= 0.8

    def test_proto_mix_tcp_dominates(self):
        mix = dict(DEFAULT_PROTO_MIX)
        assert mix[6] == max(mix.values())
