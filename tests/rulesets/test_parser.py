"""ClassBench-format parser round-trip tests."""

import pytest

from repro.core.errors import RuleFormatError, RuleParseError
from repro.core.interval import Interval, full_interval
from repro.rulesets import format_rules, generate, load_rules, parse_rules, save_rules
from repro.rulesets.profiles import PROFILES

SAMPLE = """
# comment line

@10.0.0.0/8\t192.168.1.0/24\t0 : 1023\t80 : 80\t0x06/0xFF\tpermit
@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00\tdeny
"""


class TestParse:
    def test_sample(self):
        rs = parse_rules(SAMPLE, name="sample")
        assert len(rs) == 2
        assert rs[0].intervals[0] == Interval(0x0A000000, 0x0AFFFFFF)
        assert rs[0].intervals[3] == Interval(80, 80)
        assert rs[0].intervals[4] == Interval(6, 6)
        assert rs[0].action == "permit"
        assert rs[1].intervals[4] == full_interval(8)
        assert rs[1].action == "deny"

    def test_default_action(self):
        rs = parse_rules("@1.2.3.4/32 5.6.7.8/32 0 : 0 0 : 0 0x11/0xFF")
        assert rs[0].action == "permit"

    def test_malformed_line(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_rules("not a rule")

    def test_unsupported_proto_mask(self):
        with pytest.raises(ValueError, match="protocol mask"):
            parse_rules("@1.2.3.4/32 5.6.7.8/32 0 : 0 0 : 0 0x11/0xF0")

    def test_bad_cidr(self):
        with pytest.raises(ValueError):
            parse_rules("@1.2.3/32 5.6.7.8/32 0 : 0 0 : 0 0x11/0xFF")


class TestErrorHandling:
    BAD = (
        "@10.0.0.0/8\t192.168.1.0/24\t0 : 1023\t80 : 80\t0x06/0xFF\tpermit\n"
        "garbage line\n"
        "@1.2.3/32 5.6.7.8/32 0 : 0 0 : 0 0x11/0xFF\n"
        "@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00\tdeny\n"
    )

    def test_typed_error_carries_location(self):
        with pytest.raises(RuleParseError) as excinfo:
            parse_rules(self.BAD, name="acl1")
        assert excinfo.value.source == "acl1"
        assert excinfo.value.line_no == 2
        assert "acl1:line 2" in str(excinfo.value)

    def test_lenient_mode_skips_and_counts(self):
        errors: list[RuleParseError] = []
        rs = parse_rules(self.BAD, name="acl1", strict=False, errors=errors)
        assert len(rs) == 2                      # the two good lines survive
        assert [e.line_no for e in errors] == [2, 3]

    def test_lenient_mode_without_error_list(self):
        rs = parse_rules(self.BAD, strict=False)
        assert len(rs) == 2

    def test_load_rules_lenient(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text(self.BAD)
        with pytest.raises(RuleParseError) as excinfo:
            load_rules(path)
        assert excinfo.value.source == "bad"
        errors: list[RuleParseError] = []
        rs = load_rules(path, strict=False, errors=errors)
        assert len(rs) == 2 and len(errors) == 2

    def test_no_raw_builtin_errors_escape(self):
        # Lines crafted to hit int()/split() edge cases inside parsing.
        for line in ("@1.2.3.4/xx 5.6.7.8/32 0 : 0 0 : 0 0x11/0xFF",
                     "@1.2.3.4/32 5.6.7.8/32 0 : 0 0 : 0 0xZZ/0xFF",
                     "@/ / 0 : 0 0 : 0 0x11/0xFF"):
            with pytest.raises(RuleParseError):
                parse_rules(line)

    def test_format_error_is_typed(self):
        from repro.core.rule import Rule, RuleSet

        with pytest.raises(RuleFormatError):
            format_rules(RuleSet([Rule.from_ranges(sip=(1, 6))]))


class TestRoundTrip:
    def test_sample_roundtrip(self):
        rs = parse_rules(SAMPLE)
        text = format_rules(rs)
        rs2 = parse_rules(text)
        assert [r.intervals for r in rs] == [r.intervals for r in rs2]
        assert [r.action for r in rs] == [r.action for r in rs2]

    def test_generated_roundtrip(self):
        rs = generate(PROFILES["CR01"], size=60, seed=13)
        rs2 = parse_rules(format_rules(rs))
        assert [r.intervals for r in rs] == [r.intervals for r in rs2]

    def test_file_roundtrip(self, tmp_path):
        rs = generate(PROFILES["FW01"], size=20, seed=14)
        path = tmp_path / "rules.txt"
        save_rules(rs, path)
        rs2 = load_rules(path)
        assert len(rs2) == 20
        assert rs2.name == "rules"
        assert [r.intervals for r in rs] == [r.intervals for r in rs2]

    def test_empty(self):
        assert format_rules(parse_rules("")) == ""

    def test_non_prefix_ip_rejected_on_format(self):
        from repro.core.rule import Rule, RuleSet

        rs = RuleSet([Rule.from_ranges(sip=(1, 6))])
        with pytest.raises(ValueError):
            format_rules(rs)
