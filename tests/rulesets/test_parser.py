"""ClassBench-format parser round-trip tests."""

import pytest

from repro.core.interval import Interval, full_interval
from repro.rulesets import format_rules, generate, load_rules, parse_rules, save_rules
from repro.rulesets.profiles import PROFILES

SAMPLE = """
# comment line

@10.0.0.0/8\t192.168.1.0/24\t0 : 1023\t80 : 80\t0x06/0xFF\tpermit
@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00\tdeny
"""


class TestParse:
    def test_sample(self):
        rs = parse_rules(SAMPLE, name="sample")
        assert len(rs) == 2
        assert rs[0].intervals[0] == Interval(0x0A000000, 0x0AFFFFFF)
        assert rs[0].intervals[3] == Interval(80, 80)
        assert rs[0].intervals[4] == Interval(6, 6)
        assert rs[0].action == "permit"
        assert rs[1].intervals[4] == full_interval(8)
        assert rs[1].action == "deny"

    def test_default_action(self):
        rs = parse_rules("@1.2.3.4/32 5.6.7.8/32 0 : 0 0 : 0 0x11/0xFF")
        assert rs[0].action == "permit"

    def test_malformed_line(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_rules("not a rule")

    def test_unsupported_proto_mask(self):
        with pytest.raises(ValueError, match="protocol mask"):
            parse_rules("@1.2.3.4/32 5.6.7.8/32 0 : 0 0 : 0 0x11/0xF0")

    def test_bad_cidr(self):
        with pytest.raises(ValueError):
            parse_rules("@1.2.3/32 5.6.7.8/32 0 : 0 0 : 0 0x11/0xFF")


class TestRoundTrip:
    def test_sample_roundtrip(self):
        rs = parse_rules(SAMPLE)
        text = format_rules(rs)
        rs2 = parse_rules(text)
        assert [r.intervals for r in rs] == [r.intervals for r in rs2]
        assert [r.action for r in rs] == [r.action for r in rs2]

    def test_generated_roundtrip(self):
        rs = generate(PROFILES["CR01"], size=60, seed=13)
        rs2 = parse_rules(format_rules(rs))
        assert [r.intervals for r in rs] == [r.intervals for r in rs2]

    def test_file_roundtrip(self, tmp_path):
        rs = generate(PROFILES["FW01"], size=20, seed=14)
        path = tmp_path / "rules.txt"
        save_rules(rs, path)
        rs2 = load_rules(path)
        assert len(rs2) == 20
        assert rs2.name == "rules"
        assert [r.intervals for r in rs] == [r.intervals for r in rs2]

    def test_empty(self):
        assert format_rules(parse_rules("")) == ""

    def test_non_prefix_ip_rejected_on_format(self):
        from repro.core.rule import Rule, RuleSet

        rs = RuleSet([Rule.from_ranges(sip=(1, 6))])
        with pytest.raises(ValueError):
            format_rules(rs)
