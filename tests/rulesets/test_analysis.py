"""Rule-set analysis tests: the measuring stick measures right, and the
generated twins exhibit the structure their profiles request."""

import pytest

from repro.core.interval import Interval, full_interval
from repro.core.rule import Rule, RuleSet
from repro.rulesets import generate
from repro.rulesets.analysis import RuleSetStats, analyze, classify_port
from repro.rulesets.profiles import PROFILES


class TestClassifyPort:
    @pytest.mark.parametrize("iv,expected", [
        (full_interval(16), "any"),
        (Interval(80, 80), "exact"),
        (Interval(1024, 65535), "high"),
        (Interval(0, 1023), "low"),
        (Interval(6000, 6063), "range"),
    ])
    def test_idioms(self, iv, expected):
        assert classify_port(iv) == expected


class TestAnalyzeMechanics:
    def test_empty(self):
        stats = analyze(RuleSet([]))
        assert stats.size == 0

    def test_known_ruleset(self):
        rs = RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8", dport=80, proto=6),
            Rule.from_prefixes(sip="10.0.0.0/8", dport=443, proto=6),
            Rule.from_prefixes(dip="192.168.0.0/16", proto=17),
            Rule.any(),
        ])
        stats = analyze(rs)
        assert stats.size == 4
        assert stats.wildcard_fraction["sip"] == pytest.approx(0.5)
        assert stats.prefix_length_histogram["sip"][8] == 2
        assert stats.port_idioms["dport"] == {"exact": 2, "any": 2}
        assert stats.protocol_mix == {"tcp": 2, "udp": 1, "any": 1}
        # Same /8 used twice -> reuse 0.5 on sip.
        assert stats.address_reuse["sip"] == pytest.approx(0.5)
        # Rules 0 and 1 share a shape (sip /8 + exact dport + proto).
        assert stats.tuple_count == 3

    def test_overlap_fraction_bounds(self):
        disjoint = RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8"),
            Rule.from_prefixes(sip="11.0.0.0/8"),
        ])
        nested = RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8"),
            Rule.from_prefixes(sip="10.1.0.0/16"),
        ])
        assert analyze(disjoint).overlap_fraction == 0.0
        assert analyze(nested).overlap_fraction == 1.0

    def test_summary_lines_render(self):
        stats = analyze(RuleSet([Rule.any()]))
        text = "\n".join(stats.summary_lines())
        assert "rules: 1" in text and "wildcards" in text


class TestTwinsMatchProfiles:
    """The substitution check: generated sets show the structure their
    profiles request (and that real sets of their kind exhibit)."""

    def test_firewall_wildcard_heavy_sources(self):
        stats = analyze(generate(PROFILES["FW03"], size=250, seed=41))
        assert stats.wildcard_fraction["sip"] > 0.25
        assert stats.wildcard_fraction["sip"] > stats.wildcard_fraction["dip"]

    def test_core_router_prefix_heavy(self):
        stats = analyze(generate(PROFILES["CR03"], size=250, seed=42))
        assert stats.wildcard_fraction["sip"] < 0.1
        hist = stats.prefix_length_histogram["dip"]
        assert hist.get(24, 0) > 0.15 * stats.size

    def test_core_router_sport_any(self):
        stats = analyze(generate(PROFILES["CR02"], size=250, seed=43))
        assert stats.port_idioms["sport"].get("any", 0) > 0.6 * stats.size

    def test_tcp_dominates_everywhere(self):
        for name in ("FW01", "CR01"):
            stats = analyze(generate(PROFILES[name], size=200, seed=44))
            assert stats.protocol_mix.get("tcp", 0) >= max(
                v for k, v in stats.protocol_mix.items() if k != "tcp"
            )

    def test_address_reuse_requested(self):
        stats = analyze(generate(PROFILES["CR04"], size=400, seed=45))
        assert stats.address_reuse["sip"] > 0.1

    def test_rule_shapes_bounded(self):
        """Real sets use few tuple shapes; the twins must too."""
        stats = analyze(generate(PROFILES["CR02"], size=300, seed=46))
        assert stats.tuple_count < stats.size * 0.7
