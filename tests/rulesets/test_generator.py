"""Synthetic rule-set generator tests."""

import pytest

from repro.core.fields import Field
from repro.core.interval import full_interval
from repro.rulesets import generate, paper_ruleset
from repro.rulesets.profiles import PAPER_ORDER, PROFILES


class TestDeterminism:
    def test_same_seed_same_rules(self):
        a = generate(PROFILES["FW01"], size=30, seed=7)
        b = generate(PROFILES["FW01"], size=30, seed=7)
        assert [r.intervals for r in a] == [r.intervals for r in b]
        assert [r.action for r in a] == [r.action for r in b]

    def test_different_seed_different_rules(self):
        a = generate(PROFILES["FW01"], size=30, seed=7)
        b = generate(PROFILES["FW01"], size=30, seed=8)
        assert [r.intervals for r in a] != [r.intervals for r in b]


class TestStructure:
    @pytest.mark.parametrize("name", ["FW01", "CR01"])
    def test_size_and_uniqueness(self, name):
        rs = generate(PROFILES[name], size=50, seed=3)
        assert len(rs) == 50
        keys = {tuple(r.intervals) for r in rs}
        assert len(keys) == 50  # duplicates suppressed

    def test_no_full_wildcard_rule(self):
        rs = generate(PROFILES["CR02"], size=200, seed=9)
        for rule in rs:
            assert any(
                rule.intervals[f].size < (1 << (32, 32, 16, 16, 8)[f])
                for f in range(5)
            )

    def test_ips_are_prefix_blocks(self):
        rs = generate(PROFILES["CR01"], size=80, seed=4)
        for rule in rs:
            for fld in (Field.SIP, Field.DIP):
                assert rule.intervals[fld].is_power_of_two_aligned()

    def test_firewall_has_wildcard_sources(self):
        rs = generate(PROFILES["FW03"], size=200, seed=5)
        wildcard_sip = sum(1 for r in rs if r.is_wildcard(Field.SIP))
        assert wildcard_sip > 0.2 * len(rs)

    def test_core_router_mostly_specific(self):
        rs = generate(PROFILES["CR03"], size=200, seed=5)
        wildcard_sip = sum(1 for r in rs if r.is_wildcard(Field.SIP))
        assert wildcard_sip < 0.2 * len(rs)

    def test_core_router_sport_mostly_any(self):
        rs = generate(PROFILES["CR03"], size=200, seed=5)
        any_sport = sum(
            1 for r in rs if r.intervals[Field.SPORT] == full_interval(16)
        )
        assert any_sport > 0.6 * len(rs)

    def test_address_reuse_bounds_distinct_prefixes(self):
        rs = generate(PROFILES["CR04"], size=300, seed=6)
        distinct = len({r.intervals[Field.SIP] for r in rs})
        assert distinct < 300  # reuse must collapse some


class TestPaperSets:
    def test_sizes(self):
        expected = {"FW01": 68, "FW02": 136, "FW03": 340, "CR01": 486,
                    "CR02": 972, "CR03": 1458, "CR04": 1945}
        for name in PAPER_ORDER:
            assert PROFILES[name].size == expected[name]

    def test_cr04_is_the_published_size(self):
        # §6.1: "The largest real-life ruleset (CR04) contains 1945 rules."
        assert PROFILES["CR04"].size == 1945

    def test_paper_ruleset_has_default(self):
        rs = paper_ruleset("FW01")
        assert len(rs) == 69  # 68 + trailing catch-all
        assert rs.first_match((1, 2, 3, 4, 5)) is not None

    def test_generate_by_name(self):
        rs = generate("FW01", size=10, seed=1)
        assert len(rs) == 10
