"""Stateful & adversarial scenario generator tests.

The two load-bearing properties (hypothesis-tested):

* every generated flow is a *legal* transition sequence of the TCP
  state machine, under any seed, mix component, abandon point and
  retransmit count;
* scenario composition never changes classification semantics — the
  verdicts for a scenario trace's headers match the linear oracle
  under every scenario in the catalog.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers import ALGORITHMS, LinearSearchClassifier
from repro.core.errors import ConfigurationError
from repro.traffic import (
    ATTACK_CLASSES,
    LEGAL_NEXT,
    SCENARIOS,
    build_scenario,
    flow_packets,
    get_scenario,
    is_complete_sequence,
    is_legal_sequence,
    scan_packets,
    scenario_arrivals,
    syn_flood_packets,
)
from repro.traffic.scenarios import DATA, FINACK, SYN, SYNACK


class TestStateMachine:
    def test_minimal_complete_flow(self):
        assert is_complete_sequence(
            [SYN, SYNACK, "ACK", DATA, "FIN", FINACK])

    def test_abandoned_handshake_is_complete(self):
        assert is_complete_sequence([SYN])
        assert is_complete_sequence([SYN, SYNACK])

    def test_illegal_transitions_rejected(self):
        assert not is_legal_sequence([DATA])           # no handshake
        assert not is_legal_sequence([SYN, "ACK"])     # skipped SYNACK
        assert not is_legal_sequence([])               # empty
        assert not is_legal_sequence(
            [SYN, SYNACK, "ACK", DATA, FINACK])        # FINACK needs FIN

    def test_prefix_legality_vs_completeness(self):
        # A mid-data truncation is legal (a capture window sees it) but
        # not complete (the flow never tore down).
        kinds = [SYN, SYNACK, "ACK", DATA, DATA]
        assert is_legal_sequence(kinds)
        assert not is_complete_sequence(kinds)

    @given(data_packets=st.integers(0, 12),
           seed=st.integers(0, 2**32 - 1),
           abandon=st.sampled_from([None, SYN, SYNACK]),
           retransmits=st.integers(0, 3),
           corrupt=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_every_generated_flow_is_legal_and_complete(
            self, data_packets, seed, abandon, retransmits, corrupt):
        rng = np.random.default_rng(seed)
        pkts = flow_packets((1, 2, 3, 4, 6), data_packets, flow_id=0,
                            klass="bulk", rng=rng, abandon_after=abandon,
                            syn_retransmits=retransmits,
                            corrupt_rate=corrupt)
        kinds = [p.kind for p in pkts]
        assert is_legal_sequence(kinds)
        assert is_complete_sequence(kinds)

    @given(seed=st.integers(0, 2**32 - 1), corrupt=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_checksum_flags_only_on_data(self, seed, corrupt):
        rng = np.random.default_rng(seed)
        pkts = flow_packets((1, 2, 3, 4, 6), 8, flow_id=0, klass="bulk",
                            rng=rng, corrupt_rate=corrupt)
        for p in pkts:
            if not p.checksum_ok:
                assert p.kind == DATA

    def test_legal_next_closed_over_kinds(self):
        kinds = {k for nxt in LEGAL_NEXT.values() for k in nxt}
        assert kinds <= {k for k in LEGAL_NEXT if k is not None}


class TestScenarioCatalog:
    def test_catalog_names(self):
        assert {"mixed", "syn-flood", "cache-bust", "worst-case"} \
            <= set(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-scenario")

    def test_too_small_trace_raises(self, tiny_ruleset):
        with pytest.raises(ConfigurationError):
            build_scenario("mixed", tiny_ruleset, 4)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestBuiltScenarios:
    def test_every_legit_flow_prefix_legal(self, name, small_fw_ruleset):
        """Legitimate flows obey the state machine; attack streams are
        exempt — violating it is what makes them attacks (bare ACK-scan
        probes, handshakes that never complete)."""
        strace = build_scenario(name, small_fw_ruleset, 400, seed=3)
        flow_class = dict(zip(strace.flow_ids.tolist(), strace.classes))
        for fid, kinds in strace.flow_kind_sequences().items():
            if flow_class[fid] in ATTACK_CLASSES:
                continue
            assert is_legal_sequence(kinds), (fid, kinds)

    def test_verdicts_match_linear_oracle(self, name, small_fw_ruleset):
        """Scenarios reorder and decorate traffic; they never change
        what any header classifies to."""
        strace = build_scenario(name, small_fw_ruleset, 300, seed=5)
        clf = ALGORITHMS["expcuts"].build(small_fw_ruleset)
        oracle = LinearSearchClassifier.build(small_fw_ruleset)
        got = clf.classify_batch(strace.trace.field_arrays())
        want = oracle.classify_batch(strace.trace.field_arrays())
        np.testing.assert_array_equal(got, want)

    def test_deterministic(self, name, small_fw_ruleset):
        a = build_scenario(name, small_fw_ruleset, 250, seed=9)
        b = build_scenario(name, small_fw_ruleset, 250, seed=9)
        assert a.kinds == b.kinds
        assert a.classes == b.classes
        np.testing.assert_array_equal(a.flow_ids, b.flow_ids)
        np.testing.assert_array_equal(a.checksum_ok, b.checksum_ok)
        np.testing.assert_array_equal(a.trace.field_arrays(),
                                      b.trace.field_arrays())

    def test_requested_count(self, name, small_fw_ruleset):
        strace = build_scenario(name, small_fw_ruleset, 300, seed=4)
        assert len(strace) == 300

    def test_attack_share_matches_ratio(self, name, small_fw_ruleset):
        strace = build_scenario(name, small_fw_ruleset, 400, seed=7)
        scenario = get_scenario(name)
        share = strace.attack_count / len(strace)
        want = scenario.attack_ratio / (1 + scenario.attack_ratio)
        assert share == pytest.approx(want, abs=0.1)

    def test_arrivals_monotone(self, name, small_fw_ruleset):
        strace = build_scenario(name, small_fw_ruleset, 200, seed=2)
        arrivals = scenario_arrivals(strace, 1_000.0, seed=2)
        assert np.all(np.diff(arrivals) > 0)


class TestAttackStreams:
    def test_syn_flood_sources_spoofed(self, small_fw_ruleset):
        pkts = syn_flood_packets(small_fw_ruleset, 200, seed=1,
                                 flow_id_base=0)
        assert all(p.kind == SYN for p in pkts)
        assert all(p.klass == "syn_flood" for p in pkts)
        sources = {p.header[0] for p in pkts}
        assert len(sources) > 150  # spoofed: (almost) never repeats

    def test_scan_five_tuples_all_distinct(self, small_fw_ruleset):
        pkts = scan_packets(small_fw_ruleset, 300, seed=1, flow_id_base=0)
        assert len({tuple(p.header) for p in pkts}) == len(pkts)
        assert all(p.klass == "scan" for p in pkts)

    def test_worst_case_headers_hit_max_depth(self, small_fw_ruleset):
        from repro.obs.trace import DecisionTrace
        from repro.traffic import matched_trace, worst_case_packets

        clf = ALGORITHMS["expcuts"].build(small_fw_ruleset)
        pkts = worst_case_packets(small_fw_ruleset, 40, seed=1,
                                  flow_id_base=0, classifier=clf, pool=128)
        sample = matched_trace(small_fw_ruleset, 128, seed=1,
                               matched_fraction=0.8)

        def depth(header):
            t = DecisionTrace()
            clf.classify(header, trace=t)
            return t.depth

        max_sampled = max(depth(sample.header(i)) for i in range(len(sample)))
        assert all(depth(p.header) >= max_sampled for p in pkts)

    def test_attack_classes_constant(self):
        assert ATTACK_CLASSES == {"syn_flood", "scan", "worst_case"}

    def test_syn_flood_stream_is_legal_abandonment(self, small_fw_ruleset):
        """The flood is the one attack that *does* follow the state
        machine — every spoofed flow is a legally abandoned [SYN]."""
        strace = build_scenario("syn-flood", small_fw_ruleset, 400, seed=3)
        flow_class = dict(zip(strace.flow_ids.tolist(), strace.classes))
        for fid, kinds in strace.flow_kind_sequences().items():
            if flow_class[fid] == "syn_flood":
                assert is_complete_sequence(kinds), (fid, kinds)
