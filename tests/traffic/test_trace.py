"""Trace container tests."""

import numpy as np
import pytest

from repro.traffic import PACKET_BYTES, Trace


def make_trace(n=4):
    return Trace(
        sip=np.arange(n, dtype=np.uint32),
        dip=np.arange(n, dtype=np.uint32) + 10,
        sport=np.full(n, 80, dtype=np.uint32),
        dport=np.full(n, 443, dtype=np.uint32),
        proto=np.full(n, 6, dtype=np.uint32),
    )


class TestContainer:
    def test_len_and_header(self):
        trace = make_trace(4)
        assert len(trace) == 4
        assert trace.header(1) == (1, 11, 80, 443, 6)
        assert trace.packet_bytes == PACKET_BYTES == 64

    def test_headers_iterator(self):
        assert list(make_trace(2).headers()) == [(0, 10, 80, 443, 6),
                                                 (1, 11, 80, 443, 6)]

    def test_field_arrays_order(self):
        arrays = make_trace(2).field_arrays()
        assert len(arrays) == 5
        assert arrays[4].tolist() == [6, 6]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                sip=np.zeros(2, dtype=np.uint32),
                dip=np.zeros(3, dtype=np.uint32),
                sport=np.zeros(2, dtype=np.uint32),
                dport=np.zeros(2, dtype=np.uint32),
                proto=np.zeros(2, dtype=np.uint32),
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                sip=np.zeros(1, dtype=np.uint32),
                dip=np.zeros(1, dtype=np.uint32),
                sport=np.zeros(1, dtype=np.uint32),
                dport=np.zeros(1, dtype=np.uint32),
                proto=np.array([300], dtype=np.uint32),
            )

    def test_from_headers(self):
        trace = Trace.from_headers([(1, 2, 3, 4, 5), (6, 7, 8, 9, 10)])
        assert len(trace) == 2
        assert trace.header(1) == (6, 7, 8, 9, 10)

    def test_from_headers_empty(self):
        assert len(Trace.from_headers([])) == 0

    def test_save_load(self, tmp_path):
        trace = make_trace(5)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == 5
        assert loaded.header(3) == trace.header(3)
        assert loaded.packet_bytes == trace.packet_bytes
