"""Traffic generator tests."""

import numpy as np
import pytest

from repro.traffic import corner_case_trace, matched_trace, uniform_trace, zipf_weights


class TestZipf:
    def test_normalised(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_skew_zero_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_skew_concentrates(self):
        weights = zipf_weights(10, 1.5)
        assert weights[0] > 5 * weights[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestMatchedTrace:
    def test_matched_fraction(self, small_fw_ruleset):
        trace = matched_trace(small_fw_ruleset, 400, seed=3,
                              matched_fraction=1.0)
        hits = sum(
            1 for header in trace.headers()
            if small_fw_ruleset.first_match(header) is not None
        )
        assert hits == len(trace)

    def test_deterministic(self, small_fw_ruleset):
        a = matched_trace(small_fw_ruleset, 100, seed=9)
        b = matched_trace(small_fw_ruleset, 100, seed=9)
        assert list(a.headers()) == list(b.headers())

    def test_bad_fraction(self, small_fw_ruleset):
        with pytest.raises(ValueError):
            matched_trace(small_fw_ruleset, 10, matched_fraction=1.5)

    def test_zero_fraction_is_uniformish(self, small_fw_ruleset):
        trace = matched_trace(small_fw_ruleset, 50, seed=4,
                              matched_fraction=0.0)
        assert len(trace) == 50


class TestUniformTrace:
    def test_shape_and_ranges(self):
        trace = uniform_trace(200, seed=5)
        assert len(trace) == 200
        assert int(trace.proto.max()) <= 255
        assert int(trace.sport.max()) <= 65535


class TestCornerCaseTrace:
    def test_probes_rule_boundaries(self, tiny_ruleset):
        trace = corner_case_trace(tiny_ruleset)
        headers = set(trace.headers())
        rule = tiny_ruleset[0]
        corners_lo = tuple(iv.lo for iv in rule.intervals)
        assert corners_lo in headers
        # the just-outside probe on the sip field
        outside = (rule.intervals[0].lo - 1,) + corners_lo[1:]
        assert outside in headers

    def test_empty_ruleset(self):
        from repro.core.rule import RuleSet

        trace = corner_case_trace(RuleSet([]))
        assert len(trace) == 1
