"""Trie LPM tests: both structures vs the scan oracle, plus costs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forwarding import FIB, BinaryTrie, MultibitTrie, generate_fib


@pytest.fixture(scope="module")
def fib500():
    return generate_fib(500, seed=3)


def boundary_probes(fib, limit=150):
    probes = []
    for route in list(fib)[:limit]:
        span = 32 - route.plen
        lo = route.prefix
        hi = route.prefix | ((1 << span) - 1) if span else route.prefix
        probes.extend((lo, hi, max(lo - 1, 0), min(hi + 1, (1 << 32) - 1)))
    return probes


class TestCorrectness:
    @pytest.mark.parametrize("cls", [BinaryTrie, MultibitTrie],
                             ids=lambda c: c.name)
    def test_random_and_boundary(self, cls, fib500):
        trie = cls(fib500)
        rng = np.random.default_rng(4)
        addrs = [int(a) for a in rng.integers(0, 1 << 32, size=800)]
        addrs += boundary_probes(fib500)
        for addr in addrs:
            assert trie.lookup(addr) == fib500.longest_match(addr)

    @pytest.mark.parametrize("stride", [4, 8, 16])
    def test_multibit_strides(self, stride, fib500):
        trie = MultibitTrie(fib500, stride=stride)
        rng = np.random.default_rng(5)
        for addr in (int(a) for a in rng.integers(0, 1 << 32, size=300)):
            assert trie.lookup(addr) == fib500.longest_match(addr)
        assert trie.worst_case_accesses() == 32 // stride

    def test_bad_stride(self, fib500):
        with pytest.raises(ValueError):
            MultibitTrie(fib500, stride=5)

    def test_batch_matches_scalar(self, fib500):
        trie = MultibitTrie(fib500)
        rng = np.random.default_rng(6)
        addrs = rng.integers(0, 1 << 32, size=500, dtype=np.uint32)
        batch = trie.lookup_batch(addrs)
        for idx in range(500):
            expected = trie.lookup(int(addrs[idx]))
            got = None if batch[idx] < 0 else int(batch[idx])
            assert got == expected

    def test_empty_fib(self):
        fib = FIB()
        assert BinaryTrie(fib).lookup(123) is None
        assert MultibitTrie(fib).lookup(123) is None

    def test_overlapping_same_slot(self):
        fib = FIB()
        fib.add(0x0A000000, 7, 1)   # 10.0.0.0/7
        fib.add(0x0A000000, 9, 2)   # 10.0.0.0/9 (nested, same level-0 slot)
        fib.add(0x0A800000, 9, 3)
        for cls in (BinaryTrie, MultibitTrie):
            trie = cls(fib)
            assert trie.lookup(0x0A000001) == 2
            assert trie.lookup(0x0A800001) == 3
            assert trie.lookup(0x0B000001) == 1
            assert trie.lookup(0x0C000001) is None


class TestCosts:
    def test_multibit_bounded_accesses(self, fib500):
        trie = MultibitTrie(fib500)
        rng = np.random.default_rng(7)
        for addr in (int(a) for a in rng.integers(0, 1 << 32, size=100)):
            trace = trie.access_trace(addr)
            assert 1 <= trace.total_accesses <= 4
            assert trace.result == trie.lookup(addr)

    def test_binary_unbounded_but_cheap_memory(self, fib500):
        binary = BinaryTrie(fib500)
        multibit = MultibitTrie(fib500)
        assert binary.memory_words() < multibit.memory_words()
        deep_trace = binary.access_trace(0x0A000001)
        assert deep_trace.result == binary.lookup(0x0A000001)
        assert binary.depth() <= 32

    def test_narrow_stride_saves_memory(self, fib500):
        wide = MultibitTrie(fib500, stride=16)
        narrow = MultibitTrie(fib500, stride=4)
        assert narrow.memory_words() < wide.memory_words()


@st.composite
def small_fib(draw):
    fib = FIB()
    n = draw(st.integers(1, 8))
    seen = set()
    for _ in range(n):
        plen = draw(st.integers(0, 32))
        value = draw(st.integers(0, (1 << 32) - 1))
        span = 32 - plen
        prefix = (value >> span) << span if span else value
        if (prefix, plen) in seen:
            continue
        seen.add((prefix, plen))
        fib.add(prefix, plen, draw(st.integers(0, 15)))
    return fib


@given(small_fib(), st.integers(0, (1 << 32) - 1))
@settings(max_examples=60, deadline=None)
def test_lpm_property(fib, address):
    expected = fib.longest_match(address)
    assert BinaryTrie(fib).lookup(address) == expected
    assert MultibitTrie(fib).lookup(address) == expected
    assert MultibitTrie(fib, stride=4).lookup(address) == expected
