"""FIB and route-table generator tests."""

import pytest

from repro.forwarding import FIB, Route, generate_fib, route_interval


class TestRoute:
    def test_matches(self):
        route = Route(0x0A000000, 8, 3)
        assert route.matches(0x0A123456)
        assert not route.matches(0x0B000000)

    def test_default_matches_all(self):
        route = Route(0, 0, 1)
        assert route.matches(0) and route.matches(0xFFFFFFFF)

    def test_host_route(self):
        route = Route(0x0A000001, 32, 2)
        assert route.matches(0x0A000001)
        assert not route.matches(0x0A000002)

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Route(0x0A000001, 8, 1)

    def test_bad_plen(self):
        with pytest.raises(ValueError):
            Route(0, 33, 1)

    def test_str(self):
        assert str(Route(0x0A000000, 8, 3)) == "10.0.0.0/8 -> 3"

    def test_interval(self):
        iv = route_interval(Route(0x0A000000, 8, 1))
        assert iv.lo == 0x0A000000 and iv.hi == 0x0AFFFFFF


class TestFIB:
    def test_longest_match_picks_most_specific(self):
        fib = FIB()
        fib.add(0, 0, 1)
        fib.add(0x0A000000, 8, 2)
        fib.add(0x0A010000, 16, 3)
        assert fib.longest_match(0x0B000000) == 1
        assert fib.longest_match(0x0A020000) == 2
        assert fib.longest_match(0x0A010005) == 3

    def test_no_match(self):
        fib = FIB()
        fib.add(0x0A000000, 8, 2)
        assert fib.longest_match(0x0B000000) is None

    def test_has_default(self):
        fib = FIB()
        assert not fib.has_default()
        fib.add(0, 0, 1)
        assert fib.has_default()


class TestGenerator:
    def test_size_and_determinism(self):
        a = generate_fib(200, seed=5)
        b = generate_fib(200, seed=5)
        assert len(a) == len(b) == 200
        assert [(r.prefix, r.plen, r.next_hop) for r in a] == \
               [(r.prefix, r.plen, r.next_hop) for r in b]

    def test_default_route_present(self):
        assert generate_fib(50, seed=1).has_default()
        assert not generate_fib(50, seed=1, with_default=False).has_default()

    def test_plen_mix_is_24_heavy(self):
        fib = generate_fib(1000, seed=9)
        plens = [r.plen for r in fib]
        assert plens.count(24) > 0.15 * len(plens)

    def test_unique_prefixes(self):
        fib = generate_fib(300, seed=2)
        keys = {(r.prefix, r.plen) for r in fib}
        assert len(keys) == len(fib)

    def test_nesting_exists(self):
        """Some routes must nest inside shorter ones (LPM's raison d'etre)."""
        fib = generate_fib(500, seed=3)
        routes = sorted(fib, key=lambda r: r.plen)
        nested = 0
        for i, outer in enumerate(routes):
            if outer.plen == 0:
                continue
            for inner in routes[i + 1:]:
                if inner.plen > outer.plen and outer.matches(inner.prefix):
                    nested += 1
                    break
        assert nested > 10
