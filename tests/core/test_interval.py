"""Unit and property tests for interval/prefix arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.interval import (
    Interval,
    elementary_edges,
    interval_to_prefixes,
    prefix_to_interval,
    split_equal,
)


class TestIntervalBasics:
    def test_size(self):
        assert Interval(3, 7).size == 5
        assert Interval(4, 4).size == 1

    def test_contains(self):
        iv = Interval(10, 20)
        assert iv.contains(10) and iv.contains(20) and iv.contains(15)
        assert not iv.contains(9) and not iv.contains(21)

    def test_contains_interval(self):
        assert Interval(0, 100).contains_interval(Interval(10, 20))
        assert not Interval(10, 20).contains_interval(Interval(10, 21))

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(10, 20))
        assert not Interval(0, 9).overlaps(Interval(10, 20))

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 4).intersect(Interval(5, 9)) is None

    def test_shifted(self):
        assert Interval(5, 9).shifted(-5) == Interval(0, 4)

    def test_alignment(self):
        assert Interval(8, 15).is_power_of_two_aligned()
        assert not Interval(8, 14).is_power_of_two_aligned()
        assert not Interval(9, 16).is_power_of_two_aligned()


class TestPrefixConversion:
    def test_full_prefix(self):
        assert prefix_to_interval(0, 0, 32) == Interval(0, 0xFFFFFFFF)

    def test_host_prefix(self):
        assert prefix_to_interval(0x0A000001, 32, 32) == Interval(0x0A000001, 0x0A000001)

    def test_slash8(self):
        assert prefix_to_interval(0x0A123456, 8, 32) == Interval(0x0A000000, 0x0AFFFFFF)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            prefix_to_interval(0, 33, 32)
        with pytest.raises(ValueError):
            prefix_to_interval(1 << 32, 8, 32)

    def test_expansion_simple(self):
        # [1, 14] over 4 bits: classic worst-ish case.
        prefixes = interval_to_prefixes(Interval(1, 14), 4)
        covered = set()
        for value, plen in prefixes:
            iv = prefix_to_interval(value, plen, 4)
            covered.update(range(iv.lo, iv.hi + 1))
        assert covered == set(range(1, 15))

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_expansion_covers_exactly(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = interval_to_prefixes(Interval(lo, hi), 4)
        covered = []
        for value, plen in prefixes:
            iv = prefix_to_interval(value, plen, 4)
            covered.extend(range(iv.lo, iv.hi + 1))
        # Exact, disjoint cover.
        assert sorted(covered) == list(range(lo, hi + 1))
        assert len(covered) == len(set(covered))

    @given(st.integers(1, 16))
    def test_expansion_bound(self, width):
        # The classic 2*width - 2 worst case bound.
        iv = Interval(1, (1 << width) - 2) if width > 1 else Interval(0, 0)
        assert len(interval_to_prefixes(iv, width)) <= max(2 * width - 2, 1)


class TestSplitEqual:
    def test_split(self):
        parts = split_equal(Interval(0, 15), 4)
        assert parts == [Interval(0, 3), Interval(4, 7), Interval(8, 11), Interval(12, 15)]

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            split_equal(Interval(0, 9), 4)

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            split_equal(Interval(0, 15), 0)

    @given(st.integers(1, 8), st.integers(0, 4))
    def test_split_partitions(self, logparts, logstep):
        size = 1 << (logparts + logstep)
        parts = split_equal(Interval(0, size - 1), 1 << logparts)
        assert parts[0].lo == 0 and parts[-1].hi == size - 1
        for left, right in zip(parts, parts[1:]):
            assert right.lo == left.hi + 1


class TestElementaryEdges:
    def test_empty(self):
        assert elementary_edges([], 8) == [0]

    def test_basic(self):
        edges = elementary_edges([Interval(5, 10), Interval(8, 20)], 8)
        assert edges == [0, 5, 8, 11, 21]

    def test_domain_clamp(self):
        edges = elementary_edges([Interval(0, 255)], 8)
        assert edges == [0]

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)), max_size=6))
    def test_segments_have_constant_cover(self, pairs):
        intervals = [Interval(min(a, b), max(a, b)) for a, b in pairs]
        edges = elementary_edges(intervals, 8)
        bounds = edges + [256]
        for idx in range(len(edges)):
            lo, hi = bounds[idx], bounds[idx + 1] - 1
            cover_lo = {i for i, iv in enumerate(intervals) if iv.contains(lo)}
            cover_hi = {i for i, iv in enumerate(intervals) if iv.contains(hi)}
            mid = (lo + hi) // 2
            cover_mid = {i for i, iv in enumerate(intervals) if iv.contains(mid)}
            assert cover_lo == cover_hi == cover_mid
