"""The typed error hierarchy: stable codes, builtin compatibility, and
the no-bare-exceptions rule over the library source."""

import inspect
import re
from pathlib import Path

import pytest

from repro.core import errors

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The compatibility contract: class -> stable machine-readable code.
#: Renaming a class must not change its code; changing a code here is a
#: breaking change for every script branching on CLI ``error[<code>]``.
EXPECTED_CODES = {
    errors.ReproError: "repro",
    errors.ConfigurationError: "config",
    errors.GenerationError: "generation",
    errors.SimulationError: "sim",
    errors.ChannelError: "sim.channel",
    errors.ChannelOfflineError: "sim.channel_offline",
    errors.PlacementError: "sim.placement",
    errors.RegionUnmappedError: "sim.region_unmapped",
    errors.RuleParseError: "rule.parse",
    errors.RuleFormatError: "rule.format",
    errors.UpdateError: "update",
    errors.IncrementalUpdateError: "update.incremental",
    errors.RebuildError: "rebuild",
    errors.DepthBoundExceededError: "depth_bound",
    errors.SnapshotError: "snapshot",
    errors.SnapshotIntegrityError: "snapshot.integrity",
    errors.BuildBudgetExceeded: "budget.build",
    errors.FaultPlanError: "faults.plan",
    errors.ServiceError: "serve",
    errors.AdmissionRejected: "serve.shed",
    errors.ServiceStopped: "serve.stopped",
    errors.ShardUnavailable: "serve.shard_down",
    errors.WorkerCrashLoop: "serve.crash_loop",
    errors.DeadlineExceeded: "serve.deadline",
    errors.TransientServiceError: "serve.transient",
    errors.CircuitOpenError: "serve.breaker_open",
    errors.RetriesExhausted: "serve.retries_exhausted",
}


def all_error_classes():
    return [obj for _, obj in inspect.getmembers(errors, inspect.isclass)
            if issubclass(obj, Exception)]


class TestHierarchy:
    def test_every_class_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, errors.ReproError), cls.__name__

    def test_codes_are_the_documented_contract(self):
        assert {c: c.code for c in all_error_classes()} == EXPECTED_CODES

    def test_codes_are_unique(self):
        codes = [cls.code for cls in all_error_classes()]
        assert len(codes) == len(set(codes))

    def test_instances_carry_their_class_code(self):
        assert errors.AdmissionRejected("rate_limited").code == "serve.shed"
        assert errors.DeadlineExceeded("late").code == "serve.deadline"

    @pytest.mark.parametrize("cls,builtin", [
        (errors.ConfigurationError, ValueError),
        (errors.GenerationError, RuntimeError),
        (errors.ChannelError, ValueError),
        (errors.RegionUnmappedError, KeyError),
        (errors.RuleParseError, ValueError),
        (errors.UpdateError, IndexError),
        (errors.RebuildError, RuntimeError),
        (errors.SnapshotError, RuntimeError),
        (errors.DeadlineExceeded, TimeoutError),
    ])
    def test_builtin_compatibility(self, cls, builtin):
        assert issubclass(cls, builtin)


class TestServingErrorPayloads:
    def test_admission_rejected_carries_reason(self):
        err = errors.AdmissionRejected("queue_full")
        assert err.reason == "queue_full"
        assert "queue_full" in str(err)

    def test_service_stopped_is_a_shed(self):
        err = errors.ServiceStopped()
        assert isinstance(err, errors.AdmissionRejected)
        assert err.reason == "stopped"

    def test_deadline_exceeded_payload(self):
        err = errors.DeadlineExceeded("late", elapsed_s=2.0, budget_s=1.0)
        assert err.elapsed_s == 2.0 and err.budget_s == 1.0

    def test_retries_exhausted_payload(self):
        last = errors.TransientServiceError("boom")
        err = errors.RetriesExhausted("gone", attempts=3, last=last)
        assert err.attempts == 3 and err.last is last


class TestNoBareRaises:
    """The library must never raise an untyped Exception/RuntimeError —
    callers are promised that everything deliberate is a ReproError with
    a stable code (``GenerationError`` covers the old RuntimeErrors)."""

    PATTERN = re.compile(r"\braise\s+(Exception|RuntimeError)\b")

    def test_no_bare_exception_or_runtime_error_in_src(self):
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for line_no, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.split("#", 1)[0]
                if self.PATTERN.search(stripped):
                    offenders.append(f"{path.relative_to(SRC_ROOT)}:{line_no}")
        assert offenders == [], (
            "bare Exception/RuntimeError raised in library source "
            f"(use a typed ReproError subclass): {offenders}")
