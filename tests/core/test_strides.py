"""Stride-parameter coverage: the whole engine stack at every stride."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.engine import ExpCutsEngine
from repro.core.expcuts import ExpCutsConfig, build_expcuts
from repro.core.fields import cut_schedule
from repro.core.layout import pack_tree

from ..conftest import header_strategy, ruleset_strategy

STRIDES = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("stride", STRIDES)
class TestStride:
    def test_depth_bound(self, stride):
        expected = sum(
            -(-width // stride) for width in (32, 32, 16, 16, 8)
        )
        assert len(cut_schedule(stride)) == expected

    def test_lookup_correct(self, stride, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset, ExpCutsConfig(stride=stride))
        engine = ExpCutsEngine(pack_tree(tree))
        for header in (
            (0x0A000001, 0xC0A80105, 12345, 80, 6),
            (0x0B000001, 0x01020304, 2000, 53, 17),
            (0, 0, 0, 0, 0),
            (0xFFFFFFFF, 0xFFFFFFFF, 0xFFFF, 0xFFFF, 0xFF),
        ):
            assert engine.classify(header) == tiny_ruleset.first_match(header)

    def test_access_bound(self, stride, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset, ExpCutsConfig(stride=stride))
        engine = ExpCutsEngine(pack_tree(tree))
        trace = engine.access_trace((0x0A000001, 0xC0A80105, 12345, 80, 6))
        assert trace.total_accesses <= 2 * tree.depth_bound

    def test_batch_matches_scalar(self, stride, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset, ExpCutsConfig(stride=stride))
        engine = ExpCutsEngine(pack_tree(tree))
        rng = np.random.default_rng(stride)
        fields = [
            rng.integers(0, 1 << 32, size=32, dtype=np.uint32),
            rng.integers(0, 1 << 32, size=32, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=32, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=32, dtype=np.uint32),
            rng.integers(0, 1 << 8, size=32, dtype=np.uint32),
        ]
        batch = engine.classify_batch(fields)
        for idx in range(32):
            header = tuple(int(f[idx]) for f in fields)
            expected = engine.classify(header)
            assert batch[idx] == (-1 if expected is None else expected)


class TestStrideTradeoffs:
    def test_narrow_stride_smaller_nodes(self, small_fw_ruleset):
        wide = build_expcuts(small_fw_ruleset, ExpCutsConfig(stride=8))
        narrow = build_expcuts(small_fw_ruleset, ExpCutsConfig(stride=4))
        wide_bytes = pack_tree(wide).total_bytes
        narrow_bytes = pack_tree(narrow).total_bytes
        assert narrow_bytes < wide_bytes

    def test_narrow_stride_deeper(self, small_fw_ruleset):
        wide = build_expcuts(small_fw_ruleset, ExpCutsConfig(stride=8))
        narrow = build_expcuts(small_fw_ruleset, ExpCutsConfig(stride=4))
        assert narrow.depth_bound == 2 * wide.depth_bound


@given(ruleset_strategy(max_rules=5), header_strategy())
@settings(max_examples=20, deadline=None)
def test_all_strides_agree_property(ruleset, header):
    expected = ruleset.first_match(header)
    for stride in (2, 4, 16):
        tree = build_expcuts(ruleset, ExpCutsConfig(stride=stride))
        assert tree.classify(header) == expected, f"stride {stride}"
