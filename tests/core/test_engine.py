"""Lookup-engine tests: scalar, batch and trace paths must all agree."""

import numpy as np
from hypothesis import given, settings

from repro.core.engine import ExpCutsEngine
from repro.core.expcuts import ExpCutsConfig, build_expcuts
from repro.core.layout import pack_tree

from ..conftest import header_strategy, ruleset_strategy


def _engine(ruleset, **kwargs):
    tree = build_expcuts(ruleset, ExpCutsConfig(**{
        k: v for k, v in kwargs.items() if k in ("stride", "habs_bits_log2")
    }))
    image = pack_tree(tree, aggregated=kwargs.get("aggregated", True))
    return ExpCutsEngine(image, use_pop_count=kwargs.get("use_pop_count", True)), tree


class TestScalarLookup:
    def test_matches_tree_walk(self, tiny_ruleset):
        engine, tree = _engine(tiny_ruleset)
        headers = [
            (0x0A000001, 0xC0A80105, 12345, 80, 6),
            (0, 0, 0, 0, 0),
            (0xFFFFFFFF, 0xFFFFFFFF, 65535, 65535, 255),
        ]
        for header in headers:
            assert engine.classify(header) == tree.classify(header)

    def test_unaggregated_image(self, tiny_ruleset):
        engine, tree = _engine(tiny_ruleset, aggregated=False)
        header = (0x0A000001, 0xC0A80105, 12345, 80, 6)
        assert engine.classify(header) == tree.classify(header) == 0

    def test_risc_popcount_same_result(self, tiny_ruleset):
        fast, _ = _engine(tiny_ruleset, use_pop_count=True)
        slow, _ = _engine(tiny_ruleset, use_pop_count=False)
        header = (0x0A000001, 0xC0A80105, 12345, 80, 6)
        assert fast.classify(header) == slow.classify(header)


class TestTrace:
    def test_explicit_access_bound(self, tiny_ruleset):
        """The paper's headline: 2 single-word reads per level, max 13
        levels — an explicit worst case, unlike HiCuts."""
        engine, tree = _engine(tiny_ruleset)
        for header in ((0, 0, 0, 0, 0), (0x0A000001, 1, 2, 80, 6)):
            trace = engine.access_trace(header)
            assert trace.total_accesses <= 2 * tree.depth_bound
            assert all(read.nwords == 1 for read in trace.reads)
            assert trace.result == engine.classify(header)

    def test_trace_regions_are_levels(self, tiny_ruleset):
        engine, _ = _engine(tiny_ruleset)
        trace = engine.access_trace((0x0A000001, 1, 2, 80, 6))
        regions = [read.region for read in trace.reads]
        # header+pointer pairs per level, levels ascending
        assert regions == sorted(regions, key=lambda r: int(r.split(":")[1]))
        assert regions[0] == "level:0"

    def test_risc_trace_costs_more_compute(self, tiny_ruleset):
        fast, _ = _engine(tiny_ruleset, use_pop_count=True)
        slow, _ = _engine(tiny_ruleset, use_pop_count=False)
        header = (0x0A000001, 0xC0A80105, 12345, 80, 6)
        assert (
            slow.access_trace(header).total_compute
            > fast.access_trace(header).total_compute
        )


class TestBatch:
    def test_batch_matches_scalar(self, small_fw_ruleset):
        engine, _ = _engine(small_fw_ruleset)
        rng = np.random.default_rng(5)
        fields = [
            rng.integers(0, 1 << 32, size=256, dtype=np.uint32),
            rng.integers(0, 1 << 32, size=256, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=256, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=256, dtype=np.uint32),
            rng.integers(0, 1 << 8, size=256, dtype=np.uint32),
        ]
        batch = engine.classify_batch(fields)
        for idx in range(256):
            header = tuple(int(f[idx]) for f in fields)
            expected = engine.classify(header)
            assert batch[idx] == (-1 if expected is None else expected)

    def test_empty_batch(self, tiny_ruleset):
        engine, _ = _engine(tiny_ruleset)
        out = engine.classify_batch([np.array([], dtype=np.uint32)] * 5)
        assert out.shape == (0,)

    def test_batch_unaggregated(self, tiny_ruleset):
        engine, _ = _engine(tiny_ruleset, aggregated=False)
        fields = [np.array([0x0A000001], dtype=np.uint32),
                  np.array([0xC0A80105], dtype=np.uint32),
                  np.array([12345], dtype=np.uint32),
                  np.array([80], dtype=np.uint32),
                  np.array([6], dtype=np.uint32)]
        assert engine.classify_batch(fields).tolist() == [0]


@given(ruleset_strategy(max_rules=7), header_strategy())
@settings(max_examples=40, deadline=None)
def test_all_paths_agree_property(ruleset, header):
    """Scalar, batch, trace and tree walk: one answer."""
    tree = build_expcuts(ruleset)
    engine = ExpCutsEngine(pack_tree(tree))
    scalar = engine.classify(header)
    assert scalar == tree.classify(header)
    assert scalar == engine.access_trace(header).result
    batch = engine.classify_batch(
        [np.array([v], dtype=np.uint32) for v in header]
    )
    assert batch[0] == (-1 if scalar is None else scalar)
