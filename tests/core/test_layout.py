"""Word-image packing tests (Figure 4 encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.expcuts import build_expcuts, leaf_ref, REF_NO_MATCH
from repro.core.layout import (
    LEAF_FLAG,
    PTR_NO_MATCH,
    TreeImage,
    compression_summary,
    decode_leaf,
    encode_ref,
    pack_tree,
)

from ..conftest import ruleset_strategy


class TestPointerEncoding:
    def test_leaf_roundtrip(self):
        for rid in (0, 5, 1000):
            ptr = encode_ref(leaf_ref(rid), {})
            assert ptr & int(LEAF_FLAG)
            assert decode_leaf(ptr) == rid

    def test_no_match(self):
        ptr = encode_ref(REF_NO_MATCH, {})
        assert ptr == PTR_NO_MATCH
        assert decode_leaf(ptr) is None

    def test_internal_uses_offsets(self):
        assert encode_ref(7, {7: 42}) == 42

    def test_decode_internal_rejected(self):
        with pytest.raises(ValueError):
            decode_leaf(42)


class TestPackTree:
    def test_word_types(self, tiny_ruleset):
        image = pack_tree(build_expcuts(tiny_ruleset))
        for seg in image.levels:
            assert seg.dtype == np.uint32

    def test_level_count_matches_schedule(self, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset)
        image = pack_tree(tree)
        assert len(image.levels) == len(tree.schedule) == 13

    def test_header_word_fields(self, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset)
        image = pack_tree(tree)
        # Root node header must carry its level tag and v/u split.
        root = tree.nodes[tree.root_ref]
        hw = int(image.levels[root.level][image.root_ptr])
        assert (hw >> 24) & 0xFF == root.level
        assert (hw >> 16) & 0xF == root.children.v
        assert (hw >> 20) & 0xF == root.children.u
        assert hw & 0xFFFF == root.children.habs

    def test_aggregated_is_smaller(self, small_fw_ruleset):
        tree = build_expcuts(small_fw_ruleset)
        packed = pack_tree(tree, aggregated=True)
        full = pack_tree(tree, aggregated=False)
        assert packed.total_words < full.total_words
        assert packed.total_bytes == packed.total_words * 4

    def test_unaggregated_node_size_is_full_fanout(self, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset)
        full = pack_tree(tree, aggregated=False)
        expected = sum(
            1 + node.children.total_slots for node in tree.nodes
        )
        assert full.total_words == expected

    def test_level_words_sum(self, tiny_ruleset):
        image = pack_tree(build_expcuts(tiny_ruleset))
        assert sum(image.level_words()) == image.total_words
        assert image.level_bytes() == [w * 4 for w in image.level_words()]

    def test_compression_summary(self, small_fw_ruleset):
        tree = build_expcuts(small_fw_ruleset)
        summary = compression_summary(tree)
        assert 0 < summary["ratio"] < 1
        assert summary["nodes"] == tree.node_count()


@given(ruleset_strategy(max_rules=6))
@settings(max_examples=25, deadline=None)
def test_both_layouts_encode_identical_pointers(ruleset):
    """Decompressing the aggregated image must equal the full image,
    node by node, pointer by pointer (offsets differ; leaves must not)."""
    tree = build_expcuts(ruleset)
    packed = pack_tree(tree, aggregated=True)
    full = pack_tree(tree, aggregated=False)

    def walk(image: TreeImage, addr_ptr: int, level: int, key_path: tuple) -> object:
        """Resolve a key path through an image to its leaf payload."""
        ptr = addr_ptr
        for key in key_path:
            seg = image.levels[level]
            hw = int(seg[ptr])
            if image.aggregated:
                u = (hw >> 20) & 0xF
                habs = hw & 0xFFFF
                m = key >> u
                i = bin(habs & ((1 << (m + 1)) - 1)).count("1") - 1
                slot = (i << u) + (key & ((1 << u) - 1))
            else:
                slot = key
            ptr = int(seg[ptr + 1 + slot])
            level += 1
            if ptr & int(LEAF_FLAG):
                return decode_leaf(ptr)
        return decode_leaf(ptr) if ptr & int(LEAF_FLAG) else ("internal", ptr)

    if tree.root_ref < 0:
        assert packed.root_ptr == full.root_ptr
        return
    # Probe a deterministic set of key paths (all-zeros, all-max, stripes).
    for path_value in (0, (1 << tree.stride) - 1, 0x55 & ((1 << tree.stride) - 1)):
        path = tuple(path_value for _ in tree.schedule)
        a = walk(packed, packed.root_ptr, 0, path)
        b = walk(full, full.root_ptr, 0, path)
        # Both must resolve to the same leaf rule (internal markers carry
        # different offsets, so only compare when leaves were reached).
        if not isinstance(a, tuple) and not isinstance(b, tuple):
            assert a == b
