"""ExpCuts tree construction tests: invariants, leaves, sharing soundness."""

from hypothesis import given, settings

from repro.core.expcuts import (
    ExpCutsConfig,
    REF_NO_MATCH,
    build_expcuts,
    leaf_ref,
    ref_rule_id,
)
from repro.core.rule import Rule, RuleSet

from ..conftest import header_strategy, ruleset_strategy


class TestRefEncoding:
    def test_roundtrip(self):
        for rid in (0, 1, 7, 123456):
            assert ref_rule_id(leaf_ref(rid)) == rid

    def test_no_match(self):
        assert ref_rule_id(REF_NO_MATCH) is None

    def test_internal_refs_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ref_rule_id(0)


class TestTreeShape:
    def test_empty_ruleset(self):
        tree = build_expcuts(RuleSet([]))
        assert tree.root_ref == REF_NO_MATCH
        assert tree.node_count() == 0
        assert tree.classify((0, 0, 0, 0, 0)) is None

    def test_single_wildcard_rule_is_root_leaf(self):
        tree = build_expcuts(RuleSet([Rule.any()]))
        assert tree.node_count() == 0
        assert tree.classify((1, 2, 3, 4, 5)) == 0

    def test_depth_bound_is_explicit(self, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset)
        assert tree.depth_bound == 13  # ceil(104 / 8)
        assert tree.max_depth() <= tree.depth_bound

    def test_stride_4_depth(self, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset, ExpCutsConfig(stride=4))
        assert tree.depth_bound == 26
        assert tree.max_depth() <= 26

    def test_levels_monotone_links(self, small_fw_ruleset):
        """Every internal child reference points one level deeper."""
        tree = build_expcuts(small_fw_ruleset)
        for node in tree.nodes:
            for ref in node.children.cpa:
                if ref >= 0:
                    assert tree.nodes[ref].level == node.level + 1

    def test_shadowed_rules_never_win(self):
        rules = RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8"),
            Rule.from_prefixes(sip="10.1.0.0/16"),  # shadowed by rule 0
        ])
        tree = build_expcuts(rules)
        assert tree.classify((0x0A010001, 0, 0, 0, 0)) == 0

    def test_memo_sharing_happens(self, small_cr_ruleset):
        tree = build_expcuts(small_cr_ruleset)
        # Hash-consing must fire on realistic sets (wildcard-heavy
        # dimensions give many identical children).
        assert tree.build_stats["memo_hits"] > 0

    def test_max_nodes_guard(self, small_cr_ruleset):
        import pytest

        with pytest.raises(MemoryError):
            build_expcuts(small_cr_ruleset, ExpCutsConfig(max_nodes=3))


class TestSharingSoundness:
    def test_partial_range_not_shared_with_full_cover(self):
        """The counterexample to rule-id-set node sharing.

        One rule, sport in [0, 0xC800].  Sub-spaces 0x00xx and 0xC8xx of
        the top sport byte both intersect {rule 0}, but the first is fully
        covered while the second is only partly covered — a classifier
        sharing them by id-set would misclassify (0xC8FF).  Projection-
        keyed sharing must keep them distinct.
        """
        rule = Rule.from_ranges(sport=(0, 0xC800))
        tree = build_expcuts(RuleSet([rule]))
        assert tree.classify((0, 0, 0x00FF, 0, 0)) == 0
        assert tree.classify((0, 0, 0xC800, 0, 0)) == 0
        assert tree.classify((0, 0, 0xC8FF, 0, 0)) is None
        assert tree.classify((0, 0, 0xC801, 0, 0)) is None


class TestOracleEquivalence:
    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_linear_scan(self, ruleset, header):
        tree = build_expcuts(ruleset)
        assert tree.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=6, prefix_ips=False), header_strategy())
    @settings(max_examples=40, deadline=None)
    def test_matches_linear_scan_arbitrary_ranges(self, ruleset, header):
        """IP fields as arbitrary ranges (harder than real rule sets)."""
        tree = build_expcuts(ruleset)
        assert tree.classify(header) == ruleset.first_match(header)

    @given(st_data=header_strategy())
    @settings(max_examples=30, deadline=None)
    def test_boundary_headers_small_stride(self, st_data):
        rules = RuleSet([
            Rule.from_ranges(sport=(100, 1000), proto=6),
            Rule.from_ranges(dport=(53, 53)),
            Rule.from_prefixes(sip="10.0.0.0/8", dip="10.0.0.0/8"),
        ])
        tree = build_expcuts(rules, ExpCutsConfig(stride=4))
        assert tree.classify(st_data) == rules.first_match(st_data)


@given(ruleset_strategy(max_rules=6), header_strategy())
@settings(max_examples=30, deadline=None)
def test_boundary_probe_equivalence(ruleset, header):
    """Boundary-biased headers agree with the oracle too."""
    tree = build_expcuts(ruleset)
    # Derive probes from the rules' own corners.
    for rule in list(ruleset)[:3]:
        corners = tuple(iv.lo for iv in rule.intervals)
        assert tree.classify(corners) == ruleset.first_match(corners)
        corners_hi = tuple(iv.hi for iv in rule.intervals)
        assert tree.classify(corners_hi) == ruleset.first_match(corners_hi)
    assert tree.classify(header) == ruleset.first_match(header)
