"""Tests for the 5-tuple layout and the cutting schedule."""

import pytest
from hypothesis import given

from repro.core.fields import (
    FIELD_BIT_OFFSETS,
    FIELD_WIDTHS,
    Field,
    Header,
    TOTAL_HEADER_BITS,
    cut_schedule,
    header_key,
    pack_header,
    unpack_header,
)

from ..conftest import header_strategy


class TestLayoutConstants:
    def test_total_bits(self):
        assert TOTAL_HEADER_BITS == 104  # the paper's W

    def test_offsets(self):
        assert FIELD_BIT_OFFSETS == (0, 32, 64, 80, 96)

    def test_field_order(self):
        assert [f.name for f in Field] == ["SIP", "DIP", "SPORT", "DPORT", "PROTO"]


class TestCutSchedule:
    def test_depth_for_stride8(self):
        # The paper: 104 / 8 = 13 levels.
        schedule = cut_schedule(8)
        assert len(schedule) == 13

    def test_depth_for_stride4(self):
        assert len(cut_schedule(4)) == 26

    def test_fields_cut_in_order(self):
        schedule = cut_schedule(8)
        fields = [step.field for step in schedule]
        assert fields == sorted(fields)
        assert fields.count(Field.SIP) == 4
        assert fields.count(Field.PROTO) == 1

    def test_shifts_descend_within_field(self):
        schedule = cut_schedule(8)
        sip_shifts = [s.shift for s in schedule if s.field == Field.SIP]
        assert sip_shifts == [24, 16, 8, 0]

    def test_narrow_final_step(self):
        # stride 16 over the 8-bit proto field narrows to 8.
        schedule = cut_schedule(16)
        proto_steps = [s for s in schedule if s.field == Field.PROTO]
        assert len(proto_steps) == 1 and proto_steps[0].width == 8

    @pytest.mark.parametrize("stride", [1, 2, 4, 8, 16])
    def test_schedule_consumes_every_bit(self, stride):
        schedule = cut_schedule(stride)
        consumed = {f: 0 for f in Field}
        for step in schedule:
            consumed[step.field] += step.width
        assert all(consumed[f] == FIELD_WIDTHS[f] for f in Field)

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            cut_schedule(0)
        with pytest.raises(ValueError):
            cut_schedule(17)

    @given(header_strategy())
    def test_keys_reconstruct_header(self, header):
        """The concatenation of all level keys is the whole header."""
        schedule = cut_schedule(8)
        values = {f: 0 for f in Field}
        for step in schedule:
            values[step.field] = (values[step.field] << step.width) | header_key(
                header, step
            )
        assert tuple(values[f] for f in Field) == tuple(header)


class TestHeaderPacking:
    def test_roundtrip_simple(self):
        header = Header(0x0A000001, 0xC0A80101, 1234, 80, 6)
        assert unpack_header(pack_header(header)) == header

    @given(header_strategy())
    def test_roundtrip(self, header):
        assert tuple(unpack_header(pack_header(header))) == tuple(header)

    def test_validate(self):
        Header(0, 0, 0, 0, 0).validate()
        with pytest.raises(ValueError):
            Header(1 << 32, 0, 0, 0, 0).validate()
        with pytest.raises(ValueError):
            Header(0, 0, 0, 0, 256).validate()
