"""Tests for the elementary-region verification machinery — and its use
to *prove* classifier equivalence on small rule sets."""

import pytest

from repro.classifiers import ALGORITHMS
from repro.core.rule import Rule, RuleSet
from repro.core.validate import (
    field_segment_points,
    region_count,
    representative_headers,
    verify_all,
    verify_equivalence,
)


class TestSegmentPoints:
    def test_includes_both_borders(self):
        rs = RuleSet([Rule.from_ranges(sport=(100, 200))])
        points = field_segment_points(rs, 2)
        # segments: [0,99], [100,200], [201,65535]
        assert {0, 99, 100, 200, 201, 65535} <= set(points)

    def test_wildcard_field_two_points(self):
        rs = RuleSet([Rule.any()])
        points = field_segment_points(rs, 0)
        assert points == [0, 0xFFFFFFFF]

    def test_region_count(self):
        rs = RuleSet([Rule.from_ranges(sport=(100, 200))])
        # sport has 3 segments; other fields 1 each.
        assert region_count(rs) == 3


class TestRepresentativeHeaders:
    def test_exhaustive_when_small(self, tiny_ruleset):
        headers = list(representative_headers(tiny_ruleset, cap=10_000_000))
        # Product of per-field point counts.
        sizes = [len(field_segment_points(tiny_ruleset, f)) for f in range(5)]
        expected = 1
        for size in sizes:
            expected *= size
        assert len(headers) == expected
        assert len(set(headers)) == expected

    def test_capped_when_large(self, small_cr_ruleset):
        headers = list(representative_headers(small_cr_ruleset, cap=500))
        assert len(headers) == 500

    def test_capped_touches_every_point(self):
        rs = RuleSet([Rule.from_ranges(sport=(10, 20)),
                      Rule.from_ranges(sport=(15, 400)),
                      Rule.from_ranges(dport=(5, 5))])
        points = set(field_segment_points(rs, 2))
        cap = 64
        seen = {h[2] for h in representative_headers(rs, cap=cap)}
        assert points <= seen or cap >= len(points)


class TestExhaustiveEquivalence:
    """The strongest correctness statement in the suite: for these rule
    sets, every algorithm is verified on EVERY elementary region."""

    @pytest.fixture(scope="class")
    def overlap_ruleset(self):
        return RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8", dport=(0, 1023), proto=6),
            Rule.from_ranges(sport=(100, 60000), dport=(80, 80)),
            Rule.from_prefixes(dip="10.1.0.0/16", proto=17),
            Rule.from_ranges(dip=(0x0A010000, 0x0A01FFFF + 5)),  # unaligned
            Rule.any("deny"),
        ])

    @pytest.mark.parametrize("algo", sorted(set(ALGORITHMS) - {"linear"}))
    def test_proven_equivalent(self, algo, overlap_ruleset):
        clf = ALGORITHMS[algo].build(overlap_ruleset)
        checked = verify_equivalence(clf, overlap_ruleset, cap=2_000_000)
        # Two border points per segment: at least one header per region.
        assert checked >= region_count(overlap_ruleset)

    def test_verify_all(self, tiny_ruleset):
        classifiers = [ALGORITHMS[a].build(tiny_ruleset)
                       for a in ("expcuts", "hicuts")]
        results = verify_all(classifiers, tiny_ruleset, cap=1_000_000)
        assert set(results) == {"expcuts", "hicuts"}
        assert all(count > 0 for count in results.values())

    def test_detects_divergence(self, tiny_ruleset):
        class Broken:
            name = "broken"

            def classify(self, header):
                return 0

        with pytest.raises(AssertionError, match="disagrees"):
            verify_equivalence(Broken(), tiny_ruleset, cap=10_000)
