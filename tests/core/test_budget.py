"""BuildBudget / BudgetMeter unit tests (limits, deadline, repr)."""

import pytest

from repro.core.budget import (
    PAPER_IMAGE_BYTES,
    SRAM_TOTAL_BYTES,
    WORD_BYTES,
    BudgetMeter,
    BuildBudget,
    meter_for,
)
from repro.core.errors import BuildBudgetExceeded, ReproError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBuildBudget:
    def test_unlimited_by_default(self):
        meter = BuildBudget().meter("x")
        for _ in range(1000):
            meter.add_node(50)
        meter.checkpoint()  # nothing raises

    def test_node_limit(self):
        meter = BuildBudget(max_nodes=3).meter("hicuts")
        meter.add_node()
        meter.add_node()
        meter.add_node()
        with pytest.raises(BuildBudgetExceeded) as info:
            meter.add_node()
        assert info.value.limit == "nodes"
        assert info.value.observed == 4
        assert info.value.bound == 3
        assert info.value.algorithm == "hicuts"

    def test_layout_limit_in_bytes(self):
        meter = BuildBudget(max_layout_bytes=100 * WORD_BYTES).meter("x")
        meter.add_words(100)
        with pytest.raises(BuildBudgetExceeded) as info:
            meter.add_words(1)
        assert info.value.limit == "layout_bytes"
        assert meter.layout_bytes == 101 * WORD_BYTES

    def test_deadline_polled_every_interval(self):
        clock = FakeClock()
        meter = BuildBudget(wall_seconds=5.0, clock=clock).meter("x")
        clock.now = 10.0  # already past the deadline...
        for _ in range(BudgetMeter.POLL_INTERVAL - 1):
            meter.add_node()  # ...but not yet polled
        with pytest.raises(BuildBudgetExceeded) as info:
            meter.add_node()  # POLL_INTERVAL-th charge polls the clock
        assert info.value.limit == "wall_seconds"

    def test_checkpoint_polls_immediately(self):
        clock = FakeClock()
        meter = BuildBudget(wall_seconds=1.0, clock=clock).meter("x")
        meter.checkpoint()  # within budget
        clock.now = 2.0
        with pytest.raises(BuildBudgetExceeded):
            meter.checkpoint()

    def test_paper_sram_wall(self):
        budget = BuildBudget.paper_sram()
        assert budget.max_layout_bytes == SRAM_TOTAL_BYTES
        # The paper's measured image fits comfortably under the wall.
        assert PAPER_IMAGE_BYTES < SRAM_TOTAL_BYTES
        meter = budget.meter("expcuts")
        meter.add_words(PAPER_IMAGE_BYTES // WORD_BYTES)
        with pytest.raises(BuildBudgetExceeded):
            meter.add_words(SRAM_TOTAL_BYTES // WORD_BYTES)

    def test_meter_for_none(self):
        assert meter_for(None, "x") is None
        assert meter_for(BuildBudget(), "x") is not None

    def test_repr_stable_under_clock(self):
        # Budgets key build caches by repr: the injected clock must not
        # leak into it (lambdas repr their memory address).
        a = BuildBudget(max_nodes=5)
        b = BuildBudget(max_nodes=5, clock=FakeClock())
        assert repr(a) == repr(b)
        assert a == b

    def test_typed_error(self):
        assert issubclass(BuildBudgetExceeded, ReproError)
        assert issubclass(BuildBudgetExceeded, RuntimeError)


class TestBudgetedBuilds:
    """Every algorithm's build respects the budget parameter."""

    @pytest.fixture(scope="class")
    def ruleset(self):
        from repro.rulesets import generate

        return generate("FW01", seed=11)

    @pytest.mark.parametrize("algorithm", [
        "linear", "expcuts", "hicuts", "hypercuts", "hsm", "rfc",
        "bitvector", "abv", "tuplespace",
    ])
    def test_generous_budget_accepts(self, ruleset, algorithm):
        from repro.classifiers import ALGORITHMS

        clf = ALGORITHMS[algorithm].build(
            ruleset, budget=BuildBudget.paper_sram())
        header = tuple(iv.lo for iv in ruleset.rules[0].intervals)
        assert clf.classify(header) == ruleset.first_match(header)

    @pytest.mark.parametrize("algorithm", [
        "expcuts", "hicuts", "hypercuts", "hsm", "rfc",
    ])
    def test_tiny_budget_raises(self, ruleset, algorithm):
        from repro.classifiers import ALGORITHMS

        with pytest.raises(BuildBudgetExceeded) as info:
            ALGORITHMS[algorithm].build(
                ruleset, budget=BuildBudget(max_layout_bytes=8))
        assert info.value.algorithm == algorithm

    def test_deadline_aborts_build(self, ruleset):
        from repro.classifiers import ALGORITHMS

        clock = FakeClock()
        ticking = BuildBudget(wall_seconds=0.5, clock=clock)

        # Make the clock jump past the deadline after a few reads, as a
        # wedged build would see.
        class Jumpy:
            reads = 0

            def __call__(self):
                Jumpy.reads += 1
                return 10.0 if Jumpy.reads > 2 else 0.0

        ticking = BuildBudget(wall_seconds=0.5, clock=Jumpy())
        with pytest.raises(BuildBudgetExceeded) as info:
            ALGORITHMS["expcuts"].build(ruleset, budget=ticking)
        assert info.value.limit == "wall_seconds"

    def test_budget_none_is_default_path(self, ruleset):
        from repro.classifiers import ALGORITHMS

        a = ALGORITHMS["hicuts"].build(ruleset)
        b = ALGORITHMS["hicuts"].build(ruleset, budget=None)
        header = tuple(iv.lo for iv in ruleset.rules[0].intervals)
        assert a.classify(header) == b.classify(header)
