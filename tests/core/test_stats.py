"""Tree-statistics tests (the §4.2.2 empirical observations)."""

from repro.core.expcuts import build_expcuts
from repro.core.stats import collect_stats, distinct_children


class TestCollectStats:
    def test_basic_invariants(self, small_fw_ruleset):
        tree = build_expcuts(small_fw_ruleset)
        stats = collect_stats(tree)
        assert stats.num_rules == len(small_fw_ruleset)
        assert stats.num_nodes == tree.node_count()
        assert stats.max_depth <= stats.depth_bound == 13
        assert sum(stats.nodes_per_level.values()) == stats.num_nodes
        assert 0 < stats.aggregation_ratio < 1

    def test_paper_observation_few_distinct_children(self, small_cr_ruleset):
        """§4.2.2: with 256 cuttings the average number of distinct
        children is small (the paper reports < 10 on real-life sets)."""
        tree = build_expcuts(small_cr_ruleset)
        stats = collect_stats(tree)
        assert stats.mean_distinct_children < 10

    def test_distinct_children_bounds(self, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset)
        counts = distinct_children(tree)
        assert len(counts) == tree.node_count()
        for count, node in zip(counts, tree.nodes):
            assert 1 <= count <= node.children.total_slots

    def test_habs_density_matches_children(self, tiny_ruleset):
        tree = build_expcuts(tiny_ruleset)
        stats = collect_stats(tree)
        # At least one HABS bit per node (bit 0 always set), and no more
        # than the HABS width.
        assert 1 <= stats.mean_habs_bits_set <= 16

    def test_empty_tree(self):
        from repro.core.rule import RuleSet

        stats = collect_stats(build_expcuts(RuleSet([])))
        assert stats.num_nodes == 0
        assert stats.mean_distinct_children == 0.0
