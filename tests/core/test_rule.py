"""Tests for rules and rule sets."""

import pytest
from hypothesis import given

from repro.core.fields import Field
from repro.core.interval import Interval, full_interval
from repro.core.rule import ACTION_DENY, Rule, RuleSet

from ..conftest import header_strategy, rule_strategy


class TestRuleConstruction:
    def test_any_matches_everything(self):
        rule = Rule.any()
        assert rule.matches((0, 0, 0, 0, 0))
        assert rule.matches((0xFFFFFFFF, 0xFFFFFFFF, 65535, 65535, 255))

    def test_from_prefixes(self):
        rule = Rule.from_prefixes(sip="10.0.0.0/8", dport=(0, 1023), proto=6)
        assert rule.intervals[Field.SIP] == Interval(0x0A000000, 0x0AFFFFFF)
        assert rule.intervals[Field.DPORT] == Interval(0, 1023)
        assert rule.intervals[Field.PROTO] == Interval(6, 6)
        assert rule.is_wildcard(Field.DIP)
        assert rule.is_wildcard(Field.SPORT)

    def test_from_prefixes_host(self):
        rule = Rule.from_prefixes(dip="192.168.1.5")
        assert rule.intervals[Field.DIP] == Interval(0xC0A80105, 0xC0A80105)

    def test_from_ranges_exact_port(self):
        rule = Rule.from_ranges(sport=80)
        assert rule.intervals[Field.SPORT] == Interval(80, 80)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Rule((Interval(0, 1 << 32), full_interval(32), full_interval(16),
                  full_interval(16), full_interval(8)))

    def test_bad_ip_string(self):
        with pytest.raises(ValueError):
            Rule.from_prefixes(sip="10.0.0/8")
        with pytest.raises(ValueError):
            Rule.from_prefixes(sip="10.0.0.300/8")

    def test_str_is_readable(self):
        text = str(Rule.from_prefixes(sip="10.0.0.0/8", action="deny"))
        assert "10.0.0.0" in text and "deny" in text


class TestRuleMatching:
    def test_boundaries(self):
        rule = Rule.from_ranges(sport=(100, 200))
        base = (0, 0, 0, 0, 0)
        assert rule.matches((0, 0, 100, 0, 0))
        assert rule.matches((0, 0, 200, 0, 0))
        assert not rule.matches((0, 0, 99, 0, 0))
        assert not rule.matches((0, 0, 201, 0, 0))
        del base

    @given(rule_strategy())
    def test_sample_header_matches(self, rule):
        import numpy as np

        rng = np.random.default_rng(1)
        header = rule.sample_header(rng)
        assert rule.matches(header)


class TestRuleSet:
    def test_first_match_priority(self, tiny_ruleset):
        # Header matching both rule 0 and rule 3 must return 0.
        header = (0x0A000001, 0, 0, 80, 6)
        assert tiny_ruleset.first_match(header) == 0

    def test_first_match_none(self):
        rs = RuleSet([Rule.from_prefixes(sip="10.0.0.0/8")])
        assert rs.first_match((0x0B000000, 0, 0, 0, 0)) is None

    def test_with_default(self):
        rs = RuleSet([Rule.from_prefixes(sip="10.0.0.0/8")])
        rs2 = rs.with_default(ACTION_DENY)
        assert len(rs2) == len(rs) + 1
        assert rs2.first_match((0x0B000000, 0, 0, 0, 0)) == 1
        assert rs2[1].action == ACTION_DENY
        # original unchanged
        assert len(rs) == 1

    def test_iteration_and_indexing(self, tiny_ruleset):
        assert len(list(tiny_ruleset)) == len(tiny_ruleset) == 4
        assert tiny_ruleset[0].intervals[Field.PROTO] == Interval(6, 6)

    @given(header_strategy())
    def test_first_match_agrees_with_scan(self, header):
        rules = RuleSet([
            Rule.from_prefixes(sip="128.0.0.0/1"),
            Rule.from_ranges(dport=(0, 32767)),
            Rule.any(),
        ])
        expected = next(
            (i for i, r in enumerate(rules) if r.matches(header)), None
        )
        assert rules.first_match(header) == expected
