"""Box geometry and projection tests."""

from repro.core.fields import Field
from repro.core.interval import Interval
from repro.core.rule import Rule
from repro.core.space import (
    Box,
    ProjectedRule,
    covers_box_widths,
    initial_projection,
)


class TestBox:
    def test_full_box_contains_everything(self):
        box = Box.full()
        assert box.contains_header((0, 0, 0, 0, 0))
        assert box.contains_header((0xFFFFFFFF, 0xFFFFFFFF, 65535, 65535, 255))
        assert box.point_count() == 1 << 104

    def test_cut(self):
        box = Box.full()
        children = box.cut(Field.PROTO, 4)
        assert len(children) == 4
        assert children[0].intervals[Field.PROTO] == Interval(0, 63)
        assert children[3].intervals[Field.PROTO] == Interval(192, 255)
        # Other dimensions untouched.
        assert children[1].intervals[Field.SIP] == Interval(0, 0xFFFFFFFF)

    def test_intersects_and_covers(self):
        box = Box.full().cut(Field.SIP, 2)[0]  # SIP in [0, 2^31-1]
        rule_inside = Rule.from_prefixes(sip="10.0.0.0/8")
        rule_outside = Rule.from_prefixes(sip="192.168.0.0/16")
        rule_covering = Rule.any()
        assert box.intersects_rule(rule_inside)
        assert not box.intersects_rule(rule_outside)
        assert box.rule_covers(rule_covering)
        assert not box.rule_covers(rule_inside)

    def test_is_point(self):
        point = Box(tuple(Interval(3, 3) for _ in range(5)))
        assert point.is_point()
        assert point.point_count() == 1
        assert not Box.full().is_point()


class TestProjection:
    def test_initial_projection_preserves_order(self, tiny_ruleset):
        projected = initial_projection(tiny_ruleset.rules)
        assert [p.rule_id for p in projected] == [0, 1, 2, 3]
        assert projected[0].intervals == tuple(tiny_ruleset[0].intervals)

    def test_covers_box_widths(self):
        full = ProjectedRule(0, (
            Interval(0, 0xFFFFFFFF), Interval(0, 0xFFFFFFFF),
            Interval(0, 0xFFFF), Interval(0, 0xFFFF), Interval(0, 0xFF),
        ))
        assert covers_box_widths(full, (32, 32, 16, 16, 8))
        partial = ProjectedRule(0, (
            Interval(0, 0x7FFFFFFF), Interval(0, 0xFFFFFFFF),
            Interval(0, 0xFFFF), Interval(0, 0xFFFF), Interval(0, 0xFF),
        ))
        assert not covers_box_widths(partial, (32, 32, 16, 16, 8))
        # Same intervals against a *smaller* box.
        assert covers_box_widths(partial, (31, 32, 16, 16, 8))
