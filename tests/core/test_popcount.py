"""POP_COUNT model tests: function identical under both cost models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.popcount import (
    POP_COUNT_CYCLES,
    RISC_LOOP_CYCLES,
    popcount,
    popcount_risc_model,
    popcount_u16,
    popcount_u32,
)


class TestScalar:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (1, 1), (0xFFFF, 16), (0x8000, 1), (0b1011, 3),
        (0xFFFFFFFF, 32),
    ])
    def test_known_values(self, value, expected):
        assert popcount(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(0, 0xFFFF))
    def test_risc_model_same_count(self, value):
        count, cycles = popcount_risc_model(value)
        assert count == popcount(value)
        assert cycles >= 4

    def test_hardware_instruction_much_cheaper(self):
        """The §5.4 claim: >90 % cycle reduction vs the RISC loop."""
        _, risc = popcount_risc_model(0xFFFF)
        assert POP_COUNT_CYCLES / risc < 0.10
        assert POP_COUNT_CYCLES == 3
        assert RISC_LOOP_CYCLES >= 100 * 0.9


class TestVectorized:
    @given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=64))
    def test_u32_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint32)
        assert popcount_u32(arr).tolist() == [popcount(v) for v in values]

    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=64))
    def test_u16_matches_scalar(self, values):
        arr = np.array(values, dtype=np.int64)
        assert popcount_u16(arr).tolist() == [popcount(v) for v in values]

    def test_empty(self):
        assert popcount_u32(np.array([], dtype=np.uint32)).shape == (0,)
