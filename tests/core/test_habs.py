"""HABS + CPA compression tests, including the paper's worked example."""

import pytest
from hypothesis import given, strategies as st

from repro.core.habs import compress, compression_ratio


class TestPaperExample:
    """Figure 3: 16 pointers, 4-bit HABS, sub-space 9 resolves to P5."""

    def setup_method(self):
        # Sub-array 0 = pointers P0..P3 (unique); sub-arrays 1..3 all equal
        # the second distinct sub-array P4..P7.
        self.pointers = [0, 1, 2, 3, 4, 5, 6, 7, 4, 5, 6, 7, 4, 5, 6, 7]
        self.arr = compress(self.pointers, v=2)

    def test_habs_bits(self):
        # Bits (LSB first) 1,1,0,0 — the paper writes it "1100" MSB-first.
        assert self.arr.habs == 0b0011

    def test_cpa_contents(self):
        assert self.arr.cpa == (0, 1, 2, 3, 4, 5, 6, 7)

    def test_lookup_subspace_9_is_p5(self):
        # The paper's arithmetic: packet in sub-space 9 -> CPA entry 5.
        assert self.arr.lookup(9) == self.pointers[9] == 5
        m = 9 >> self.arr.u
        i = bin(self.arr.habs & ((1 << (m + 1)) - 1)).count("1") - 1
        j = 9 & ((1 << self.arr.u) - 1)
        assert (i << self.arr.u) + j == 5

    def test_full_decompress(self):
        assert self.arr.decompress() == self.pointers


class TestCompress:
    def test_bit0_always_set(self):
        arr = compress([7] * 16, v=4)
        assert arr.habs & 1
        assert arr.cpa == (7,)

    def test_all_distinct(self):
        pointers = list(range(16))
        arr = compress(pointers, v=4)
        assert arr.habs == 0xFFFF
        assert arr.cpa == tuple(pointers)
        assert compression_ratio(arr) == 1.0

    def test_constant_array_max_compression(self):
        arr = compress([3] * 256, v=4)
        assert arr.compressed_slots == 16  # one sub-array of 16
        assert compression_ratio(arr) == 16 / 256

    def test_v_zero(self):
        arr = compress([1, 2, 3, 4], v=0)
        assert arr.habs == 1
        assert arr.decompress() == [1, 2, 3, 4]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            compress([1, 2, 3], v=1)

    def test_rejects_bad_v(self):
        with pytest.raises(ValueError):
            compress([1, 2], v=2)

    def test_lookup_out_of_range(self):
        arr = compress([1, 2], v=1)
        with pytest.raises(IndexError):
            arr.lookup(2)


@given(
    st.integers(0, 4),
    st.integers(0, 4),
    st.data(),
)
def test_roundtrip_property(log_len_extra, v, data):
    """compress then decompress is the identity for any pointer array."""
    total_log = v + log_len_extra
    if total_log > 8:
        total_log = 8
        v = min(v, total_log)
    size = 1 << total_log
    pointers = data.draw(
        st.lists(st.integers(0, 7), min_size=size, max_size=size)
    )
    arr = compress(pointers, v=v)
    assert arr.decompress() == pointers


@given(st.data())
def test_repetitive_arrays_compress(data):
    """Arrays made of few distinct aligned sub-arrays shrink accordingly."""
    v, u = 4, 4
    sub_arrays = data.draw(
        st.lists(
            st.lists(st.integers(0, 3), min_size=1 << u, max_size=1 << u),
            min_size=1, max_size=3,
        )
    )
    choices = data.draw(
        st.lists(st.integers(0, len(sub_arrays) - 1), min_size=1 << v,
                 max_size=1 << v)
    )
    pointers = [p for c in choices for p in sub_arrays[c]]
    arr = compress(pointers, v=v)
    # CPA holds at most one copy per *run* of distinct consecutive
    # sub-arrays; never more than the number of transitions + 1.
    transitions = 1 + sum(
        1 for a, b in zip(choices, choices[1:])
        if sub_arrays[a] != sub_arrays[b]
    )
    assert arr.compressed_slots <= transitions * (1 << u)
    assert arr.decompress() == pointers
