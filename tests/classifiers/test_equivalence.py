"""The library's central property: every classifier equals linear search.

Cross-checks all six algorithms against the priority-scan oracle on
hypothesis-generated rule sets and on the deterministic corner-case
traces (rule boundaries ±1).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.classifiers import (
    ABVClassifier,
    ALGORITHMS,
    BitVectorClassifier,
    ExpCutsClassifier,
    HSMClassifier,
    HiCutsClassifier,
    HyperCutsClassifier,
    LinearSearchClassifier,
    RFCClassifier,
    TupleSpaceClassifier,
)
from repro.traffic import corner_case_trace, matched_trace

from ..conftest import header_strategy, ruleset_strategy

ALL_CLASSES = [
    ExpCutsClassifier,
    HiCutsClassifier,
    HyperCutsClassifier,
    HSMClassifier,
    RFCClassifier,
    BitVectorClassifier,
    ABVClassifier,
    TupleSpaceClassifier,
]


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.name)
class TestAgainstOracleDeterministic:
    def test_matched_traffic(self, cls, small_fw_ruleset):
        clf = cls.build(small_fw_ruleset)
        oracle = LinearSearchClassifier.build(small_fw_ruleset)
        trace = matched_trace(small_fw_ruleset, 400, seed=21)
        got = clf.classify_batch(trace.field_arrays())
        want = oracle.classify_batch(trace.field_arrays())
        np.testing.assert_array_equal(got, want)

    def test_corner_cases(self, cls, small_cr_ruleset):
        clf = cls.build(small_cr_ruleset)
        oracle = LinearSearchClassifier.build(small_cr_ruleset)
        trace = corner_case_trace(small_cr_ruleset)
        got = clf.classify_batch(trace.field_arrays())
        want = oracle.classify_batch(trace.field_arrays())
        np.testing.assert_array_equal(got, want)

    def test_trace_result_equals_classify(self, cls, small_fw_ruleset):
        clf = cls.build(small_fw_ruleset)
        trace = matched_trace(small_fw_ruleset, 50, seed=3)
        for idx in range(len(trace)):
            header = trace.header(idx)
            assert clf.access_trace(header).result == clf.classify(header)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
def test_registry_builds_and_agrees(algo, tiny_ruleset):
    clf = ALGORITHMS[algo].build(tiny_ruleset)
    for header in ((0x0A000001, 0xC0A80105, 12345, 80, 6),
                   (0, 0, 0, 0, 0),
                   (0xDEADBEEF, 0xC0A80142, 4242, 4242, 17)):
        assert clf.classify(header) == tiny_ruleset.first_match(header)


class TestHypothesisEquivalence:
    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=40, deadline=None)
    def test_expcuts(self, ruleset, header):
        clf = ExpCutsClassifier.build(ruleset)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=40, deadline=None)
    def test_hicuts(self, ruleset, header):
        clf = HiCutsClassifier.build(ruleset, binth=2)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=30, deadline=None)
    def test_hsm(self, ruleset, header):
        clf = HSMClassifier.build(ruleset)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=15, deadline=None)
    def test_rfc(self, ruleset, header):
        clf = RFCClassifier.build(ruleset)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=30, deadline=None)
    def test_bitvector(self, ruleset, header):
        clf = BitVectorClassifier.build(ruleset)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=30, deadline=None)
    def test_hypercuts(self, ruleset, header):
        clf = HyperCutsClassifier.build(ruleset, binth=2)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=25, deadline=None)
    def test_tuplespace(self, ruleset, header):
        clf = TupleSpaceClassifier.build(ruleset)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=25, deadline=None)
    def test_abv(self, ruleset, header):
        clf = ABVClassifier.build(ruleset)
        assert clf.classify(header) == ruleset.first_match(header)

    @given(ruleset_strategy(max_rules=5, prefix_ips=False), header_strategy())
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_ip_ranges(self, ruleset, header):
        """Non-prefix IP ranges: decomposition algorithms must stay exact
        (RFC does so via its prefix-cover expansion)."""
        expected = ruleset.first_match(header)
        for cls in (ExpCutsClassifier, HiCutsClassifier, HSMClassifier,
                    RFCClassifier, BitVectorClassifier):
            assert cls.build(ruleset).classify(header) == expected
