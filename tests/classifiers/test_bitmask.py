"""Tests for packed masks, segment builders and cross-producting."""

import numpy as np
from hypothesis import given, strategies as st

from repro.classifiers._bitmask import (
    cross_product,
    dedupe_masks,
    first_set_bit,
    masks_to_rule_ids,
    segment_masks,
    words_for,
)
from repro.core.interval import Interval


class TestWordsFor:
    def test_sizes(self):
        assert words_for(0) == 1
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        assert words_for(1945) == 31


class TestSegmentMasks:
    def test_simple(self):
        intervals = [Interval(0, 99), Interval(50, 255)]
        edges, masks = segment_masks(intervals, 8, 2)
        assert edges.tolist() == [0, 50, 100]
        assert masks[0].tolist() == [0b01]
        assert masks[1].tolist() == [0b11]
        assert masks[2].tolist() == [0b10]

    def test_point_interval(self):
        edges, masks = segment_masks([Interval(7, 7)], 8, 1)
        assert edges.tolist() == [0, 7, 8]
        assert [int(m[0]) for m in masks] == [0, 1, 0]

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                    min_size=1, max_size=8))
    def test_mask_equals_direct_check(self, pairs):
        intervals = [Interval(min(a, b), max(a, b)) for a, b in pairs]
        edges, masks = segment_masks(intervals, 8, len(intervals))
        for value in range(0, 256, 7):
            seg = int(np.searchsorted(edges, value, side="right")) - 1
            mask = int(masks[seg][0])
            expected = sum(
                1 << i for i, iv in enumerate(intervals) if iv.contains(value)
            )
            assert mask == expected


class TestDedupe:
    def test_first_appearance_order(self):
        masks = np.array([[3], [5], [3], [7], [5]], dtype=np.uint64)
        ids, classes = dedupe_masks(masks)
        assert ids.tolist() == [0, 1, 0, 2, 1]
        assert classes[:, 0].tolist() == [3, 5, 7]

    def test_empty(self):
        ids, classes = dedupe_masks(np.zeros((0, 2), dtype=np.uint64))
        assert len(ids) == 0 and len(classes) == 0

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=32))
    def test_reconstruction(self, values):
        masks = np.array([[v] for v in values], dtype=np.uint64)
        ids, classes = dedupe_masks(masks)
        assert [int(classes[i][0]) for i in ids] == values


class TestCrossProduct:
    def test_small(self):
        a = np.array([[0b01], [0b11]], dtype=np.uint64)
        b = np.array([[0b10], [0b11]], dtype=np.uint64)
        table, classes = cross_product(a, b)
        assert table.shape == (2, 2)
        # AND results: (01&10)=00, (01&11)=01, (11&10)=10, (11&11)=11
        got = {int(classes[table[i, j]][0]) for i in range(2) for j in range(2)}
        assert got == {0b00, 0b01, 0b10, 0b11}

    def test_chunking_consistent(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 1 << 60, size=(70, 2)).astype(np.uint64)
        b = rng.integers(0, 1 << 60, size=(5, 2)).astype(np.uint64)
        t1, c1 = cross_product(a, b, chunk_rows=64)
        t2, c2 = cross_product(a, b, chunk_rows=7)
        # Class numbering must be identical (first-appearance order).
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(c1, c2)

    def test_table_entries_decode_to_and(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 255, size=(6, 1)).astype(np.uint64)
        b = rng.integers(0, 255, size=(4, 1)).astype(np.uint64)
        table, classes = cross_product(a, b)
        for i in range(6):
            for j in range(4):
                assert int(classes[table[i, j]][0]) == int(a[i][0]) & int(b[j][0])


class TestFirstSetBit:
    def test_empty_mask(self):
        assert first_set_bit(np.zeros(2, dtype=np.uint64)) is None

    def test_low_bit(self):
        mask = np.array([0b100, 0], dtype=np.uint64)
        assert first_set_bit(mask) == 2

    def test_high_word(self):
        mask = np.array([0, 1 << 5], dtype=np.uint64)
        assert first_set_bit(mask) == 69

    @given(st.integers(0, 127))
    def test_single_bit(self, bit):
        mask = np.zeros(2, dtype=np.uint64)
        mask[bit // 64] = np.uint64(1 << (bit % 64))
        assert first_set_bit(mask) == bit

    def test_masks_to_rule_ids(self):
        masks = np.array([[0, 0], [0b1000, 0], [0, 1]], dtype=np.uint64)
        assert masks_to_rule_ids(masks).tolist() == [-1, 3, 64]
