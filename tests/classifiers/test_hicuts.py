"""HiCuts-specific behaviour: binth, heuristics, leaf linear search."""

import numpy as np
import pytest

from repro.classifiers.hicuts import HiCutsClassifier, _Internal, _Leaf
from repro.classifiers.linear import RULE_WORDS
from repro.core.rule import Rule, RuleSet


class TestBinth:
    def test_leaf_sizes_respect_binth(self, small_cr_ruleset):
        for binth in (2, 4, 8):
            clf = HiCutsClassifier.build(small_cr_ruleset, binth=binth)
            # Leaves may exceed binth only when the box became a point or
            # a cover truncated the list; those are rare — the common
            # case must respect the threshold.
            sizes = clf.leaf_sizes()
            assert sizes, "tree has no leaves"
            assert sorted(sizes)[len(sizes) // 2] <= binth

    def test_smaller_binth_larger_tree(self, small_cr_ruleset):
        small = HiCutsClassifier.build(small_cr_ruleset, binth=2)
        large = HiCutsClassifier.build(small_cr_ruleset, binth=16)
        assert len(small.nodes) >= len(large.nodes)

    def test_binth_one_eliminates_most_scans(self, small_fw_ruleset):
        clf = HiCutsClassifier.build(small_fw_ruleset, binth=1)
        sizes = clf.leaf_sizes()
        assert sorted(sizes)[len(sizes) // 2] == 1


class TestStructure:
    def test_no_explicit_worst_case(self, small_fw_ruleset):
        clf = HiCutsClassifier.build(small_fw_ruleset)
        assert clf.worst_case_accesses() is None  # the paper's complaint

    def test_depth_is_positive(self, tiny_ruleset):
        clf = HiCutsClassifier.build(tiny_ruleset, binth=1)
        assert clf.depth() >= 1

    def test_single_region_memory(self, tiny_ruleset):
        clf = HiCutsClassifier.build(tiny_ruleset)
        regions = clf.memory_regions()
        assert [r.name for r in regions] == ["tree"]

    def test_node_reuse_happens(self, small_cr_ruleset):
        clf = HiCutsClassifier.build(small_cr_ruleset, binth=2)
        internal = [n for n in clf.nodes if isinstance(n, _Internal)]
        refs = [ref for n in internal for ref in n.children if ref >= 0]
        # Shared children: more references than nodes.
        assert len(refs) > len(set(refs))

    def test_max_nodes_guard(self, small_cr_ruleset):
        with pytest.raises(MemoryError):
            HiCutsClassifier.build(small_cr_ruleset, binth=1, max_nodes=2)


class TestLeafSearch:
    def test_trace_reads_six_word_entries(self, small_fw_ruleset):
        clf = HiCutsClassifier.build(small_fw_ruleset, binth=8)
        # find a header whose leaf has several rules
        trace = None
        rng = np.random.default_rng(9)
        for _ in range(200):
            header = tuple(
                int(rng.integers(0, 1 << w)) for w in (32, 32, 16, 16, 8)
            )
            trace = clf.access_trace(header)
            rule_reads = [r for r in trace.reads if r.nwords == RULE_WORDS]
            if len(rule_reads) >= 2:
                break
        assert trace is not None
        rule_reads = [r for r in trace.reads if r.nwords == RULE_WORDS]
        assert rule_reads, "no leaf scan observed"
        assert all(r.region == "tree" for r in trace.reads)

    def test_scan_stops_at_first_match(self, tiny_ruleset):
        clf = HiCutsClassifier.build(tiny_ruleset, binth=4)
        header = (0x0A000001, 0xC0A80105, 12345, 80, 6)
        trace = clf.access_trace(header)
        assert trace.result == 0


class TestEdgeCases:
    def test_empty_ruleset(self):
        clf = HiCutsClassifier.build(RuleSet([]))
        assert clf.classify((0, 0, 0, 0, 0)) is None

    def test_single_rule(self):
        clf = HiCutsClassifier.build(
            RuleSet([Rule.from_prefixes(sip="10.0.0.0/8")])
        )
        assert clf.classify((0x0A000001, 0, 0, 0, 0)) == 0
        assert clf.classify((0x0B000001, 0, 0, 0, 0)) is None

    def test_duplicate_rules_keep_priority(self):
        rule = Rule.from_prefixes(sip="10.0.0.0/8")
        clf = HiCutsClassifier.build(RuleSet([rule, rule, rule]))
        assert clf.classify((0x0A000001, 0, 0, 0, 0)) == 0

    def test_leaf_dataclass(self):
        leaf = _Leaf((1, 2, 3))
        assert leaf.rule_ids == (1, 2, 3)
