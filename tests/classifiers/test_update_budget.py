"""Budget-guarded rebuilds racing live updates.

The scenarios the paper's platform actually hits: a rule-update burst
triggers a rebuild whose wall-clock deadline (or node budget) fires
mid-build.  With degradation disabled the swap must roll back and the
old snapshot keeps serving; with degradation enabled the chain walks
coarser parameters down to the linear slow path.  In every case lookups
stay exact against the linear oracle over the *current* rule list.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.classifiers import ExpCutsClassifier, HiCutsClassifier
from repro.classifiers.updates import DEGRADATION_LADDERS, UpdatableClassifier
from repro.core.budget import BuildBudget
from repro.core.rule import Rule, RuleSet
from repro.obs import disable_metrics, enable_metrics, get_registry


class SteppingClock:
    """A monotonic clock advancing ``step`` per read.

    ``step = 0`` freezes time (deadlines never fire); a large ``step``
    makes the deadline fire at the first poll *inside* a build — the
    deterministic stand-in for a wedged build thread.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.step = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def rules(n):
    return [Rule.from_prefixes(sip=f"{10 + i}.0.0.0/8") for i in range(n)]


HEADERS = [((10 + i) << 24, 0, 0, 0, 0) for i in range(12)]


class TestDegradationChain:
    def test_ladder_step_recorded_in_stats_and_metrics(self):
        from repro.rulesets import generate

        ruleset = generate("CR01", size=200, seed=7)
        enable_metrics()
        try:
            clf = UpdatableClassifier(ruleset, HiCutsClassifier,
                                      budget=BuildBudget(max_nodes=200))
            counters = get_registry().snapshot()["counters"]
        finally:
            disable_metrics()
        assert clf.degradation is not None
        assert clf.degradation.startswith("params:")
        assert clf.stats.degraded_rebuilds == 1
        assert clf.stats.budget_exceeded >= 1
        assert counters["builds.degraded_rebuilds"] == 1
        assert counters["builds.budget_exceeded"] >= 1

    def test_linear_fallback_is_exact_and_costed(self):
        from repro.npsim.runner import simulate_throughput
        from repro.rulesets import generate
        from repro.traffic import matched_trace

        ruleset = generate("CR01", size=150, seed=3)
        clf = UpdatableClassifier(ruleset, HiCutsClassifier,
                                  budget=BuildBudget(max_nodes=5))
        assert clf.degradation == "linear"
        assert clf.stats.linear_fallbacks == 1
        trace = matched_trace(ruleset, 200, seed=1)
        for header in trace.headers():
            assert clf.classify(header) == ruleset.first_match(header)
        # The DES charges the slow path's modelled scan, and the result
        # carries the degradation so figures can annotate it.
        degraded = simulate_throughput(clf, trace, max_packets=300,
                                       trace_limit=80)
        assert degraded.degradation == "linear"
        full = UpdatableClassifier(ruleset, HiCutsClassifier)
        healthy = simulate_throughput(full, trace, max_packets=300,
                                      trace_limit=80)
        assert healthy.degradation is None
        assert degraded.gbps < healthy.gbps  # the slow path costs cycles

    def test_degrade_false_rolls_back_to_old_snapshot(self):
        clock = SteppingClock()
        budget = BuildBudget(wall_seconds=5.0, clock=clock)
        clf = UpdatableClassifier(RuleSet(rules(8)), ExpCutsClassifier,
                                  budget=budget, degrade=False,
                                  rebuild_threshold=100)
        clf.insert(Rule.any("deny"), position=0)
        clock.step = 100.0  # deadline now fires inside every build
        assert clf.rebuild() is False
        assert clf.degradation is None
        assert clf.stats.budget_exceeded == 1
        assert clf.stats.failed_rebuilds == 1
        assert "budget" in clf.failures[0].error
        oracle = clf.current_ruleset()
        for header in HEADERS:
            assert clf.classify(header) == oracle.first_match(header)
        clock.step = 0.0  # build un-wedges; the next rebuild recovers
        assert clf.rebuild() is True
        assert clf.pending_updates == 0

    def test_recovery_clears_degradation(self):
        from repro.rulesets import generate

        ruleset = generate("CR01", size=150, seed=5)
        clf = UpdatableClassifier(ruleset, HiCutsClassifier,
                                  budget=BuildBudget(max_nodes=5))
        assert clf.degradation == "linear"
        clf.budget = None  # operator lifts the limit (or memory freed)
        assert clf.rebuild() is True
        assert clf.degradation is None

    def test_ladders_only_name_real_params(self):
        from repro.classifiers import ALGORITHMS

        for name in DEGRADATION_LADDERS:
            assert name in ALGORITHMS


class BudgetRaceMachine(RuleBasedStateMachine):
    """Random updates while the rebuild deadline comes and goes.

    ``degrade=False``: a deadline firing mid-rebuild must leave the old
    snapshot serving with answers still exact over the *current* rules.
    """

    @initialize()
    def setup(self):
        self.clock = SteppingClock()
        self.clf = UpdatableClassifier(
            RuleSet(rules(4)), ExpCutsClassifier,
            budget=BuildBudget(wall_seconds=5.0, clock=self.clock),
            degrade=False, rebuild_threshold=3,
        )

    @rule(octet=st.integers(1, 12), head=st.booleans())
    def insert(self, octet, head):
        self.clf.insert(Rule.from_prefixes(sip=f"{octet}.0.0.0/8"),
                        position=0 if head else None)

    @rule(frac=st.floats(0, 0.999))
    def remove(self, frac):
        if len(self.clf) > 1:
            self.clf.remove(int(frac * len(self.clf)))

    @rule()
    def wedge_builds(self):
        self.clock.step = 100.0

    @rule()
    def unwedge_builds(self):
        self.clock.step = 0.0

    @rule()
    def force_rebuild(self):
        self.clf.rebuild()

    @invariant()
    def agrees_with_oracle(self):
        oracle = self.clf.current_ruleset()
        for header in HEADERS[:6]:
            assert self.clf.classify(header) == oracle.first_match(header)

    @invariant()
    def rollbacks_are_accounted(self):
        # Every budget-aborted rebuild is visible, never silent.
        assert self.clf.stats.budget_exceeded == len([
            f for f in self.clf.failures if "budget" in f.error
        ])
        assert self.clf.degradation is None  # degrade=False never swaps one in


BudgetRaceMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=14, deadline=None,
)
TestBudgetRaceMachine = BudgetRaceMachine.TestCase


class DegradingRaceMachine(RuleBasedStateMachine):
    """Same race with the degradation chain enabled: budget exhaustion
    may swap in a coarser structure or the linear slow path — lookups
    must stay exact through every swap."""

    @initialize()
    def setup(self):
        self.clock = SteppingClock()
        self.clf = UpdatableClassifier(
            RuleSet(rules(4)), ExpCutsClassifier,
            budget=BuildBudget(wall_seconds=5.0, clock=self.clock),
            rebuild_threshold=3,
        )

    @rule(octet=st.integers(1, 12))
    def insert(self, octet):
        self.clf.insert(Rule.from_prefixes(sip=f"{octet}.0.0.0/8"))

    @rule(frac=st.floats(0, 0.999))
    def remove(self, frac):
        if len(self.clf) > 1:
            self.clf.remove(int(frac * len(self.clf)))

    @rule()
    def wedge_builds(self):
        self.clock.step = 100.0

    @rule()
    def unwedge_builds(self):
        self.clock.step = 0.0

    @rule()
    def force_rebuild(self):
        self.clf.rebuild()

    @invariant()
    def agrees_with_oracle(self):
        oracle = self.clf.current_ruleset()
        for header in HEADERS[:6]:
            assert self.clf.classify(header) == oracle.first_match(header)

    @invariant()
    def degradation_tag_is_wellformed(self):
        tag = self.clf.degradation
        assert tag is None or tag == "linear" or tag.startswith("params:")
        if self.clf.stats.linear_fallbacks or self.clf.stats.degraded_rebuilds:
            assert self.clf.stats.budget_exceeded >= 1


DegradingRaceMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=14, deadline=None,
)
TestDegradingRaceMachine = DegradingRaceMachine.TestCase
