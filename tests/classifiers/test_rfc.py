"""RFC-specific behaviour: chunk tables, sub-rule expansion, fixed cost."""

import numpy as np

from repro.classifiers.rfc import (
    CHUNKS,
    RFCClassifier,
    _expand_subrules,
    _split_block,
)
from repro.core.interval import Interval
from repro.core.rule import Rule, RuleSet


class TestChunks:
    def test_seven_chunks(self):
        labels = [c.label for c in CHUNKS]
        assert labels == ["sip_hi", "sip_lo", "dip_hi", "dip_lo",
                          "sport", "dport", "proto"]

    def test_split_block_short_prefix(self):
        # /8 block: high chunk constrained, low chunk free.
        block = Interval(0x0A000000, 0x0AFFFFFF)
        assert _split_block(block, want_high=True) == (0x0A00, 0x0AFF)
        assert _split_block(block, want_high=False) == (0, 0xFFFF)

    def test_split_block_long_prefix(self):
        # /24 block: high chunk exact, low chunk a 256-wide range.
        block = Interval(0x0A0B0C00, 0x0A0B0CFF)
        assert _split_block(block, want_high=True) == (0x0A0B, 0x0A0B)
        assert _split_block(block, want_high=False) == (0x0C00, 0x0CFF)


class TestSubruleExpansion:
    def test_prefix_rules_expand_to_one(self, tiny_ruleset):
        subrules, owners = _expand_subrules(tiny_ruleset)
        assert len(subrules) == len(tiny_ruleset)
        assert owners.tolist() == list(range(len(tiny_ruleset)))

    def test_range_rule_expands(self):
        rs = RuleSet([Rule.from_ranges(sip=(1, 6))])
        subrules, owners = _expand_subrules(rs)
        assert len(subrules) > 1
        assert set(owners.tolist()) == {0}

    def test_bits_in_priority_order(self):
        rs = RuleSet([Rule.from_ranges(sip=(1, 6)),
                      Rule.from_prefixes(sip="0.0.0.0/0")])
        _, owners = _expand_subrules(rs)
        assert owners.tolist() == sorted(owners.tolist())


class TestLookup:
    def test_fixed_access_count(self, small_fw_ruleset):
        clf = RFCClassifier.build(small_fw_ruleset)
        bound = clf.worst_case_accesses()
        assert bound == len(CHUNKS) + 6
        rng = np.random.default_rng(8)
        for _ in range(20):
            header = tuple(int(rng.integers(0, 1 << w)) for w in (32, 32, 16, 16, 8))
            trace = clf.access_trace(header)
            assert trace.total_accesses == bound  # direct indexing: exact
            assert all(r.nwords == 1 for r in trace.reads)

    def test_cross_chunk_range_soundness(self):
        """The regression the sub-rule expansion exists for: a range
        spanning a 16-bit boundary must not match headers that combine
        one prefix's high half with another's low half."""
        rs = RuleSet([Rule.from_ranges(dip=(1, 65536))])
        clf = RFCClassifier.build(rs)
        assert clf.classify((0, 0, 0, 0, 0)) is None
        assert clf.classify((0, 1, 0, 0, 0)) == 0
        assert clf.classify((0, 65536, 0, 0, 0)) == 0
        assert clf.classify((0, 65537, 0, 0, 0)) is None
        # 0x0001_0001 matches hi chunk of [65536] and lo chunk of [1]
        assert clf.classify((0, 0x00010001, 0, 0, 0)) is None

    def test_memory_is_largest_of_all(self, small_fw_ruleset):
        from repro.classifiers import HiCutsClassifier

        rfc = RFCClassifier.build(small_fw_ruleset)
        hicuts = HiCutsClassifier.build(small_fw_ruleset)
        # The classic RFC trade: memory for fixed direct-index speed.
        assert rfc.memory_bytes() > hicuts.memory_bytes()

    def test_empty_ruleset(self):
        clf = RFCClassifier.build(RuleSet([]))
        assert clf.classify((1, 2, 3, 4, 5)) is None
