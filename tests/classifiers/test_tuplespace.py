"""Tuple Space Search specifics."""

import pytest

from repro.classifiers.tuplespace import Tuple5, TupleSpaceClassifier
from repro.core.rule import Rule, RuleSet


class TestTupleGrouping:
    def test_same_shape_rules_share_tuple(self):
        rules = RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8", dport=80, proto=6),
            Rule.from_prefixes(sip="11.0.0.0/8", dport=443, proto=6),
        ])
        clf = TupleSpaceClassifier.build(rules)
        assert clf.num_tuples == 1
        assert clf.num_entries == 2

    def test_distinct_shapes_distinct_tuples(self):
        rules = RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8"),
            Rule.from_prefixes(sip="10.0.0.0/16"),
        ])
        clf = TupleSpaceClassifier.build(rules)
        assert clf.num_tuples == 2

    def test_range_rule_expands(self):
        rules = RuleSet([Rule.from_ranges(dport=(0, 1023))])
        clf = TupleSpaceClassifier.build(rules)
        # [0,1023] is one aligned block -> a single /6-style port prefix.
        assert clf.num_entries == 1
        rules2 = RuleSet([Rule.from_ranges(dport=(1, 1023))])
        clf2 = TupleSpaceClassifier.build(rules2)
        assert clf2.num_entries > 1  # unaligned range -> several prefixes

    def test_mask_header(self):
        tup = Tuple5((8, 0, 16, 0, 8))
        masked = tup.mask_header((0x0A123456, 0xFFFFFFFF, 80, 99, 6))
        assert masked == (0x0A000000, 0, 80, 0, 6)


class TestLookup:
    def test_priority_across_tuples(self):
        rules = RuleSet([
            Rule.from_prefixes(sip="10.1.0.0/16"),   # more specific
            Rule.from_prefixes(sip="10.0.0.0/8"),
        ])
        clf = TupleSpaceClassifier.build(rules)
        # Header matches both; rule 0 (higher priority) must win.
        assert clf.classify((0x0A010001, 0, 0, 0, 0)) == 0
        # Header matching only the /8.
        assert clf.classify((0x0A020001, 0, 0, 0, 0)) == 1

    def test_one_probe_per_tuple(self, small_fw_ruleset):
        clf = TupleSpaceClassifier.build(small_fw_ruleset)
        trace = clf.access_trace((1, 2, 3, 4, 5))
        assert trace.total_accesses == clf.num_tuples
        assert clf.worst_case_accesses() == clf.num_tuples

    def test_empty_ruleset(self):
        clf = TupleSpaceClassifier.build(RuleSet([]))
        assert clf.classify((0, 0, 0, 0, 0)) is None
        assert clf.num_tuples == 0

    def test_duplicate_key_keeps_priority(self):
        rule = Rule.from_prefixes(sip="10.0.0.0/8", dport=80)
        clf = TupleSpaceClassifier.build(RuleSet([rule, rule]))
        assert clf.classify((0x0A000001, 0, 0, 80, 0)) == 0

    def test_rejects_params(self, tiny_ruleset):
        with pytest.raises(TypeError):
            TupleSpaceClassifier.build(tiny_ruleset, binth=2)
