"""Failure paths of the update layer: rejected rebuilds, rollback,
tombstone-heavy workloads, and the depth watchdog."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.classifiers import ExpCutsClassifier, LinearSearchClassifier
from repro.classifiers.updates import UpdatableClassifier
from repro.core.errors import (
    ConfigurationError,
    DepthBoundExceededError,
    RebuildError,
)
from repro.core.rule import Rule, RuleSet


class FlakyClassifier(LinearSearchClassifier):
    """A base whose build raises on command (after the first success)."""

    name = "flaky"
    fail_builds = 0
    builds = 0

    @classmethod
    def build(cls, ruleset, **params):
        cls.builds += 1
        if cls.fail_builds > 0:
            cls.fail_builds -= 1
            raise RuntimeError("synthetic build failure")
        return super().build(ruleset, **params)


class WrongClassifier(LinearSearchClassifier):
    """A base that builds fine but answers the wrong rule."""

    name = "wrong"
    lie = False

    def classify(self, header):
        got = super().classify(header)
        if type(self).lie and got is not None:
            return None
        return got


class BrokenLookupClassifier(LinearSearchClassifier):
    """A base whose lookups blow the depth bound after the swap."""

    name = "broken-lookup"
    broken = False

    def classify(self, header):
        if type(self).broken:
            raise DepthBoundExceededError("synthetic corrupted image")
        return super().classify(header)


@pytest.fixture(autouse=True)
def reset_flaky():
    FlakyClassifier.fail_builds = 0
    FlakyClassifier.builds = 0
    WrongClassifier.lie = False
    BrokenLookupClassifier.broken = False
    yield
    FlakyClassifier.fail_builds = 0
    WrongClassifier.lie = False
    BrokenLookupClassifier.broken = False


HEADER = (0x0A000001, 0xC0A80105, 12345, 80, 6)


def rules(n):
    return [Rule.from_prefixes(sip=f"{10 + i}.0.0.0/8") for i in range(n)]


class TestRebuildRollback:
    def test_initial_build_failure_propagates(self):
        FlakyClassifier.fail_builds = 1
        with pytest.raises(RuntimeError):
            UpdatableClassifier(RuleSet(rules(3)), FlakyClassifier)

    def test_failed_rebuild_rolls_back(self, tiny_ruleset):
        clf = UpdatableClassifier(tiny_ruleset, FlakyClassifier,
                                  rebuild_threshold=100)
        clf.insert(Rule.any("deny"), position=0)
        FlakyClassifier.fail_builds = 1
        assert clf.rebuild() is False
        # The old snapshot keeps serving and updates are still pending...
        assert clf.pending_updates == 1
        assert clf.stats.failed_rebuilds == 1
        assert len(clf.failures) == 1
        assert "synthetic build failure" in clf.failures[0].error
        # ...and answers stay exact (overlay + old base).
        oracle = clf.current_ruleset()
        assert clf.classify(HEADER) == oracle.first_match(HEADER)
        # The next forced rebuild succeeds and clears the backlog.
        assert clf.rebuild() is True
        assert clf.pending_updates == 0

    def test_oracle_disagreement_rejected(self, tiny_ruleset):
        clf = UpdatableClassifier(tiny_ruleset, WrongClassifier,
                                  rebuild_threshold=100)
        clf.insert(Rule.any("deny"), position=0)
        WrongClassifier.lie = True
        assert clf.rebuild() is False
        assert "disagrees with the oracle" in clf.failures[0].error
        WrongClassifier.lie = False
        assert clf.rebuild() is True

    def test_spot_check_disabled_skips_validation(self, tiny_ruleset):
        WrongClassifier.lie = True
        # With spot_check_headers=0 even a lying base is swapped in —
        # the knob exists for callers that trust the build.
        clf = UpdatableClassifier(tiny_ruleset, WrongClassifier,
                                  spot_check_headers=0)
        assert clf.stats.failed_rebuilds == 0

    def test_threshold_retry_backs_off(self, tiny_ruleset):
        """A failed threshold rebuild must not retry on every update."""
        clf = UpdatableClassifier(tiny_ruleset, FlakyClassifier,
                                  rebuild_threshold=3)
        FlakyClassifier.fail_builds = 1
        for i in range(3):
            clf.insert(Rule.from_prefixes(sip=f"{30 + i}.0.0.0/8"))
        assert clf.stats.failed_rebuilds == 1
        builds_after_failure = FlakyClassifier.builds
        # The very next update is below the backoff mark: no retry.
        clf.insert(Rule.from_prefixes(sip="40.0.0.0/8"))
        assert FlakyClassifier.builds == builds_after_failure + 1  # retry once past it
        assert clf.pending_updates == 0  # ...and that retry succeeded

    def test_rebuild_error_is_runtime_error(self):
        assert issubclass(RebuildError, RuntimeError)


class FakeClock:
    """Injectable monotonic clock for the wall-clock retry trigger."""

    def __init__(self, start=0.0):
        self.t = start

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


class TestWallClockRetry:
    """After a failed rebuild, retry fires on pending *growth* OR once
    ``rebuild_retry_seconds`` of wall clock elapses — both triggers."""

    def _flaky(self, ruleset, clock, retry_s=30.0):
        return UpdatableClassifier(ruleset, FlakyClassifier,
                                   rebuild_threshold=2,
                                   rebuild_retry_seconds=retry_s,
                                   clock=clock)

    def test_growth_trigger_needs_no_clock(self, tiny_ruleset):
        clock = FakeClock()
        clf = self._flaky(tiny_ruleset, clock)
        FlakyClassifier.fail_builds = 1
        clf.insert(Rule.from_prefixes(sip="30.0.0.0/8"))
        clf.insert(Rule.from_prefixes(sip="31.0.0.0/8"))  # threshold: fails
        assert clf.stats.failed_rebuilds == 1
        assert clf.pending_updates == 2
        # Pending growth past the failure point retries with the clock idle.
        clf.insert(Rule.from_prefixes(sip="32.0.0.0/8"))
        assert clf.pending_updates == 0
        assert clf.stats.failed_rebuilds == 1

    def test_poll_fires_after_interval(self, tiny_ruleset):
        clock = FakeClock()
        clf = self._flaky(tiny_ruleset, clock)
        FlakyClassifier.fail_builds = 1
        clf.insert(Rule.from_prefixes(sip="30.0.0.0/8"))
        clf.insert(Rule.from_prefixes(sip="31.0.0.0/8"))  # threshold: fails
        assert clf.stats.failed_rebuilds == 1
        assert clf.poll() is False      # interval not elapsed, no growth
        clock.advance(29.0)
        assert clf.poll() is False      # still inside the interval
        # Answers stay exact (overlay + old base) while backed off.
        oracle = clf.current_ruleset()
        header = (30 << 24, 0, 0, 0, 0)
        assert clf.classify(header) == oracle.first_match(header)
        clock.advance(1.0)
        assert clf.poll() is True       # wall-clock trigger fires
        assert clf.pending_updates == 0

    def test_update_path_observes_the_clock(self, tiny_ruleset):
        clock = FakeClock()
        clf = self._flaky(tiny_ruleset, clock)
        FlakyClassifier.fail_builds = 2
        clf.insert(Rule.from_prefixes(sip="30.0.0.0/8"))
        clf.insert(Rule.from_prefixes(sip="31.0.0.0/8"))    # fail #1
        clf.insert(Rule.from_prefixes(sip="32.0.0.0/8"),
                   position=0)                              # growth: fail #2
        assert clf.stats.failed_rebuilds == 2
        builds = FlakyClassifier.builds
        clf.remove(0)           # pending back at the failure point: no try
        assert FlakyClassifier.builds == builds
        clock.advance(31.0)
        clf.insert(Rule.from_prefixes(sip="33.0.0.0/8"))    # clock elapsed
        assert FlakyClassifier.builds == builds + 1
        assert clf.pending_updates == 0

    def test_poll_noop_below_threshold(self, tiny_ruleset):
        clock = FakeClock()
        clf = self._flaky(tiny_ruleset, clock, retry_s=1.0)
        clf.insert(Rule.from_prefixes(sip="30.0.0.0/8"))
        clock.advance(100.0)
        assert clf.poll() is False      # 1 pending < threshold: nothing due

    def test_without_interval_poll_never_retries(self, tiny_ruleset):
        clf = UpdatableClassifier(tiny_ruleset, FlakyClassifier,
                                  rebuild_threshold=2)
        FlakyClassifier.fail_builds = 1
        clf.insert(Rule.from_prefixes(sip="30.0.0.0/8"))
        clf.insert(Rule.from_prefixes(sip="31.0.0.0/8"))  # threshold: fails
        assert clf.poll() is False
        assert clf.poll() is False      # no clock trigger armed: stays put
        assert clf.pending_updates == 2

    def test_negative_interval_rejected(self, tiny_ruleset):
        with pytest.raises(ConfigurationError):
            UpdatableClassifier(tiny_ruleset, LinearSearchClassifier,
                                rebuild_retry_seconds=-1.0)


class TestTombstoneHeavyWorkload:
    def test_mass_removal_crosses_threshold(self):
        clf = UpdatableClassifier(RuleSet(rules(20)), ExpCutsClassifier,
                                  rebuild_threshold=5)
        for _ in range(15):
            clf.remove(0)
        assert clf.stats.rebuilds >= 3
        assert len(clf) == 5
        oracle = clf.current_ruleset()
        for i in range(20):
            header = ((10 + i) << 24, 0, 0, 0, 0)
            assert clf.classify(header) == oracle.first_match(header)

    def test_churn_remove_reinsert(self):
        clf = UpdatableClassifier(RuleSet(rules(8)), ExpCutsClassifier,
                                  rebuild_threshold=4)
        for round_no in range(6):
            removed = clf.remove(round_no % max(len(clf), 1))
            clf.insert(removed, position=0)
        oracle = clf.current_ruleset()
        for i in range(8):
            header = ((10 + i) << 24, 0, 0, 0, 0)
            assert clf.classify(header) == oracle.first_match(header)

    def test_remove_to_empty(self):
        clf = UpdatableClassifier(RuleSet(rules(4)), ExpCutsClassifier,
                                  rebuild_threshold=2)
        for _ in range(4):
            clf.remove(0)
        assert len(clf) == 0
        assert clf.classify(HEADER) is None


class TestDepthWatchdog:
    def test_watchdog_falls_back_to_scan(self, tiny_ruleset):
        clf = UpdatableClassifier(tiny_ruleset, BrokenLookupClassifier,
                                  rebuild_threshold=100)
        oracle = clf.current_ruleset()
        want = oracle.first_match(HEADER)
        BrokenLookupClassifier.broken = True
        assert clf.classify(HEADER) == want      # exact answer, no crash
        assert clf.stats.watchdog_fallbacks == 1
        assert clf.stats.slow_path_lookups >= 1

    def test_engine_raises_past_bound(self, small_fw_ruleset):
        """The packed engine's own watchdog trips when a walk overruns
        the explicit level bound (here: the bound shrunk under it, as a
        corrupted header word would make happen)."""
        clf = ExpCutsClassifier.build(small_fw_ruleset)
        engine = clf.engine
        engine.schedule = engine.schedule[:1]
        with pytest.raises(DepthBoundExceededError):
            for rule in small_fw_ruleset:
                engine.classify(tuple(iv.lo for iv in rule.intervals))


class FlakyUpdateMachine(RuleBasedStateMachine):
    """Random updates with a base that fails every other rebuild; answers
    must stay exact through every rollback."""

    @initialize()
    def setup(self):
        FlakyClassifier.fail_builds = 0
        self.clf = UpdatableClassifier(
            RuleSet([Rule.any("deny")]), FlakyClassifier,
            rebuild_threshold=3,
        )
        self.step = 0

    @rule(octet=st.integers(1, 6), head=st.booleans())
    def insert(self, octet, head):
        self.step += 1
        FlakyClassifier.fail_builds = self.step % 2
        self.clf.insert(Rule.from_prefixes(sip=f"{octet}.0.0.0/8"),
                        position=0 if head else None)

    @rule(frac=st.floats(0, 0.999))
    def remove(self, frac):
        self.step += 1
        FlakyClassifier.fail_builds = self.step % 2
        if len(self.clf) > 1:
            self.clf.remove(int(frac * len(self.clf)))

    @invariant()
    def agrees_with_oracle(self):
        oracle = self.clf.current_ruleset()
        for octet in (1, 4, 9):
            header = (octet << 24, 0, 0, 0, 0)
            assert self.clf.classify(header) == oracle.first_match(header)

    @invariant()
    def snapshot_is_consistent(self):
        # Every live snapshot reference points at the rule it named.
        for snap_idx, current in enumerate(self.clf._snapshot_to_current):
            if current is not None:
                assert self.clf.rules[current] is self.clf._snapshot[snap_idx]


FlakyUpdateMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None,
)
TestFlakyUpdateMachine = FlakyUpdateMachine.TestCase
