"""HyperCuts-specific behaviour."""

import pytest

from repro.classifiers.hypercuts import HyperCutsClassifier, _Internal
from repro.classifiers.hicuts import HiCutsClassifier
from repro.core.rule import Rule, RuleSet


class TestMultiDimensionalCutting:
    def test_cuts_multiple_dims(self, small_cr_ruleset):
        clf = HyperCutsClassifier.build(small_cr_ruleset)
        assert clf.mean_dims_cut() > 1.0

    def test_not_deeper_than_hicuts_at_scale(self):
        from repro.rulesets import generate
        from repro.rulesets.profiles import PROFILES

        ruleset = generate(PROFILES["CR01"], size=300, seed=31).with_default()
        hyper = HyperCutsClassifier.build(ruleset)
        hi = HiCutsClassifier.build(ruleset)
        assert hyper.depth() <= hi.depth()

    def test_fanout_capped(self, small_cr_ruleset):
        clf = HyperCutsClassifier.build(small_cr_ruleset, max_log2_fanout=4)
        for node in clf.nodes:
            if isinstance(node, _Internal):
                assert sum(node.lgs) <= 4

    def test_child_count_matches_lgs(self, small_fw_ruleset):
        clf = HyperCutsClassifier.build(small_fw_ruleset)
        for node in clf.nodes:
            if isinstance(node, _Internal):
                assert len(node.children) == 1 << sum(node.lgs)
                assert len(node.dims) == len(node.lgs) == len(node.shifts)


class TestBehaviour:
    def test_empty_ruleset(self):
        clf = HyperCutsClassifier.build(RuleSet([]))
        assert clf.classify((0, 0, 0, 0, 0)) is None

    def test_single_rule(self):
        clf = HyperCutsClassifier.build(
            RuleSet([Rule.from_prefixes(sip="10.0.0.0/8", dport=80)])
        )
        assert clf.classify((0x0A000001, 0, 0, 80, 0)) == 0
        assert clf.classify((0x0A000001, 0, 0, 81, 0)) is None

    def test_priority(self, tiny_ruleset):
        clf = HyperCutsClassifier.build(tiny_ruleset, binth=1)
        assert clf.classify((0x0A000001, 0xC0A80105, 12345, 80, 6)) == 0

    def test_no_explicit_bound(self, small_fw_ruleset):
        clf = HyperCutsClassifier.build(small_fw_ruleset)
        assert clf.worst_case_accesses() is None

    def test_single_region(self, tiny_ruleset):
        clf = HyperCutsClassifier.build(tiny_ruleset)
        assert [r.name for r in clf.memory_regions()] == ["tree"]

    def test_max_nodes_guard(self, small_cr_ruleset):
        with pytest.raises(MemoryError):
            HyperCutsClassifier.build(small_cr_ruleset, binth=1, max_nodes=2)

    def test_trace_result_matches(self, small_fw_ruleset):
        clf = HyperCutsClassifier.build(small_fw_ruleset)
        from repro.traffic import matched_trace

        trace = matched_trace(small_fw_ruleset, 60, seed=4)
        for idx in range(len(trace)):
            header = trace.header(idx)
            assert clf.access_trace(header).result == clf.classify(header)
