"""Linear-search classifier tests (the oracle must itself be right)."""

import numpy as np
import pytest

from repro.classifiers.linear import RULE_WORDS, LinearSearchClassifier
from repro.core.rule import Rule, RuleSet


class TestClassify:
    def test_priority(self, tiny_ruleset):
        clf = LinearSearchClassifier.build(tiny_ruleset)
        assert clf.classify((0x0A000001, 0xC0A80105, 1, 80, 6)) == 0
        assert clf.classify((0x0B000001, 0xC0A80105, 1, 80, 6)) == 1

    def test_no_match(self):
        clf = LinearSearchClassifier.build(
            RuleSet([Rule.from_prefixes(sip="10.0.0.0/8")])
        )
        assert clf.classify((0x0B000000, 0, 0, 0, 0)) is None

    def test_empty_ruleset(self):
        clf = LinearSearchClassifier.build(RuleSet([]))
        assert clf.classify((0, 0, 0, 0, 0)) is None
        out = clf.classify_batch([np.zeros(3, dtype=np.uint32)] * 5)
        assert out.tolist() == [-1, -1, -1]

    def test_rejects_unknown_params(self, tiny_ruleset):
        with pytest.raises(TypeError):
            LinearSearchClassifier.build(tiny_ruleset, binth=4)

    def test_batch_matches_scalar(self, small_fw_ruleset, rng):
        clf = LinearSearchClassifier.build(small_fw_ruleset)
        fields = [
            rng.integers(0, 1 << 32, size=64, dtype=np.uint32),
            rng.integers(0, 1 << 32, size=64, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=64, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=64, dtype=np.uint32),
            rng.integers(0, 1 << 8, size=64, dtype=np.uint32),
        ]
        batch = clf.classify_batch(fields)
        for idx in range(64):
            header = tuple(int(f[idx]) for f in fields)
            expected = clf.classify(header)
            assert batch[idx] == (-1 if expected is None else expected)


class TestCostModel:
    def test_trace_stops_at_match(self, tiny_ruleset):
        clf = LinearSearchClassifier.build(tiny_ruleset)
        trace = clf.access_trace((0x0A000001, 0, 0, 80, 6))
        assert len(trace.reads) == 1  # rule 0 matches immediately
        assert trace.reads[0].nwords == RULE_WORDS

    def test_trace_scans_all_on_miss(self):
        rules = RuleSet([Rule.from_prefixes(sip="10.0.0.0/8")] * 1)
        rules.extend([Rule.from_prefixes(sip="11.0.0.0/8")])
        clf = LinearSearchClassifier.build(rules)
        trace = clf.access_trace((0x0C000000, 0, 0, 0, 0))
        assert len(trace.reads) == len(rules)
        assert trace.result is None

    def test_memory_is_six_words_per_rule(self, tiny_ruleset):
        clf = LinearSearchClassifier.build(tiny_ruleset)
        assert clf.memory_words() == len(tiny_ruleset) * RULE_WORDS
        assert clf.memory_bytes() == clf.memory_words() * 4
