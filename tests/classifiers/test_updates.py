"""Incremental-update layer tests, including a hypothesis state machine."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.classifiers import ExpCutsClassifier, HiCutsClassifier
from repro.classifiers.updates import UpdatableClassifier
from repro.core.interval import Interval
from repro.core.rule import Rule, RuleSet


def make(ruleset=None, threshold=32, base=ExpCutsClassifier):
    return UpdatableClassifier(ruleset or RuleSet([]), base,
                               rebuild_threshold=threshold)


HEADERS = [
    (0x0A000001, 0xC0A80105, 12345, 80, 6),
    (0x0B000001, 0x01020304, 2000, 53, 17),
    (0, 0, 0, 0, 0),
    (0xFFFFFFFF, 0xFFFFFFFF, 65535, 65535, 255),
]


def check_oracle(clf):
    oracle = clf.current_ruleset()
    for header in HEADERS:
        assert clf.classify(header) == oracle.first_match(header)


class TestBasicUpdates:
    def test_insert_append(self):
        clf = make()
        pos = clf.insert(Rule.from_prefixes(sip="10.0.0.0/8"))
        assert pos == 0
        assert clf.classify((0x0A000001, 0, 0, 0, 0)) == 0
        check_oracle(clf)

    def test_insert_at_head_takes_priority(self, tiny_ruleset):
        clf = make(tiny_ruleset)
        clf.insert(Rule.any("deny"), position=0)
        assert clf.classify((0x0A000001, 0xC0A80105, 12345, 80, 6)) == 0
        assert clf.rules[0].action == "deny"
        check_oracle(clf)

    def test_remove_shifts_priorities(self, tiny_ruleset):
        clf = make(tiny_ruleset)
        removed = clf.remove(0)
        assert removed.intervals[4] == Interval(6, 6)
        # The old rule 1 is now rule 0.
        assert clf.classify((0, 0xC0A80105, 0, 0, 0)) == 0
        check_oracle(clf)

    def test_remove_overlay_rule(self):
        clf = make()
        clf.insert(Rule.from_prefixes(sip="10.0.0.0/8"))
        clf.remove(0)
        assert clf.classify((0x0A000001, 0, 0, 0, 0)) is None
        assert len(clf) == 0

    def test_tombstone_slow_path(self, tiny_ruleset):
        clf = make(tiny_ruleset, threshold=100)
        header = (0x0A000001, 0xC0A80105, 12345, 80, 6)
        assert clf.classify(header) == 0
        clf.remove(0)  # tombstones the base's winner for this header
        result = clf.classify(header)
        assert result == clf.current_ruleset().first_match(header)
        assert clf.stats.slow_path_lookups >= 1

    def test_bad_positions(self, tiny_ruleset):
        clf = make(tiny_ruleset)
        with pytest.raises(IndexError):
            clf.insert(Rule.any(), position=99)
        with pytest.raises(IndexError):
            clf.remove(99)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            make(threshold=0)


class TestRebuild:
    def test_threshold_triggers_rebuild(self, tiny_ruleset):
        clf = make(tiny_ruleset, threshold=3)
        start = clf.stats.rebuilds
        for i in range(3):
            clf.insert(Rule.from_prefixes(sip=f"{20 + i}.0.0.0/8"))
        assert clf.stats.rebuilds > start
        assert clf.pending_updates == 0
        check_oracle(clf)

    def test_manual_rebuild(self, tiny_ruleset):
        clf = make(tiny_ruleset, threshold=100)
        clf.insert(Rule.any("deny"), position=0)
        assert clf.pending_updates == 1
        clf.rebuild()
        assert clf.pending_updates == 0
        check_oracle(clf)

    def test_works_with_hicuts_base(self, tiny_ruleset):
        clf = make(tiny_ruleset, base=HiCutsClassifier)
        clf.insert(Rule.from_prefixes(dport=9999), position=1)
        check_oracle(clf)


def _small_rule(sip_octet: int, dport: int) -> Rule:
    return Rule.from_prefixes(sip=f"{sip_octet}.0.0.0/8", dport=dport)


class UpdateMachine(RuleBasedStateMachine):
    """Random insert/remove/lookup sequences vs the linear oracle."""

    @initialize()
    def setup(self):
        self.clf = UpdatableClassifier(
            RuleSet([Rule.any("deny")]), ExpCutsClassifier,
            rebuild_threshold=4,
        )

    @rule(octet=st.integers(1, 6), dport=st.integers(0, 3),
          head=st.booleans())
    def insert(self, octet, dport, head):
        self.clf.insert(_small_rule(octet, dport),
                        position=0 if head else None)

    @rule(frac=st.floats(0, 0.999))
    def remove(self, frac):
        if len(self.clf) > 1:
            self.clf.remove(int(frac * len(self.clf)))

    @invariant()
    def agrees_with_oracle(self):
        oracle = self.clf.current_ruleset()
        for octet in (1, 3, 7):
            for dport in (0, 2, 9):
                header = (octet << 24, 0, 0, dport, 0)
                assert self.clf.classify(header) == oracle.first_match(header)


UpdateMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None,
)
TestUpdateMachine = UpdateMachine.TestCase
