"""Bit-vector classifier tests: vector fetch costs and correctness."""

import numpy as np

from repro.classifiers.bitvector import BitVectorClassifier
from repro.core.rule import Rule, RuleSet
from repro.rulesets import generate
from repro.rulesets.profiles import PROFILES


class TestLookup:
    def test_vector_reads_scale_with_rules(self):
        small = BitVectorClassifier.build(
            generate(PROFILES["CR01"], size=20, seed=5).with_default()
        )
        large = BitVectorClassifier.build(
            generate(PROFILES["CR01"], size=150, seed=5).with_default()
        )
        header = (1, 2, 3, 4, 5)
        small_words = small.access_trace(header).total_words
        large_words = large.access_trace(header).total_words
        # 5 * ceil(N/32) vector words dominate: the bandwidth signature.
        assert large_words > small_words

    def test_vector_read_sizes(self, small_fw_ruleset):
        clf = BitVectorClassifier.build(small_fw_ruleset)
        vw = max(1, (len(small_fw_ruleset) + 31) // 32)
        trace = clf.access_trace((1, 2, 3, 4, 5))
        vector_reads = [r for r in trace.reads if r.region.startswith("bvvec")]
        assert len(vector_reads) == 5
        assert all(r.nwords == vw for r in vector_reads)

    def test_batch_matches_scalar(self, small_cr_ruleset, rng):
        clf = BitVectorClassifier.build(small_cr_ruleset)
        fields = [
            rng.integers(0, 1 << 32, size=50, dtype=np.uint32),
            rng.integers(0, 1 << 32, size=50, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=50, dtype=np.uint32),
            rng.integers(0, 1 << 16, size=50, dtype=np.uint32),
            rng.integers(0, 1 << 8, size=50, dtype=np.uint32),
        ]
        batch = clf.classify_batch(fields)
        for idx in range(50):
            header = tuple(int(f[idx]) for f in fields)
            expected = clf.classify(header)
            assert batch[idx] == (-1 if expected is None else expected)

    def test_empty_ruleset(self):
        clf = BitVectorClassifier.build(RuleSet([]))
        assert clf.classify((0, 0, 0, 0, 0)) is None

    def test_priority_via_lowest_bit(self):
        rules = RuleSet([
            Rule.from_prefixes(sip="10.0.0.0/8"),
            Rule.any(),
        ])
        clf = BitVectorClassifier.build(rules)
        assert clf.classify((0x0A000001, 0, 0, 0, 0)) == 0
        assert clf.classify((0x0B000001, 0, 0, 0, 0)) == 1
