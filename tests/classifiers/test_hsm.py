"""HSM-specific behaviour: segment search, table hierarchy, Θ(log N)."""

import numpy as np

from repro.classifiers.hsm import HSMClassifier, _packed_words
from repro.core.rule import Rule, RuleSet
from repro.rulesets import generate
from repro.rulesets.profiles import PROFILES


class TestFieldSearch:
    def test_locate_boundaries(self, tiny_ruleset):
        clf = HSMClassifier.build(tiny_ruleset)
        sip_search = clf.fields[0]
        # Must resolve every value to the segment whose edge <= value.
        for value in (0, 1, 0x0A000000 - 1, 0x0A000000, 0x0AFFFFFF,
                      0x0B000000, 0xFFFFFFFF):
            seg = int(np.searchsorted(sip_search.edges, value, side="right")) - 1
            assert sip_search.edges[seg] <= value
            if seg + 1 < len(sip_search.edges):
                assert value < sip_search.edges[seg + 1]

    def test_depth_grows_with_rules(self):
        small = HSMClassifier.build(
            generate(PROFILES["CR01"], size=20, seed=5).with_default()
        )
        large = HSMClassifier.build(
            generate(PROFILES["CR01"], size=200, seed=5).with_default()
        )
        assert large.worst_case_accesses() > small.worst_case_accesses()


class TestTables:
    def test_final_table_resolves_rules(self, tiny_ruleset):
        clf = HSMClassifier.build(tiny_ruleset)
        assert clf.x6_rule.min() >= -1
        assert clf.x6_rule.max() < len(tiny_ruleset)

    def test_trace_has_four_table_reads(self, tiny_ruleset):
        clf = HSMClassifier.build(tiny_ruleset)
        trace = clf.access_trace((0x0A000001, 0xC0A80105, 1, 80, 6))
        tables = [r.region for r in trace.reads if r.region.startswith("x")]
        assert tables == ["x12", "x34", "x5", "x6"]
        assert all(r.nwords == 1 for r in trace.reads)

    def test_worst_case_matches_trace(self, small_fw_ruleset):
        clf = HSMClassifier.build(small_fw_ruleset)
        bound = clf.worst_case_accesses()
        rng = np.random.default_rng(7)
        for _ in range(30):
            header = tuple(int(rng.integers(0, 1 << w)) for w in (32, 32, 16, 16, 8))
            assert clf.access_trace(header).total_accesses <= bound

    def test_packed_words(self):
        small = np.zeros((10, 10), dtype=np.int64)
        assert _packed_words(small) == 50
        big = np.full((10, 10), 0x10000, dtype=np.int64)
        assert _packed_words(big) == 100
        assert _packed_words(np.zeros((0,), dtype=np.int64)) == 0


class TestEdgeCases:
    def test_single_rule(self):
        clf = HSMClassifier.build(RuleSet([Rule.from_prefixes(dip="1.2.3.0/24")]))
        assert clf.classify((0, 0x01020304, 0, 0, 0)) == 0
        assert clf.classify((0, 0x01020404, 0, 0, 0)) is None

    def test_all_wildcards(self):
        clf = HSMClassifier.build(RuleSet([Rule.any()]))
        assert clf.classify((1, 2, 3, 4, 5)) == 0

    def test_memory_grows_with_rules(self):
        small = HSMClassifier.build(
            generate(PROFILES["CR01"], size=20, seed=6).with_default()
        )
        large = HSMClassifier.build(
            generate(PROFILES["CR01"], size=200, seed=6).with_default()
        )
        assert large.memory_bytes() > small.memory_bytes()
