"""Aggregated bit-vector specifics."""

import numpy as np

from repro.classifiers.abv import ABVClassifier, _aggregate
from repro.classifiers.bitvector import BitVectorClassifier
from repro.core.rule import Rule, RuleSet
from repro.rulesets import generate
from repro.rulesets.profiles import PROFILES


class TestAggregate:
    def test_aggregate_bits(self):
        # Two segments, 3 chunks (96 rule bits over 2 uint64 words).
        masks = np.zeros((2, 2), dtype=np.uint64)
        masks[0, 0] = np.uint64(1)            # chunk 0 set
        masks[1, 1] = np.uint64(1 << 40)      # bit 104? no: word1 bit40 = rule 104
        agg = _aggregate(masks, num_chunks=4)
        assert int(agg[0][0]) & 1             # segment 0, chunk 0
        assert not int(agg[0][0]) >> 1 & 1
        # segment 1: rule bit 64+40=104 -> chunk 3
        assert int(agg[1][0]) >> 3 & 1

    def test_empty_chunks_skipped_in_trace(self):
        # 40 rules that never co-match -> aggregates prune chunk reads.
        rules = [Rule.from_prefixes(sip=f"{10 + i}.0.0.0/8") for i in range(40)]
        clf = ABVClassifier.build(RuleSet(rules))
        trace = clf.access_trace((0x0A000001, 0, 0, 0, 0))
        vec_reads = [r for r in trace.reads if r.region.startswith("abvvec")]
        # Only the single surviving chunk is fetched, once per field.
        assert len(vec_reads) == 5
        assert trace.result == 0


class TestBandwidthAdvantage:
    def test_fewer_words_than_plain_bv(self):
        # Aggregation pays once vectors span several chunks (N >> 32).
        ruleset = generate(PROFILES["CR01"], size=600, seed=5).with_default()
        abv = ABVClassifier.build(ruleset)
        bv = BitVectorClassifier.build(ruleset)
        header = (1, 2, 3, 4, 5)
        assert (abv.access_trace(header).total_words
                < bv.access_trace(header).total_words)

    def test_same_answers_as_bv(self, small_cr_ruleset, rng):
        abv = ABVClassifier.build(small_cr_ruleset)
        bv = BitVectorClassifier.build(small_cr_ruleset)
        for _ in range(40):
            header = tuple(int(rng.integers(0, 1 << w)) for w in (32, 32, 16, 16, 8))
            assert abv.classify(header) == bv.classify(header)


class TestEdgeCases:
    def test_empty(self):
        clf = ABVClassifier.build(RuleSet([]))
        assert clf.classify((0, 0, 0, 0, 0)) is None

    def test_single_rule(self):
        clf = ABVClassifier.build(RuleSet([Rule.from_prefixes(dip="1.2.3.0/24")]))
        assert clf.classify((0, 0x01020304, 0, 0, 0)) == 0
        assert clf.classify((0, 0x02020304, 0, 0, 0)) is None

    def test_priority(self):
        rules = RuleSet([Rule.from_prefixes(sip="10.0.0.0/8"), Rule.any()])
        clf = ABVClassifier.build(rules)
        assert clf.classify((0x0A000001, 0, 0, 0, 0)) == 0
        assert clf.classify((0x0B000001, 0, 0, 0, 0)) == 1
