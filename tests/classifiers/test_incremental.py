"""Incremental structure edits vs the linear oracle.

``UpdatableClassifier(incremental=True)`` absorbs inserts by node-local
re-cuts of the cutting trees instead of the overlay, tombstones removes,
and compacts (full rebuild) once garbage crosses the watermark.  Exact
first-match semantics must survive *any* interleaving of insert, remove
and forced compaction, on every tree algorithm — a hypothesis property
drives random sequences against the linear oracle, and deterministic
churn replays check each algorithm end to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers import (
    ExpCutsClassifier,
    HiCutsClassifier,
    HyperCutsClassifier,
)
from repro.classifiers.updates import UpdatableClassifier
from repro.core.rule import RuleSet
from repro.rulesets import churn_sequence, generate
from repro.rulesets.profiles import PROFILES

ALGOS = [ExpCutsClassifier, HiCutsClassifier, HyperCutsClassifier]


def probe_headers(rules):
    """Low corners of every rule's box, plus fixed extremes — the same
    spot-check family the validate-then-swap rebuild uses."""
    headers = [tuple(iv.lo for iv in rule.intervals) for rule in rules[:48]]
    headers.append((0, 0, 0, 0, 0))
    headers.append((0xFFFFFFFF, 0xFFFFFFFF, 65535, 65535, 255))
    return headers


def assert_oracle_equivalent(clf):
    oracle = clf.current_ruleset()
    for header in probe_headers(clf.rules):
        assert clf.classify(header) == oracle.first_match(header), header


@pytest.fixture(scope="module")
def churn_pool():
    ruleset = generate(PROFILES["FW01"], size=30, seed=21).with_default()
    return ruleset, churn_sequence(ruleset, 120, seed=21, flap_rate=0.35,
                                   locality=0.5)


@pytest.mark.parametrize("algo", ALGOS, ids=lambda a: a.name)
def test_churn_replay_oracle_equivalence(algo, churn_pool):
    """A deterministic 120-op churn stream, checked every 10 ops."""
    ruleset, ops = churn_pool
    clf = UpdatableClassifier(ruleset, algo, rebuild_threshold=16,
                              incremental=True, edit_budget=256,
                              compaction_watermark=0.3)
    for i, op in enumerate(ops):
        if op[0] == "insert":
            clf.insert(op[2], op[1])
        else:
            clf.remove(op[1])
        if i % 10 == 9:
            assert_oracle_equivalent(clf)
    assert_oracle_equivalent(clf)
    # The stream actually exercised the incremental machinery.
    assert clf.stats.incremental_inserts > 0


@pytest.mark.parametrize("algo", ALGOS, ids=lambda a: a.name)
def test_tiny_edit_budget_falls_back_to_overlay(algo, churn_pool):
    """Every in-place edit rejected (budget 1) -> overlay path, still
    exact."""
    ruleset, ops = churn_pool
    clf = UpdatableClassifier(ruleset, algo, rebuild_threshold=8,
                              incremental=True, edit_budget=1)
    for op in ops[:40]:
        if op[0] == "insert":
            clf.insert(op[2], op[1])
        else:
            clf.remove(op[1])
    assert_oracle_equivalent(clf)


def test_compaction_reclaims_tombstones():
    ruleset = generate(PROFILES["FW01"], size=24, seed=5).with_default()
    clf = UpdatableClassifier(ruleset, ExpCutsClassifier,
                              rebuild_threshold=1000, incremental=True,
                              compaction_watermark=0.25)
    for _ in range(10):  # > 25% of the snapshot: watermark must trip
        clf.remove(0)
    assert clf.stats.compactions >= 1
    # The compaction reclaimed every tombstone it saw; only removes
    # landed after it may still be pending (below the watermark).
    assert clf.pending_updates < 10 * (1 - 0.25)
    assert_oracle_equivalent(clf)


@pytest.mark.parametrize("algo", ALGOS, ids=lambda a: a.name)
def test_insert_after_tombstoned_winner_keeps_slow_path(algo):
    """Regression: a leaf whose winner was tombstoned routes lookups to
    the exact slow path.  A later lower-priority insert covering the
    same region must NOT replace that leaf — doing so masked live rules
    the leaf no longer referenced (the tombstone was the only thing
    keeping the slow path engaged)."""
    from repro.core.rule import Rule

    rules = RuleSet([
        Rule.any(),                              # 0: leaf winner
        Rule.from_prefixes(sip="10.0.0.0/8"),    # 1: the masked rule
        Rule.any(),                              # 2: default
    ])
    clf = UpdatableClassifier(rules, algo, rebuild_threshold=1000,
                              incremental=True, compaction_watermark=0.99)
    header = (10 << 24, 0, 0, 0, 0)
    clf.remove(0)  # tombstone the winner: lookups now slow-path to 0
    assert clf.classify(header) == 0
    clf.insert(Rule.from_prefixes(sip="10.0.0.0/16"), 1)
    # First match is still the /8 at position 0, not the new /16.
    assert clf.classify(header) == 0
    assert_oracle_equivalent(clf)


def test_backlog_settles_to_zero():
    ruleset = generate(PROFILES["FW01"], size=24, seed=6).with_default()
    clf = UpdatableClassifier(ruleset, HiCutsClassifier,
                              rebuild_threshold=64, incremental=True)
    ops = churn_sequence(ruleset, 30, seed=6)
    for op in ops:
        if op[0] == "insert":
            clf.insert(op[2], op[1])
        else:
            clf.remove(op[1])
    if clf.rebuild_backlog:
        assert clf.rebuild()
    assert clf.rebuild_backlog == 0
    assert_oracle_equivalent(clf)


# -- hypothesis property: random op sequences -------------------------------

_BASE_RULES = generate(PROFILES["FW01"], size=16, seed=33).with_default()
_FRESH = generate(PROFILES["FW01"], size=64, seed=34).rules

op_strategy = st.lists(
    st.tuples(st.sampled_from(["insert", "remove", "compact"]),
              st.integers(0, 63), st.floats(0, 0.999)),
    min_size=1, max_size=25,
)


@settings(max_examples=25, deadline=None)
@given(ops=op_strategy, algo_index=st.integers(0, len(ALGOS) - 1))
def test_random_sequences_oracle_equivalent(ops, algo_index):
    """Any insert/remove/compact interleaving preserves exact
    first-match, including tiny edit budgets that force rejects."""
    clf = UpdatableClassifier(_BASE_RULES, ALGOS[algo_index],
                              rebuild_threshold=6, incremental=True,
                              edit_budget=64, compaction_watermark=0.3)
    for kind, pick, frac in ops:
        if kind == "insert":
            clf.insert(_FRESH[pick], int(frac * (len(clf.rules) + 1)))
        elif kind == "remove" and len(clf.rules) > 1:
            clf.remove(int(frac * len(clf.rules)))
        elif kind == "compact":
            clf.rebuild()
    assert_oracle_equivalent(clf)
