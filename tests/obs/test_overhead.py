"""The disabled observability path must stay within 3% of uninstrumented.

The serving pipeline always calls through its stage timer and metric
scope; when no timer/registry was injected those are the shared null
objects.  This test measures a serve-shaped loop (a classify-sized
chunk of work per request) bare vs. fully null-instrumented (two spans
plus a counter and a histogram observation per request) and bounds the
difference.  Min-of-N timing keeps scheduler noise out of the
comparison; a couple of attempts absorb the rest.
"""

import time

import pytest

from repro.obs import NULL_STAGE_TIMER
from repro.obs.metrics import _NULL_SCOPE

#: Acceptance bound on disabled-path overhead (relative).
MAX_OVERHEAD = 0.03

REQUESTS = 50


def _classify_work():
    """A deterministic classify-sized unit of work (~100 µs)."""
    total = 0
    for i in range(2_000):
        total += i * i
    return total


def _bare_batch():
    for _ in range(REQUESTS):
        _classify_work()


def _instrumented_batch():
    counter = _NULL_SCOPE.counter("serve.served")
    hist = _NULL_SCOPE.log_histogram("serve.latency_us")
    for _ in range(REQUESTS):
        with NULL_STAGE_TIMER.span("admission"):
            pass
        with NULL_STAGE_TIMER.span("classify"):
            _classify_work()
        counter.inc()
        hist.observe(60.0)


def _best_of(fn, repeats=15):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledOverhead:
    def test_null_objects_are_shared_singletons(self):
        # Zero allocation on the disabled path: every call returns the
        # same preallocated objects.
        assert NULL_STAGE_TIMER.span("a") is NULL_STAGE_TIMER.span("b")
        assert _NULL_SCOPE.counter("x") is _NULL_SCOPE.counter("y")
        assert _NULL_SCOPE.log_histogram("x") is _NULL_SCOPE.histogram("y")

    def test_overhead_within_three_percent(self):
        _bare_batch(), _instrumented_batch()  # warm up both paths
        ratio = None
        for _attempt in range(4):
            bare = _best_of(_bare_batch)
            instrumented = _best_of(_instrumented_batch)
            ratio = instrumented / bare
            if ratio <= 1.0 + MAX_OVERHEAD:
                return
        pytest.fail(
            f"disabled-path instrumentation costs "
            f"{(ratio - 1.0) * 100:.2f}% on a serve-shaped loop "
            f"(bound {MAX_OVERHEAD * 100:.0f}%)")
