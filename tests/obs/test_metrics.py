"""The metrics registry: instruments, scoping, and the disabled state."""

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    metrics_scope,
)
from repro.obs.metrics import _NULL, _NULL_SCOPE


@pytest.fixture(autouse=True)
def metrics_disabled_after():
    """Never leak an enabled registry into other tests."""
    yield
    disable_metrics()


class TestDisabledState:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert get_registry() is None

    def test_null_scope_is_shared_and_inert(self):
        scope = metrics_scope("anything")
        assert scope is _NULL_SCOPE
        assert scope.scope("nested") is _NULL_SCOPE
        # All instrument types collapse to the one null instrument.
        assert scope.counter("c") is _NULL
        assert scope.gauge("g") is _NULL
        assert scope.histogram("h") is _NULL
        # And every operation is a no-op, not an error.
        scope.counter("c").inc()
        scope.gauge("g").set(1.0)
        scope.histogram("h").observe(5)


class TestEnabledRegistry:
    def test_enable_disable_roundtrip(self):
        reg = enable_metrics()
        assert metrics_enabled() and get_registry() is reg
        disable_metrics()
        assert not metrics_enabled() and get_registry() is None

    def test_scope_prefixes_names(self):
        reg = enable_metrics()
        scope = metrics_scope("npsim").scope("channel.sram0")
        scope.counter("words").inc(64)
        assert reg.counters["npsim.channel.sram0.words"].value == 64

    def test_instruments_are_memoised(self):
        reg = enable_metrics()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_counter_and_gauge(self):
        reg = enable_metrics()
        reg.counter("n").inc()
        reg.counter("n").inc(4)
        reg.gauge("u").set(0.25)
        reg.gauge("u").set(0.75)  # last write wins
        snap = reg.snapshot()
        assert snap["counters"]["n"] == 5
        assert snap["gauges"]["u"] == 0.75

    def test_reset(self):
        reg = enable_metrics()
        reg.counter("n").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_render_mentions_every_instrument(self):
        reg = enable_metrics()
        reg.counter("packets").inc(7)
        reg.gauge("busy").set(0.5)
        reg.histogram("depth").observe(13)
        text = reg.render()
        assert "packets" in text and "busy" in text and "depth" in text


class TestHistogram:
    def test_stats(self):
        h = Histogram("depth")
        for v in (13, 13, 13, 7, 5):
            h.observe(v)
        assert h.total == 5
        assert h.max == 13
        assert h.mean == pytest.approx(51 / 5)
        assert h.counts == {13: 3, 7: 1, 5: 1}

    def test_percentile(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(0.5) == 50
        assert h.percentile(0.99) == 99
        assert h.percentile(1.0) == 100

    def test_empty(self):
        h = Histogram("x")
        assert h.mean == 0.0 and h.max == 0.0 and h.percentile(0.5) == 0.0

    def test_to_dict_keys_are_strings(self):
        h = Histogram("x")
        h.observe(3)
        assert h.to_dict()["counts"] == {"3": 1}


def test_registry_isolated_per_enable():
    first = enable_metrics()
    first.counter("n").inc()
    second = enable_metrics(MetricsRegistry())
    assert get_registry() is second
    assert "n" not in second.counters
