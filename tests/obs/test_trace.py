"""Decision tracing: traced lookups equal untraced lookups equal the
linear oracle, and ExpCuts' traced depth honours the paper's bound."""

import pytest
from hypothesis import given, settings

from repro.classifiers import (
    ALGORITHMS,
    ExpCutsClassifier,
    HiCutsClassifier,
    LinearSearchClassifier,
)
from repro.obs import DecisionTrace, disable_metrics, enable_metrics
from repro.traffic import corner_case_trace, matched_trace

from ..conftest import header_strategy, ruleset_strategy


@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
class TestTracedEqualsUntraced:
    """The central telemetry property, per registered algorithm."""

    def test_matched_traffic(self, algo, small_fw_ruleset):
        clf = ALGORITHMS[algo].build(small_fw_ruleset)
        oracle = LinearSearchClassifier.build(small_fw_ruleset)
        traffic = matched_trace(small_fw_ruleset, 120, seed=33)
        for idx in range(len(traffic)):
            header = traffic.header(idx)
            dtrace = DecisionTrace()
            traced = clf.classify(header, trace=dtrace)
            assert traced == clf.classify(header)
            assert traced == oracle.classify(header)
            assert dtrace.result == traced
            assert dtrace.algorithm == clf.name
            assert dtrace.steps, "a traced lookup must record its path"

    def test_corner_cases(self, algo, small_cr_ruleset):
        clf = ALGORITHMS[algo].build(small_cr_ruleset)
        traffic = corner_case_trace(small_cr_ruleset)
        for idx in range(min(len(traffic), 150)):
            header = traffic.header(idx)
            dtrace = DecisionTrace()
            assert clf.classify(header, trace=dtrace) == clf.classify(header)

    def test_aggregates_are_consistent(self, algo, small_fw_ruleset):
        clf = ALGORITHMS[algo].build(small_fw_ruleset)
        traffic = matched_trace(small_fw_ruleset, 20, seed=5)
        for idx in range(len(traffic)):
            dtrace = DecisionTrace()
            clf.classify(traffic.header(idx), trace=dtrace)
            assert dtrace.total_words >= dtrace.total_accesses >= 1
            assert dtrace.depth + dtrace.linear_search_length <= len(dtrace.steps)


class TestExpCutsDepthBound:
    def test_depth_never_exceeds_bound(self, small_fw_ruleset):
        clf = ExpCutsClassifier.build(small_fw_ruleset)
        bound = clf.tree.depth_bound
        assert bound <= 13, "5-tuple W/w bound from the paper"
        traffic = matched_trace(small_fw_ruleset, 300, seed=7)
        for idx in range(len(traffic)):
            dtrace = DecisionTrace()
            clf.classify(traffic.header(idx), trace=dtrace)
            assert dtrace.depth <= bound
            assert dtrace.linear_search_length == 0, \
                "ExpCuts has no leaf linear search"

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=25, deadline=None)
    def test_depth_bound_hypothesis(self, ruleset, header):
        clf = ExpCutsClassifier.build(ruleset)
        dtrace = DecisionTrace()
        assert clf.classify(header, trace=dtrace) == ruleset.first_match(header)
        assert dtrace.depth <= clf.tree.depth_bound <= 13

    def test_popcounts_recorded(self, small_fw_ruleset):
        clf = ExpCutsClassifier.build(small_fw_ruleset)
        traffic = matched_trace(small_fw_ruleset, 10, seed=9)
        dtrace = DecisionTrace()
        clf.classify(traffic.header(0), trace=dtrace)
        pops = dtrace.popcounts
        assert pops and all(p >= 0 for p in pops)


class TestHiCutsTrace:
    def test_linear_search_recorded(self, small_fw_ruleset):
        clf = HiCutsClassifier.build(small_fw_ruleset, binth=4)
        traffic = matched_trace(small_fw_ruleset, 200, seed=13)
        lengths = []
        for idx in range(len(traffic)):
            dtrace = DecisionTrace()
            clf.classify(traffic.header(idx), trace=dtrace)
            lengths.append(dtrace.linear_search_length)
        # binth=4 leaves: some lookup somewhere must scan more than one rule.
        assert max(lengths) >= 1

    @given(ruleset_strategy(max_rules=8), header_strategy())
    @settings(max_examples=25, deadline=None)
    def test_traced_equals_oracle_hypothesis(self, ruleset, header):
        clf = HiCutsClassifier.build(ruleset, binth=2)
        dtrace = DecisionTrace()
        assert clf.classify(header, trace=dtrace) == ruleset.first_match(header)


class TestRendering:
    def test_pretty_and_to_dict(self, tiny_ruleset):
        clf = ExpCutsClassifier.build(tiny_ruleset)
        dtrace = DecisionTrace()
        header = (0x0A000001, 0xC0A80105, 12345, 80, 6)
        result = clf.classify(header, trace=dtrace)
        text = dtrace.pretty()
        assert "expcuts" in text and f"rule {result}" in text
        dump = dtrace.to_dict()
        assert dump["result"] == result
        assert dump["depth"] == dtrace.depth
        assert len(dump["steps"]) == len(dtrace.steps)


def test_traced_lookup_emits_metrics(small_fw_ruleset):
    clf = ExpCutsClassifier.build(small_fw_ruleset)
    traffic = matched_trace(small_fw_ruleset, 5, seed=1)
    reg = enable_metrics()
    try:
        for idx in range(len(traffic)):
            clf.classify(traffic.header(idx), trace=DecisionTrace())
        assert reg.counters["classify.expcuts.lookups"].value == len(traffic)
        assert reg.histograms["classify.expcuts.depth"].total == len(traffic)
    finally:
        disable_metrics()
