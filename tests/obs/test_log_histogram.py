"""LogHistogram: bounded buckets, bounded error, lossless merge."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LogHistogram
from repro.obs.metrics import MetricsRegistry


def _fill(values):
    hist = LogHistogram("t")
    for value in values:
        hist.observe(value)
    return hist


def _reference_percentile(values, q):
    """Exact percentile over a sorted copy, same rank convention as the
    histogram: the smallest value whose rank covers ``q * n``."""
    ordered = sorted(values)
    need = q * len(ordered)
    rank = max(1, math.ceil(need))
    return ordered[min(rank, len(ordered)) - 1]


class TestBasics:
    def test_empty(self):
        hist = LogHistogram("t")
        assert hist.total == 0
        assert hist.percentile(0.5) == 0.0
        assert hist.max == 0.0 and hist.min == 0.0

    def test_exact_min_max_mean(self):
        hist = _fill([10.0, 20.0, 400.0])
        assert hist.min == 10.0
        assert hist.max == 400.0  # exact, not a bucket edge
        assert hist.mean == pytest.approx(430.0 / 3)

    def test_single_value_percentiles_are_exact(self):
        hist = _fill([60.0])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == 60.0

    def test_nan_ignored_negative_clamped_to_zero_bucket(self):
        hist = _fill([float("nan"), -5.0, 0.0])
        assert hist.total == 2  # NaN dropped
        assert hist.counts == {LogHistogram.ZERO_BUCKET: 2}
        assert hist.percentile(0.5) == 0.0

    def test_percentiles_summary_shape(self):
        hist = _fill([1.0, 2.0, 3.0])
        summary = hist.percentiles()
        assert set(summary) == {"p50", "p90", "p99", "p999", "max"}
        assert summary["max"] == 3.0

    def test_to_dict_roundtrips_buckets(self):
        hist = _fill([5.0, 500.0])
        payload = hist.to_dict()
        assert payload["kind"] == "log"
        assert payload["total"] == 2
        assert sum(payload["buckets"].values()) == 2


class TestBoundedBuckets:
    def test_max_buckets_is_fixed_memory(self):
        # ~1400 buckets cover 24 decades at 4% resolution; the point is
        # that the bound exists and is small, whatever the data does.
        assert LogHistogram.MAX_BUCKETS < 1500

    def test_adversarial_range_respects_bound(self):
        hist = LogHistogram("t")
        # Denormals, zeros, huge values — 600+ decades of spread.
        for exp in range(-320, 309):
            hist.observe(10.0 ** exp)
        hist.observe(0.0)
        hist.observe(1e300)
        assert len(hist.counts) <= LogHistogram.MAX_BUCKETS
        assert hist.total == 631

    @given(st.lists(st.floats(min_value=0.0, max_value=1e308,
                              allow_nan=False), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_bucket_count_bounded_property(self, values):
        hist = _fill(values)
        assert len(hist.counts) <= LogHistogram.MAX_BUCKETS
        assert hist.total == len(values)


class TestPercentileAccuracy:
    @given(
        st.lists(st.floats(min_value=1e-6, max_value=1e12,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=200),
        st.sampled_from([0.25, 0.5, 0.9, 0.99, 0.999, 1.0]),
    )
    @settings(max_examples=200, deadline=None)
    def test_within_five_percent_of_sorted_reference(self, values, q):
        """The headline guarantee: any quantile is within ~5% relative
        error of the exact sorted-list answer (4% buckets give <= half
        a bucket of error, plus the min/max clamp only tightens)."""
        hist = _fill(values)
        reference = _reference_percentile(values, q)
        got = hist.percentile(q)
        assert got == pytest.approx(reference, rel=0.05)

    def test_p100_is_exact_max(self):
        values = [3.0, 17.5, 9_999.25]
        hist = _fill(values)
        assert hist.percentile(1.0) == 9_999.25

    def test_distinguishes_close_tail_values(self):
        # 60 vs 90 land in different 4% buckets: the quantized-integer
        # histogram this replaces reported both at the same edge.
        hist = _fill([60.0] * 99 + [90.0])
        assert hist.percentile(0.5) < 70.0
        assert hist.percentile(1.0) == 90.0


class TestMerge:
    def test_merge_equals_pooled_observation(self):
        a_values = [1.5, 80.0, 3_000.0]
        b_values = [0.2, 80.0, 9.9]
        merged = _fill(a_values)
        merged.merge(_fill(b_values))
        pooled = _fill(a_values + b_values)
        assert merged.counts == pooled.counts
        assert merged.total == pooled.total
        assert merged.min == pooled.min
        assert merged.max == pooled.max
        for q in (0.1, 0.5, 0.9, 1.0):
            assert merged.percentile(q) == pooled.percentile(q)

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e9,
                              allow_nan=False), max_size=50),
           st.lists(st.floats(min_value=1e-3, max_value=1e9,
                              allow_nan=False), max_size=50),
           st.lists(st.floats(min_value=1e-3, max_value=1e9,
                              allow_nan=False), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative(self, xs, ys, zs):
        left = _fill(xs)
        ab = _fill(ys)
        left.merge(ab)  # does not consume the arguments' data below
        left_c = _fill(zs)
        left.merge(left_c)

        right_bc = _fill(ys)
        right_bc.merge(_fill(zs))
        right = _fill(xs)
        right.merge(right_bc)

        assert left.counts == right.counts
        assert left.total == right.total
        assert left._sum == pytest.approx(right._sum)
        assert left.min == right.min and left.max == right.max

    def test_registry_merge_dispatches_by_kind(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        child.log_histogram("latency_us").observe(42.0)
        child.histogram("depth").observe(3)
        parent.merge(child)
        assert isinstance(parent.histograms["latency_us"], LogHistogram)
        assert parent.log_histogram("latency_us").total == 1
        assert parent.histogram("depth").total == 1

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.log_histogram("latency_us")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("latency_us")
