"""SLO declarations, sliding-window bucketing and burn-rate math."""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import SLO, SLOMonitor


def _feed(monitor, t, offered=0, served=0, shed=0, errors=0,
          divergences=0, latencies=()):
    monitor.count(t, "offered", offered)
    monitor.count(t, "served", served)
    monitor.count(t, "shed", shed)
    monitor.count(t, "errors", errors)
    monitor.count(t, "divergences", divergences)
    for latency_us in latencies:
        monitor.observe_latency(t, latency_us)


class TestSLODeclaration:
    def test_floor_and_ceiling_semantics(self):
        floor = SLO("goodput", "goodput_kpps", 5.0, kind="floor")
        assert floor.violated_by(4.9)
        assert not floor.violated_by(5.0)
        ceiling = SLO("p99", "latency_us_p99", 300.0, kind="ceiling")
        assert ceiling.violated_by(300.1)
        assert not ceiling.violated_by(300.0)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SLO("x", "m", 1.0, kind="sideways")

    def test_budget_fraction_range_validated(self):
        with pytest.raises(ConfigurationError):
            SLO("x", "m", 1.0, budget_fraction=1.0)
        with pytest.raises(ConfigurationError):
            SLO("x", "m", 1.0, budget_fraction=-0.1)

    def test_duplicate_slo_names_rejected(self):
        slos = [SLO("same", "served", 1.0), SLO("same", "shed", 1.0)]
        with pytest.raises(ConfigurationError):
            SLOMonitor(slos, window_s=1.0)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SLOMonitor([], window_s=0.0)


class TestWindowing:
    def test_outcomes_bucket_by_timestamp(self):
        monitor = SLOMonitor([], window_s=1.0)
        _feed(monitor, 0.2, offered=2, served=2)
        _feed(monitor, 0.9, offered=1, served=1)
        _feed(monitor, 1.5, offered=4, shed=4)
        rows = monitor.timeseries()
        assert [row["t"] for row in rows] == [0.0, 1.0]
        assert rows[0]["offered"] == 3 and rows[0]["served"] == 3
        assert rows[1]["shed"] == 4 and rows[1]["shed_rate"] == 1.0

    def test_derived_metrics_per_window(self):
        monitor = SLOMonitor([], window_s=0.5)
        _feed(monitor, 0.1, offered=10, served=8, shed=2,
              latencies=[60.0] * 8)
        row = monitor.timeseries()[0]
        assert row["goodput_kpps"] == pytest.approx(8 / 0.5 / 1e3)
        assert row["served_fraction"] == pytest.approx(0.8)
        assert row["shed_rate"] == pytest.approx(0.2)
        assert row["latency_us_p99"] == pytest.approx(60.0, rel=0.05)
        assert row["latency_us_max"] == 60.0

    def test_unknown_counter_name_rejected(self):
        monitor = SLOMonitor([], window_s=1.0)
        with pytest.raises(ConfigurationError, match="unknown window"):
            monitor.count(0.0, "throughput")


class TestEvaluation:
    def test_zero_tolerance_burns_infinitely_on_any_violation(self):
        monitor = SLOMonitor(
            [SLO("no-div", "divergences", 0.0, kind="ceiling")],
            window_s=1.0)
        _feed(monitor, 0.5, offered=5, served=5)
        _feed(monitor, 1.5, offered=5, served=4, divergences=1)
        report = monitor.evaluate()
        slo = report["slos"]["no-div"]
        assert slo["violations"] == 1
        assert math.isinf(slo["burn_rate"])
        assert not slo["compliant"] and not report["ok"]
        with pytest.raises(AssertionError, match="no-div"):
            monitor.check()

    def test_budget_absorbs_bounded_violations(self):
        slo = SLO("goodput", "goodput_kpps", 4.0, kind="floor",
                  budget_fraction=0.5)
        monitor = SLOMonitor([slo], window_s=1.0)
        _feed(monitor, 0.5, offered=5000, served=5000)  # 5 kpps: ok
        _feed(monitor, 1.5, offered=5000, served=1000)  # 1 kpps: violates
        report = monitor.evaluate()
        judged = report["slos"]["goodput"]
        assert judged["violations"] == 1
        assert judged["burn_rate"] == pytest.approx(1.0)  # 0.5 / 0.5
        assert judged["compliant"] and report["ok"]
        monitor.check()  # must not raise at burn rate exactly 1.0

    def test_burn_rate_above_one_fails(self):
        slo = SLO("shed", "shed_rate", 0.5, kind="ceiling",
                  budget_fraction=0.25)
        monitor = SLOMonitor([slo], window_s=1.0)
        for window in range(4):
            shed = 10 if window < 2 else 0
            _feed(monitor, window + 0.5, offered=10, served=10 - shed,
                  shed=shed)
        judged = monitor.evaluate()["slos"]["shed"]
        assert judged["violation_fraction"] == pytest.approx(0.5)
        assert judged["burn_rate"] == pytest.approx(2.0)
        assert not judged["compliant"]

    def test_idle_windows_spend_no_budget(self):
        slo = SLO("goodput", "goodput_kpps", 4.0, kind="floor")
        monitor = SLOMonitor([slo], window_s=1.0)
        _feed(monitor, 0.5, offered=5000, served=5000)
        monitor.observe_latency(1.5, 60.0)  # latency but zero offered
        report = monitor.evaluate()
        assert report["slos"]["goodput"]["windows_evaluated"] == 1
        assert report["ok"]

    def test_worst_value_reported_per_kind(self):
        monitor = SLOMonitor(
            [SLO("floor", "served_fraction", 0.1, kind="floor"),
             SLO("ceil", "shed_rate", 0.9, kind="ceiling")],
            window_s=1.0)
        _feed(monitor, 0.5, offered=10, served=8, shed=2)
        _feed(monitor, 1.5, offered=10, served=4, shed=6)
        slos = monitor.evaluate()["slos"]
        assert slos["floor"]["worst"] == pytest.approx(0.4)  # min
        assert slos["ceil"]["worst"] == pytest.approx(0.6)   # max

    def test_unknown_metric_name_raises(self):
        monitor = SLOMonitor([SLO("x", "not_a_metric", 1.0)], window_s=1.0)
        _feed(monitor, 0.5, offered=1, served=1)
        with pytest.raises(ConfigurationError, match="unknown metric"):
            monitor.evaluate()

    def test_timeseries_rides_along_in_the_report(self):
        monitor = SLOMonitor([], window_s=1.0)
        _feed(monitor, 0.5, offered=1, served=1)
        report = monitor.evaluate()
        assert report["windows"] == 1
        assert len(report["timeseries"]) == 1
        assert report["ok"]
