"""BENCH_*.json perf records and the regression checker's comparison."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs import extract_throughput, read_bench_record, write_bench_record

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression",
        REPO_ROOT / "scripts" / "check_bench_regression.py",
    )
    module = importlib.util.module_from_spec(spec)
    # Importing a script by path must not drop scripts/__pycache__ into
    # the tree — CI fails on stray build artifacts.
    was = sys.dont_write_bytecode
    sys.dont_write_bytecode = True
    try:
        spec.loader.exec_module(module)
    finally:
        sys.dont_write_bytecode = was
    return module


class TestExtractThroughput:
    def test_flat_and_nested(self):
        data = {
            "gbps": 7.1,
            "nested": {"analytic_gbps": 8.0, "threads": 71},
            "label": "ignored",
        }
        assert extract_throughput(data) == {
            "gbps": 7.1, "nested.analytic_gbps": 8.0,
        }

    def test_lists_of_points(self):
        data = {"forced": [{"rules": 1, "mbps": 5400.0},
                           {"rules": 8, "mbps": 2600.0}]}
        assert extract_throughput(data) == {
            "forced.0.mbps": 5400.0, "forced.1.mbps": 2600.0,
        }

    def test_bools_and_scalars_ignored(self):
        assert extract_throughput({"gbps_ok": True, "x": 3}) == {}
        assert extract_throughput(7.0) == {}

    def test_serving_layer_units_matched(self):
        """Regression: the serving soaks report kpps/goodput figures,
        which the link-rate-only unit list used to drop silently."""
        data = {
            "goodput_kpps": 5.2,
            "serving": {"kpps": 4.4, "goodput": 0.91},
            "latency_us_p99": 90.0,
        }
        assert extract_throughput(data) == {
            "goodput_kpps": 5.2,
            "serving.kpps": 4.4,
            "serving.goodput": 0.91,
        }


class TestBenchRecords:
    def test_roundtrip(self, tmp_path):
        path = write_bench_record("fig9", {"cr04.gbps": 6.9}, 12.5,
                                  root=tmp_path)
        assert path == tmp_path / "BENCH_fig9.json"
        record = read_bench_record(path)
        assert record["benchmark"] == "fig9"
        assert record["metrics"] == {"cr04.gbps": 6.9}
        assert record["wall_time_s"] == 12.5
        assert record["date"]  # ISO stamp present

    def test_record_is_stable_json(self, tmp_path):
        path = write_bench_record("x", {"b.gbps": 1.0, "a.gbps": 2.0}, 0.1,
                                  root=tmp_path)
        text = path.read_text()
        # Sorted metric keys keep committed diffs minimal.
        assert text.index('"a.gbps"') < text.index('"b.gbps"')
        json.loads(text)

    def test_extra_section_recorded_but_optional(self, tmp_path):
        bare = read_bench_record(
            write_bench_record("bare", {"gbps": 1.0}, 0.1, root=tmp_path))
        assert "extra" not in bare
        rich = read_bench_record(write_bench_record(
            "rich", {"gbps": 1.0}, 0.1, root=tmp_path,
            extra={"p99_us": 90.0, "shed_rate": 0.3}))
        assert rich["extra"] == {"p99_us": 90.0, "shed_rate": 0.3}

    def test_interrupt_mid_write_preserves_old_record(self, tmp_path,
                                                      monkeypatch):
        """Ctrl-C during a bench-record publish must leave the previous
        committed record intact and drop no temp debris."""
        import os as _os

        path = write_bench_record("soak", {"gbps": 5.0}, 1.0, root=tmp_path)
        real_replace = _os.replace

        def boom(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(_os, "replace", boom)
        try:
            with pytest.raises(KeyboardInterrupt):
                write_bench_record("soak", {"gbps": 9.0}, 1.0, root=tmp_path)
        finally:
            monkeypatch.setattr(_os, "replace", real_replace)

        assert read_bench_record(path)["metrics"] == {"gbps": 5.0}
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["BENCH_soak.json"]


class TestSchemaVersion:
    def test_written_records_carry_current_version(self, tmp_path):
        from repro.obs import SCHEMA_VERSION

        record = read_bench_record(
            write_bench_record("v", {"gbps": 1.0}, 0.1, root=tmp_path))
        assert record["schema_version"] == SCHEMA_VERSION

    def test_absent_version_is_implicit_v1(self):
        checker = _load_checker()
        record = {"benchmark": "x", "wall_time_s": 1.0, "date": "d",
                  "metrics": {"gbps": 1.0}}
        assert checker.validate(record) == []

    def test_known_versions_pass(self):
        checker = _load_checker()
        for version in checker.KNOWN_SCHEMA_VERSIONS:
            record = {"benchmark": "x", "schema_version": version,
                      "wall_time_s": 1.0, "date": "d",
                      "metrics": {"gbps": 1.0}}
            assert checker.validate(record) == []

    def test_unknown_version_flagged(self):
        checker = _load_checker()
        record = {"benchmark": "x", "schema_version": 99,
                  "wall_time_s": 1.0, "date": "d",
                  "metrics": {"gbps": 1.0}}
        assert any("schema_version" in p for p in checker.validate(record))

    def test_non_integer_version_flagged(self):
        checker = _load_checker()
        for bad in ("2", 2.5, True, None):
            record = {"benchmark": "x", "schema_version": bad,
                      "wall_time_s": 1.0, "date": "d",
                      "metrics": {"gbps": 1.0}}
            assert any("schema_version" in p
                       for p in checker.validate(record)), bad

    def test_cli_exits_2_on_unknown_version(self, tmp_path):
        import subprocess

        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "BENCH_future.json").write_text(json.dumps({
            "benchmark": "future", "schema_version": 99,
            "metrics": {"gbps": 1.0}, "wall_time_s": 1.0,
            "date": "2026-01-01T00:00:00+00:00",
        }))
        out = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts"
                                 / "check_bench_regression.py")],
            cwd=tmp_path, capture_output=True, text=True,
        )
        assert out.returncode == 2
        assert "schema_version" in out.stdout


class TestRegressionCompare:
    def test_within_tolerance_passes(self):
        checker = _load_checker()
        fresh = {"metrics": {"gbps": 6.0}}
        base = {"metrics": {"gbps": 6.5}}
        assert checker.compare(fresh, base, threshold=0.15) == []

    def test_large_drop_fails(self):
        checker = _load_checker()
        fresh = {"metrics": {"gbps": 4.0}}
        base = {"metrics": {"gbps": 6.5}}
        problems = checker.compare(fresh, base, threshold=0.15)
        assert len(problems) == 1 and "gbps" in problems[0]

    def test_improvements_and_new_metrics_pass(self):
        checker = _load_checker()
        fresh = {"metrics": {"gbps": 9.0, "new.mpps": 1.0}}
        base = {"metrics": {"gbps": 6.0}}
        assert checker.compare(fresh, base, threshold=0.15) == []

    def test_zero_baseline_ignored(self):
        checker = _load_checker()
        fresh = {"metrics": {"gbps": 0.0}}
        base = {"metrics": {"gbps": 0.0}}
        assert checker.compare(fresh, base, threshold=0.15) == []

    def test_no_bytecode_dropped_next_to_the_script(self):
        _load_checker()
        assert not (REPO_ROOT / "scripts" / "__pycache__").exists()


class TestRecordValidation:
    def test_well_formed_record_passes(self, tmp_path):
        checker = _load_checker()
        path = write_bench_record("ok", {"gbps": 1.0}, 0.2, root=tmp_path,
                                  extra={"p99_us": 12.0})
        assert checker.validate(read_bench_record(path)) == []

    def test_missing_fields_flagged(self):
        checker = _load_checker()
        problems = checker.validate({})
        joined = "\n".join(problems)
        for name in ("benchmark", "metrics", "wall_time_s", "date"):
            assert name in joined

    def test_non_object_record_flagged(self):
        checker = _load_checker()
        assert checker.validate([1, 2]) != []
        assert checker.validate("nope") != []

    def test_non_numeric_metric_flagged(self):
        checker = _load_checker()
        record = {"benchmark": "x", "wall_time_s": 1.0, "date": "d",
                  "metrics": {"gbps": "fast", "flag": True}}
        problems = checker.validate(record)
        assert any("'gbps'" in p for p in problems)
        assert any("'flag'" in p for p in problems)

    def test_extra_must_be_object(self):
        checker = _load_checker()
        record = {"benchmark": "x", "wall_time_s": 1.0, "date": "d",
                  "metrics": {}, "extra": [1]}
        assert any("extra" in p for p in checker.validate(record))

    def test_required_metric_leaves_enforced_per_benchmark(self):
        """A benchmark listed in REQUIRED_METRICS must carry every one
        of its required leaves — an update-storm record without its
        staleness/goodput readings has lost the signal its CI gate
        tracks."""
        checker = _load_checker()
        record = {"benchmark": "update_storm", "wall_time_s": 1.0,
                  "date": "d", "metrics": {"goodput_kpps": 4.0}}
        problems = checker.validate(record)
        assert any("updates_per_s" in p for p in problems)
        assert any("staleness_headroom_epochs" in p for p in problems)
        record["metrics"].update(updates_per_s=1500.0,
                                 staleness_headroom_epochs=8.0)
        assert checker.validate(record) == []
        # Benchmarks without an entry are unaffected.
        other = {"benchmark": "fig9_full", "wall_time_s": 1.0, "date": "d",
                 "metrics": {"gbps": 7.0}}
        assert checker.validate(other) == []

    def test_empty_metrics_flagged(self):
        """A record that measures *nothing* must fail validation — an
        empty metrics dict passes every future comparison vacuously."""
        checker = _load_checker()
        record = {"benchmark": "x", "wall_time_s": 1.0, "date": "d",
                  "metrics": {}}
        problems = checker.validate(record)
        assert any("empty" in p for p in problems)

    def test_cli_exits_2_on_empty_metrics(self, tmp_path):
        import subprocess

        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "BENCH_hollow.json").write_text(json.dumps({
            "benchmark": "hollow", "metrics": {}, "wall_time_s": 1.0,
            "date": "2026-01-01T00:00:00+00:00",
        }))
        out = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts"
                                 / "check_bench_regression.py")],
            cwd=tmp_path, capture_output=True, text=True,
        )
        assert out.returncode == 2
        assert "MALFORMED" in out.stdout

    def test_cli_exits_2_on_malformed_record(self, tmp_path):
        import subprocess

        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "BENCH_broken.json").write_text('{"metrics": "nope"}')
        out = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts"
                                 / "check_bench_regression.py")],
            cwd=tmp_path, capture_output=True, text=True,
        )
        assert out.returncode == 2
        assert "MALFORMED" in out.stdout

    def test_cli_exits_2_on_invalid_json(self, tmp_path):
        import subprocess

        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        out = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts"
                                 / "check_bench_regression.py")],
            cwd=tmp_path, capture_output=True, text=True,
        )
        assert out.returncode == 2
        assert "MALFORMED" in out.stdout
