"""Timeline export: valid Chrome-trace JSON, utilization timeseries, and
bit-identical plain runs."""

import json

import pytest

from repro.classifiers import ExpCutsClassifier
from repro.npsim import simulate_throughput
from repro.obs import TimelineRecorder
from repro.traffic import matched_trace


@pytest.fixture(scope="module")
def instrumented_run(request):
    ruleset = request.getfixturevalue("small_fw_ruleset")
    clf = ExpCutsClassifier.build(ruleset)
    traffic = matched_trace(ruleset, 300, seed=17)
    timeline = TimelineRecorder()
    result = simulate_throughput(clf, traffic, num_threads=15,
                                 max_packets=1_200, timeline=timeline)
    return clf, traffic, timeline, result


def test_plain_run_is_bit_identical(instrumented_run):
    clf, traffic, _, instrumented = instrumented_run
    plain = simulate_throughput(clf, traffic, num_threads=15,
                                max_packets=1_200)
    assert plain.gbps == instrumented.gbps
    assert plain.mpps == instrumented.mpps
    assert plain.me_busy_fraction == instrumented.me_busy_fraction
    for rep in plain.channel_reports:
        assert rep.utilization_timeseries is None


def test_chrome_trace_is_valid(instrumented_run, tmp_path):
    _, _, timeline, _ = instrumented_run
    path = tmp_path / "run.trace.json"
    timeline.write_chrome_trace(path)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    for ev in events:
        assert "ph" in ev and "pid" in ev
        if ev["ph"] in ("X", "I"):
            assert "ts" in ev and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
    # Metadata names every process (microengines + the channel lane).
    names = [ev for ev in events if ev["ph"] == "M"]
    assert any(ev["name"] == "process_name" for ev in names)
    assert doc["otherData"]["me_clock_mhz"] > 0


def test_channel_utilization_timeseries(instrumented_run):
    _, _, timeline, result = instrumented_run
    assert timeline.channels()
    for rep in result.channel_reports:
        series = rep.utilization_timeseries
        assert series is not None and len(series) > 0
        cycles = [t for t, _ in series]
        assert cycles == sorted(cycles)
        assert all(0.0 <= busy <= 1.0 for _, busy in series)


def test_busy_channel_shows_up_in_series(instrumented_run):
    _, _, _, result = instrumented_run
    busiest = max(result.channel_reports, key=lambda r: r.utilization)
    assert busiest.utilization > 0
    series = busiest.utilization_timeseries
    assert max(busy for _, busy in series) > 0


def test_event_cap_drops_instead_of_ballooning(instrumented_run):
    clf, traffic, _, _ = instrumented_run
    tiny = TimelineRecorder(max_events=50)
    simulate_throughput(clf, traffic, num_threads=15, max_packets=1_200,
                        timeline=tiny)
    doc = tiny.to_chrome_trace()
    assert doc["otherData"]["dropped_events"] > 0
    # The cap bounds recorded events (metadata rows are added on export).
    non_meta = [ev for ev in doc["traceEvents"] if ev["ph"] != "M"]
    assert len(non_meta) <= 50
