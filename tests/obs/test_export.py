"""Prometheus text exposition and JSON snapshot export."""

import json

from repro.obs import render_prometheus, write_json_snapshot, write_prometheus
from repro.obs.metrics import MetricsRegistry


def _registry():
    registry = MetricsRegistry()
    registry.counter("serve.shed.rate_limited").inc(7)
    registry.gauge("fabric.shards_available").set(3)
    for value in (60.0, 60.0, 90.0, 250.0):
        registry.log_histogram("serve.latency_us").observe(value)
    registry.histogram("lookup.depth").observe(4)
    registry.histogram("lookup.depth").observe(6)
    return registry


class TestPrometheusRender:
    def test_counters_and_gauges_with_type_headers(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_serve_shed_rate_limited counter" in text
        assert "repro_serve_shed_rate_limited 7" in text
        assert "# TYPE repro_fabric_shards_available gauge" in text
        assert "repro_fabric_shards_available 3" in text

    def test_names_are_sanitized_and_namespaced(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.with:things").inc()
        text = render_prometheus(registry, namespace="app")
        assert "app_weird_name_with:things 1" in text

    def test_histogram_series_are_cumulative_and_closed(self):
        text = render_prometheus(_registry())
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_serve_latency_us_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)  # cumulative, monotonic
        assert counts[-1] == 4          # +Inf bucket sees every sample
        assert 'le="+Inf"' in lines[-1]
        assert "repro_serve_latency_us_count 4" in text
        assert "repro_serve_latency_us_sum 460" in text

    def test_exact_histogram_uses_integer_edges(self):
        text = render_prometheus(_registry())
        assert 'repro_lookup_depth_bucket{le="4"} 1' in text
        assert 'repro_lookup_depth_bucket{le="6"} 2' in text

    def test_rendering_is_deterministic(self):
        assert render_prometheus(_registry()) == \
            render_prometheus(_registry())

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestFileExports:
    def test_write_prometheus_creates_parents(self, tmp_path):
        path = write_prometheus(_registry(), tmp_path / "deep" / "m.prom")
        assert path.read_text().endswith("\n")
        assert "repro_serve_latency_us_count 4" in path.read_text()

    def test_json_snapshot_is_sorted_stable_json(self, tmp_path):
        path = write_json_snapshot(_registry(), tmp_path / "snap.json")
        payload = json.loads(path.read_text())
        assert payload["counters"]["serve.shed.rate_limited"] == 7
        assert payload["histograms"]["serve.latency_us"]["kind"] == "log"
        again = write_json_snapshot(_registry(), tmp_path / "snap2.json")
        assert path.read_text() == again.read_text()
