"""StageTimer: spans tile a run and the attribution check audits it."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import NULL_STAGE_TIMER, NullStageTimer, StageTimer
from repro.obs.span import _NULL_SPAN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestSpans:
    def test_span_records_clock_delta(self, clock):
        timer = StageTimer(clock=clock)
        with timer.span("classify"):
            clock.advance(0.25)
        stat = timer.stages["classify"]
        assert stat.seconds == pytest.approx(0.25)
        assert stat.calls == 1

    def test_span_records_even_when_stage_raises(self, clock):
        timer = StageTimer(clock=clock)
        with pytest.raises(RuntimeError):
            with timer.span("admission"):
                clock.advance(0.1)
                raise RuntimeError("shed")
        assert timer.stages["admission"].seconds == pytest.approx(0.1)

    def test_record_accumulates_across_calls(self, clock):
        timer = StageTimer(clock=clock)
        for _ in range(3):
            with timer.span("audit"):
                clock.advance(0.01)
        timer.record("audit", 0.07, calls=2)
        assert timer.stages["audit"].seconds == pytest.approx(0.1)
        assert timer.stages["audit"].calls == 5

    def test_total_sums_every_stage(self, clock):
        timer = StageTimer(clock=clock)
        timer.record("a", 1.0)
        timer.record("b", 2.0)
        assert timer.total() == pytest.approx(3.0)

    def test_merge_folds_worker_timers(self, clock):
        parent = StageTimer(clock=clock)
        worker = StageTimer(clock=clock)
        parent.record("classify", 1.0)
        worker.record("classify", 2.0, calls=4)
        worker.record("restart", 0.5)
        parent.merge(worker)
        assert parent.stages["classify"].seconds == pytest.approx(3.0)
        assert parent.stages["classify"].calls == 5
        assert parent.stages["restart"].seconds == pytest.approx(0.5)


class TestAttribution:
    def test_tiling_spans_cover_the_wall(self, clock):
        timer = StageTimer(clock=clock)
        with timer.span("idle"):
            clock.advance(0.4)
        with timer.span("classify"):
            clock.advance(0.6)
        report = timer.check_attribution(clock.now)
        assert report["coverage"] == pytest.approx(1.0)
        assert report["unattributed_s"] == pytest.approx(0.0)
        assert report["stages"]["classify"]["fraction"] == pytest.approx(0.6)

    def test_missing_stage_fails_the_audit(self, clock):
        timer = StageTimer(clock=clock)
        with timer.span("classify"):
            clock.advance(0.5)
        clock.advance(0.5)  # un-spanned time: the audit must see it
        with pytest.raises(AssertionError, match="does not add up"):
            timer.check_attribution(clock.now)

    def test_double_counted_nesting_fails_the_audit(self, clock):
        timer = StageTimer(clock=clock)
        with timer.span("outer"):
            with timer.span("inner"):
                clock.advance(1.0)
        with pytest.raises(AssertionError):
            timer.check_attribution(clock.now)

    def test_tolerance_is_configurable_and_validated(self, clock):
        timer = StageTimer(clock=clock)
        with timer.span("classify"):
            clock.advance(0.98)
        clock.advance(0.02)
        timer.check_attribution(clock.now, tolerance=0.05)
        with pytest.raises(AssertionError):
            timer.check_attribution(clock.now, tolerance=0.01)
        with pytest.raises(ConfigurationError):
            timer.check_attribution(clock.now, tolerance=-0.1)

    def test_zero_wall_run_passes(self):
        timer = StageTimer(clock=FakeClock())
        report = timer.check_attribution(0.0)
        assert report["coverage"] == 1.0

    def test_table_rows_include_unattributed_line(self, clock):
        timer = StageTimer(clock=clock)
        with timer.span("classify"):
            clock.advance(1.0)
        rows = timer.table_rows(clock.now)
        assert rows[0][0] == "classify"
        assert rows[-1][0] == "(unattributed)"
        assert "coverage 100.00%" in rows[-1][2]


class TestNullTimer:
    def test_disabled_pipeline_shares_one_span(self):
        assert isinstance(NULL_STAGE_TIMER, NullStageTimer)
        assert NULL_STAGE_TIMER.enabled is False
        assert NULL_STAGE_TIMER.span("classify") is _NULL_SPAN
        assert NULL_STAGE_TIMER.span("other") is _NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with NULL_STAGE_TIMER.span("classify"):
            pass
        NULL_STAGE_TIMER.record("classify", 1.0)  # no-op, no state

    def test_enabled_flag_distinguishes_real_timer(self):
        assert StageTimer(clock=FakeClock()).enabled is True
