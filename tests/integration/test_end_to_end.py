"""Cross-module integration: generate -> build -> classify -> simulate."""

import numpy as np
import pytest

from repro.classifiers import ALGORITHMS, LinearSearchClassifier
from repro.npsim import compile_programs, simulate_throughput
from repro.rulesets import generate, parse_rules, format_rules
from repro.rulesets.profiles import PROFILES
from repro.traffic import corner_case_trace, matched_trace


@pytest.fixture(scope="module")
def pipeline_setup():
    ruleset = generate(PROFILES["CR01"], size=80, seed=77).with_default()
    trace = matched_trace(ruleset, 500, seed=78)
    return ruleset, trace


class TestFullPipeline:
    @pytest.mark.parametrize("algo", sorted(set(ALGORITHMS) - {"linear"}))
    def test_generate_build_classify_simulate(self, pipeline_setup, algo):
        ruleset, trace = pipeline_setup
        clf = ALGORITHMS[algo].build(ruleset)
        oracle = LinearSearchClassifier.build(ruleset)
        got = clf.classify_batch(trace.field_arrays())
        want = oracle.classify_batch(trace.field_arrays())
        np.testing.assert_array_equal(got, want)

        res = simulate_throughput(clf, trace, num_threads=23,
                                  max_packets=1500, trace_limit=150)
        assert res.gbps > 0.1
        assert res.packets == 1500

    def test_serialisation_preserves_behaviour(self, pipeline_setup, tmp_path):
        """Write rules to the text format, reload, rebuild: same answers."""
        ruleset, trace = pipeline_setup
        reloaded = parse_rules(format_rules(ruleset))
        a = ALGORITHMS["expcuts"].build(ruleset)
        b = ALGORITHMS["expcuts"].build(reloaded)
        got_a = a.classify_batch(trace.field_arrays())
        got_b = b.classify_batch(trace.field_arrays())
        np.testing.assert_array_equal(got_a, got_b)

    def test_program_recording_consistent_with_memory_regions(self, pipeline_setup):
        ruleset, trace = pipeline_setup
        clf = ALGORITHMS["expcuts"].build(ruleset)
        ps = compile_programs(clf, trace, limit=100)
        region_names = {r.name for r in clf.memory_regions()}
        assert set(ps.regions) <= region_names

    def test_corner_cases_through_simulator(self, pipeline_setup):
        """Boundary headers classify correctly *and* replay in the DES."""
        ruleset, _ = pipeline_setup
        trace = corner_case_trace(ruleset)
        clf = ALGORITHMS["expcuts"].build(ruleset)
        oracle = LinearSearchClassifier.build(ruleset)
        got = clf.classify_batch(trace.field_arrays())
        want = oracle.classify_batch(trace.field_arrays())
        np.testing.assert_array_equal(got, want)
        res = simulate_throughput(clf, trace, num_threads=15,
                                  max_packets=800, trace_limit=200)
        assert res.gbps > 0
