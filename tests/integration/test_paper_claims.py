"""The paper's headline claims, asserted as testable shapes.

These run on reduced-scale configurations (small synthetic sets, short
simulations) so the suite stays fast; the full-scale numbers live in
EXPERIMENTS.md and regenerate via ``python -m repro.harness all``.
"""

import pytest

from repro.classifiers import (
    ExpCutsClassifier,
    HiCutsClassifier,
    HSMClassifier,
)
from repro.core.layout import pack_tree
from repro.npsim import simulate_throughput
from repro.rulesets import generate
from repro.rulesets.profiles import PROFILES
from repro.traffic import matched_trace


@pytest.fixture(scope="module")
def cr_setup():
    ruleset = generate(PROFILES["CR02"], size=400, seed=55).with_default()
    trace = matched_trace(ruleset, 600, seed=56)
    return ruleset, trace


class TestClaim1ExplicitWorstCase:
    """§4.2: ExpCuts has an explicit worst-case search time; HiCuts
    does not."""

    def test_expcuts_bound_holds_everywhere(self, cr_setup):
        ruleset, trace = cr_setup
        clf = ExpCutsClassifier.build(ruleset)
        bound = clf.worst_case_accesses()
        assert bound == 26  # 2 reads x 13 levels
        worst = max(
            clf.access_trace(trace.header(i)).total_accesses
            for i in range(200)
        )
        assert worst <= bound

    def test_hicuts_has_no_bound(self, cr_setup):
        ruleset, _ = cr_setup
        assert HiCutsClassifier.build(ruleset).worst_case_accesses() is None


class TestClaim2Aggregation:
    """§4.2.2 / Figure 6: HABS aggregation cuts memory to a small
    fraction without changing results."""

    def test_compression_fraction(self, cr_setup):
        ruleset, _ = cr_setup
        clf = ExpCutsClassifier.build(ruleset)
        stats = clf.stats()
        assert stats.aggregation_ratio < 0.35

    def test_results_identical(self, cr_setup):
        ruleset, trace = cr_setup
        packed = ExpCutsClassifier.build(ruleset, aggregated=True)
        full = ExpCutsClassifier.build(ruleset, aggregated=False)
        import numpy as np

        np.testing.assert_array_equal(
            packed.classify_batch(trace.field_arrays()),
            full.classify_batch(trace.field_arrays()),
        )


class TestClaim3Throughput:
    """Figures 7–9: ExpCuts beats the baselines; speedup scales with
    threads; the HiCuts cap comes from leaf linear search."""

    def test_expcuts_beats_baselines(self, cr_setup):
        ruleset, trace = cr_setup
        results = {}
        for cls in (ExpCutsClassifier, HiCutsClassifier, HSMClassifier):
            clf = cls.build(ruleset)
            results[cls.name] = simulate_throughput(
                clf, trace, num_threads=71, max_packets=2500, trace_limit=250
            ).gbps
        assert results["expcuts"] > results["hicuts"]
        assert results["expcuts"] > results["hsm"]

    def test_near_linear_speedup(self, cr_setup):
        ruleset, trace = cr_setup
        clf = ExpCutsClassifier.build(ruleset)
        low = simulate_throughput(clf, trace, num_threads=7,
                                  max_packets=2000, trace_limit=250).gbps
        high = simulate_throughput(clf, trace, num_threads=71,
                                   max_packets=2000, trace_limit=250).gbps
        ratio = high / low
        assert 6.0 <= ratio <= 11.0  # 71/7 ≈ 10.1 threads

    def test_linear_search_rules_hurt(self):
        """Figure 8's statement: throughput falls as the number of
        linearly searched rules grows (forced-scan microbenchmark)."""
        from repro.classifiers.base import MemoryRegion
        from repro.harness.fig8 import forced_scan_program
        from repro.npsim import IXP2850, place

        placement = place([MemoryRegion("tree", 4096, 1.0)],
                          list(IXP2850.sram_channels), "single_channel")
        gbps = {}
        for n in (1, 8, 16):
            res = simulate_throughput(
                forced_scan_program(n), num_threads=71,
                max_packets=2000, placement=placement)
            gbps[n] = res.gbps
        assert gbps[1] > gbps[8] > gbps[16]
        # the paper's threshold: beyond 8 rules, under 3 Gbps
        assert gbps[16] < 3.0

    def test_channel_scaling(self, cr_setup):
        ruleset, trace = cr_setup
        clf = ExpCutsClassifier.build(ruleset)
        gbps = [
            simulate_throughput(clf, trace, num_threads=71, num_channels=n,
                                max_packets=2000, trace_limit=250).gbps
            for n in (1, 2, 4)
        ]
        assert gbps[0] < gbps[2]
        assert gbps[0] < gbps[1] * 1.05  # 1 channel clearly insufficient


class TestClaim4PopCount:
    """§5.4: POP_COUNT cuts HABS computation >90 % vs RISC, with
    identical classification results."""

    def test_cycles_and_results(self, cr_setup):
        ruleset, trace = cr_setup
        fast = ExpCutsClassifier.build(ruleset, use_pop_count=True)
        slow = ExpCutsClassifier.build(ruleset, use_pop_count=False)
        header = trace.header(0)
        fast_cycles = fast.access_trace(header).total_compute
        slow_cycles = slow.access_trace(header).total_compute
        assert fast_cycles < slow_cycles
        assert fast.classify(header) == slow.classify(header)

    def test_throughput_impact(self, cr_setup):
        """Without the hardware instruction, the compute burden becomes
        a bottleneck (the paper's motivation for using it)."""
        ruleset, trace = cr_setup
        fast = simulate_throughput(
            ExpCutsClassifier.build(ruleset, use_pop_count=True), trace,
            num_threads=71, max_packets=2000, trace_limit=250).gbps
        slow = simulate_throughput(
            ExpCutsClassifier.build(ruleset, use_pop_count=False), trace,
            num_threads=71, max_packets=2000, trace_limit=250).gbps
        assert slow < fast * 0.85


class TestClaim5MemoryFit:
    """§6.3: with aggregation the tree fits the 4x8 MB SRAM budget at
    reduced scale proportional to the full-scale result."""

    def test_image_fits(self, cr_setup):
        ruleset, _ = cr_setup
        clf = ExpCutsClassifier.build(ruleset)
        image = pack_tree(clf.tree, aggregated=True)
        assert image.total_bytes < 4 * 8 * 1024 * 1024
