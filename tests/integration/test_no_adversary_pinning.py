"""No-adversary outputs are bit-identical with the scenario layer present.

The scenario layer (``repro.traffic.scenarios``, the guard, the
per-class flow-cache attribution) is strictly additive: when no
scenario is requested, every pre-existing output — generator traces,
figure/table data, soak results, committed BENCH records — must be
byte-for-byte what it was before this layer existed.  These tests pin
that by (a) interleaving scenario builds with the legacy paths and
asserting the legacy outputs don't move, and (b) validating the
committed BENCH records still parse with their expected schema.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.harness import chaos_soak, serve_soak
from repro.npsim.flowcache import FlowCache, simulate_hit_rate
from repro.traffic import build_scenario, matched_trace, uniform_trace

REPO = Path(__file__).resolve().parents[2]


def _digest(trace) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(trace.field_arrays()).tobytes()).hexdigest()


class TestGeneratorsUnperturbed:
    def test_legacy_traces_identical_around_scenario_builds(
            self, small_fw_ruleset):
        """Building scenarios must not disturb any other generator's
        stream (no hidden global RNG, no shared state)."""
        before_m = _digest(matched_trace(small_fw_ruleset, 300, seed=42))
        before_u = _digest(uniform_trace(300, seed=42))
        build_scenario("syn-flood", small_fw_ruleset, 200, seed=1)
        build_scenario("cache-bust", small_fw_ruleset, 200, seed=2)
        assert _digest(matched_trace(small_fw_ruleset, 300, seed=42)) \
            == before_m
        assert _digest(uniform_trace(300, seed=42)) == before_u

    def test_flow_cache_unlabelled_behaviour_unchanged(self):
        """The klass-aware cache must behave identically when no labels
        are passed (the legacy call shape)."""
        headers = [(i % 7, i % 5, i, i, 6) for i in range(200)]
        cache = FlowCache(8)
        results = [cache.access(h) for h in headers]
        labelled = FlowCache(8)
        results_l = [labelled.access(h, klass="x") for h in headers]
        assert results == results_l
        assert (cache.hits, cache.misses) == (labelled.hits, labelled.misses)

    def test_simulate_hit_rate_stable_value(self):
        trace_headers = [(1, 2, 3, 4, 5), (6, 7, 8, 9, 10), (1, 2, 3, 4, 5)]
        from repro.traffic import Trace

        assert simulate_hit_rate(Trace.from_headers(trace_headers), 4) \
            == pytest.approx(1 / 3)


class TestSoaksUnperturbed:
    def test_serve_soak_identical_around_scenario_run(self):
        """plain -> scenario -> plain: the two plain runs must match
        bit-for-bit, proving scenario=None is the untouched code path."""
        first = serve_soak.run_serve_soak(quick=True)
        serve_soak.run_serve_soak(quick=True, scenario="mixed")
        third = serve_soak.run_serve_soak(quick=True)
        assert first.data["metrics"] == third.data["metrics"]
        assert first.data["extra"] == third.data["extra"]
        assert "scenario" not in first.data["extra"]

    def test_chaos_soak_plain_has_no_scenario_keys(self):
        result = chaos_soak.run_chaos_soak(quick=True)
        assert "scenario" not in result.data["extra"]
        assert "guard" not in result.data["extra"]


class TestCommittedBenchRecords:
    """The committed no-adversary BENCH records remain valid artifacts."""

    EXPECTED = ("serve_soak", "chaos_soak", "update_storm", "perf_report")

    @pytest.mark.parametrize("name", EXPECTED)
    def test_record_present_and_schema_v2(self, name):
        path = REPO / f"BENCH_{name}.json"
        record = json.loads(path.read_text())
        assert record["schema_version"] == 2
        assert record["metrics"], f"{name} record has empty metrics"
        for value in record["metrics"].values():
            assert isinstance(value, (int, float))
