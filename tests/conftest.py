"""Shared fixtures and hypothesis strategies for the whole suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.fields import FIELD_WIDTHS
from repro.core.interval import Interval, full_interval, prefix_to_interval
from repro.core.rule import Rule, RuleSet
from repro.rulesets import generate
from repro.rulesets.profiles import PROFILES


# -- deterministic sample rule sets ------------------------------------------

@pytest.fixture
def tiny_ruleset() -> RuleSet:
    """Four hand-written rules exercising prefixes, ranges and wildcards."""
    return RuleSet([
        Rule.from_prefixes(sip="10.0.0.0/8", dport=(0, 1023), proto=6),
        Rule.from_prefixes(dip="192.168.1.0/24"),
        Rule.from_ranges(sport=(1024, 65535), proto=17),
        Rule.any(),
    ], name="tiny")


@pytest.fixture(scope="session")
def small_fw_ruleset() -> RuleSet:
    """A 40-rule firewall-profile set (fast to build trees for)."""
    return generate(PROFILES["FW01"], size=40, seed=11).with_default()


@pytest.fixture(scope="session")
def small_cr_ruleset() -> RuleSet:
    """A 60-rule core-router-profile set."""
    return generate(PROFILES["CR01"], size=60, seed=12).with_default()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(2007)


# -- hypothesis strategies ------------------------------------------------------

def interval_strategy(width: int) -> st.SearchStrategy[Interval]:
    """Arbitrary closed interval within a width-bit domain."""
    hi_max = (1 << width) - 1

    @st.composite
    def build(draw):
        lo = draw(st.integers(0, hi_max))
        hi = draw(st.integers(lo, hi_max))
        return Interval(lo, hi)

    return build()


def prefix_interval_strategy(width: int) -> st.SearchStrategy[Interval]:
    """Aligned power-of-two block (a binary prefix)."""

    @st.composite
    def build(draw):
        plen = draw(st.integers(0, width))
        value = draw(st.integers(0, (1 << width) - 1))
        return prefix_to_interval(value, plen, width)

    return build()


@st.composite
def rule_strategy(draw, prefix_ips: bool = True) -> Rule:
    """A structurally valid random rule.

    ``prefix_ips`` keeps IP constraints prefix-shaped (as every real data
    set does, and as the parser requires); ports stay arbitrary ranges.
    """
    ip_strategy = prefix_interval_strategy(32) if prefix_ips else interval_strategy(32)
    sip = draw(ip_strategy)
    dip = draw(ip_strategy)
    sport = draw(st.one_of(st.just(full_interval(16)), interval_strategy(16)))
    dport = draw(st.one_of(st.just(full_interval(16)), interval_strategy(16)))
    proto = draw(st.one_of(
        st.just(full_interval(8)),
        st.integers(0, 255).map(lambda v: Interval(v, v)),
    ))
    return Rule((sip, dip, sport, dport, proto))


@st.composite
def ruleset_strategy(draw, max_rules: int = 12, prefix_ips: bool = True) -> RuleSet:
    rules = draw(st.lists(rule_strategy(prefix_ips=prefix_ips),
                          min_size=1, max_size=max_rules))
    return RuleSet(rules, name="hypothesis")


@st.composite
def header_strategy(draw) -> tuple[int, int, int, int, int]:
    return tuple(
        draw(st.integers(0, (1 << width) - 1)) for width in FIELD_WIDTHS
    )


@st.composite
def header_near_rules_strategy(draw, ruleset: RuleSet):
    """Headers biased to rule boundaries (where classifiers break)."""
    if not len(ruleset):
        return draw(header_strategy())
    rule = ruleset[draw(st.integers(0, len(ruleset) - 1))]
    header = []
    for fld, iv in enumerate(rule.intervals):
        limit = (1 << FIELD_WIDTHS[fld]) - 1
        choice = draw(st.sampled_from(["lo", "hi", "below", "above", "inside"]))
        if choice == "lo":
            value = iv.lo
        elif choice == "hi":
            value = iv.hi
        elif choice == "below":
            value = max(iv.lo - 1, 0)
        elif choice == "above":
            value = min(iv.hi + 1, limit)
        else:
            value = draw(st.integers(iv.lo, iv.hi))
        header.append(value)
    return tuple(header)
