"""Chaos-soak experiment: bit-reproducibility and acceptance shape.

The full acceptance criteria (kills survived, zero divergences, bounded
goodput loss) are asserted *inside* run_chaos_soak — a quick run that
returns at all has already passed them.  Here we pin determinism: two
runs of the same seeded soak must produce byte-identical results.
"""

import json

from repro.harness.chaos_soak import run_chaos_soak


class TestChaosSoakQuick:
    def test_two_runs_bit_identical(self):
        first = run_chaos_soak(quick=True)
        second = run_chaos_soak(quick=True)
        assert json.dumps(first.data, sort_keys=True) == \
            json.dumps(second.data, sort_keys=True)

    def test_result_shape_and_acceptance_evidence(self):
        result = run_chaos_soak(quick=True)
        assert result.experiment == "chaos-soak"
        data = result.data
        extra = data["extra"]
        # Every injected death is visible in the fabric's own metrics.
        assert extra["worker_deaths"] >= 3
        assert extra["restarts"] >= 3
        assert extra["corrupt_snapshot_restarts"] >= 1
        assert extra["oracle_divergences"] == 0
        assert extra["oracle_checks"] > 0
        assert data["metrics"]["recovery_goodput_ratio"] >= 0.5
        assert data["fault_plan"]["worker_faults"]
        # The rendered table mentions the soak's headline numbers.
        assert "goodput" in result.text
