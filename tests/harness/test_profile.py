"""The profile experiment: histograms, hot nodes and timeline artifacts."""

import json

from repro.harness.profile import run_profile
from repro.obs import metrics_enabled


def test_profile_quick_writes_reports(tmp_path):
    result = run_profile(quick=True, out_dir=tmp_path)

    assert not metrics_enabled(), "profile must restore the disabled state"
    assert result.experiment == "profile"
    assert "expcuts" in result.text and "hicuts" in result.text

    report = json.loads((tmp_path / "profile_CR01.json").read_text())
    assert [a["algorithm"] for a in report["algorithms"]] == \
        ["expcuts", "hicuts"]
    for rep in report["algorithms"]:
        depth = rep["depth_histogram"]
        assert depth["count"] > 0 and depth["buckets"]
        assert rep["hot_nodes"], "hot nodes must be ranked"
        assert rep["sample_traces"]
        assert 0.0 <= rep["flow_cache"]["hit_rate"] <= 1.0
        for channel in rep["simulated"]["channels"]:
            series = channel["utilization_timeseries"]
            assert series and all(0.0 <= b <= 1.0 for _, b in series)
        # The Chrome trace landed next to the report and is valid JSON.
        trace_doc = json.loads(
            (tmp_path / rep["simulated"]["chrome_trace"]).read_text())
        assert trace_doc["traceEvents"]

    expcuts = report["algorithms"][0]
    assert expcuts["depth_histogram"]["max"] <= 13
    assert expcuts["worst_case_accesses"] <= 26
