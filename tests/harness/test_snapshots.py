"""Corruption-injection tests for the snapshot store.

Every way a cache file can rot — bit flips, truncation, bad magic,
version skew, checksum mismatch, header damage — must be *detected at
load*, quarantined, and recovered by a rebuild.  A corrupted payload
must never reach the unpickler, and a load must never silently return
stale or wrong data.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SnapshotIntegrityError
from repro.harness import snapshots
from repro.harness.snapshots import (
    FORMAT_VERSION,
    MAGIC,
    gc_store,
    quarantine,
    read_header,
    read_snapshot,
    verify_store,
    write_snapshot,
)

PAYLOAD = {"rules": list(range(64)), "name": "FW01"}


@pytest.fixture
def snap(tmp_path):
    path = tmp_path / "entry.snap"
    write_snapshot(path, PAYLOAD, kind="ruleset", cache_version=5,
                   digest="abc123")
    return path


# -- corruption helpers -------------------------------------------------------

def flip_bit(path, offset, bit=0):
    raw = bytearray(path.read_bytes())
    raw[offset % len(raw)] ^= 1 << bit
    path.write_bytes(bytes(raw))


def truncate(path, keep):
    path.write_bytes(path.read_bytes()[:keep])


def skew_version(path, *, format_version=None, cache_version=None):
    """Rewrite the header with different version fields (payload intact)."""
    header, offset = read_header(path)
    payload = path.read_bytes()[offset:]
    fields = dict(header.__dict__)
    if format_version is not None:
        fields["format_version"] = format_version
    if cache_version is not None:
        fields["cache_version"] = cache_version
    import json
    import struct

    blob = json.dumps(fields, sort_keys=True).encode()
    path.write_bytes(MAGIC + struct.pack(">I", len(blob)) + blob + payload)


# -- detection ----------------------------------------------------------------

class TestCorruptionDetected:
    def test_roundtrip(self, snap):
        assert read_snapshot(snap, kind="ruleset", cache_version=5,
                             digest="abc123") == PAYLOAD

    def test_bad_magic(self, snap):
        flip_bit(snap, 0)
        with pytest.raises(SnapshotIntegrityError, match="bad magic"):
            read_snapshot(snap)

    def test_payload_bit_flip(self, snap):
        flip_bit(snap, snap.stat().st_size - 1)
        with pytest.raises(SnapshotIntegrityError, match="checksum mismatch"):
            read_snapshot(snap)

    def test_truncated_payload(self, snap):
        truncate(snap, snap.stat().st_size - 3)
        with pytest.raises(SnapshotIntegrityError, match="truncated payload"):
            read_snapshot(snap)

    def test_truncated_to_nothing(self, snap):
        truncate(snap, 3)
        with pytest.raises(SnapshotIntegrityError, match="truncated magic"):
            read_snapshot(snap)

    def test_truncated_header(self, snap):
        truncate(snap, len(MAGIC) + 6)
        with pytest.raises(SnapshotIntegrityError, match="truncated header"):
            read_snapshot(snap)

    def test_trailing_garbage(self, snap):
        snap.write_bytes(snap.read_bytes() + b"xx")
        with pytest.raises(SnapshotIntegrityError, match="trailing bytes"):
            read_snapshot(snap)

    def test_format_version_skew(self, snap):
        skew_version(snap, format_version=FORMAT_VERSION + 1)
        with pytest.raises(SnapshotIntegrityError, match="format version skew"):
            read_snapshot(snap)

    def test_cache_version_skew(self, snap):
        skew_version(snap, cache_version=4)
        with pytest.raises(SnapshotIntegrityError, match="cache version skew"):
            read_snapshot(snap, cache_version=5)

    def test_kind_mismatch(self, snap):
        with pytest.raises(SnapshotIntegrityError, match="kind mismatch"):
            read_snapshot(snap, kind="classifier")

    def test_digest_mismatch(self, snap):
        with pytest.raises(SnapshotIntegrityError, match="digest mismatch"):
            read_snapshot(snap, digest="other")

    def test_implausible_header_length(self, snap):
        raw = bytearray(snap.read_bytes())
        raw[len(MAGIC):len(MAGIC) + 4] = b"\xff\xff\xff\xff"
        snap.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError, match="implausible header"):
            read_snapshot(snap)

    def test_non_json_header(self, snap):
        header, offset = read_header(snap)
        raw = bytearray(snap.read_bytes())
        raw[len(MAGIC) + 4] ^= 0xFF
        snap.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError, match="undecodable header"):
            read_snapshot(snap)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotIntegrityError, match="unreadable"):
            read_snapshot(tmp_path / "absent.snap")


class TestPickleNeverReachedUnverified:
    """A tampered payload must fail the checksum *before* unpickling."""

    def test_malicious_payload_not_unpickled(self, tmp_path):
        class Boom:
            def __reduce__(self):
                return (pytest.fail, ("pickle.loads ran on unverified bytes",))

        path = tmp_path / "evil.snap"
        write_snapshot(path, PAYLOAD, kind="k", cache_version=1)
        header, offset = read_header(path)
        evil = pickle.dumps(Boom())
        # Splice in the hostile payload without fixing the checksum, as
        # an attacker (or rotting disk) would.
        raw = path.read_bytes()[:offset] + evil + b"\0" * max(
            0, header.payload_bytes - len(evil))
        path.write_bytes(raw[:offset + header.payload_bytes])
        with pytest.raises(SnapshotIntegrityError):
            read_snapshot(path)  # Boom.__reduce__ never runs

    def test_checksummed_unpicklable_payload_is_typed_error(self, tmp_path):
        # Valid container, valid checksum, but bytes that are not a
        # pickle (e.g. written by a future serializer): still the typed
        # error, so callers quarantine instead of crashing.
        import hashlib
        import json
        import struct

        payload = b"\x00not a pickle"
        fields = {
            "format_version": FORMAT_VERSION, "cache_version": 1,
            "kind": "k", "digest": "", "build": {},
            "payload_bytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        blob = json.dumps(fields, sort_keys=True).encode()
        path = tmp_path / "odd.snap"
        path.write_bytes(MAGIC + struct.pack(">I", len(blob)) + blob + payload)
        with pytest.raises(SnapshotIntegrityError, match="unpickle failed"):
            read_snapshot(path)


# -- quarantine and store maintenance ----------------------------------------

class TestQuarantine:
    def test_quarantine_moves_file(self, snap):
        moved = quarantine(snap, "test")
        assert moved is not None and moved.exists()
        assert not snap.exists()
        assert moved.name.endswith(".corrupt")

    def test_quarantine_serials(self, tmp_path):
        for i in range(3):
            path = tmp_path / "x.snap"
            path.write_bytes(b"junk%d" % i)
            assert quarantine(path) is not None
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["x.snap.corrupt", "x.snap.corrupt.1",
                         "x.snap.corrupt.2"]

    def test_quarantine_missing_file_returns_none(self, tmp_path):
        assert quarantine(tmp_path / "absent.snap") is None


class TestStoreMaintenance:
    def test_verify_reports_mixed_store(self, tmp_path):
        good = tmp_path / "good.snap"
        bad = tmp_path / "bad.snap"
        write_snapshot(good, [1], kind="k", cache_version=1)
        write_snapshot(bad, [2], kind="k", cache_version=1)
        flip_bit(bad, bad.stat().st_size - 1)
        report = verify_store(tmp_path, cache_version=1)
        assert report.ok == [good]
        assert [p for p, _ in report.corrupt] == [bad]
        assert not report.healthy
        assert "1 ok" in report.summary() and "1 corrupt" in report.summary()

    def test_verify_headers_only_skips_payload(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, [1], kind="k", cache_version=1)
        flip_bit(path, path.stat().st_size - 1)
        assert verify_store(tmp_path, full=False).healthy
        assert not verify_store(tmp_path, full=True).healthy

    def test_gc_quarantines_and_sweeps(self, tmp_path):
        good = tmp_path / "good.snap"
        bad = tmp_path / "bad.snap"
        write_snapshot(good, [1], kind="k", cache_version=1)
        write_snapshot(bad, [2], kind="k", cache_version=1)
        flip_bit(bad, bad.stat().st_size - 1)
        (tmp_path / "stale.tmp").write_bytes(b"torn write")
        (tmp_path / "legacy.pkl").write_bytes(b"old format")
        report = gc_store(tmp_path, cache_version=1)
        survivors = sorted(p.name for p in tmp_path.iterdir())
        assert survivors == ["good.snap"]
        assert len(report.removed) == 3  # bad (quarantined), .tmp, .pkl
        assert verify_store(tmp_path, cache_version=1).healthy

    def test_gc_quarantines_version_skew(self, tmp_path):
        path = tmp_path / "old.snap"
        write_snapshot(path, [1], kind="k", cache_version=1)
        gc_store(tmp_path, cache_version=2)
        assert not path.exists()


class TestAtomicWrite:
    def test_no_tmp_residue(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, PAYLOAD, kind="k", cache_version=1)
        assert [p.name for p in tmp_path.iterdir()] == ["a.snap"]

    def test_overwrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, {"v": 1}, kind="k", cache_version=1)
        write_snapshot(path, {"v": 2}, kind="k", cache_version=1)
        assert read_snapshot(path) == {"v": 2}

    def test_header_readable_without_payload(self, snap):
        header, offset = read_header(snap)
        assert header.kind == "ruleset"
        assert header.cache_version == 5
        assert header.digest == "abc123"
        assert "python" in header.build
        assert offset + header.payload_bytes == snap.stat().st_size


class TestInterruptSafety:
    """Ctrl-C (or any crash) mid-write must never tear the store.

    The committed snapshot stays readable, no ``*.tmp`` debris survives,
    and concurrent writers can never share a temp path.
    """

    def test_interrupt_mid_write_preserves_old(self, tmp_path, monkeypatch):
        path = tmp_path / "a.snap"
        write_snapshot(path, {"v": 1}, kind="k", cache_version=1)

        import os as _os

        def boom(fd):
            raise KeyboardInterrupt

        monkeypatch.setattr(_os, "fsync", boom)
        with pytest.raises(KeyboardInterrupt):
            write_snapshot(path, {"v": 2}, kind="k", cache_version=1)
        monkeypatch.undo()

        assert read_snapshot(path, kind="k", cache_version=1) == {"v": 1}
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.snap"]
        report = verify_store(tmp_path, cache_version=1)
        assert report.healthy
        assert report.ok == [path]

    def test_interrupt_before_replace_leaves_no_partial(self, tmp_path,
                                                        monkeypatch):
        """A first-ever write that dies must not leave *any* file at path."""
        path = tmp_path / "fresh.snap"
        import os as _os

        real_replace = _os.replace

        def boom(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(_os, "replace", boom)
        with pytest.raises(KeyboardInterrupt):
            write_snapshot(path, PAYLOAD, kind="k", cache_version=1)
        monkeypatch.setattr(_os, "replace", real_replace)

        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_writers_never_share_tmp_names(self, tmp_path, monkeypatch):
        path = tmp_path / "a.snap"
        import os as _os

        seen = []
        real_replace = _os.replace

        def spy(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(_os, "replace", spy)
        write_snapshot(path, {"v": 1}, kind="k", cache_version=1)
        write_snapshot(path, {"v": 2}, kind="k", cache_version=1)

        assert len(seen) == 2
        assert len(set(seen)) == 2, "temp paths must be unique per write"
        assert all(name.endswith(".tmp") for name in seen)

    def test_gc_sweeps_interrupted_writer_debris(self, tmp_path):
        write_snapshot(tmp_path / "a.snap", PAYLOAD, kind="k",
                       cache_version=1)
        # Debris in the shape write_snapshot's temp names actually take:
        # <name>.<pid>.<serial>.tmp from a writer that died pre-replace.
        debris = tmp_path / "a.snap.12345.7.tmp"
        debris.write_bytes(b"partial")
        report = gc_store(tmp_path, cache_version=1)
        assert debris in report.removed
        assert not debris.exists()
        assert read_snapshot(tmp_path / "a.snap") == PAYLOAD


# -- fuzzing ------------------------------------------------------------------

class TestFuzz:
    """Arbitrary single-site damage is always detected or harmless.

    The invariant: a read either returns the exact original object or
    raises SnapshotIntegrityError.  There is no third outcome — no wrong
    data, no stale data, no unpickle crash, no hang.
    """

    @settings(max_examples=120, deadline=None)
    @given(offset=st.integers(0, 10_000), bit=st.integers(0, 7))
    def test_bit_flip_anywhere(self, tmp_path_factory, offset, bit):
        tmp = tmp_path_factory.mktemp("fuzz")
        path = tmp / "f.snap"
        write_snapshot(path, PAYLOAD, kind="k", cache_version=3, digest="d")
        flip_bit(path, offset, bit)
        try:
            value = read_snapshot(path, kind="k", cache_version=3, digest="d")
        except SnapshotIntegrityError:
            return
        assert value == PAYLOAD  # flipped a byte the checksum ignores? no:
        # every byte is covered, so reaching here means the flip landed
        # on... nothing. The only valid success is exact equality anyway.

    @settings(max_examples=60, deadline=None)
    @given(keep=st.integers(0, 5_000))
    def test_truncation_anywhere(self, tmp_path_factory, keep):
        tmp = tmp_path_factory.mktemp("fuzz")
        path = tmp / "f.snap"
        write_snapshot(path, PAYLOAD, kind="k", cache_version=3)
        size = path.stat().st_size
        truncate(path, min(keep, size))
        if keep >= size:
            assert read_snapshot(path) == PAYLOAD
        else:
            with pytest.raises(SnapshotIntegrityError):
                read_snapshot(path)

    @settings(max_examples=60, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=200))
    def test_arbitrary_bytes_never_unpickled(self, tmp_path_factory, junk):
        tmp = tmp_path_factory.mktemp("fuzz")
        path = tmp / "junk.snap"
        path.write_bytes(junk)
        with pytest.raises(SnapshotIntegrityError):
            read_snapshot(path)
