"""Update-storm experiment: bit-reproducibility and acceptance shape.

The acceptance criteria proper (zero settled-epoch divergences, the
update rate floor, the epoch-lag SLO, faults survived, backlog drained)
are asserted *inside* run_update_storm — a quick run that returns at
all has already passed them.  Here we pin determinism (two runs of the
same seeded storm must be byte-identical) and that the published
evidence actually records the storm the fault plan promised.
"""

import json

from repro.harness.update_storm import run_update_storm


class TestUpdateStormQuick:
    def test_two_runs_bit_identical(self):
        first = run_update_storm(quick=True)
        second = run_update_storm(quick=True)
        assert json.dumps(first.data, sort_keys=True) == \
            json.dumps(second.data, sort_keys=True)

    def test_result_shape_and_acceptance_evidence(self):
        result = run_update_storm(quick=True)
        assert result.experiment == "update-storm"
        data = result.data
        extra = data["extra"]
        # The storm really stormed: a live-update rate above the bar,
        # with every update-path fault kind fired at least once.
        assert data["metrics"]["updates_per_s"] >= 1000
        assert all(count >= 1 for count in extra["update_faults"].values())
        assert extra["worker_kills"] >= 1
        assert extra["worker_deaths"] >= extra["worker_kills"]
        assert extra["replayed_deltas"] >= 1
        # Consistency: audited zero divergences, clean differential
        # sweep, and the drain bar hit zero backlog / zero lag.
        assert extra["oracle_checks"] > 0
        assert extra["oracle_divergences"] == 0
        assert extra["sweep_answers"] > 0
        assert extra["sweep_mismatches"] == 0
        assert extra["drained_backlog"] == 0
        assert extra["drained_lag"] == 0
        # The headline metric trio the bench record/trend tracks.
        assert set(data["metrics"]) == {"goodput_kpps", "updates_per_s",
                                        "staleness_headroom_epochs"}
        assert data["fault_plan"]["update_faults"]
        # The rendered table carries the headline rows.
        assert "updates applied" in result.text
        assert "goodput" in result.text
