"""bench_trend.py reconstructs the perf trajectory from git history."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "bench_trend.py"


def _record(goodput, version=2):
    return json.dumps({
        "benchmark": "soak", "schema_version": version,
        "metrics": {"goodput_kpps": goodput},
        "wall_time_s": 1.0, "date": "2026-01-01T00:00:00+00:00",
    })


def _run(cwd, *args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        cwd=cwd, capture_output=True, text=True)


@pytest.fixture
def history_repo(tmp_path):
    """A git repo whose BENCH record improves, then regresses."""
    def commit(message):
        subprocess.run(["git", "add", "-A"], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-q", "-m", message],
            cwd=tmp_path, check=True)

    subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
    record = tmp_path / "BENCH_soak.json"
    record.write_text(_record(5.0))
    commit("add soak benchmark")
    record.write_text(_record(6.0))
    commit("improve goodput")
    record.write_text(_record(3.0))  # a >15% drop vs 6.0
    commit("regress goodput")
    return tmp_path


class TestTrajectory:
    def test_reconstructs_nonempty_history(self, history_repo):
        out = _run(history_repo)
        assert out.returncode == 1  # regression present, non-advisory
        table = out.stdout
        assert "BENCH_soak.json" in table
        for value in ("5", "6", "3"):
            assert f"| {value} |" in table

    def test_flags_only_the_regression(self, history_repo):
        out = _run(history_repo)
        assert "goodput_kpps +50.0%" in out.stdout  # 6.0 -> 3.0
        assert out.stdout.count("goodput_kpps +") == 1
        assert "1 flagged drop(s)" in out.stderr

    def test_advisory_mode_exits_zero(self, history_repo):
        out = _run(history_repo, "--advisory")
        assert out.returncode == 0
        assert "flagged drop" in out.stderr

    def test_threshold_is_honoured(self, history_repo):
        out = _run(history_repo, "--threshold", "0.6")
        assert out.returncode == 0  # 50% drop within a 60% threshold

    def test_out_writes_markdown_file(self, history_repo):
        out = _run(history_repo, "--advisory", "--out", "TREND.md")
        assert out.returncode == 0
        report = (history_repo / "TREND.md").read_text()
        assert report.startswith("# Benchmark trend")

    def test_worktree_record_appends_a_row(self, history_repo):
        (history_repo / "BENCH_soak.json").write_text(_record(9.0))
        out = _run(history_repo, "--advisory")
        assert "| worktree |" in out.stdout

    def test_empty_history_is_fine(self, tmp_path):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        out = _run(tmp_path)
        assert out.returncode == 0
        assert "nothing to render" in out.stdout


class TestSchemaGuard:
    def test_unknown_schema_version_exits_2(self, tmp_path):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "BENCH_soak.json").write_text(_record(5.0, version=99))
        out = _run(tmp_path)
        assert out.returncode == 2
        assert "schema_version 99" in out.stderr

    def test_missing_version_is_implicit_v1(self, tmp_path):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "BENCH_soak.json").write_text(json.dumps({
            "benchmark": "soak", "metrics": {"goodput_kpps": 5.0},
            "wall_time_s": 1.0, "date": "2026-01-01T00:00:00+00:00",
        }))
        out = _run(tmp_path)
        assert out.returncode == 0
