"""The adversarial-soak experiment: quick-run invariants, BENCH gating,
and the scenario threading through the serve/chaos soak drivers."""

import pytest

from repro.harness import adversarial_soak, serve_soak
from repro.harness.cli import main
from repro.traffic.scenarios import SCENARIOS


@pytest.fixture(scope="module")
def quick_result():
    return adversarial_soak.run_adversarial_soak(quick=True)


class TestQuickRun:
    def test_all_phases_ran(self, quick_result):
        phases = quick_result.data["extra"]["phases"]
        assert set(phases) == set(adversarial_soak.PHASES)
        assert set(adversarial_soak.PHASES) <= set(SCENARIOS)

    def test_zero_divergences_everywhere(self, quick_result):
        for name, phase in quick_result.data["extra"]["phases"].items():
            assert phase["divergences"] == 0, name
            assert phase["oracle_checks"] > 0, name

    def test_flood_shed_floor(self, quick_result):
        metrics = quick_result.data["metrics"]
        assert metrics["attack_shed_fraction"] >= \
            adversarial_soak.MIN_ATTACK_SHED

    def test_legit_goodput_floor(self, quick_result):
        metrics = quick_result.data["metrics"]
        assert metrics["legit_goodput_ratio"] >= \
            adversarial_soak.MIN_LEGIT_GOODPUT_RATIO
        assert metrics["legit_goodput_kpps"] > 0

    def test_cache_collapse_attributed(self, quick_result):
        """The scan's own hit rate pins near zero while legit classes
        keep their locality — visible only via per-class metrics."""
        extra = quick_result.data["extra"]
        assert extra["scan_hit_rate"] < 0.05
        assert extra["best_legit_hit_rate"] > \
            extra["scan_hit_rate"] + adversarial_soak.MIN_CLASS_HIT_GAP
        cache = extra["phases"]["cache-bust"]["flow_cache"]
        assert "scan" in cache and "overall" in cache

    def test_guard_engaged_under_flood(self, quick_result):
        flood = quick_result.data["extra"]["phases"]["syn-flood"]
        assert flood["guard"]["engagements"] > 0
        assert flood["guard_shed_reasons"].get("syn_unproven", 0) > 0

    def test_sides_account_for_every_packet(self, quick_result):
        extra = quick_result.data["extra"]
        for name, phase in extra["phases"].items():
            total = sum(sum(side.values())
                        for side in phase["sides"].values())
            assert total == 2 * extra["packets_per_phase"], name

    def test_baseline_has_no_attack_traffic(self, quick_result):
        baseline = quick_result.data["extra"]["phases"]["mixed"]
        assert baseline["sides"]["attack"]["offered"] == 0

    def test_worst_case_depth_reported(self, quick_result):
        depth = quick_result.data["extra"]["worst_case_depth"]
        assert depth["attack"]["max_depth"] >= depth["legit"]["mean_depth"]

    def test_deterministic(self, quick_result):
        again = adversarial_soak.run_adversarial_soak(quick=True)
        assert again.data["metrics"] == quick_result.data["metrics"]
        assert again.data["extra"] == quick_result.data["extra"]


class TestBenchGating:
    def test_quick_mode_writes_no_bench_record(self, monkeypatch):
        calls = []
        monkeypatch.setattr(adversarial_soak, "write_bench_record",
                            lambda *a, **k: calls.append((a, k)))
        adversarial_soak.run_adversarial_soak(quick=True)
        assert calls == []


class TestScenarioThreading:
    def test_serve_soak_accepts_scenario(self):
        result = serve_soak.run_serve_soak(quick=True, scenario="syn-flood")
        extra = result.data["extra"]
        assert extra["scenario"] == "syn-flood"
        assert extra["guard"]["engagements"] > 0
        assert extra["oracle_divergences"] == 0
        assert sum(extra["guard_shed_reasons"].values()) > 0

    def test_serve_soak_scenario_differs_from_plain(self):
        plain = serve_soak.run_serve_soak(quick=True)
        attacked = serve_soak.run_serve_soak(quick=True, scenario="syn-flood")
        assert "scenario" not in plain.data["extra"]
        assert plain.data["extra"]["served"] != \
            attacked.data["extra"]["served"]

    def test_cli_unknown_scenario_exits_2_with_hint(self, capsys):
        code = main(["serve-soak", "--quick", "--scenario", "syn-flod"])
        assert code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "syn-flood" in err

    def test_cli_scenario_rejected_for_other_experiments(self, capsys):
        code = main(["fig9", "--quick", "--scenario", "mixed"])
        assert code == 2
        assert "only honoured by" in capsys.readouterr().err
