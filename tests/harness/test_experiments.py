"""Experiment registry and quick-mode smoke tests.

Full-mode experiment *shape* assertions live in
``tests/integration/test_paper_claims.py``; here we check that every
registered experiment runs in quick mode and renders something sane.
"""

import pytest

from repro.harness.experiments import (
    ExperimentResult,
    REGISTRY,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table1", "table2", "table3", "table4", "table5",
                    "fig5", "fig6", "fig7", "fig8", "fig9",
                    "resilience", "profile", "serve-soak", "chaos-soak",
                    "update-storm", "perf-report", "adversarial-soak"}
        assert set(REGISTRY) == expected

    def test_list(self):
        listed = dict(list_experiments())
        assert "fig9" in listed

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")


# "profile" and "perf-report" are exercised in test_profile.py /
# test_perf_report.py against tmp directories — running them here would
# drop artifacts into the committed results/.
@pytest.mark.parametrize(
    "name", sorted(set(REGISTRY) - {"profile", "perf-report"}))
def test_quick_mode_runs(name):
    result = run_experiment(name, quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.experiment == name
    assert len(result.text) > 20
    assert result.data


class TestQuickModeShapes:
    def test_fig6_ratio(self):
        result = run_experiment("fig6", quick=True)
        for entry in result.data.values():
            assert entry["ratio"] < 0.5  # aggregation always compresses

    def test_fig7_monotone(self):
        result = run_experiment("fig7", quick=True)
        series = [p["mbps"] for p in result.data["series"]]
        assert series == sorted(series)

    def test_table5_monotone(self):
        result = run_experiment("table5", quick=True)
        mbps = [p["mbps"] for p in result.data["sweep"]]
        assert mbps[0] == min(mbps)

    def test_table2_multiprocessing_wins(self):
        result = run_experiment("table2", quick=True)
        tp = result.data["throughput"]
        assert tp["multiprocessing"] >= tp["context_pipelining"]
