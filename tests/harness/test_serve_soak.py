"""The serve-soak experiment: invariants of the quick run, BENCH gating."""

import pytest

from repro.harness import serve_soak


@pytest.fixture(scope="module")
def quick_result():
    return serve_soak.run_serve_soak(quick=True)


class TestQuickRun:
    def test_outcomes_account_for_every_packet(self, quick_result):
        data = quick_result.data
        outcomes = data["outcomes"]
        assert sum(outcomes.values()) == data["extra"]["packets_offered"]
        assert outcomes["served"] == data["extra"]["served"]

    def test_acceptance_invariants(self, quick_result):
        extra = quick_result.data["extra"]
        # Burst traffic must overrun admission, the fault plan must trip
        # a breaker, and nothing served may ever be wrong.
        assert extra["shed"] > 0
        assert extra["breaker_opens"] > 0
        assert extra["oracle_divergences"] == 0
        assert extra["oracle_checks"] == extra["served"]

    def test_faults_exercised(self, quick_result):
        extra = quick_result.data["extra"]
        assert extra["transient_failures"] > 0  # channel outage hit
        assert extra["failovers"] > 0           # standby actually served
        assert extra["deadline_exceeded"] > 0   # spike pushed past budget

    def test_latency_within_deadline(self, quick_result):
        extra = quick_result.data["extra"]
        deadline_us = serve_soak.POLICY.default_deadline_s * 1e6
        assert 0 < extra["latency_us_p50"] <= deadline_us
        assert extra["latency_us_p50"] <= extra["latency_us_p99"] <= deadline_us

    def test_drained_cleanly(self, quick_result):
        assert quick_result.data["extra"]["drained"] is True

    def test_deterministic(self, quick_result):
        again = serve_soak.run_serve_soak(quick=True)
        assert again.data["metrics"] == quick_result.data["metrics"]
        assert again.data["extra"] == quick_result.data["extra"]


class TestBenchGating:
    def test_quick_mode_writes_no_bench_record(self, monkeypatch):
        calls = []
        monkeypatch.setattr(serve_soak, "write_bench_record",
                            lambda *a, **k: calls.append((a, k)))
        serve_soak.run_serve_soak(quick=True)
        assert calls == []
