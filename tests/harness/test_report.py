"""Report-rendering tests."""

from repro.harness.report import render_grouped_series, render_series, render_table


class TestTable:
    def test_alignment_and_content(self):
        text = render_table("T", ["a", "bb"], [(1, 2.5), ("xyz", "w")])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "xyz" in text and "2.50" in text

    def test_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text


class TestSeries:
    def test_bars_scale(self):
        text = render_series("S", "x", "y", [(1, 10.0), (2, 20.0)])
        lines = [ln for ln in text.splitlines() if "#" in ln]
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_empty(self):
        assert "(no data)" in render_series("S", "x", "y", [])

    def test_zero_values(self):
        text = render_series("S", "x", "y", [(1, 0.0)])
        assert "0.00" in text


class TestGroupedSeries:
    def test_groups_rendered(self):
        text = render_grouped_series(
            "G", "set", "mbps",
            {"expcuts": [("FW01", 7.0)], "hicuts": [("FW01", 3.0)]},
        )
        assert "expcuts" in text and "hicuts" in text and "FW01" in text

    def test_empty(self):
        assert "(no data)" in render_grouped_series("G", "x", "y", {})
