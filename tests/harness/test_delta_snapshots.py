"""Delta-snapshot chain tests: chaining, salvage, GC, interrupt safety.

A delta record extends a base snapshot with one epoch's edit batch;
``base_sha`` pins it to the exact base payload and ``prev_sha`` to its
predecessor, so a missing, reordered, corrupted or stale record breaks
the chain *detectably*.  These tests drive every failure mode: loads
must salvage the longest verified prefix and quarantine the rest, the
garbage collector must sweep orphaned deltas but never a live chain,
and an interrupt mid-write must leave the store loadable.
"""

import os

import pytest

from repro.core.errors import SnapshotIntegrityError
from repro.harness import snapshots
from repro.harness.snapshots import (
    DELTA_SUFFIX,
    delta_base_and_epoch,
    delta_path,
    gc_store,
    load_chain,
    read_delta,
    read_delta_header,
    verify_store,
    write_delta,
    write_snapshot,
)

KIND = "test-base"
DELTA_KIND = "test-delta"
CV = 3


def make_chain(tmp_path, epochs=(1, 2, 3), name="shard.snap"):
    """A base snapshot plus a verified chain of one-op deltas."""
    base_path = tmp_path / name
    header = write_snapshot(base_path, {"rules": [0, 1, 2]}, kind=KIND,
                            cache_version=CV)
    prev = header.sha256
    paths = []
    for epoch in epochs:
        path = delta_path(base_path, epoch)
        dh = write_delta(path, [("insert", 0, f"rule-{epoch}", 0)],
                         kind=DELTA_KIND, cache_version=CV, epoch=epoch,
                         base_sha=header.sha256, prev_sha=prev)
        prev = dh.sha256
        paths.append(path)
    return base_path, header, paths


def flip_byte(path):
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestDeltaNaming:
    def test_path_round_trip(self, tmp_path):
        base = tmp_path / "s0.snap"
        path = delta_path(base, 7)
        assert path.name == "s0.snap.00000007.delta"
        assert delta_base_and_epoch(path) == (base, 7)

    def test_epoch_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            delta_path(tmp_path / "s0.snap", 0)

    def test_non_delta_names_rejected(self, tmp_path):
        assert delta_base_and_epoch(tmp_path / "s0.snap") is None
        assert delta_base_and_epoch(tmp_path / "x.delta") is None


class TestChainRoundTrip:
    def test_intact_chain_loads_in_order(self, tmp_path):
        base_path, _, _ = make_chain(tmp_path)
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert chain.intact
        assert chain.epoch == 3
        assert [epoch for epoch, _ in chain.deltas] == [1, 2, 3]
        assert chain.deltas[0][1] == [("insert", 0, "rule-1", 0)]

    def test_chain_may_start_past_epoch_one(self, tmp_path):
        # A base republished at epoch N grows deltas from N+1; the
        # first link is authenticated by prev_sha == base payload sha.
        base_path, _, _ = make_chain(tmp_path, epochs=(5, 6))
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert chain.intact and chain.epoch == 6

    def test_delta_header_readable_standalone(self, tmp_path):
        _, header, paths = make_chain(tmp_path)
        dh, _offset = read_delta_header(paths[1])
        assert dh.epoch == 2
        assert dh.base_sha == header.sha256

    def test_wrong_base_sha_is_typed(self, tmp_path):
        base_path, header, paths = make_chain(tmp_path, epochs=(1,))
        with pytest.raises(SnapshotIntegrityError, match="different base"):
            read_delta(paths[0], base_sha="0" * 64)

    def test_wrong_prev_sha_is_typed(self, tmp_path):
        base_path, header, paths = make_chain(tmp_path, epochs=(1,))
        with pytest.raises(SnapshotIntegrityError, match="predecessor"):
            read_delta(paths[0], prev_sha="0" * 64)


class TestChainSalvage:
    def test_corrupt_mid_chain_salvages_prefix(self, tmp_path):
        base_path, _, paths = make_chain(tmp_path, epochs=(1, 2, 3, 4))
        flip_byte(paths[1])
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert not chain.intact
        assert chain.epoch == 1  # the longest verified prefix
        assert "checksum" in chain.broken
        # The broken record AND everything after it are quarantined:
        # their prev_sha chain can never verify again.
        assert not paths[1].exists()
        assert not paths[2].exists()
        assert not paths[3].exists()
        assert len(chain.quarantined) == 3
        assert paths[0].exists()

    def test_missing_epoch_breaks_chain(self, tmp_path):
        base_path, _, paths = make_chain(tmp_path, epochs=(1, 2, 3))
        os.unlink(paths[1])
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert not chain.intact
        assert chain.epoch == 1

    def test_foreign_base_delta_rejected(self, tmp_path):
        # A delta chained to a *previous* publication of the base (its
        # payload hash differs) must not replay onto the new base.
        base_path, _, paths = make_chain(tmp_path, epochs=(1, 2))
        write_snapshot(base_path, {"rules": [9, 9, 9]}, kind=KIND,
                       cache_version=CV)
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert not chain.intact
        assert chain.epoch == 0
        assert not chain.deltas


class TestStoreMaintenanceWithDeltas:
    def test_verify_store_covers_deltas(self, tmp_path):
        make_chain(tmp_path)
        report = verify_store(tmp_path, cache_version=CV)
        assert len(report.ok) == 4  # base + three deltas
        assert not report.corrupt

    def test_gc_keeps_live_chain(self, tmp_path):
        base_path, _, paths = make_chain(tmp_path)
        report = gc_store(tmp_path, cache_version=CV)
        assert base_path.exists()
        assert all(p.exists() for p in paths)
        assert not report.quarantined

    def test_gc_never_collects_base_with_referenced_deltas(self, tmp_path):
        base_path, _, paths = make_chain(tmp_path)
        gc_store(tmp_path, cache_version=CV)
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert chain.intact and chain.epoch == 3

    def test_gc_collects_orphans_of_missing_base(self, tmp_path):
        base_path, _, paths = make_chain(tmp_path)
        os.unlink(base_path)
        gc_store(tmp_path, cache_version=CV)
        assert not any(p.exists() for p in paths)

    def test_gc_collects_orphans_of_republished_base(self, tmp_path):
        base_path, _, paths = make_chain(tmp_path)
        write_snapshot(base_path, {"rules": [9]}, kind=KIND,
                       cache_version=CV)
        gc_store(tmp_path, cache_version=CV)
        assert base_path.exists()
        assert not any(p.exists() for p in paths)

    def test_gc_collects_suffix_after_upstream_break(self, tmp_path):
        base_path, _, paths = make_chain(tmp_path, epochs=(1, 2, 3))
        os.unlink(paths[0])
        gc_store(tmp_path, cache_version=CV)
        # Epochs 2 and 3 can never verify without epoch 1: swept.
        assert not paths[1].exists()
        assert not paths[2].exists()
        assert base_path.exists()


class TestInterruptSafety:
    """A KeyboardInterrupt mid-write (the mid-compaction crash) must
    leave the store loadable: old records intact, no partial files."""

    def test_interrupt_mid_delta_write_preserves_chain(self, tmp_path,
                                                       monkeypatch):
        base_path, header, paths = make_chain(tmp_path, epochs=(1, 2))
        real_fsync = os.fsync

        def boom(fd):
            raise KeyboardInterrupt

        monkeypatch.setattr(snapshots.os, "fsync", boom)
        with pytest.raises(KeyboardInterrupt):
            write_delta(delta_path(base_path, 3), [("remove", 0, 0)],
                        kind=DELTA_KIND, cache_version=CV, epoch=3,
                        base_sha=header.sha256, prev_sha="x" * 64)
        monkeypatch.setattr(snapshots.os, "fsync", real_fsync)
        assert not list(tmp_path.glob("*.tmp"))
        assert not delta_path(base_path, 3).exists()
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert chain.intact and chain.epoch == 2

    def test_interrupt_mid_base_republish_keeps_old_base(self, tmp_path,
                                                         monkeypatch):
        base_path, _, _ = make_chain(tmp_path, epochs=(1,))

        def boom(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(snapshots.os, "replace", boom)
        with pytest.raises(KeyboardInterrupt):
            write_snapshot(base_path, {"rules": [9]}, kind=KIND,
                           cache_version=CV)
        monkeypatch.undo()
        assert not list(tmp_path.glob("*.tmp"))
        # The old base + chain still load: the interrupted compaction
        # never published, so the previous generation keeps serving.
        chain = load_chain(base_path, kind=KIND, cache_version=CV,
                           delta_kind=DELTA_KIND)
        assert chain.intact and chain.epoch == 1
        assert chain.base == {"rules": [0, 1, 2]}
