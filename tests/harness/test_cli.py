"""Harness CLI tests."""

import json


from repro.harness.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table4" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_runs_config_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "IXP2850" in out
        assert "regenerated" in out

    def test_json_output(self, tmp_path, capsys):
        rc = main(["table3", "--json", str(tmp_path / "out")])
        assert rc == 0
        payload = json.loads((tmp_path / "out" / "table3.json").read_text())
        assert payload["experiment"] == "table3"
        assert payload["data"]["total"] == 16

    def test_quick_experiment_with_json(self, tmp_path):
        rc = main(["fig6", "--quick", "--json", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "fig6.json").read_text())
        assert payload["quick"] is True
        assert payload["data"]
