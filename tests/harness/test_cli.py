"""Harness CLI tests."""

import json


from repro.harness.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table4" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_unknown_experiment_did_you_mean(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "fig9" in err
        assert "valid experiments" in err

    def test_unknown_algorithm_exit_2(self, capsys):
        assert main(["profile", "--algorithms", "expcutz"]) == 2
        err = capsys.readouterr().err
        assert "unknown algorithm 'expcutz'" in err
        assert "expcuts" in err

    def test_unknown_ruleset_exit_2(self, capsys):
        assert main(["profile", "--ruleset", "CR99"]) == 2
        err = capsys.readouterr().err
        assert "unknown ruleset 'CR99'" in err
        assert "CR04" in err

    def test_library_errors_surface_their_code(self, monkeypatch, capsys):
        """Any ReproError escaping an experiment exits 1 with its stable
        ``error[<code>]`` prefix — no stack trace, no bare message."""
        from repro.core.errors import DeadlineExceeded

        def boom(name, quick=False):
            raise DeadlineExceeded("request ran 2.1ms past a 300us budget")

        monkeypatch.setattr("repro.harness.cli.run_experiment", boom)
        assert main(["fig6", "--quick"]) == 1
        err = capsys.readouterr().err
        assert "error[serve.deadline]:" in err
        assert "300us budget" in err
        assert "Traceback" not in err


class TestSnapshotsCommand:
    def test_verify_and_gc(self, tmp_path, monkeypatch, capsys):
        from repro.harness import snapshots
        from repro.harness.cache import CACHE_VERSION

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        good = tmp_path / "good.snap"
        snapshots.write_snapshot(good, [1, 2, 3], kind="ruleset",
                                 cache_version=CACHE_VERSION, digest="good")
        assert main(["snapshots", "verify"]) == 0

        bad = tmp_path / "bad.snap"
        snapshots.write_snapshot(bad, [4], kind="ruleset",
                                 cache_version=CACHE_VERSION, digest="bad")
        raw = bytearray(bad.read_bytes())
        raw[-1] ^= 0xFF
        bad.write_bytes(bytes(raw))
        assert main(["snapshots", "verify"]) == 1
        out = capsys.readouterr().out
        assert "checksum mismatch" in out

        assert main(["snapshots", "gc"]) == 0
        assert main(["snapshots", "verify"]) == 0
        assert good.exists() and not bad.exists()
        assert not list(tmp_path.glob("*.corrupt*"))

    def test_runs_config_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "IXP2850" in out
        assert "regenerated" in out

    def test_json_output(self, tmp_path, capsys):
        rc = main(["table3", "--json", str(tmp_path / "out")])
        assert rc == 0
        payload = json.loads((tmp_path / "out" / "table3.json").read_text())
        assert payload["experiment"] == "table3"
        assert payload["data"]["total"] == 16

    def test_quick_experiment_with_json(self, tmp_path):
        rc = main(["fig6", "--quick", "--json", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "fig6.json").read_text())
        assert payload["quick"] is True
        assert payload["data"]
