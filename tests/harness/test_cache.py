"""Build-cache tests (in-memory and on-disk)."""


import pytest

from repro.harness import cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cache.clear_memory_cache()
    yield
    cache.clear_memory_cache()


class TestCaching:
    def test_ruleset_memoised(self):
        a = cache.get_ruleset("FW01")
        b = cache.get_ruleset("FW01")
        assert a is b
        assert len(a) == 69

    def test_trace_keyed_by_params(self):
        a = cache.get_trace("FW01", count=50)
        b = cache.get_trace("FW01", count=60)
        assert len(a) == 50 and len(b) == 60

    def test_classifier_keyed_by_params(self):
        a = cache.get_classifier("FW01", "hicuts", binth=4)
        b = cache.get_classifier("FW01", "hicuts", binth=8)
        assert a is not b
        assert a.params.binth == 4 and b.params.binth == 8

    def test_telemetry_params_do_not_fragment_cache(self):
        plain = cache.get_classifier("FW01", "hicuts", binth=4)
        instrumented = cache.get_classifier("FW01", "hicuts", binth=4,
                                            telemetry=True)
        assert plain is instrumented
        # ...while genuine build parameters still key separate entries.
        other = cache.get_classifier("FW01", "hicuts", binth=8)
        assert other is not plain

    def test_disk_roundtrip(self, tmp_path):
        built = cache.get_classifier("FW01", "hicuts")
        cache.clear_memory_cache()
        reloaded = cache.get_classifier("FW01", "hicuts")
        assert built is not reloaded
        header = (0x0A000001, 1, 2, 80, 6)
        assert built.classify(header) == reloaded.classify(header)

    def test_disk_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        cache.get_classifier("FW01", "hicuts")
        cache.clear_memory_cache()
        # No pickle present -> rebuild happens (still correct).
        clf = cache.get_classifier("FW01", "hicuts")
        assert clf.classify((0, 0, 0, 0, 0)) is not None or True

    def test_corrupt_snapshot_recovers_and_quarantines(self):
        cache.get_classifier("FW01", "hicuts")
        snaps = list(cache.cache_dir().glob("*.snap"))
        assert snaps, "disk cache should hold .snap files"
        for path in snaps:
            path.write_bytes(b"garbage")
        cache.clear_memory_cache()
        clf = cache.get_classifier("FW01", "hicuts")
        assert clf is not None
        header = (0x0A000001, 1, 2, 80, 6)
        oracle = cache.get_ruleset("FW01").first_match(header)
        assert clf.classify(header) == oracle
        # The garbage files were quarantined, not silently reused/deleted.
        assert list(cache.cache_dir().glob("*.corrupt*"))

    def test_load_failures_counted_and_logged(self, caplog):
        import logging

        from repro.obs import disable_metrics, enable_metrics, get_registry

        cache.get_ruleset("FW01")
        for path in cache.cache_dir().glob("*.snap"):
            path.write_bytes(path.read_bytes()[:-2])  # truncate payload
        cache.clear_memory_cache()
        enable_metrics()
        try:
            with caplog.at_level(logging.WARNING, logger="repro"):
                cache.get_ruleset("FW01")
            counters = get_registry().snapshot()["counters"]
        finally:
            disable_metrics()
        assert counters.get("snapshots.load_failures") == 1
        assert any("snapshot load failed" in rec.message
                   for rec in caplog.records)

    def test_stale_cache_version_rebuilds(self, monkeypatch):
        cache.get_ruleset("FW01")
        cache.clear_memory_cache()
        monkeypatch.setattr(cache, "CACHE_VERSION", cache.CACHE_VERSION + 1)
        # Old-version snapshots must never load: keys differ AND any file
        # claiming the stale version fails verification at read time.
        rs = cache.get_ruleset("FW01")
        assert len(rs) == 69
