"""CLI tool tests (repro-classify, repro-generate)."""

import pytest

from repro.tools.classify import main as classify_main
from repro.tools.generate import main as generate_main


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.txt"
    rc = generate_main(["ruleset", "--profile", "FW01", "--size", "20",
                        "--seed", "4", "--default-action", "deny",
                        "-o", str(path)])
    assert rc == 0
    return path


class TestGenerate:
    def test_ruleset_roundtrips(self, rules_file):
        from repro.rulesets import load_rules

        rules = load_rules(rules_file)
        assert len(rules) == 21  # 20 + default

    def test_trace_matched(self, rules_file, tmp_path):
        out = tmp_path / "t.npz"
        rc = generate_main(["trace", str(rules_file), "--count", "64",
                            "-o", str(out)])
        assert rc == 0
        from repro.traffic import Trace

        assert len(Trace.load(out)) == 64

    def test_trace_uniform(self, tmp_path):
        out = tmp_path / "u.npz"
        rc = generate_main(["trace", "--count", "32", "-o", str(out)])
        assert rc == 0

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        generate_main(["ruleset", "--profile", "CR01", "--size", "15",
                       "--seed", "7", "-o", str(a)])
        generate_main(["ruleset", "--profile", "CR01", "--size", "15",
                       "--seed", "7", "-o", str(b)])
        assert a.read_text() == b.read_text()


class TestClassify:
    def test_generate_mode(self, rules_file, capsys):
        rc = classify_main([str(rules_file), "--generate", "50",
                            "--algorithm", "expcuts"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "50 packets" in out
        assert "decisions" in out

    def test_trace_file_mode(self, rules_file, tmp_path, capsys):
        trace = tmp_path / "t.npz"
        generate_main(["trace", str(rules_file), "--count", "40",
                       "-o", str(trace)])
        rc = classify_main([str(rules_file), str(trace), "--summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "40 packets" in out

    def test_csv_output(self, rules_file, tmp_path):
        out = tmp_path / "decisions.csv"
        rc = classify_main([str(rules_file), "--generate", "25",
                            "--output", str(out)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert lines[0].startswith("sip,dip")
        assert len(lines) == 26

    def test_algorithms_agree_via_cli(self, rules_file, tmp_path):
        trace = tmp_path / "t.npz"
        generate_main(["trace", str(rules_file), "--count", "30",
                       "-o", str(trace)])
        outputs = []
        for algo in ("expcuts", "hicuts", "hsm"):
            out = tmp_path / f"{algo}.csv"
            classify_main([str(rules_file), str(trace), "--algorithm", algo,
                           "--output", str(out)])
            outputs.append(out.read_text())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_missing_trace_errors(self, rules_file, capsys):
        rc = classify_main([str(rules_file)])
        assert rc == 2

    def test_empty_rules_errors(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        rc = classify_main([str(empty), "--generate", "5"])
        assert rc == 2

    def test_missing_rules_file_clean_error(self, tmp_path, capsys):
        rc = classify_main([str(tmp_path / "nope.txt"), "--generate", "5"])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_rules_file_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("not a rule\n")
        rc = classify_main([str(bad), "--generate", "5"])
        assert rc == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_generate_trace_missing_rules_clean_error(self, tmp_path, capsys):
        rc = generate_main(["trace", str(tmp_path / "nope.txt"),
                            "--count", "5", "-o", str(tmp_path / "t.npz")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err
