"""The perf-report experiment: artifacts, attribution, reproducibility."""

import json

import pytest

from repro.harness import perf_report


@pytest.fixture(scope="module")
def quick_result(tmp_path_factory):
    out = tmp_path_factory.mktemp("perf_report")
    return out, perf_report.run_perf_report(quick=True, out_dir=out)


class TestQuickRun:
    def test_stage_attribution_covers_the_run(self, quick_result):
        _, result = quick_result
        extra = result.data["extra"]
        assert extra["stage_coverage"] == pytest.approx(1.0, abs=0.01)
        stages = extra["stage_breakdown"]
        # The serve pipeline's stages all show up, with call counts.
        for stage in ("idle", "admission", "classify", "audit"):
            assert stage in stages, stage
        assert stages["admission"]["calls"] == extra["packets_offered"]

    def test_latency_histograms_separate_tail_from_body(self, quick_result):
        _, result = quick_result
        extra = result.data["extra"]
        # Request-level latency includes retries/backoff, so its extreme
        # tail must sit above the per-attempt p99 — the quantized
        # integer histogram collapsed these to one bucket edge.
        assert extra["request_latency_us_max"] > extra["latency_us_p99"]
        assert extra["latency_us_p50"] <= extra["latency_us_p99"]

    def test_artifacts_written_and_well_formed(self, quick_result):
        out, result = quick_result
        json_path = out / "perf_report_FW01.json"
        prom_path = out / "perf_report_FW01.prom"
        assert str(json_path) in result.data["artifacts"]
        payload = json.loads(json_path.read_text())
        assert payload["stage_attribution"]["coverage"] == \
            pytest.approx(1.0, abs=0.01)
        assert payload["histograms"]["request_latency_us"]["kind"] == "log"
        assert payload["slo"]["timeseries"], "per-window timeseries missing"
        prom = prom_path.read_text()
        assert "repro_serve_latency_us_bucket" in prom
        assert "repro_driver_request_latency_us_count" in prom

    def test_artifacts_bit_reproducible(self, quick_result, tmp_path):
        out, _ = quick_result
        perf_report.run_perf_report(quick=True, out_dir=tmp_path)
        for name in ("perf_report_FW01.json", "perf_report_FW01.prom"):
            assert (tmp_path / name).read_bytes() == \
                (out / name).read_bytes(), name

    def test_slo_report_in_result(self, quick_result):
        _, result = quick_result
        extra = result.data["extra"]
        assert extra["slo_total"] == 4
        assert extra["slo_compliant"] == extra["slo_total"]
        assert extra["slo_windows"] > 0


class TestBenchGating:
    def test_quick_mode_writes_no_bench_record(self, monkeypatch, tmp_path):
        calls = []
        monkeypatch.setattr(perf_report, "write_bench_record",
                            lambda *a, **k: calls.append((a, k)))
        perf_report.run_perf_report(quick=True, out_dir=tmp_path)
        assert calls == []
