"""Tests for the overload-safe serving layer (:mod:`repro.serve`)."""
