"""Worker supervision: spawn, heartbeat, death detection, backed-off
restarts, crash-loop parking and corrupt-snapshot recovery.

These tests run real forked workers but drive all timing through a
ManualClock — the wall clock only bounds pipe waits, so each test stays
fast and its outcome deterministic.
"""

from pathlib import Path

import pytest

from repro.classifiers import LinearSearchClassifier
from repro.classifiers.updates import UpdatableClassifier
from repro.core.errors import ShardUnavailable, WorkerCrashLoop
from repro.core.rule import Rule, RuleSet
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    DOWN,
    PARKED,
    RUNNING,
    ManualClock,
    ShardSpec,
    SupervisionPolicy,
    Supervisor,
    write_shard_snapshot,
)

POLICY = SupervisionPolicy(
    heartbeat_interval_s=0.01, heartbeat_timeout_s=0.5, liveness_misses=2,
    reply_timeout_s=5.0, ready_timeout_s=60.0,
    restart_backoff_base_s=1e-3, restart_backoff_mult=2.0,
    restart_backoff_max_s=0.05,
    warm_restart_cost_s=1e-3, cold_restart_cost_s=5e-3,
    crash_loop_window_s=5.0, crash_loop_budget=3)

RULES = (
    Rule.from_prefixes(sip="10.0.0.0/8", proto=6),
    Rule.from_prefixes(dip="192.168.1.0/24"),
    Rule.any(),
)
HEADER = (0x0A000001, 0xC0A80105, 12345, 80, 6)


def make_spec(tmp_path, name="shard0", crash_on_start=False):
    spec = ShardSpec(
        name=name, rules=RULES, global_map=tuple(range(len(RULES))),
        snapshot_path=str(Path(tmp_path) / f"{name}.snap"),
        algorithm="linear", rebuild_threshold=4,
        crash_on_start=crash_on_start)
    base = UpdatableClassifier(RuleSet(list(RULES), name=name),
                               LinearSearchClassifier, rebuild_threshold=4)
    write_shard_snapshot(Path(spec.snapshot_path), spec, base)
    return spec


@pytest.fixture
def sup(tmp_path):
    clock = ManualClock()
    registry = MetricsRegistry()
    supervisor = Supervisor([make_spec(tmp_path)], policy=POLICY,
                            clock=clock, charge=clock.advance,
                            metrics=registry.scope("fabric"))
    supervisor.start()
    yield supervisor, clock, registry
    supervisor.stop()


def counter(registry, name):
    return registry.counter(f"fabric.{name}").value


def restart(supervisor, clock, shard="shard0", rounds=200):
    """Tick simulated time forward until the shard is RUNNING again."""
    for _ in range(rounds):
        clock.advance(5e-3)
        supervisor.tick(clock.now)
        if supervisor.state(shard) == RUNNING:
            return
    raise AssertionError(f"{shard} never restarted")


class TestLifecycle:
    def test_starts_running_and_serves(self, sup):
        supervisor, clock, _ = sup
        assert supervisor.state("shard0") == RUNNING
        assert supervisor.available() == 1
        answers = supervisor.request("shard0", [HEADER], clock.now)
        assert answers == [0]  # 10.0.0.1 proto 6 hits rule 0

    def test_heartbeats_flow_on_tick(self, sup):
        supervisor, clock, registry = sup
        for _ in range(5):
            clock.advance(POLICY.heartbeat_interval_s * 1.5)
            supervisor.tick(clock.now)
        assert counter(registry, "heartbeats") >= 5
        assert counter(registry, "heartbeat_misses") == 0

    def test_stop_is_graceful(self, tmp_path):
        clock = ManualClock()
        supervisor = Supervisor([make_spec(tmp_path)], policy=POLICY,
                                clock=clock, charge=clock.advance,
                                metrics=MetricsRegistry().scope("fabric"))
        supervisor.start()
        stats = supervisor.stop()
        assert "shard0" in stats
        assert supervisor.state("shard0") == "stopped"


class TestDeathAndRestart:
    def test_kill_detected_and_restarted_warm(self, sup):
        supervisor, clock, registry = sup
        supervisor.inject_kill("shard0")
        assert not supervisor.probe("shard0", clock.now)
        assert supervisor.state("shard0") == DOWN
        assert supervisor.any_down()
        assert counter(registry, "worker_deaths") == 1
        assert counter(registry, "deaths.pipe_closed") == 1

        with pytest.raises(ShardUnavailable):
            supervisor.request("shard0", [HEADER], clock.now)

        restart(supervisor, clock)
        # 2 = initial warm spawn + the post-kill warm restart.
        assert counter(registry, "warm_restarts") == 2
        assert counter(registry, "restarts") == 1
        assert supervisor.request("shard0", [HEADER], clock.now) == [0]

    def test_hang_caught_by_liveness_deadline(self, sup):
        supervisor, clock, registry = sup
        supervisor.inject_hang("shard0")
        for _ in range(POLICY.liveness_misses):
            assert not supervisor.probe("shard0", clock.now)
        assert supervisor.state("shard0") == DOWN
        assert counter(registry, "deaths.liveness") == 1
        assert counter(registry, "heartbeat_misses") >= POLICY.liveness_misses
        restart(supervisor, clock)
        assert supervisor.request("shard0", [HEADER], clock.now) == [0]

    def test_backoff_doubles_then_caps(self):
        assert POLICY.backoff(1) == pytest.approx(1e-3)
        assert POLICY.backoff(2) == pytest.approx(2e-3)
        assert POLICY.backoff(3) == pytest.approx(4e-3)
        assert POLICY.backoff(50) == POLICY.restart_backoff_max_s

    def test_restart_waits_out_the_backoff(self, sup):
        supervisor, clock, _ = sup
        supervisor.inject_kill("shard0")
        supervisor.probe("shard0", clock.now)
        # Immediately ticking must NOT restart: the backoff hasn't
        # elapsed in simulated time yet.
        supervisor.tick(clock.now)
        assert supervisor.state("shard0") == DOWN
        clock.advance(POLICY.restart_backoff_base_s * 2)
        supervisor.tick(clock.now)
        assert supervisor.state("shard0") == RUNNING


class TestCrashLoop:
    def test_budget_exhaustion_parks_the_shard(self, tmp_path):
        clock = ManualClock()
        registry = MetricsRegistry()
        spec = make_spec(tmp_path, crash_on_start=True)
        supervisor = Supervisor([spec], policy=POLICY, clock=clock,
                                charge=clock.advance,
                                metrics=registry.scope("fabric"))
        supervisor.start()
        try:
            for _ in range(400):
                clock.advance(5e-3)
                supervisor.tick(clock.now)
                if supervisor.state("shard0") == PARKED:
                    break
            assert supervisor.state("shard0") == PARKED
            assert counter(registry, "crash_loop_parked") == 1
            assert counter(registry, "failed_starts") >= POLICY.crash_loop_budget
            handle = supervisor.handles["shard0"]
            assert isinstance(handle.park_error, WorkerCrashLoop)
            with pytest.raises(ShardUnavailable) as exc:
                supervisor.request("shard0", [HEADER], clock.now)
            assert exc.value.phase == "parked"
            # Parked stays parked: further ticks never respawn.
            clock.advance(60.0)
            supervisor.tick(clock.now)
            assert supervisor.state("shard0") == PARKED
        finally:
            supervisor.stop()


class TestCorruptSnapshot:
    def test_cold_rebuild_quarantine_and_reseed(self, tmp_path):
        clock = ManualClock()
        registry = MetricsRegistry()
        spec = make_spec(tmp_path)
        reseeded = []

        def reseed(s):
            reseeded.append(s.name)
            base = UpdatableClassifier(RuleSet(list(RULES), name=s.name),
                                       LinearSearchClassifier,
                                       rebuild_threshold=4)
            write_shard_snapshot(Path(s.snapshot_path), s, base)

        supervisor = Supervisor([spec], policy=POLICY, clock=clock,
                                charge=clock.advance,
                                metrics=registry.scope("fabric"),
                                reseed_snapshot=reseed)
        supervisor.start()
        try:
            # Corrupt the snapshot, then kill: the restart must detect
            # the damage, quarantine the file and rebuild cold.
            snap = Path(spec.snapshot_path)
            raw = bytearray(snap.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            snap.write_bytes(bytes(raw))
            supervisor.inject_kill("shard0")
            supervisor.probe("shard0", clock.now)
            restart(supervisor, clock)

            assert counter(registry, "cold_restarts") == 1
            assert counter(registry, "corrupt_snapshot_restarts") == 1
            assert reseeded == ["shard0"]
            assert list(snap.parent.glob("*.corrupt*"))
            # Answers stay correct off the cold rebuild.
            assert supervisor.request("shard0", [HEADER], clock.now) == [0]

            # The reseed healed the store: the *next* restart is warm.
            supervisor.inject_kill("shard0")
            supervisor.probe("shard0", clock.now)
            restart(supervisor, clock)
            # 2 = initial warm spawn + this post-reseed warm restart
            # (the corrupt-snapshot restart in between was cold).
            assert counter(registry, "warm_restarts") == 2
        finally:
            supervisor.stop()
