"""Epoch-consistent update propagation across the worker fabric.

``Fabric.apply_updates`` commits a batch of global rule edits as one
update epoch: the parent's oracle, every shard's kept base, the
persisted delta chain and the worker fan-out all advance together, and
workers converge asynchronously.  These tests drive the full loop —
clean propagation, warm restarts that replay delta chains, every
control-plane fault kind (lost / duplicated / reordered sends, corrupt
deltas, a crash mid-compaction), history eviction forcing a recycle,
and the drain bar (`settle`) — asserting zero oracle divergences and
exact classification throughout.
"""

import pytest

from repro.core.errors import ConfigurationError, UpdateError
from repro.core.rule import RuleSet
from repro.rulesets import churn_sequence, generate
from repro.rulesets.profiles import PROFILES
from repro.serve import (
    Fabric,
    ManualClock,
    RUNNING,
    ServicePolicy,
    SupervisionPolicy,
)

POLICY = ServicePolicy(max_in_flight=64, breaker_window=8,
                       breaker_min_calls=4, open_s=1e-3, half_open_probes=2,
                       oracle_check=True)
SUPERVISION = SupervisionPolicy(
    heartbeat_interval_s=0.02, heartbeat_timeout_s=0.5, liveness_misses=2,
    restart_backoff_base_s=1e-3, restart_backoff_max_s=0.05,
    warm_restart_cost_s=1e-3, cold_restart_cost_s=5e-3,
    crash_loop_window_s=5.0, crash_loop_budget=6)


@pytest.fixture(scope="module")
def base_rules():
    return generate(PROFILES["FW01"], size=24, seed=11).with_default()


@pytest.fixture
def make_fabric(tmp_path, base_rules):
    made = []

    def factory(**kw):
        clock = ManualClock()
        fab = Fabric(list(base_rules), tmp_path / f"shards{len(made)}",
                     num_shards=2, policy=POLICY, supervision=SUPERVISION,
                     clock=clock, charge=clock.advance, **kw)
        fab.manual_clock = clock
        made.append(fab)
        return fab

    yield factory
    for fab in made:
        fab.supervisor.stop()


def churn_batches(rules, updates, seed, batch=4):
    ops = churn_sequence(RuleSet(list(rules)), updates, seed=seed)
    return [ops[i:i + batch] for i in range(0, len(ops), batch)]


def converge(fab, ticks=400):
    """Advance simulated time until every worker is running at the
    fabric's epoch (heartbeats carry the applied epoch back)."""
    clock = fab.manual_clock
    for _ in range(ticks):
        clock.advance(SUPERVISION.heartbeat_interval_s)
        fab.tick(clock.now)
        if (fab.max_epoch_lag() == 0
                and all(h.state == RUNNING
                        for h in fab.supervisor.handles.values())):
            return
    raise AssertionError(
        f"fabric did not converge: lag={fab.max_epoch_lag()} "
        f"report={fab.supervisor.report()}")


def assert_serving_current_rules(fab, n=32):
    """Fabric answers must match a linear oracle over the *current*
    global rule list (exercises every rule's low corner)."""
    oracle = RuleSet(list(fab.rules))
    headers = [tuple(iv.lo for iv in rule.intervals)
               for rule in fab.rules[:n]]
    for header in headers:
        assert fab.classify(header) == oracle.first_match(header), header
    assert fab.counter("oracle.divergences") == 0


# -- clean propagation ---------------------------------------------------------

class TestEpochPropagation:
    def test_updates_reach_workers_and_answers_track_oracle(
            self, make_fabric, base_rules):
        fab = make_fabric()
        for batch in churn_batches(base_rules, 12, seed=3):
            fab.apply_updates(batch)
        assert fab.epoch == 3
        converge(fab)
        report = fab.report()["updates"]
        assert report["epoch"] == 3
        assert set(report["applied_epochs"].values()) == {3}
        # Every epoch persisted one delta per shard (no compaction yet).
        assert set(report["delta_chain_lengths"].values()) == {3}
        assert report["max_epoch_lag"] == 0
        assert_serving_current_rules(fab)
        assert fab.counter("oracle.checks") > 0

    def test_batch_classification_matches_scalar_after_churn(
            self, make_fabric, base_rules):
        fab = make_fabric()
        for batch in churn_batches(base_rules, 8, seed=5):
            fab.apply_updates(batch)
        converge(fab)
        headers = [tuple(iv.lo for iv in rule.intervals)
                   for rule in fab.rules[:16]]
        outcomes = fab.classify_batch(headers)
        assert all(o["status"] == "served" for o in outcomes)
        for header, outcome in zip(headers, outcomes):
            assert outcome["rule"] == fab.classify(header)
        assert fab.counter("oracle.divergences") == 0

    def test_apply_updates_validates_ops(self, make_fabric):
        fab = make_fabric()
        with pytest.raises(UpdateError):
            fab.apply_updates([("replace", 0)])
        with pytest.raises(UpdateError):
            fab.apply_updates([("insert", len(fab.rules) + 1,
                               fab.rules[0])])
        with pytest.raises(UpdateError):
            fab.apply_updates([("remove", len(fab.rules))])
        # No epoch was committed by any rejected batch.
        assert fab.epoch == 0

    def test_inject_update_fault_validates(self, make_fabric):
        fab = make_fabric()
        with pytest.raises(ConfigurationError):
            fab.inject_update_fault("shard0", "melt_cpu")
        with pytest.raises(ConfigurationError):
            fab.inject_update_fault("no-such-shard", "lose_update")


# -- warm restarts replay the persisted chain ----------------------------------

class TestWarmRestartReplay:
    def test_kill_then_warm_restart_replays_deltas(self, make_fabric,
                                                   base_rules):
        fab = make_fabric()
        clock = fab.manual_clock
        for batch in churn_batches(base_rules, 8, seed=9):
            fab.apply_updates(batch)
        converge(fab)

        victim = fab.specs[0].name
        fab.supervisor.inject_kill(victim)
        fab.probe(victim, clock.now)  # detect the EOF now
        assert fab.supervisor.state(victim) != RUNNING

        converge(fab)
        report = fab.supervisor.report()[victim]
        assert report["warm"], "restart should load the published snapshot"
        # The snapshot is the epoch-0 base: catching up to the fabric's
        # epoch means the persisted delta chain actually replayed.
        assert report["replayed_deltas"] >= 1
        assert report["applied_epoch"] == fab.epoch
        clock.advance(POLICY.open_s * 2)  # let the breaker cool down
        assert_serving_current_rules(fab)


# -- send-path faults ----------------------------------------------------------

class TestSendFaults:
    def test_lost_update_repaired_by_anti_entropy(self, make_fabric,
                                                  base_rules):
        fab = make_fabric()
        victim = fab.specs[0].name
        batches = churn_batches(base_rules, 8, seed=13)
        fab.apply_updates(batches[0])
        fab.inject_update_fault(victim, "lose_update")
        fab.apply_updates(batches[1])  # this epoch never reaches victim
        assert fab.counter("update_faults.lose_update") == 1
        converge(fab)  # tick() pumps the missing epoch back out
        assert fab.counter("update_repairs") >= 1
        assert_serving_current_rules(fab)

    def test_duplicate_update_applied_once(self, make_fabric, base_rules):
        fab = make_fabric()
        victim = fab.specs[0].name
        batches = churn_batches(base_rules, 8, seed=17)
        fab.inject_update_fault(victim, "dup_update")
        fab.apply_updates(batches[0])  # sent twice; second must be a no-op
        fab.apply_updates(batches[1])
        assert fab.counter("update_faults.dup_update") == 1
        converge(fab)
        assert_serving_current_rules(fab)

    def test_reordered_updates_gap_buffered(self, make_fabric, base_rules):
        fab = make_fabric()
        victim = fab.specs[0].name
        batches = churn_batches(base_rules, 12, seed=19)
        fab.inject_update_fault(victim, "reorder_update")
        fab.apply_updates(batches[0])  # held back ...
        fab.apply_updates(batches[1])  # ... and released after this one:
        fab.apply_updates(batches[2])  # the worker sees 2 before 1
        assert fab.counter("update_faults.reorder_update") == 1
        converge(fab)
        assert_serving_current_rules(fab)


# -- persistence-path faults ---------------------------------------------------

class TestChainFaults:
    def test_corrupt_delta_quarantined_then_repaired(self, make_fabric,
                                                     base_rules):
        fab = make_fabric()
        clock = fab.manual_clock
        victim = fab.specs[0].name
        batches = churn_batches(base_rules, 12, seed=23)
        fab.apply_updates(batches[0])
        fab.inject_update_fault(victim, "corrupt_delta")
        fab.apply_updates(batches[1])  # this delta is corrupted on disk
        fab.apply_updates(batches[2])
        assert fab.counter("update_faults.corrupt_delta") == 1
        converge(fab)  # the live worker got the epochs over the pipe

        # A restart replays from disk: the corrupt record (and its
        # successors) are quarantined, the salvaged prefix loads, and
        # anti-entropy repairs the gap back to the current epoch.
        fab.supervisor.inject_kill(victim)
        fab.probe(victim, clock.now)
        converge(fab)
        assert fab.supervisor.report()[victim]["applied_epoch"] == fab.epoch
        clock.advance(POLICY.open_s * 2)
        assert_serving_current_rules(fab)

    def test_crash_mid_compaction_recovers_on_fresh_base(self, make_fabric,
                                                         base_rules):
        fab = make_fabric()
        victim = fab.specs[0].name
        starts_before = fab.supervisor.report()[victim]["starts"]
        batches = churn_batches(base_rules, 8, seed=29)
        fab.apply_updates(batches[0])
        fab.inject_update_fault(victim, "crash_mid_compaction")
        fab.apply_updates(batches[1])
        assert fab.counter("update_faults.crash_mid_compaction") == 1
        assert fab.counter("delta_compactions") >= 1
        # The compaction republished the base at the current epoch and
        # reset the chain before the worker died.
        assert fab.report()["updates"]["delta_chain_lengths"][victim] == 0
        converge(fab)
        report = fab.supervisor.report()[victim]
        assert report["starts"] > starts_before  # it really was recycled
        assert report["applied_epoch"] == fab.epoch
        fab.manual_clock.advance(POLICY.open_s * 2)
        assert_serving_current_rules(fab)

    def test_stale_worker_recycled_when_history_evicted(self, make_fabric,
                                                        base_rules):
        # History keeps only 2 epochs: losing 3 sends in a row leaves
        # the worker beyond pipe repair, so the pump must compact the
        # shard and recycle the worker onto the fresh base.
        fab = make_fabric(epoch_history=2)
        victim = fab.specs[0].name
        for batch in churn_batches(base_rules, 12, seed=31, batch=4)[:3]:
            fab.inject_update_fault(victim, "lose_update")
            fab.apply_updates(batch)
        assert fab.counter("update_faults.lose_update") == 3
        converge(fab)
        assert fab.counter("stale_recycles") >= 1
        fab.manual_clock.advance(POLICY.open_s * 2)
        assert_serving_current_rules(fab)


# -- drain ---------------------------------------------------------------------

class TestSettle:
    def test_settle_drains_backlog_and_lag(self, make_fabric, base_rules):
        fab = make_fabric()
        for batch in churn_batches(base_rules, 16, seed=37):
            fab.apply_updates(batch)
        state = fab.settle(fab.manual_clock.now)
        converge(fab)
        assert state["epoch"] == fab.epoch
        assert state["rebuild_backlog"] == 0
        assert fab.rebuild_backlog() == 0
        assert fab.max_epoch_lag() == 0
        # Settling compacted every live chain into its base.
        lengths = fab.report()["updates"]["delta_chain_lengths"]
        assert set(lengths.values()) == {0}
        assert_serving_current_rules(fab)
