"""FloodGuard: checksum shedding, half-open budget, SYN authentication."""

import pytest

from repro.core.errors import AdmissionRejected, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.serve import FloodGuard


def make_guard(**kwargs):
    registry = MetricsRegistry()
    guard = FloodGuard(lambda header: 7, registry.scope("guard"), **kwargs)
    return guard, registry


def header(sip, sport=1000, dip=9, dport=80, proto=6):
    return (sip, dip, sport, dport, proto)


class TestBasics:
    def test_passthrough_answer(self):
        guard, _ = make_guard()
        assert guard.submit(header(1), kind="DATA") == 7

    def test_bad_checksum_shed_before_classify(self):
        calls = []
        registry = MetricsRegistry()
        guard = FloodGuard(lambda h: calls.append(h),
                           registry.scope("guard"))
        with pytest.raises(AdmissionRejected):
            guard.submit(header(1), kind="DATA", checksum_ok=False)
        assert calls == []
        assert registry.counter("guard.shed.bad_checksum").value == 1

    def test_connection_key_direction_independent(self):
        fwd = header(1, 1000, 9, 80)
        rev = header(9, 80, 1, 1000)
        assert FloodGuard.connection_key(fwd) == FloodGuard.connection_key(rev)

    def test_bad_config(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            FloodGuard(lambda h: 0, registry.scope("g"), half_open_budget=0)
        with pytest.raises(ConfigurationError):
            FloodGuard(lambda h: 0, registry.scope("g"), proof_capacity=0)


class TestHandshakeLifecycle:
    def test_handshake_opens_then_establishes(self):
        guard, _ = make_guard()
        h = header(1)
        guard.submit(h, kind="SYN")
        assert guard.half_open_count == 1
        guard.submit(h, kind="ACK")
        assert guard.half_open_count == 0
        assert guard.established_count == 1

    def test_fin_clears_connection(self):
        guard, _ = make_guard()
        h = header(1)
        guard.submit(h, kind="SYN")
        guard.submit(h, kind="ACK")
        guard.submit(h, kind="FIN")
        assert guard.established_count == 0

    def test_unknown_data_passes(self):
        # Mid-flow packets on asymmetric paths are normal; the guard
        # polices handshakes, not continuations.
        guard, _ = make_guard()
        assert guard.submit(header(5), kind="DATA") == 7


class TestSynAuthentication:
    def test_engages_at_budget(self):
        guard, _ = make_guard(half_open_budget=4)
        for sip in range(4):
            guard.submit(header(sip), kind="SYN")
        assert guard.engaged

    def test_unproven_syn_shed_when_engaged(self):
        guard, registry = make_guard(half_open_budget=2)
        guard.submit(header(1), kind="SYN")
        guard.submit(header(2), kind="SYN")
        with pytest.raises(AdmissionRejected):
            guard.submit(header(3), kind="SYN")
        assert registry.counter("guard.shed.syn_unproven").value == 1

    def test_retransmitted_syn_proven_and_admitted(self):
        guard, registry = make_guard(half_open_budget=2)
        guard.submit(header(1), kind="SYN")
        guard.submit(header(2), kind="SYN")
        with pytest.raises(AdmissionRejected):
            guard.submit(header(3), kind="SYN")   # first: shed, recorded
        assert guard.submit(header(3), kind="SYN") == 7  # retransmit: proven
        assert registry.counter("guard.syn_proven").value == 1

    def test_spoofed_flood_mostly_shed(self):
        guard, registry = make_guard(half_open_budget=8)
        shed = 0
        for sip in range(200):  # every source distinct, none retransmits
            try:
                guard.submit(header(sip), kind="SYN")
            except AdmissionRejected:
                shed += 1
        assert shed >= 0.9 * 200
        assert guard.half_open_count <= 8

    def test_established_syn_not_policed(self):
        guard, _ = make_guard(half_open_budget=1)
        h = header(1)
        guard.submit(h, kind="SYN")
        guard.submit(h, kind="ACK")  # established; table empties
        guard.submit(header(2), kind="SYN")  # refill to budget: engaged
        assert guard.submit(h, kind="SYN") == 7  # stray SYN on live conn

    def test_proof_table_bounded(self):
        guard, _ = make_guard(half_open_budget=1, proof_capacity=16)
        guard.submit(header(0), kind="SYN")
        for sip in range(1, 100):
            with pytest.raises(AdmissionRejected):
                guard.submit(header(sip), kind="SYN")
        assert guard.report()["proof_pending"] <= 16


class TestAccounting:
    def test_per_class_counters(self):
        guard, registry = make_guard()
        guard.submit(header(1), kind="DATA", klass="bulk")
        with pytest.raises(AdmissionRejected):
            guard.submit(header(2), kind="DATA", klass="bulk",
                         checksum_ok=False)
        counters = registry.snapshot()["counters"]
        assert counters["guard.class.bulk.offered"] == 2
        assert counters["guard.class.bulk.served"] == 1
        assert counters["guard.class.bulk.shed"] == 1

    def test_report_shape(self):
        guard, _ = make_guard()
        guard.submit(header(1), kind="SYN")
        report = guard.report()
        assert report["half_open"] == 1
        assert report["engaged"] is False
        assert set(report) == {"half_open", "established", "proof_pending",
                               "engaged", "engagements"}
