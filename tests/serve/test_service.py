"""ClassificationService: admission, deadlines, retry, failover, audit,
drain/stop and snapshot persistence."""

import pytest

from repro.classifiers import LinearSearchClassifier
from repro.classifiers.updates import UpdatableClassifier
from repro.core.errors import (
    AdmissionRejected,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceeded,
    RetriesExhausted,
    ServiceStopped,
    TransientServiceError,
)
from repro.core.rule import Rule
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.serve import (
    OPEN,
    ClassificationService,
    ManualClock,
    Replica,
    RetryPolicy,
    ServicePolicy,
)

HEADER = (0x0A000001, 0xC0A80105, 12345, 80, 6)


class FixedClassifier:
    """A stub returning one fixed answer (no real structure needed)."""

    def __init__(self, answer=0):
        self.answer = answer
        self.rules = []

    def classify(self, header):
        return self.answer


def updatable(ruleset):
    return UpdatableClassifier(ruleset, LinearSearchClassifier,
                               rebuild_threshold=4)


def service_for(ruleset, policy=None, clock=None, replicas=2, hooks=None):
    clock = clock or ManualClock()
    reps = [
        Replica(f"sram{i}", updatable(ruleset),
                fault_hook=(hooks or {}).get(i))
        for i in range(replicas)
    ]
    return ClassificationService(
        reps, policy=policy or ServicePolicy(), clock=clock,
        sleep=clock.sleep), clock


class TestConstruction:
    def test_bare_classifiers_get_wrapped(self):
        svc = ClassificationService([FixedClassifier(), FixedClassifier()])
        assert [r.name for r in svc.replicas] == ["replica0", "replica1"]
        assert all(r.breaker is not None for r in svc.replicas)

    def test_needs_a_replica(self):
        with pytest.raises(ConfigurationError):
            ClassificationService([])


class TestHappyPath:
    def test_answers_match_oracle(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        oracle = tiny_ruleset
        for rule in tiny_ruleset:
            header = tuple(iv.lo for iv in rule.intervals)
            assert svc.classify(header) == oracle.first_match(header)
        assert svc.counter("served") == len(tiny_ruleset)
        assert svc.counter("requests") == len(tiny_ruleset)

    def test_latency_recorded(self, tiny_ruleset):
        clock = ManualClock()
        hooks = {0: lambda now: clock.advance(50e-6)}
        svc, _ = service_for(tiny_ruleset, clock=clock, hooks=hooks)
        svc.classify(HEADER)
        hist = svc.metrics.log_histogram("serve.latency_us")
        assert hist.total == 1 and hist.mean == pytest.approx(50.0)
        # The log-bucketed histogram keeps the exact max on the side.
        assert hist.max == pytest.approx(50.0)


class TestAdmission:
    def test_rate_limit_sheds_with_reason(self, tiny_ruleset):
        policy = ServicePolicy(rate_limit_per_s=10.0, burst=2)
        svc, _ = service_for(tiny_ruleset, policy=policy)
        svc.classify(HEADER)
        svc.classify(HEADER)
        with pytest.raises(AdmissionRejected) as err:
            svc.classify(HEADER)
        assert err.value.reason == "rate_limited"
        assert err.value.code == "serve.shed"
        assert svc.counter("shed.rate_limited") == 1
        assert svc.counter("requests") == 3
        assert svc.counter("admitted") == 2

    def test_bucket_recovers_with_time(self, tiny_ruleset):
        policy = ServicePolicy(rate_limit_per_s=10.0, burst=1)
        svc, clock = service_for(tiny_ruleset, policy=policy)
        svc.classify(HEADER)
        with pytest.raises(AdmissionRejected):
            svc.classify(HEADER)
        clock.advance(0.2)
        svc.classify(HEADER)  # admitted again after refill
        assert svc.counter("served") == 2

    def test_stopped_service_sheds_typed(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        svc.stop(drain=True)
        with pytest.raises(ServiceStopped) as err:
            svc.classify(HEADER)
        assert err.value.code == "serve.stopped"
        assert svc.counter("shed.stopped") == 1


class TestDeadlines:
    def test_late_answer_dropped(self, tiny_ruleset):
        clock = ManualClock()
        hooks = {0: lambda now: clock.advance(1e-3),
                 1: lambda now: clock.advance(1e-3)}
        svc, _ = service_for(tiny_ruleset, clock=clock, hooks=hooks)
        with pytest.raises(DeadlineExceeded) as err:
            svc.classify(HEADER, deadline_s=0.5e-3)
        assert err.value.code == "serve.deadline"
        assert err.value.budget_s == 0.5e-3
        assert err.value.elapsed_s >= 1e-3
        assert svc.counter("deadline_exceeded") == 1
        assert svc.counter("served") == 0

    def test_default_deadline_from_policy(self, tiny_ruleset):
        clock = ManualClock()
        policy = ServicePolicy(default_deadline_s=0.5e-3)
        hooks = {0: lambda now: clock.advance(1e-3),
                 1: lambda now: clock.advance(1e-3)}
        svc, _ = service_for(tiny_ruleset, policy=policy, clock=clock,
                             hooks=hooks)
        with pytest.raises(DeadlineExceeded):
            svc.classify(HEADER)

    def test_no_deadline_means_no_limit(self, tiny_ruleset):
        clock = ManualClock()
        hooks = {0: lambda now: clock.advance(10.0)}
        svc, _ = service_for(tiny_ruleset, clock=clock, hooks=hooks)
        assert svc.classify(HEADER) == tiny_ruleset.first_match(HEADER)


class FlakyHook:
    """Raise ``fail_first`` transient errors, then serve normally."""

    def __init__(self, fail_first):
        self.fail_first = fail_first
        self.calls = 0

    def __call__(self, now):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise TransientServiceError("synthetic transient fault")


class TestRetryAndFailover:
    def test_transient_failure_retried_to_success(self, tiny_ruleset):
        hook = FlakyHook(fail_first=1)
        svc, clock = service_for(tiny_ruleset, replicas=1, hooks={0: hook})
        assert svc.classify(HEADER) == tiny_ruleset.first_match(HEADER)
        assert svc.counter("retries") == 1
        assert svc.counter("transient_failures") == 1
        assert clock.now > 0  # backoff consumed (simulated) time

    def test_retry_prefers_fresh_replica(self, tiny_ruleset):
        primary = FlakyHook(fail_first=10**9)  # always down
        standby = FlakyHook(fail_first=0)
        svc, _ = service_for(tiny_ruleset,
                             hooks={0: primary, 1: standby})
        assert svc.classify(HEADER) == tiny_ruleset.first_match(HEADER)
        assert primary.calls == 1   # not re-tried after failing this request
        assert standby.calls == 1
        assert svc.counter("failovers") == 1

    def test_retries_exhausted_is_typed(self, tiny_ruleset):
        policy = ServicePolicy(retry=RetryPolicy(max_attempts=2),
                               breaker_min_calls=100)
        hook = FlakyHook(fail_first=10**9)
        svc, _ = service_for(tiny_ruleset, policy=policy, replicas=1,
                             hooks={0: hook})
        with pytest.raises(RetriesExhausted) as err:
            svc.classify(HEADER)
        assert err.value.code == "serve.retries_exhausted"
        assert err.value.attempts == 2
        assert isinstance(err.value.last, TransientServiceError)

    def test_open_breaker_routes_around_replica(self, tiny_ruleset):
        primary = FlakyHook(fail_first=10**9)
        standby = FlakyHook(fail_first=0)
        policy = ServicePolicy(breaker_window=4, breaker_min_calls=2,
                               failure_rate_threshold=0.5)
        svc, _ = service_for(tiny_ruleset, policy=policy,
                             hooks={0: primary, 1: standby})
        for _ in range(4):
            svc.classify(HEADER)
        assert svc.replicas[0].breaker.state == OPEN
        calls_when_open = primary.calls
        for _ in range(5):
            svc.classify(HEADER)
        # The open breaker short-circuits: primary is not even attempted.
        assert primary.calls == calls_when_open
        assert svc.counter("served") == 9

    def test_all_breakers_open_raises_circuit_open(self, tiny_ruleset):
        hook = FlakyHook(fail_first=10**9)
        policy = ServicePolicy(breaker_window=4, breaker_min_calls=2,
                               failure_rate_threshold=0.5, open_s=60.0,
                               retry=RetryPolicy(max_attempts=2))
        svc, _ = service_for(tiny_ruleset, policy=policy, replicas=1,
                             hooks={0: hook})
        with pytest.raises((RetriesExhausted, CircuitOpenError)):
            svc.classify(HEADER)  # trips the breaker
        with pytest.raises(CircuitOpenError) as err:
            svc.classify(HEADER)
        assert err.value.code == "serve.breaker_open"
        assert svc.counter("breaker_open_rejections") > 0


class TestDifferentialChecks:
    def test_shadow_divergence_counted(self):
        policy = ServicePolicy(shadow=True)
        svc = ClassificationService(
            [FixedClassifier(answer=1), FixedClassifier(answer=2)],
            policy=policy)
        assert svc.classify(HEADER) == 1
        assert svc.counter("shadow.checks") == 1
        assert svc.counter("shadow.divergences") == 1

    def test_shadow_agreement_counts_clean(self):
        policy = ServicePolicy(shadow=True)
        svc = ClassificationService(
            [FixedClassifier(answer=3), FixedClassifier(answer=3)],
            policy=policy)
        svc.classify(HEADER)
        assert svc.counter("shadow.divergences") == 0

    def test_oracle_audit_passes_on_real_classifier(self, tiny_ruleset):
        policy = ServicePolicy(oracle_check=True)
        svc, _ = service_for(tiny_ruleset, policy=policy)
        for rule in tiny_ruleset:
            svc.classify(tuple(iv.lo for iv in rule.intervals))
        assert svc.counter("oracle.checks") == len(tiny_ruleset)
        assert svc.counter("oracle.divergences") == 0


class TestUpdates:
    def test_updates_propagate_to_all_replicas(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        pos = svc.insert(Rule.any("deny"), position=0)
        assert pos == 0
        for replica in svc.replicas:
            assert len(replica.classifier) == len(tiny_ruleset) + 1
        assert svc.classify(HEADER) == 0  # the new top rule wins
        removed = svc.remove(0)
        assert removed.action == "deny"
        for replica in svc.replicas:
            assert len(replica.classifier) == len(tiny_ruleset)

    def test_default_position_stays_aligned(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        svc.insert(Rule.any("deny"))  # appended at the same slot everywhere
        rules0 = svc.replicas[0].classifier.rules
        rules1 = svc.replicas[1].classifier.rules
        assert [r.action for r in rules0] == [r.action for r in rules1]

    def test_service_rebuild_hits_every_replica(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        before = [r.classifier.stats.rebuilds for r in svc.replicas]
        assert svc.rebuild() is True
        after = [r.classifier.stats.rebuilds for r in svc.replicas]
        assert all(b + 1 == a for b, a in zip(before, after))


class TestStopAndSnapshot:
    def test_stop_drains_and_reports(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        svc.classify(HEADER)
        state = svc.stop(drain=True)
        assert state["drained"] is True
        assert len(state["rules"]) == len(tiny_ruleset)
        assert "sram0" in state["replicas"]
        assert state["metrics"]["counters"]["serve.served"] == 1

    def test_stop_snapshot_roundtrips(self, tiny_ruleset, tmp_path):
        from repro.harness.cache import CACHE_VERSION
        from repro.harness.snapshots import read_snapshot

        svc, _ = service_for(tiny_ruleset)
        svc.classify(HEADER)
        path = tmp_path / "serve_state.snap"
        svc.stop(drain=True, snapshot_path=path)
        loaded = read_snapshot(path, kind="serve-state",
                               cache_version=CACHE_VERSION)
        assert loaded["drained"] is True
        assert len(loaded["rules"]) == len(tiny_ruleset)

    def test_interrupted_stop_snapshot_leaves_no_partial(self, tiny_ruleset,
                                                         tmp_path,
                                                         monkeypatch):
        """Ctrl-C during the stop-time snapshot write must not leave a
        torn file for the next start to trip over."""
        import os as _os

        svc, _ = service_for(tiny_ruleset)
        svc.classify(HEADER)
        path = tmp_path / "serve_state.snap"

        def boom(fd):
            raise KeyboardInterrupt

        monkeypatch.setattr(_os, "fsync", boom)
        with pytest.raises(KeyboardInterrupt):
            svc.stop(drain=True, snapshot_path=path)
        monkeypatch.undo()

        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_report_shape(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        svc.classify(HEADER)
        report = svc.report()
        assert set(report["replicas"]) == {"sram0", "sram1"}
        for rep in report["replicas"].values():
            assert rep["state"] == "closed"
            assert rep["open_count"] == 0


class TestMetricsPublication:
    def test_private_registry_always_counts(self, tiny_ruleset):
        # Process metrics are disabled by default, yet the service's own
        # counters must still record (they feed the acceptance checks).
        svc, _ = service_for(tiny_ruleset)
        svc.classify(HEADER)
        assert svc.counter("served") == 1

    def test_publish_merges_into_global(self, tiny_ruleset):
        svc, _ = service_for(tiny_ruleset)
        svc.classify(HEADER)
        registry = enable_metrics()
        try:
            svc.publish_metrics()
            assert registry.counter("serve.served").value == 1
        finally:
            disable_metrics()

    def test_publish_without_global_is_noop(self, tiny_ruleset):
        disable_metrics()
        svc, _ = service_for(tiny_ruleset)
        svc.classify(HEADER)
        svc.publish_metrics()  # must not raise
