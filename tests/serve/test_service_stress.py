"""Concurrency stress: many threads classify while rules churn.

Satellite of the serving-layer issue: N worker threads hammer
:meth:`ClassificationService.classify` while the main thread inserts,
removes and force-rebuilds rules through the service.  The per-request
oracle audit runs inside the same lock as the lookup, so every answer is
checked against the linear oracle over the *exact* rule list it was
served from — the assertion at the end is zero divergences, every
request answered, and every thread finished (no deadlock).  Bounded and
seeded: fixed worker/request counts, seeded header generators.
"""

import threading

import numpy as np

from repro.classifiers import LinearSearchClassifier
from repro.classifiers.updates import UpdatableClassifier
from repro.core.fields import FIELD_WIDTHS
from repro.core.rule import Rule
from repro.serve import ClassificationService, Replica, ServicePolicy

N_WORKERS = 8
REQUESTS_PER_WORKER = 120
UPDATE_ROUNDS = 30
JOIN_TIMEOUT_S = 60.0


def _service(ruleset):
    policy = ServicePolicy(
        max_in_flight=N_WORKERS * 2,
        oracle_check=True,  # audit every answer under the serving lock
    )
    replicas = [
        Replica(name, UpdatableClassifier(ruleset, LinearSearchClassifier,
                                          rebuild_threshold=4))
        for name in ("sram0", "sram1")
    ]
    return ClassificationService(replicas, policy=policy)


def _headers(seed, count):
    rng = np.random.default_rng(seed)
    return [tuple(int(rng.integers(0, 1 << width)) for width in FIELD_WIDTHS)
            for _ in range(count)]


def test_concurrent_classify_during_updates(small_fw_ruleset):
    svc = _service(small_fw_ruleset)
    errors = []
    barrier = threading.Barrier(N_WORKERS + 1)

    def worker(worker_id):
        headers = _headers(1000 + worker_id, REQUESTS_PER_WORKER)
        barrier.wait()
        try:
            for header in headers:
                svc.classify(header)
        except Exception as exc:  # surfaced below; keep other threads going
            errors.append((worker_id, repr(exc)))

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(N_WORKERS)]
    for thread in threads:
        thread.start()
    barrier.wait()

    # Main thread churns rules through the service while workers run:
    # inserts at the head (changes every answer), removes, forced
    # rebuilds (hot-swaps both replicas' structures).
    rng = np.random.default_rng(2007)
    inserted = 0
    for round_no in range(UPDATE_ROUNDS):
        action = round_no % 3
        if action == 0:
            octet = int(rng.integers(1, 200))
            svc.insert(Rule.from_prefixes(sip=f"{octet}.0.0.0/8"),
                       position=0)
            inserted += 1
        elif action == 1 and inserted:
            svc.remove(0)
            inserted -= 1
        else:
            svc.rebuild()

    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT_S)
    assert not any(thread.is_alive() for thread in threads), \
        "worker threads did not finish: deadlock in the serving lock"
    assert errors == []

    total = N_WORKERS * REQUESTS_PER_WORKER
    assert svc.counter("served") == total
    assert svc.counter("oracle.checks") == total
    assert svc.counter("oracle.divergences") == 0

    state = svc.stop(drain=True)
    assert state["drained"] is True
