"""Circuit-breaker state machine: trip, cool-down, half-open probes."""

import pytest

from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ManualClock,
    ServicePolicy,
)

POLICY = ServicePolicy(
    breaker_window=8, breaker_min_calls=4,
    failure_rate_threshold=0.5, slow_call_rate_threshold=0.75,
    slow_call_s=1e-3, open_s=1.0, half_open_probes=2,
)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(POLICY, clock=clock, name="sram0")


def fail_until_open(breaker):
    while breaker.state == CLOSED:
        breaker.record_failure()


class TestTripping:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_needs_min_calls_before_tripping(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED  # 3 < breaker_min_calls

    def test_failure_rate_trips(self, breaker):
        breaker.record_success(elapsed_s=1e-5)
        breaker.record_success(elapsed_s=1e-5)
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3 below threshold (and < min)
        breaker.record_failure()        # 2/4 hits 0.5
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert "failure rate" in breaker.transitions[-1].reason

    def test_slow_call_rate_trips(self, breaker):
        breaker.record_success(elapsed_s=1e-5)
        for _ in range(3):
            breaker.record_success(elapsed_s=5e-3)  # >= slow_call_s
        assert breaker.state == OPEN
        assert "slow-call rate" in breaker.transitions[-1].reason

    def test_degraded_answer_counts_as_slow(self, breaker):
        for _ in range(4):
            breaker.record_success(elapsed_s=1e-6, degraded=True)
        assert breaker.state == OPEN

    def test_rolling_window_forgets_old_failures(self, breaker):
        breaker.record_failure()
        for _ in range(8):  # a full window of successes evicts the failure
            breaker.record_success(elapsed_s=1e-5)
        for _ in range(3):
            breaker.record_failure()  # 3/8 stays under the 0.5 threshold
        assert breaker.state == CLOSED


class TestHalfOpen:
    def test_cooldown_then_probe(self, breaker, clock):
        fail_until_open(breaker)
        assert not breaker.allow()
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_probe_concurrency_capped(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow() and breaker.allow()  # half_open_probes = 2
        assert not breaker.allow()

    def test_successful_probes_close(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        for _ in range(POLICY.half_open_probes):
            assert breaker.allow()
            breaker.record_success(elapsed_s=1e-5)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_slow_probe_reopens(self, breaker, clock):
        """A latency-spiked replica must not re-close its breaker just
        because the probe eventually answered."""
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow()
        breaker.record_success(elapsed_s=5e-3)  # slow
        assert breaker.state == OPEN
        assert "probe slow" in breaker.transitions[-1].reason


class TestHistory:
    def test_transitions_are_timestamped(self, breaker, clock):
        clock.advance(2.5)
        fail_until_open(breaker)
        first = breaker.transitions[0]
        assert (first.at, first.from_state, first.to_state) == (2.5, CLOSED, OPEN)

    def test_open_count(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        breaker.allow()
        breaker.record_failure()  # reopen
        assert breaker.open_count() == 2


class TestHalfOpenRace:
    """Seeded multi-thread hammering around the OPEN→HALF_OPEN→* edges.

    The breaker is documented as externally serialised (the service's
    lock), so these tests drive it the same way — many threads, one
    lock — and pin the invariants a scheduling race would break:

    * the transition chain is connected (each ``from_state`` equals the
      previous ``to_state``) and only legal edges appear;
    * HALF_OPEN never admits more than ``half_open_probes`` in-flight
      probes, no matter how many threads call ``allow()`` at once;
    * a trip is never lost: every OPEN entry is matched by a clear
      failure/slow condition, never silently overwritten by a
      concurrent close.
    """

    LEGAL_EDGES = {
        (CLOSED, OPEN),
        (OPEN, HALF_OPEN),
        (HALF_OPEN, OPEN),
        (HALF_OPEN, CLOSED),
    }

    def _hammer(self, seed, threads=6, iterations=400):
        import random
        import threading

        clock = ManualClock()
        breaker = CircuitBreaker(POLICY, clock=clock, name="raced")
        lock = threading.Lock()
        max_probes_seen = [0]

        def worker(worker_seed):
            rng = random.Random(worker_seed)
            for _ in range(iterations):
                with lock:
                    if rng.random() < 0.15:
                        # Nudge time forward so cool-downs elapse and
                        # the OPEN→HALF_OPEN edge gets exercised a lot.
                        clock.advance(POLICY.open_s * rng.uniform(0.3, 1.5))
                    if not breaker.allow():
                        continue
                    if breaker.state == HALF_OPEN:
                        max_probes_seen[0] = max(
                            max_probes_seen[0],
                            breaker._half_open_in_flight)
                    if rng.random() < 0.4:
                        breaker.record_failure()
                    else:
                        slow = (POLICY.slow_call_s * 2
                                if rng.random() < 0.2 else 1e-6)
                        breaker.record_success(elapsed_s=slow)

        pool = [threading.Thread(target=worker, args=(seed * 1000 + i,),
                                 daemon=True)
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=60)
            assert not t.is_alive(), "hammer thread wedged"
        return breaker, max_probes_seen[0]

    @pytest.mark.parametrize("seed", [1, 7, 2007])
    def test_transition_chain_stays_connected(self, seed):
        breaker, max_probes = self._hammer(seed)
        chain = breaker.transitions
        assert chain, "the hammer must actually trip the breaker"
        assert chain[0].from_state == CLOSED
        for prev, cur in zip(chain, chain[1:]):
            assert cur.from_state == prev.to_state, (
                f"disconnected chain: {prev} -> {cur}")
        for t in chain:
            assert (t.from_state, t.to_state) in self.LEGAL_EDGES, (
                f"illegal edge {t.from_state} -> {t.to_state}")
        assert max_probes <= POLICY.half_open_probes

    @pytest.mark.parametrize("seed", [3, 11])
    def test_no_double_close_or_lost_trip(self, seed):
        breaker, _ = self._hammer(seed)
        chain = breaker.transitions
        closes = [t for t in chain if t.to_state == CLOSED]
        # Every close must come from HALF_OPEN with the full probe
        # quota — a "double close" would show as CLOSED→CLOSED or a
        # close out of OPEN.
        for t in closes:
            assert t.from_state == HALF_OPEN
            assert t.reason == "probes succeeded"
        # Every trip is recorded with its cause; none vanish.
        opens = [t for t in chain if t.to_state == OPEN]
        assert len(opens) == breaker.open_count()
        for t in opens:
            assert ("failure rate" in t.reason
                    or "slow-call rate" in t.reason
                    or "probe" in t.reason)
