"""Circuit-breaker state machine: trip, cool-down, half-open probes."""

import pytest

from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ManualClock,
    ServicePolicy,
)

POLICY = ServicePolicy(
    breaker_window=8, breaker_min_calls=4,
    failure_rate_threshold=0.5, slow_call_rate_threshold=0.75,
    slow_call_s=1e-3, open_s=1.0, half_open_probes=2,
)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(POLICY, clock=clock, name="sram0")


def fail_until_open(breaker):
    while breaker.state == CLOSED:
        breaker.record_failure()


class TestTripping:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_needs_min_calls_before_tripping(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED  # 3 < breaker_min_calls

    def test_failure_rate_trips(self, breaker):
        breaker.record_success(elapsed_s=1e-5)
        breaker.record_success(elapsed_s=1e-5)
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3 below threshold (and < min)
        breaker.record_failure()        # 2/4 hits 0.5
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert "failure rate" in breaker.transitions[-1].reason

    def test_slow_call_rate_trips(self, breaker):
        breaker.record_success(elapsed_s=1e-5)
        for _ in range(3):
            breaker.record_success(elapsed_s=5e-3)  # >= slow_call_s
        assert breaker.state == OPEN
        assert "slow-call rate" in breaker.transitions[-1].reason

    def test_degraded_answer_counts_as_slow(self, breaker):
        for _ in range(4):
            breaker.record_success(elapsed_s=1e-6, degraded=True)
        assert breaker.state == OPEN

    def test_rolling_window_forgets_old_failures(self, breaker):
        breaker.record_failure()
        for _ in range(8):  # a full window of successes evicts the failure
            breaker.record_success(elapsed_s=1e-5)
        for _ in range(3):
            breaker.record_failure()  # 3/8 stays under the 0.5 threshold
        assert breaker.state == CLOSED


class TestHalfOpen:
    def test_cooldown_then_probe(self, breaker, clock):
        fail_until_open(breaker)
        assert not breaker.allow()
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_probe_concurrency_capped(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow() and breaker.allow()  # half_open_probes = 2
        assert not breaker.allow()

    def test_successful_probes_close(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        for _ in range(POLICY.half_open_probes):
            assert breaker.allow()
            breaker.record_success(elapsed_s=1e-5)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_slow_probe_reopens(self, breaker, clock):
        """A latency-spiked replica must not re-close its breaker just
        because the probe eventually answered."""
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        assert breaker.allow()
        breaker.record_success(elapsed_s=5e-3)  # slow
        assert breaker.state == OPEN
        assert "probe slow" in breaker.transitions[-1].reason


class TestHistory:
    def test_transitions_are_timestamped(self, breaker, clock):
        clock.advance(2.5)
        fail_until_open(breaker)
        first = breaker.transitions[0]
        assert (first.at, first.from_state, first.to_state) == (2.5, CLOSED, OPEN)

    def test_open_count(self, breaker, clock):
        fail_until_open(breaker)
        clock.advance(POLICY.open_s + 0.01)
        breaker.allow()
        breaker.record_failure()  # reopen
        assert breaker.open_count() == 2
