"""ManualClock, TokenBucket, RetryPolicy and ServicePolicy validation."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve import ManualClock, RetryPolicy, ServicePolicy, TokenBucket


class TestManualClock:
    def test_advances_and_reads(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock() == 1.5

    def test_sleep_advances_instead_of_blocking(self):
        clock = ManualClock(start=10.0)
        clock.sleep(0.25)
        assert clock() == 10.25
        clock.sleep(-1.0)  # clamped, never goes backwards
        assert clock() == 10.25

    def test_cannot_go_backwards(self):
        with pytest.raises(ConfigurationError):
            ManualClock().advance(-0.1)


class TestTokenBucket:
    def test_burst_then_starve(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False]

    def test_refills_at_rate(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=2, clock=clock)
        bucket.try_acquire(), bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.01)  # exactly one token at 100/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=1000.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=10.0, burst=0)


class TestRetryPolicy:
    def test_deterministic_per_request_and_attempt(self):
        policy = RetryPolicy(seed=42)
        assert policy.delay(7, 2) == policy.delay(7, 2)
        assert policy.delay(7, 2) != policy.delay(8, 2)
        assert policy.delay(7, 2) != policy.delay(7, 3)

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_s=1e-3, multiplier=2.0, max_backoff_s=1.0,
                             jitter=0.0)
        assert policy.delay(1, 1) == pytest.approx(1e-3)
        assert policy.delay(1, 2) == pytest.approx(2e-3)
        assert policy.delay(1, 3) == pytest.approx(4e-3)

    def test_backoff_capped(self):
        policy = RetryPolicy(base_s=1e-3, multiplier=10.0, max_backoff_s=5e-3,
                             jitter=0.0)
        assert policy.delay(1, 9) == 5e-3

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_s=1e-3, multiplier=1.0, max_backoff_s=1.0,
                             jitter=0.5)
        for seq in range(50):
            delay = policy.delay(seq, 1)
            assert 0.5e-3 <= delay <= 1.5e-3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=-1.0)


class TestServicePolicy:
    def test_defaults_are_valid(self):
        ServicePolicy()

    @pytest.mark.parametrize("kwargs", [
        {"max_in_flight": 0},
        {"rate_limit_per_s": 0.0},
        {"burst": 0},
        {"default_deadline_s": 0.0},
        {"breaker_window": 0},
        {"breaker_min_calls": 0},
        {"failure_rate_threshold": 0.0},
        {"failure_rate_threshold": 1.5},
        {"slow_call_rate_threshold": 0.0},
        {"slow_call_s": 0.0},
        {"open_s": 0.0},
        {"half_open_probes": 0},
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServicePolicy(**kwargs)
