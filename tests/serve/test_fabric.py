"""Sharded multi-process fabric: partition correctness, oracle
equivalence with the single-process service, and shedding behaviour.

Process-spawning tests share one module-scoped fabric where possible —
each fork+build costs real wall time.
"""

import pytest

from repro.core.errors import (
    AdmissionRejected,
    ConfigurationError,
    ShardUnavailable,
)
from repro.core.fields import FIELD_WIDTHS
from repro.core.rule import Rule, RuleSet
from repro.rulesets import generate
from repro.rulesets.profiles import PROFILES
from repro.serve import (
    ClassificationService,
    Fabric,
    ManualClock,
    RUNNING,
    Replica,
    ServicePolicy,
    ShardPlan,
    SupervisionPolicy,
)
from repro.traffic import matched_trace

POLICY = ServicePolicy(max_in_flight=64, breaker_window=8,
                       breaker_min_calls=4, open_s=1e-3, half_open_probes=2,
                       oracle_check=True)
SUPERVISION = SupervisionPolicy(
    heartbeat_interval_s=0.02, heartbeat_timeout_s=0.5, liveness_misses=2,
    restart_backoff_base_s=1e-3, restart_backoff_max_s=0.05,
    warm_restart_cost_s=1e-3, cold_restart_cost_s=5e-3,
    crash_loop_window_s=5.0, crash_loop_budget=4)


@pytest.fixture(scope="module")
def fw_ruleset():
    return generate(PROFILES["FW01"], size=40, seed=11).with_default()


@pytest.fixture(scope="module")
def fw_headers(fw_ruleset):
    return list(matched_trace(fw_ruleset, 120, seed=21).headers())


@pytest.fixture(scope="module")
def fabric(fw_ruleset, tmp_path_factory):
    clock = ManualClock()
    fab = Fabric(list(fw_ruleset), tmp_path_factory.mktemp("fabric"),
                 num_shards=3, policy=POLICY, supervision=SUPERVISION,
                 clock=clock, charge=clock.advance)
    fab.manual_clock = clock  # test-side handle for advancing time
    yield fab
    fab.supervisor.stop()


# -- partition plan ------------------------------------------------------------

class TestShardPlan:
    def test_bounds_tile_the_dimension(self, fw_ruleset):
        plan = ShardPlan.build(list(fw_ruleset), 3)
        span = 1 << FIELD_WIDTHS[plan.dim]
        assert plan.bounds[0][0] == 0
        assert plan.bounds[-1][1] == span - 1
        for (_, hi), (lo, _) in zip(plan.bounds, plan.bounds[1:]):
            assert lo == hi + 1  # contiguous, no gap, no overlap

    def test_every_rule_lands_somewhere(self, fw_ruleset):
        plan = ShardPlan.build(list(fw_ruleset), 4)
        covered = {idx for a in plan.assignments for idx in a}
        assert covered == set(range(len(fw_ruleset)))

    def test_rule_on_shard_iff_interval_overlaps(self, fw_ruleset):
        rules = list(fw_ruleset)
        plan = ShardPlan.build(rules, 3)
        for (lo, hi), assignment in zip(plan.bounds, plan.assignments):
            for idx, rule in enumerate(rules):
                overlaps = (rule.intervals[plan.dim].lo <= hi
                            and rule.intervals[plan.dim].hi >= lo)
                assert (idx in assignment) == overlaps

    def test_route_respects_bounds(self, fw_ruleset, fw_headers):
        plan = ShardPlan.build(list(fw_ruleset), 3)
        for header in fw_headers:
            shard = plan.route(header)
            lo, hi = plan.bounds[shard]
            assert lo <= header[plan.dim] <= hi

    def test_route_boundary_values(self, fw_ruleset):
        plan = ShardPlan.build(list(fw_ruleset), 3)
        span = 1 << FIELD_WIDTHS[plan.dim]
        header = [0, 0, 0, 0, 0]
        for value, want in [(0, 0), (plan.bounds[0][1], 0),
                            (plan.bounds[1][0], 1), (span - 1, 2)]:
            header[plan.dim] = value
            assert plan.route(header) == want

    def test_wildcards_replicate_everywhere(self):
        rules = [Rule.any(), Rule.from_prefixes(sip="10.0.0.0/8")]
        plan = ShardPlan.build(rules, 4)
        for assignment in plan.assignments:
            assert 0 in assignment  # the wildcard is on every shard
        assert plan.replication_factor() >= 1.0

    def test_single_shard_owns_everything(self, fw_ruleset):
        plan = ShardPlan.build(list(fw_ruleset), 1)
        assert plan.assignments[0] == tuple(range(len(fw_ruleset)))

    def test_bad_arguments_rejected(self, fw_ruleset):
        with pytest.raises(ConfigurationError):
            ShardPlan.build(list(fw_ruleset), 0)
        with pytest.raises(ConfigurationError):
            ShardPlan.build(list(fw_ruleset), 2, dim=99)


# -- no-fault equivalence ------------------------------------------------------

class TestOracleEquivalence:
    """Acceptance criterion: with no faults, the fabric's answers are
    identical to the single-process service's and the linear oracle's."""

    def test_fabric_matches_service_and_oracle(self, fabric, fw_ruleset,
                                               fw_headers):
        from repro.classifiers import LinearSearchClassifier

        oracle = RuleSet(list(fw_ruleset), name="oracle")
        service = ClassificationService(
            [Replica("sram0", LinearSearchClassifier(fw_ruleset))],
            policy=ServicePolicy(), clock=ManualClock())
        for header in fw_headers:
            want = oracle.first_match(header)
            assert fabric.classify(header) == want
            assert service.classify(header) == want
        assert fabric.counter("oracle.divergences") == 0
        assert fabric.counter("oracle.checks") >= len(fw_headers)

    def test_batch_matches_scalar(self, fabric, fw_headers):
        headers = fw_headers[:40]
        outcomes = fabric.classify_batch(headers)
        assert all(o["status"] == "served" for o in outcomes)
        for header, outcome in zip(headers, outcomes):
            assert outcome["rule"] == fabric.classify(header)


# -- failure behaviour ---------------------------------------------------------

class TestSheddingAndRecovery:
    def test_dead_shard_sheds_then_recovers(self, fabric, fw_headers):
        clock = fabric.manual_clock
        headers = fw_headers
        victim_idx = fabric.plan.route(headers[0])
        victim = fabric.specs[victim_idx].name

        fabric.supervisor.inject_kill(victim)
        fabric.probe(victim, clock.now)  # detect the EOF now
        assert fabric.supervisor.state(victim) != RUNNING

        with pytest.raises(ShardUnavailable) as exc:
            fabric.classify(headers[0])
        assert exc.value.shard == victim
        assert fabric.counter("shed.shard_down") >= 1
        assert isinstance(exc.value, AdmissionRejected)  # typed shed

        # Other shards keep serving through the outage.
        other = next(h for h in headers
                     if fabric.specs[fabric.plan.route(h)].name != victim)
        assert fabric.classify(other) is not None

        # Past the backoff, a tick restarts the worker warm.
        for _ in range(200):
            clock.advance(5e-3)
            fabric.tick(clock.now)
            if fabric.supervisor.state(victim) == RUNNING:
                break
        assert fabric.supervisor.state(victim) == RUNNING
        assert fabric.counter("warm_restarts") >= 1
        # Breaker may still be open from the outage; let it cool down.
        clock.advance(POLICY.open_s * 2)
        for _ in range(POLICY.half_open_probes + 1):
            try:
                assert fabric.classify(headers[0]) is not None
            except ShardUnavailable:
                clock.advance(POLICY.open_s)
        assert fabric.counter("oracle.divergences") == 0

    def test_stop_writes_fabric_state_snapshot(self, fw_ruleset, tmp_path):
        from repro.harness.cache import CACHE_VERSION
        from repro.harness.snapshots import read_snapshot

        clock = ManualClock()
        fab = Fabric(list(fw_ruleset), tmp_path / "shards", num_shards=2,
                     policy=POLICY, supervision=SUPERVISION,
                     clock=clock, charge=clock.advance)
        try:
            fab.classify((0, 0, 0, 0, 0))
            path = tmp_path / "state.snap"
            state = fab.stop(drain=True, snapshot_path=path)
            assert state["drained"] is True
            loaded = read_snapshot(path, kind="fabric-state",
                                   cache_version=CACHE_VERSION)
            assert loaded["metrics"]["counters"]["fabric.served"] >= 1
        finally:
            fab.supervisor.stop()
