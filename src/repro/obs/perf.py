"""Perf-trajectory records: ``BENCH_<name>.json`` at the repo root.

Each heavyweight benchmark writes one machine-readable record of what it
measured — throughput figures, wall time, git revision, date — so the
committed history of these files *is* the performance trajectory of the
repository, and ``scripts/check_bench_regression.py`` can fail CI when a
fresh run regresses against the last committed record.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

BENCH_PREFIX = "BENCH_"

#: Version of the BENCH_*.json payload schema.  Bump when the shape
#: changes incompatibly; ``scripts/check_bench_regression.py`` and
#: ``scripts/bench_trend.py`` refuse records from versions they do not
#: know (records predating the field are implicitly version 1).
SCHEMA_VERSION = 2

#: Key fragments that mark a numeric leaf as a throughput figure.
#: ``kpps``/``goodput`` cover the serving layer, whose goodput numbers
#: were silently dropped while only the link-rate units matched.
THROUGHPUT_UNITS = ("gbps", "mbps", "mpps", "kpps", "goodput")


def repo_root(start: Path | None = None) -> Path:
    """The enclosing git work tree (fallback: two levels above here)."""
    here = start if start is not None else Path(__file__).resolve()
    for candidate in [here] + list(here.parents):
        if (candidate / ".git").exists():
            return candidate
    return Path(__file__).resolve().parents[3]


def git_sha(root: Path | None = None) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or repo_root(), capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def extract_throughput(data: object, _prefix: str = "",
                       _out: dict | None = None) -> dict[str, float]:
    """Recursively pull throughput-shaped numbers out of a result payload.

    Any numeric leaf whose key path mentions one of
    :data:`THROUGHPUT_UNITS` (gbps/mbps/mpps/kpps/goodput) is kept,
    flattened to a dotted key — enough to turn every experiment's
    ``ExperimentResult.data`` into a comparable record without
    per-benchmark schemas.
    """
    out: dict[str, float] = _out if _out is not None else {}
    if isinstance(data, dict):
        items = [(str(k), v) for k, v in data.items()]
    elif isinstance(data, (list, tuple)):
        items = [(str(i), v) for i, v in enumerate(data)]
    else:
        return out
    for key, value in items:
        path = f"{_prefix}.{key}" if _prefix else key
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            lowered = path.lower()
            if any(unit in lowered for unit in THROUGHPUT_UNITS):
                out[path] = float(value)
        else:
            extract_throughput(value, path, out)
    return out


def write_bench_record(name: str, metrics: dict[str, float],
                       wall_time_s: float, root: Path | None = None,
                       extra: dict | None = None) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``metrics`` holds only higher-is-better numbers — the regression
    checker flags any metric that *drops*, so a latency percentile or a
    shed rate (where lower is better) belongs in ``extra``, which is
    recorded for the trajectory but never rate-compared.
    """
    root = root if root is not None else repo_root()
    payload = {
        "benchmark": name,
        "schema_version": SCHEMA_VERSION,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
        "wall_time_s": round(wall_time_s, 3),
        "git_sha": git_sha(root),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if extra:
        payload["extra"] = {k: extra[k] for k in sorted(extra)}
    path = root / f"{BENCH_PREFIX}{name}.json"
    # Atomic publish: a Ctrl-C (or crash) mid-write must leave the old
    # committed record, never a truncated JSON that turns every later
    # check_bench_regression.py run into exit 2.
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def read_bench_record(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
