"""Per-lookup decision tracing.

:class:`~repro.core.engine.LookupTrace` (the *cost* view: memory reads
and compute cycles, replayed by the simulator) answers "what does this
lookup cost"; :class:`DecisionTrace` answers "*why*" — which nodes the
walk visited, which field/stride each level cut, what every HABS
POP_COUNT returned, how long each leaf linear search ran.  The paper's
headline explanations (worst-case depth 13, one POP_COUNT vs ~100 RISC
ops, HiCuts stalling on leaf scans) are assertions about exactly this
decision path, so tests and the ``harness profile`` experiment consume
it directly.

Usage::

    trace = DecisionTrace()
    rule = clf.classify(header, trace=trace)
    assert trace.result == rule
    print(trace.pretty())

Classifiers without a bespoke instrumented walk record a generic trace
derived from their :meth:`access_trace`; the traced result is always
identical to the untraced one (property-tested per algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from ..core.engine import LookupTrace

#: Step kinds (``TraceStep.kind``).
STEP_NODE = "node"        # one internal-node visit (tree descent)
STEP_LEAF = "leaf"        # terminal node reached
STEP_LINEAR = "linear"    # one rule compared during a leaf/table scan
STEP_READ = "read"        # generic memory reference (fallback tracing)
STEP_NOTE = "note"        # free-form annotation (overlay hits, fallbacks)


@dataclass(frozen=True)
class TraceStep:
    """One recorded step of a lookup's decision path."""

    kind: str
    region: str = ""
    addr: int = -1
    words: int = 0
    detail: dict = field(default_factory=dict)

    def describe(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        loc = f"{self.region}[{self.addr}]" if self.region else ""
        return " ".join(p for p in (f"{self.kind:6s}", loc, extras) if p)


@dataclass
class DecisionTrace:
    """The structured decision path of one classified packet."""

    algorithm: str | None = None
    header: tuple[int, ...] | None = None
    steps: list[TraceStep] = field(default_factory=list)
    result: int | None = None

    # -- recording (called by instrumented classifiers) -------------------

    def begin(self, algorithm: str, header: Sequence[int]) -> None:
        self.algorithm = algorithm
        self.header = tuple(int(v) for v in header)

    def node(self, region: str, addr: int, words: int = 1, **detail) -> None:
        self.steps.append(TraceStep(STEP_NODE, region, addr, words, detail))

    def leaf(self, region: str, addr: int, words: int = 0, **detail) -> None:
        self.steps.append(TraceStep(STEP_LEAF, region, addr, words, detail))

    def linear(self, region: str, addr: int, words: int, **detail) -> None:
        self.steps.append(TraceStep(STEP_LINEAR, region, addr, words, detail))

    def read(self, region: str, addr: int, words: int, **detail) -> None:
        self.steps.append(TraceStep(STEP_READ, region, addr, words, detail))

    def note(self, **detail) -> None:
        self.steps.append(TraceStep(STEP_NOTE, detail=detail))

    def finish(self, result: int | None) -> int | None:
        self.result = result
        return result

    def record_lookup(self, algorithm: str, header: Sequence[int],
                      lookup: "LookupTrace") -> int | None:
        """Generic fallback: derive the trace from an access trace.

        Used by classifiers without a bespoke instrumented walk — every
        memory reference becomes a ``read`` step, so aggregate views
        (accesses, words touched) stay exact even when the semantic
        labels (node/leaf/linear) are unavailable.
        """
        self.begin(algorithm, header)
        for read in lookup.reads:
            self.read(read.region, read.addr, read.nwords,
                      compute=read.compute_before)
        return self.finish(lookup.result)

    # -- derived views ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Internal nodes visited (tree algorithms; 0 for table lookups)."""
        return sum(1 for s in self.steps if s.kind == STEP_NODE)

    @property
    def linear_search_length(self) -> int:
        """Rules compared in leaf/table linear scans."""
        return sum(1 for s in self.steps if s.kind == STEP_LINEAR)

    @property
    def total_accesses(self) -> int:
        """Memory references touched (words-bearing steps)."""
        return sum(1 for s in self.steps if s.words > 0)

    @property
    def total_words(self) -> int:
        return sum(s.words for s in self.steps)

    @property
    def popcounts(self) -> list[int]:
        """Every HABS POP_COUNT result along the path (ExpCuts)."""
        return [s.detail["popcount"] for s in self.steps if "popcount" in s.detail]

    def regions_touched(self) -> list[str]:
        seen: list[str] = []
        for step in self.steps:
            if step.region and step.region not in seen:
                seen.append(step.region)
        return seen

    # -- rendering ---------------------------------------------------------

    def pretty(self) -> str:
        """A terminal-friendly rendering of the decision path."""
        head = (
            f"{self.algorithm or '?'} lookup"
            + (f" of {self.header}" if self.header is not None else "")
            + f" -> rule {self.result}"
        )
        lines = [head, "-" * min(len(head), 78)]
        for idx, step in enumerate(self.steps):
            lines.append(f"  {idx:3d} {step.describe()}")
        lines.append(
            f"  depth={self.depth} linear={self.linear_search_length} "
            f"accesses={self.total_accesses} words={self.total_words}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly dump (profile reports embed sample traces)."""
        return {
            "algorithm": self.algorithm,
            "header": list(self.header) if self.header is not None else None,
            "result": self.result,
            "depth": self.depth,
            "linear_search_length": self.linear_search_length,
            "total_accesses": self.total_accesses,
            "total_words": self.total_words,
            "steps": [
                {"kind": s.kind, "region": s.region, "addr": s.addr,
                 "words": s.words, **({"detail": s.detail} if s.detail else {})}
                for s in self.steps
            ],
        }
