"""Declarative SLOs evaluated over sliding windows of simulated time.

A serving soak used to assert point conditions ("zero divergences",
"some sheds"); this module turns the acceptance bar into declarative
service-level objectives — a goodput floor, a p99 ceiling, a shed-rate
ceiling, a zero-divergence invariant — evaluated per time window with
**burn-rate** accounting, the way an on-call dashboard would judge the
same service:

* every request outcome is fed into the monitor with its (simulated)
  timestamp; the monitor buckets them into fixed windows
  (:class:`SLOMonitor` ``window_s``);
* at the end of the run each closed window is evaluated against every
  :class:`SLO`; a window violates a floor when its value is below the
  bound, a ceiling when above;
* each SLO carries an **error budget**: the fraction of windows allowed
  to violate (``budget_fraction``, 0 = zero tolerance).  The **burn
  rate** is ``violating_fraction / budget_fraction`` — above 1.0 the
  budget is being spent faster than it is earned and the SLO fails.

Latency quantiles come from a per-window
:class:`~repro.obs.metrics.LogHistogram`, so a window's p99 is a real
tail reading, not an integer bucket edge.  The per-window metric rows
double as the run's timeseries artifact (``results/perf_report_*``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .metrics import LogHistogram

#: Counters every window tracks (fed via :meth:`SLOMonitor.count`).
WINDOW_COUNTS = ("offered", "served", "shed", "errors", "divergences",
                 "stale")

FLOOR = "floor"
CEILING = "ceiling"


@dataclass(frozen=True)
class SLO:
    """One declarative objective over per-window metrics.

    ``metric`` names a key of the per-window metric row (see
    :meth:`SLOMonitor.window_metrics`): the counters above plus
    ``goodput_kpps``, ``served_fraction``, ``shed_rate`` and the
    ``latency_us_p50/p99/p999/max`` quantiles.
    """

    name: str
    metric: str
    bound: float
    kind: str = CEILING
    #: Fraction of evaluated windows allowed to violate (0 = none).
    budget_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (FLOOR, CEILING):
            raise ConfigurationError(
                f"SLO kind must be {FLOOR!r} or {CEILING!r}, "
                f"not {self.kind!r}")
        if not 0.0 <= self.budget_fraction < 1.0:
            raise ConfigurationError("budget_fraction must be in [0, 1)")

    def violated_by(self, value: float) -> bool:
        if self.kind == FLOOR:
            return value < self.bound
        return value > self.bound


class _Window:
    """One time window's accumulators."""

    __slots__ = ("index", "counts", "latency")

    def __init__(self, index: int) -> None:
        self.index = index
        self.counts = dict.fromkeys(WINDOW_COUNTS, 0)
        self.latency = LogHistogram("window_latency_us")


class SLOMonitor:
    """Bucket request outcomes into time windows, then judge the SLOs.

    Timestamps are whatever clock the caller runs on — the soaks feed
    simulated seconds, so the evaluation reproduces bit-for-bit.  Only
    windows that saw at least one offered request are evaluated: an
    idle window spends no error budget.
    """

    def __init__(self, slos, window_s: float) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.slos = list(slos)
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO names in {names}")
        self.window_s = float(window_s)
        self._windows: dict[int, _Window] = {}

    def _window(self, t: float) -> _Window:
        index = int(math.floor(t / self.window_s))
        win = self._windows.get(index)
        if win is None:
            win = self._windows[index] = _Window(index)
        return win

    def count(self, t: float, name: str, amount: int = 1) -> None:
        """Count one outcome (``offered``/``served``/``shed``/...)."""
        if name not in WINDOW_COUNTS:
            raise ConfigurationError(
                f"unknown window counter {name!r}; "
                f"choose from {WINDOW_COUNTS}")
        self._window(t).counts[name] += amount

    def observe_latency(self, t: float, latency_us: float) -> None:
        self._window(t).latency.observe(latency_us)

    # -- evaluation --------------------------------------------------------

    def window_metrics(self, win: _Window) -> dict:
        """The derived metric row one window is judged on."""
        counts = win.counts
        offered = counts["offered"]
        lat = win.latency
        row = {
            "t": win.index * self.window_s,
            **counts,
            "goodput_kpps": counts["served"] / self.window_s / 1e3,
            "served_fraction": counts["served"] / offered if offered else 0.0,
            "shed_rate": counts["shed"] / offered if offered else 0.0,
            "stale_rate": (counts["stale"] / counts["served"]
                           if counts["served"] else 0.0),
            "latency_us_p50": lat.percentile(0.50),
            "latency_us_p99": lat.percentile(0.99),
            "latency_us_p999": lat.percentile(0.999),
            "latency_us_max": lat.max,
        }
        return row

    def timeseries(self) -> list[dict]:
        """Per-window metric rows in time order (the trajectory artifact)."""
        return [self.window_metrics(self._windows[i])
                for i in sorted(self._windows)]

    def evaluate(self) -> dict:
        """Judge every SLO over the non-idle windows.

        Returns a JSON-friendly report: per-SLO violation counts, burn
        rate and compliance, the overall ``ok`` verdict, and the
        per-window timeseries.
        """
        rows = [row for row in self.timeseries() if row["offered"] > 0]
        report: dict = {
            "window_s": self.window_s,
            "windows": len(rows),
            "slos": {},
            "ok": True,
            "timeseries": self.timeseries(),
        }
        for slo in self.slos:
            values = []
            for row in rows:
                if slo.metric not in row:
                    raise ConfigurationError(
                        f"SLO {slo.name!r} references unknown metric "
                        f"{slo.metric!r}; choose from {sorted(row)}")
                values.append(row[slo.metric])
            violations = sum(1 for v in values if slo.violated_by(v))
            fraction = violations / len(values) if values else 0.0
            if slo.budget_fraction > 0:
                burn_rate = fraction / slo.budget_fraction
                compliant = burn_rate <= 1.0
            else:
                # Zero tolerance: any violation blows the budget.
                burn_rate = 0.0 if not violations else float("inf")
                compliant = violations == 0
            worst = None
            if values:
                worst = min(values) if slo.kind == FLOOR else max(values)
            report["slos"][slo.name] = {
                "metric": slo.metric,
                "kind": slo.kind,
                "bound": slo.bound,
                "budget_fraction": slo.budget_fraction,
                "windows_evaluated": len(values),
                "violations": violations,
                "violation_fraction": fraction,
                "burn_rate": burn_rate,
                "worst": worst,
                "compliant": compliant,
            }
            report["ok"] = report["ok"] and compliant
        return report

    def check(self) -> dict:
        """Evaluate and raise (loudly) when any SLO burns its budget."""
        report = self.evaluate()
        if not report["ok"]:
            failing = [
                f"{name}: {s['violations']}/{s['windows_evaluated']} "
                f"windows violate {s['metric']} {s['kind']} {s['bound']} "
                f"(burn rate {s['burn_rate']:.2f}, worst {s['worst']})"
                for name, s in report["slos"].items() if not s["compliant"]
            ]
            raise AssertionError("SLO burn-rate check failed: "
                                 + "; ".join(failing))
        return report
