"""Observability: metrics registry, lookup tracing, DES timeline export.

Three independent instruments, all zero-overhead when idle:

* :mod:`repro.obs.metrics` — process-wide counter/gauge/histogram
  registry with named scopes; disabled by default.
* :mod:`repro.obs.trace` — ``classify(header, trace=DecisionTrace())``
  records the decision path of one lookup.
* :mod:`repro.obs.timeline` — Chrome-trace-format export of a simulator
  run (view in chrome://tracing or Perfetto) plus per-channel
  utilization timeseries.

``repro.obs.perf`` carries the ``BENCH_*.json`` perf-trajectory helpers.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricScope,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    metrics_scope,
    obs_warn,
)
from .perf import extract_throughput, read_bench_record, write_bench_record
from .timeline import TimelineRecorder
from .trace import DecisionTrace, TraceStep

__all__ = [
    "Counter",
    "DecisionTrace",
    "Gauge",
    "Histogram",
    "MetricScope",
    "MetricsRegistry",
    "TimelineRecorder",
    "TraceStep",
    "disable_metrics",
    "enable_metrics",
    "extract_throughput",
    "get_registry",
    "metrics_enabled",
    "metrics_scope",
    "obs_warn",
    "read_bench_record",
    "write_bench_record",
]
