"""Observability: metrics registry, lookup tracing, DES timeline export.

Independent instruments, all zero-overhead when idle:

* :mod:`repro.obs.metrics` — process-wide counter/gauge/histogram
  registry with named scopes; disabled by default.  Includes the
  log-bucketed :class:`LogHistogram` the latency paths report into.
* :mod:`repro.obs.span` — :class:`StageTimer` pipeline stage
  attribution (where each microsecond of a serving run goes).
* :mod:`repro.obs.slo` — declarative SLOs with sliding-window
  burn-rate evaluation.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  snapshot export of a registry.
* :mod:`repro.obs.trace` — ``classify(header, trace=DecisionTrace())``
  records the decision path of one lookup.
* :mod:`repro.obs.timeline` — Chrome-trace-format export of a simulator
  run (view in chrome://tracing or Perfetto) plus per-channel
  utilization timeseries.

``repro.obs.perf`` carries the ``BENCH_*.json`` perf-trajectory helpers.
"""

from .export import render_prometheus, write_json_snapshot, write_prometheus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricScope,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    metrics_scope,
    obs_warn,
)
from .perf import (
    SCHEMA_VERSION,
    extract_throughput,
    read_bench_record,
    write_bench_record,
)
from .slo import SLO, SLOMonitor
from .span import NULL_STAGE_TIMER, NullStageTimer, Span, StageStat, StageTimer
from .timeline import TimelineRecorder
from .trace import DecisionTrace, TraceStep

__all__ = [
    "Counter",
    "DecisionTrace",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricScope",
    "MetricsRegistry",
    "NULL_STAGE_TIMER",
    "NullStageTimer",
    "SCHEMA_VERSION",
    "SLO",
    "SLOMonitor",
    "Span",
    "StageStat",
    "StageTimer",
    "TimelineRecorder",
    "TraceStep",
    "disable_metrics",
    "enable_metrics",
    "extract_throughput",
    "get_registry",
    "metrics_enabled",
    "metrics_scope",
    "obs_warn",
    "read_bench_record",
    "render_prometheus",
    "write_bench_record",
    "write_json_snapshot",
    "write_prometheus",
]
