"""Stage attribution: where does each microsecond of a serving run go?

A :class:`StageTimer` attributes elapsed time — real or simulated,
through an injectable clock — to named pipeline stages (``admission``,
``classify``, ``audit``, ...).  The serving layer opens a span around
each stage of every request; the timer accumulates per-stage totals and
call counts, and :meth:`StageTimer.attribution` rolls them up into a
breakdown whose sum is *checked* against the end-to-end wall time, so a
stage the instrumentation forgot shows up as unattributed time instead
of silently vanishing from the story.

Disabled-path cost is near zero by construction: a pipeline that was
not handed a timer uses the shared :data:`NULL_STAGE_TIMER`, whose
``span()`` returns one preallocated no-op context manager — no clock
reads, no allocation, no branches beyond the method call itself
(bounded ≤ 3% on the serve path by ``tests/obs/test_overhead.py``).

Usage::

    timer = StageTimer(clock=clock)          # e.g. a ManualClock
    with timer.span("classify"):
        result = replica.lookup(header, now)
    ...
    timer.check_attribution(wall_s=clock.now)   # sum must cover the run
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..core.errors import ConfigurationError


class StageStat:
    """Accumulated time and call count of one named stage."""

    __slots__ = ("name", "seconds", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.calls = 0

    def __repr__(self) -> str:
        return f"<StageStat {self.name} {self.seconds:.6f}s x{self.calls}>"


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullStageTimer:
    """The do-nothing stand-in used when stage attribution is off."""

    __slots__ = ()
    enabled = False

    def span(self, stage: str) -> _NullSpan:
        return _NULL_SPAN

    def record(self, stage: str, seconds: float, calls: int = 1) -> None:
        pass


NULL_STAGE_TIMER = NullStageTimer()


class Span:
    """One timed region; records its clock delta on exit, even when the
    stage raised (a shed admission is still admission time)."""

    __slots__ = ("_timer", "_stage", "_start")

    def __init__(self, timer: "StageTimer", stage: str) -> None:
        self._timer = timer
        self._stage = stage

    def __enter__(self) -> "Span":
        self._start = self._timer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        self._timer.record(self._stage,
                           self._timer._clock() - self._start)
        return False


class StageTimer:
    """Attribute a run's elapsed time to named pipeline stages.

    Spans must tile, not nest: every instant of the run should fall
    inside exactly one span, or the attribution check will report the
    double-counted or missing time.  Thread-safe (``record`` takes a
    lock); the ManualClock soaks are single-threaded, but a service on a
    real clock may serve from many threads.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self.stages: dict[str, StageStat] = {}

    def span(self, stage: str) -> Span:
        return Span(self, stage)

    def record(self, stage: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            stat = self.stages.get(stage)
            if stat is None:
                stat = self.stages[stage] = StageStat(stage)
            stat.seconds += seconds
            stat.calls += calls

    def total(self) -> float:
        with self._lock:
            return sum(stat.seconds for stat in self.stages.values())

    def merge(self, other: "StageTimer") -> None:
        with other._lock:
            items = [(s.name, s.seconds, s.calls)
                     for s in other.stages.values()]
        for name, seconds, calls in items:
            self.record(name, seconds, calls)

    # -- rollup ------------------------------------------------------------

    def breakdown(self) -> dict[str, dict]:
        """Per-stage totals in first-use order (JSON-friendly)."""
        with self._lock:
            return {
                name: {"seconds": stat.seconds, "calls": stat.calls}
                for name, stat in self.stages.items()
            }

    def attribution(self, wall_s: float) -> dict:
        """The stage breakdown measured against end-to-end wall time.

        ``coverage`` is attributed/wall; ``unattributed_s`` is the time
        no span claimed (negative means spans overlapped and
        double-counted).
        """
        breakdown = self.breakdown()
        attributed = sum(s["seconds"] for s in breakdown.values())
        for stage in breakdown.values():
            stage["fraction"] = (stage["seconds"] / wall_s) if wall_s else 0.0
        return {
            "wall_s": wall_s,
            "attributed_s": attributed,
            "unattributed_s": wall_s - attributed,
            "coverage": (attributed / wall_s) if wall_s else 1.0,
            "stages": breakdown,
        }

    def check_attribution(self, wall_s: float, tolerance: float = 0.01) -> dict:
        """Raise unless the stage sum matches ``wall_s`` within tolerance.

        This is the accounting audit: if instrumentation misses a stage
        (or double-counts one through nested spans), the run must fail
        loudly rather than publish a breakdown that doesn't add up.
        Returns the attribution on success.
        """
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        report = self.attribution(wall_s)
        gap = abs(report["unattributed_s"])
        if wall_s > 0 and gap > tolerance * wall_s:
            raise AssertionError(
                f"stage attribution does not add up: stages sum to "
                f"{report['attributed_s']:.6f}s of {wall_s:.6f}s wall "
                f"({report['coverage']:.1%} coverage, tolerance "
                f"{tolerance:.0%}); stages: "
                + ", ".join(f"{n}={s['seconds']:.6f}s"
                            for n, s in report["stages"].items()))
        return report

    def table_rows(self, wall_s: float) -> list[tuple[str, str, str]]:
        """Rows for :func:`repro.harness.report.render_table`."""
        report = self.attribution(wall_s)
        rows = [
            (name, f"{stat['seconds'] * 1e3:.3f} ms",
             f"{stat['fraction'] * 100:.1f}% of run, "
             f"{stat['calls']} calls")
            for name, stat in report["stages"].items()
        ]
        rows.append(("(unattributed)",
                     f"{report['unattributed_s'] * 1e3:.3f} ms",
                     f"wall {wall_s * 1e3:.3f} ms, "
                     f"coverage {report['coverage'] * 100:.2f}%"))
        return rows
