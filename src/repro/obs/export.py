"""Registry export: Prometheus text exposition and JSON snapshots.

The metrics registry is an in-process store; this module is how its
contents leave the process in standard shapes:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, sanitized names, cumulative ``_bucket{le=...}``
  series for histograms), scrape-able as-is or diffable in tests;
* :func:`write_json_snapshot` — the registry's
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as stable,
  sorted JSON.

Both renderings are deterministic (sorted instrument and bucket order)
so artifacts produced under a fixed seed are bit-reproducible.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .metrics import Histogram, LogHistogram, MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, namespace: str) -> str:
    """A dotted registry name as a legal Prometheus metric name."""
    flat = _INVALID.sub("_", f"{namespace}_{name}" if namespace else name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _fmt(value: float) -> str:
    """Numbers without float noise: integers stay integers."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _histogram_lines(name: str, hist: Histogram | LogHistogram) -> list[str]:
    """Cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``."""
    lines = [f"# TYPE {name} histogram"]
    seen = 0
    for idx in sorted(hist.counts):
        seen += hist.counts[idx]
        if isinstance(hist, LogHistogram):
            le = hist.bucket_bounds(idx)[1]
            lines.append(f'{name}_bucket{{le="{le:.6g}"}} {seen}')
        else:
            lines.append(f'{name}_bucket{{le="{idx}"}} {seen}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {hist.total}')
    lines.append(f"{name}_sum {_fmt(hist._sum)}")
    lines.append(f"{name}_count {hist.total}")
    return lines


def render_prometheus(registry: MetricsRegistry,
                      namespace: str = "repro") -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        flat = _metric_name(name, namespace)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_fmt(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        flat = _metric_name(name, namespace)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_fmt(gauge.value)}")
    for name, hist in sorted(registry.histograms.items()):
        lines.extend(_histogram_lines(_metric_name(name, namespace), hist))
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str | Path,
                     namespace: str = "repro") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prometheus(registry, namespace))
    return path


def write_json_snapshot(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(registry.snapshot(), indent=2, sort_keys=True)
                    + "\n")
    return path
