"""DES timeline export — Chrome trace format + channel utilization series.

Attach a :class:`TimelineRecorder` to a simulation run and every thread
segment (context swap-in to memory-reference yield), every memory-channel
service interval, every FIFO stall and every injected fault lands on a
timeline that exports as Chrome-trace-format JSON — load it in
``chrome://tracing`` or https://ui.perfetto.dev to *see* the latency
masking, channel convoys and recovery windows the paper describes::

    timeline = TimelineRecorder()
    simulate_throughput(clf, trace, timeline=timeline)
    timeline.write_chrome_trace("results/run.trace.json")

Timestamps are ME cycles scaled to microseconds at the chip clock, so
Perfetto's time ruler reads real time.  The recorder also buckets each
channel's busy intervals into a utilization timeseries, which rides on
:class:`~repro.npsim.memory.ChannelReport` for instrumented runs.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Stop recording beyond this many events so a long saturation run
#: cannot balloon memory; the count of dropped events is reported.
DEFAULT_MAX_EVENTS = 400_000


class TimelineRecorder:
    """Collects DES events and renders them as a Chrome trace."""

    def __init__(self, me_clock_mhz: float = 1400.0,
                 max_events: int = DEFAULT_MAX_EVENTS) -> None:
        #: ME cycles per microsecond (the IXP2850 runs at 1.4 GHz).
        self.me_clock_mhz = me_clock_mhz
        self.max_events = max_events
        self.dropped_events = 0
        # (me, thread, start, end, packets_done)
        self._segments: list[tuple[int, int, float, float, int]] = []
        # channel -> [(service_start, service_end, nwords)]
        self._channel_busy: dict[str, list[tuple[float, float, int]]] = {}
        # (channel, issue_time, stall_cycles)
        self._stalls: list[tuple[str, float, float]] = []
        # (name, time, args) instantaneous markers (faults, recoveries)
        self._instants: list[tuple[str, float, dict]] = []
        self.elapsed_cycles = 0.0

    # -- recording hooks (called from the simulator hot loop) --------------

    def _full(self) -> bool:
        count = (len(self._segments) + len(self._stalls) + len(self._instants)
                 + sum(len(v) for v in self._channel_busy.values()))
        if count >= self.max_events:
            self.dropped_events += 1
            return True
        return False

    def thread_segment(self, me: int, thread: int, start: float, end: float,
                       packets_done: int = 0) -> None:
        """One run-to-memory-reference execution segment on an ME."""
        if end <= start or self._full():
            return
        self._segments.append((me, thread, start, end, packets_done))
        if end > self.elapsed_cycles:
            self.elapsed_cycles = end

    def channel_read(self, channel: str, service_start: float,
                     service_end: float, nwords: int,
                     stall_cycles: float = 0.0, issue_time: float = 0.0) -> None:
        """One command's service interval on a memory channel."""
        if self._full():
            return
        self._channel_busy.setdefault(channel, []).append(
            (service_start, service_end, nwords)
        )
        if stall_cycles > 0:
            self._stalls.append((channel, issue_time, stall_cycles))
        if service_end > self.elapsed_cycles:
            self.elapsed_cycles = service_end

    def instant(self, name: str, time: float, **args) -> None:
        """A point event (channel failure, failover, ME stall...)."""
        if self._full():
            return
        self._instants.append((name, time, args))

    # -- derived views ------------------------------------------------------

    def channel_utilization(self, channel: str, elapsed: float | None = None,
                            buckets: int = 64) -> list[tuple[float, float]]:
        """Bucketed busy fraction: ``[(bucket_end_cycle, utilization)]``.

        Busy intervals are clipped against equal-width buckets over
        ``[0, elapsed]``; the result is the timeseries a dashboard plots
        to spot convoys and post-failure shifts.
        """
        elapsed = elapsed if elapsed is not None else self.elapsed_cycles
        if elapsed <= 0 or buckets < 1:
            return []
        width = elapsed / buckets
        busy = [0.0] * buckets
        for start, end, _words in self._channel_busy.get(channel, ()):
            lo = max(0.0, start)
            hi = min(elapsed, end)
            if hi <= lo:
                continue
            first = min(buckets - 1, int(lo / width))
            last = min(buckets - 1, int(hi / width))
            for b in range(first, last + 1):
                b_lo = b * width
                b_hi = b_lo + width
                busy[b] += max(0.0, min(hi, b_hi) - max(lo, b_lo))
        return [((b + 1) * width, min(1.0, busy[b] / width)) for b in range(buckets)]

    def channels(self) -> list[str]:
        return sorted(self._channel_busy)

    # -- Chrome trace export -------------------------------------------------

    def _us(self, cycles: float) -> float:
        return cycles / self.me_clock_mhz

    def to_chrome_trace(self) -> dict:
        """The run as a Chrome-trace-format JSON object.

        Layout: one trace "process" per microengine (pid = ME index,
        one row per hardware thread), one process for the memory
        channels (one row per channel), instants pinned to the channel
        process.  ``ph: "X"`` complete events carry durations; ``ph:
        "M"`` metadata events name the rows.
        """
        events: list[dict] = []
        mes = sorted({seg[0] for seg in self._segments})
        for me in mes:
            events.append({
                "name": "process_name", "ph": "M", "pid": me, "tid": 0,
                "args": {"name": f"microengine {me}"},
            })
        threads = sorted({(seg[0], seg[1]) for seg in self._segments})
        for me, tid in threads:
            events.append({
                "name": "thread_name", "ph": "M", "pid": me, "tid": tid,
                "args": {"name": f"thread {tid}"},
            })
        for me, tid, start, end, packets in self._segments:
            events.append({
                "name": "run", "cat": "me", "ph": "X",
                "ts": self._us(start), "dur": self._us(end - start),
                "pid": me, "tid": tid,
                "args": {"packets_done": packets},
            })

        chan_pid = (max(mes) + 1) if mes else 1000
        events.append({
            "name": "process_name", "ph": "M", "pid": chan_pid, "tid": 0,
            "args": {"name": "memory channels"},
        })
        for row, channel in enumerate(self.channels()):
            events.append({
                "name": "thread_name", "ph": "M", "pid": chan_pid, "tid": row,
                "args": {"name": channel},
            })
            for start, end, nwords in self._channel_busy[channel]:
                events.append({
                    "name": f"{nwords}w", "cat": "mem", "ph": "X",
                    "ts": self._us(start), "dur": self._us(end - start),
                    "pid": chan_pid, "tid": row,
                    "args": {"words": nwords},
                })
        row_of = {c: r for r, c in enumerate(self.channels())}
        for channel, when, cycles in self._stalls:
            events.append({
                "name": "fifo_stall", "cat": "mem", "ph": "I", "s": "t",
                "ts": self._us(when),
                "pid": chan_pid, "tid": row_of.get(channel, 0),
                "args": {"stall_cycles": cycles},
            })
        for name, when, args in self._instants:
            events.append({
                "name": name, "cat": "fault", "ph": "I", "s": "g",
                "ts": self._us(when), "pid": chan_pid, "tid": 0,
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "me_clock_mhz": self.me_clock_mhz,
                "elapsed_cycles": self.elapsed_cycles,
                "dropped_events": self.dropped_events,
            },
        }

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Serialise the timeline; the file loads directly in Perfetto."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()))
        return path
