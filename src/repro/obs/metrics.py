"""A lightweight counter/gauge/histogram metrics registry.

Every layer of the library — classifiers, the NP simulator's
microengines and memory channels, the flow cache, the fault injector —
reports into one process-wide registry through named scopes
(``npsim.packets_completed``, ``faults.packets_dropped``, …).

The registry is **disabled by default** and costs nothing while it is:
``get_registry()`` then returns a registry whose scopes hand out shared
null instruments, so ``scope.counter("x").inc()`` is two attribute
lookups and a no-op call.  Code on genuinely hot paths should guard with
:func:`metrics_enabled` instead and skip instrument resolution entirely;
everything wired in this repository emits at end-of-run aggregation
points, where the disabled cost is unmeasurable.

Enable around a region of interest::

    from repro.obs import enable_metrics, get_registry

    enable_metrics()
    ...  # run experiments
    print(get_registry().render())
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

#: Operational warnings (snapshot quarantines, degraded builds, ...) go
#: through one library logger.  With no handler configured, Python's
#: last-resort handler still prints WARNING-level records to stderr, so
#: a corrupted cache file is never silently swallowed again.
_log = logging.getLogger("repro")


def obs_warn(message: str) -> None:
    """Emit a one-line operational warning (works with metrics disabled).

    This is deliberately *not* a metric: metrics are off by default, but
    an integrity event (a quarantined snapshot, a budget-degraded build)
    must reach the operator even on an uninstrumented run.  Callers pair
    it with a counter in the relevant scope for the instrumented case.
    """
    _log.warning(message)


class Counter:
    """A monotonically increasing count (events, packets, reads)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-write-wins sample (utilization, occupancy, hit rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """An exact histogram over small integer-ish observations.

    Observations are bucketed by their rounded value — the distributions
    this library cares about (lookup depth, accesses per packet, linear
    search length) are small integers, so exact counts beat fixed bucket
    boundaries and keep percentile math trivial.
    """

    __slots__ = ("name", "counts", "total", "_sum", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: dict[int, int] = {}
        self.total = 0
        self._sum = 0.0
        self._max: float | None = None

    def observe(self, value: float) -> None:
        bucket = int(round(value))
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1
        self._sum += value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile (0 <= q <= 1) over the recorded buckets."""
        if not self.total:
            return 0.0
        need = q * self.total
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= need:
                return float(bucket)
        return float(max(self.counts))

    def merge(self, other: "Histogram") -> None:
        """Fold another exact histogram's buckets into this one."""
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.total += other.total
        self._sum += other._sum
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max

    def to_dict(self) -> dict:
        return {
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
            "total": self.total,
            "mean": self.mean,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.total} mean={self.mean:.2f}>"


class LogHistogram:
    """An HDR-style log-bucketed histogram: fixed memory, bounded error.

    Latencies span orders of magnitude, so fixed-width or exact-integer
    buckets either blur the tail or grow without bound.  This histogram
    buckets each observation by ``floor(log_g(value))`` with growth
    factor ``g = 1.04``: every bucket spans 4% of its value, so any
    reported quantile is within half a bucket — under 2% relative error,
    comfortably inside the 5% the trajectory tooling assumes — while the
    clamped index range bounds the bucket count (``MAX_BUCKETS``) no
    matter how adversarial the value range is.

    The exact minimum and maximum are tracked on the side: reported
    percentiles are clamped into ``[min, max]``, so ``percentile(1.0)``
    (and ``max``) are exact, not bucket edges.

    Histograms **merge**: worker registries fold into the parent by
    adding bucket counts, which is associative and loses nothing —
    merged percentiles equal the percentiles of the pooled data (to the
    same bucket resolution).
    """

    GROWTH = 1.04
    _LOG_GROWTH = math.log(GROWTH)
    #: Values below this are counted in the dedicated zero bucket;
    #: values above ``MAX_TRACKABLE`` clamp to the top bucket.
    MIN_TRACKABLE = 1e-9
    MAX_TRACKABLE = 1e15
    _MIN_INDEX = math.floor(math.log(MIN_TRACKABLE) / _LOG_GROWTH)
    _MAX_INDEX = math.floor(math.log(MAX_TRACKABLE) / _LOG_GROWTH)
    #: Hard bound on distinct buckets (indices plus the zero bucket).
    MAX_BUCKETS = _MAX_INDEX - _MIN_INDEX + 2
    #: Sentinel index for observations at or below zero.
    ZERO_BUCKET = _MIN_INDEX - 1

    __slots__ = ("name", "counts", "total", "_sum", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: dict[int, int] = {}
        self.total = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def _index(self, value: float) -> int:
        if value < self.MIN_TRACKABLE:
            return self.ZERO_BUCKET
        if value >= self.MAX_TRACKABLE:
            return self._MAX_INDEX
        idx = math.floor(math.log(value) / self._LOG_GROWTH)
        return min(max(idx, self._MIN_INDEX), self._MAX_INDEX)

    def observe(self, value: float) -> None:
        if value != value:  # NaN: an instrument must never raise
            return
        value = min(max(float(value), 0.0), self.MAX_TRACKABLE)
        idx = self._index(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.total += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def _representative(self, idx: int) -> float:
        """The geometric midpoint of bucket ``idx``, clamped to data."""
        if idx == self.ZERO_BUCKET:
            rep = 0.0
        else:
            rep = self.GROWTH ** (idx + 0.5)
        if self._min is not None:
            rep = min(max(rep, self._min), self._max)
        return rep

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` (0 <= q <= 1), within bucket error."""
        if not self.total:
            return 0.0
        if q >= 1.0:
            return self.max  # exact by the side-tracked maximum
        need = q * self.total
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= need:
                return self._representative(idx)
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The quantile summary every latency consumer wants."""
        return {
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "max": self.max,
        }

    def merge(self, other: "LogHistogram") -> None:
        """Fold another log histogram's buckets into this one."""
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += other.total
        self._sum += other._sum
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max

    def bucket_bounds(self, idx: int) -> tuple[float, float]:
        """The ``[lo, hi)`` value range bucket ``idx`` covers."""
        if idx == self.ZERO_BUCKET:
            return (0.0, self.MIN_TRACKABLE)
        return (self.GROWTH ** idx, self.GROWTH ** (idx + 1))

    def to_dict(self) -> dict:
        return {
            "kind": "log",
            "growth": self.GROWTH,
            "buckets": {str(k): v for k, v in sorted(self.counts.items())},
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **self.percentiles(),
        }

    def __repr__(self) -> str:
        return (f"<LogHistogram {self.name} n={self.total} "
                f"p50={self.percentile(0.5):.3g} max={self.max:.3g}>")


class _NullInstrument:
    """Shared no-op stand-in for every instrument type when disabled."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()


class _NullScope:
    """No-op scope: hands out the shared null instrument."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL

    def log_histogram(self, name: str) -> _NullInstrument:
        return _NULL

    def scope(self, name: str) -> "_NullScope":
        return self


_NULL_SCOPE = _NullScope()


@dataclass
class MetricScope:
    """A named prefix into a live registry (``npsim``, ``faults``, …)."""

    registry: "MetricsRegistry"
    prefix: str

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._qualify(name))

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(self._qualify(name))

    def log_histogram(self, name: str) -> LogHistogram:
        return self.registry.log_histogram(self._qualify(name))

    def scope(self, name: str) -> "MetricScope":
        return MetricScope(self.registry, self._qualify(name))


@dataclass
class MetricsRegistry:
    """Flat name -> instrument store with scope views."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    #: Exact integer histograms and log-bucketed latency histograms
    #: share one namespace — a name is one kind or the other, never both.
    histograms: dict[str, "Histogram | LogHistogram"] = field(
        default_factory=dict)

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        return self._histogram(name, Histogram)

    def log_histogram(self, name: str) -> LogHistogram:
        return self._histogram(name, LogHistogram)

    def _histogram(self, name: str, cls):
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = cls(name)
        elif not isinstance(inst, cls):
            raise ValueError(
                f"histogram {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def scope(self, name: str) -> MetricScope:
        return MetricScope(self, name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Subsystems that must observe themselves even while process-wide
        metrics are disabled (the serving layer's shed/breaker counters
        feed its acceptance criteria) run on a private registry and fold
        it into the global one at their aggregation point.  Counters
        add, gauges take the other's last write, histograms merge their
        exact bucket counts.
        """
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other.histograms.items():
            self._histogram(name, type(hist)).merge(hist)

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every instrument, sorted by name."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self.histograms.items())},
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def render(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        lines = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name:44s} {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"{name:44s} {gauge.value:.4f}")
        for name, hist in sorted(self.histograms.items()):
            lines.append(
                f"{name:44s} n={hist.total} mean={hist.mean:.2f} max={hist.max:.0f}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


# -- process-wide registry ---------------------------------------------------

_registry: MetricsRegistry | None = None


def metrics_enabled() -> bool:
    return _registry is not None


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (or replace) the process-wide registry and return it."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


def disable_metrics() -> None:
    """Return to the zero-overhead no-op state."""
    global _registry
    _registry = None


def get_registry() -> MetricsRegistry | None:
    """The live registry, or ``None`` while metrics are disabled."""
    return _registry


def metrics_scope(name: str) -> MetricScope | _NullScope:
    """A scope into the live registry, or the shared null scope.

    The call-site idiom — resolve the scope once per aggregation point,
    never per event::

        scope = metrics_scope("npsim")
        scope.counter("packets_completed").inc(done)
    """
    if _registry is None:
        return _NULL_SCOPE
    return _registry.scope(name)
