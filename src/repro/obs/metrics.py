"""A lightweight counter/gauge/histogram metrics registry.

Every layer of the library — classifiers, the NP simulator's
microengines and memory channels, the flow cache, the fault injector —
reports into one process-wide registry through named scopes
(``npsim.packets_completed``, ``faults.packets_dropped``, …).

The registry is **disabled by default** and costs nothing while it is:
``get_registry()`` then returns a registry whose scopes hand out shared
null instruments, so ``scope.counter("x").inc()`` is two attribute
lookups and a no-op call.  Code on genuinely hot paths should guard with
:func:`metrics_enabled` instead and skip instrument resolution entirely;
everything wired in this repository emits at end-of-run aggregation
points, where the disabled cost is unmeasurable.

Enable around a region of interest::

    from repro.obs import enable_metrics, get_registry

    enable_metrics()
    ...  # run experiments
    print(get_registry().render())
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

#: Operational warnings (snapshot quarantines, degraded builds, ...) go
#: through one library logger.  With no handler configured, Python's
#: last-resort handler still prints WARNING-level records to stderr, so
#: a corrupted cache file is never silently swallowed again.
_log = logging.getLogger("repro")


def obs_warn(message: str) -> None:
    """Emit a one-line operational warning (works with metrics disabled).

    This is deliberately *not* a metric: metrics are off by default, but
    an integrity event (a quarantined snapshot, a budget-degraded build)
    must reach the operator even on an uninstrumented run.  Callers pair
    it with a counter in the relevant scope for the instrumented case.
    """
    _log.warning(message)


class Counter:
    """A monotonically increasing count (events, packets, reads)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-write-wins sample (utilization, occupancy, hit rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """An exact histogram over small integer-ish observations.

    Observations are bucketed by their rounded value — the distributions
    this library cares about (lookup depth, accesses per packet, linear
    search length) are small integers, so exact counts beat fixed bucket
    boundaries and keep percentile math trivial.
    """

    __slots__ = ("name", "counts", "total", "_sum", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: dict[int, int] = {}
        self.total = 0
        self._sum = 0.0
        self._max: float | None = None

    def observe(self, value: float) -> None:
        bucket = int(round(value))
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1
        self._sum += value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile (0 <= q <= 1) over the recorded buckets."""
        if not self.total:
            return 0.0
        need = q * self.total
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= need:
                return float(bucket)
        return float(max(self.counts))

    def to_dict(self) -> dict:
        return {
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
            "total": self.total,
            "mean": self.mean,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.total} mean={self.mean:.2f}>"


class _NullInstrument:
    """Shared no-op stand-in for every instrument type when disabled."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()


class _NullScope:
    """No-op scope: hands out the shared null instrument."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL

    def scope(self, name: str) -> "_NullScope":
        return self


_NULL_SCOPE = _NullScope()


@dataclass
class MetricScope:
    """A named prefix into a live registry (``npsim``, ``faults``, …)."""

    registry: "MetricsRegistry"
    prefix: str

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._qualify(name))

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(self._qualify(name))

    def scope(self, name: str) -> "MetricScope":
        return MetricScope(self.registry, self._qualify(name))


@dataclass
class MetricsRegistry:
    """Flat name -> instrument store with scope views."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def scope(self, name: str) -> MetricScope:
        return MetricScope(self, name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Subsystems that must observe themselves even while process-wide
        metrics are disabled (the serving layer's shed/breaker counters
        feed its acceptance criteria) run on a private registry and fold
        it into the global one at their aggregation point.  Counters
        add, gauges take the other's last write, histograms merge their
        exact bucket counts.
        """
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other.histograms.items():
            mine = self.histogram(name)
            for bucket, count in hist.counts.items():
                mine.counts[bucket] = mine.counts.get(bucket, 0) + count
            mine.total += hist.total
            mine._sum += hist._sum
            if hist._max is not None and (mine._max is None
                                          or hist._max > mine._max):
                mine._max = hist._max

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every instrument, sorted by name."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self.histograms.items())},
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def render(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        lines = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name:44s} {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"{name:44s} {gauge.value:.4f}")
        for name, hist in sorted(self.histograms.items()):
            lines.append(
                f"{name:44s} n={hist.total} mean={hist.mean:.2f} max={hist.max:.0f}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


# -- process-wide registry ---------------------------------------------------

_registry: MetricsRegistry | None = None


def metrics_enabled() -> bool:
    return _registry is not None


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (or replace) the process-wide registry and return it."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


def disable_metrics() -> None:
    """Return to the zero-overhead no-op state."""
    global _registry
    _registry = None


def get_registry() -> MetricsRegistry | None:
    """The live registry, or ``None`` while metrics are disabled."""
    return _registry


def metrics_scope(name: str) -> MetricScope | _NullScope:
    """A scope into the live registry, or the shared null scope.

    The call-site idiom — resolve the scope once per aggregation point,
    never per event::

        scope = metrics_scope("npsim")
        scope.counter("packets_completed").inc(done)
    """
    if _registry is None:
        return _NULL_SCOPE
    return _registry.scope(name)
