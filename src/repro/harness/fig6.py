"""Figure 6 — SRAM usage of ExpCuts with and without space aggregation.

The paper's bars: per rule set, the packed-image size with the full
``2**w`` pointer arrays versus with HABS+CPA compression; compression
retains ≈15 % and is what lets CR04 fit the four 8 MB SRAM chips.
"""

from __future__ import annotations

from ..core.layout import pack_tree
from ..rulesets import PAPER_ORDER
from .cache import get_classifier
from .experiments import ExperimentResult
from .report import render_table

#: The hardware budget the paper checks against: four 8 MB SRAM chips.
SRAM_BUDGET_BYTES = 4 * 8 * 1024 * 1024
SINGLE_CHIP_BYTES = 8 * 1024 * 1024

#: Quick mode shrinks the sweep to the sets that build in seconds.
QUICK_SETS = ("FW01", "FW02", "CR01")


def run_fig6(quick: bool = False) -> ExperimentResult:
    names = QUICK_SETS if quick else PAPER_ORDER
    rows = []
    data = {}
    for name in names:
        clf = get_classifier(name, "expcuts")
        with_agg = clf.image if clf.image.aggregated else pack_tree(clf.tree, True)
        without = pack_tree(clf.tree, aggregated=False)
        kb_with = with_agg.total_bytes / 1024
        kb_without = without.total_bytes / 1024
        ratio = kb_with / kb_without
        fits = "yes" if with_agg.total_bytes <= SRAM_BUDGET_BYTES else "NO"
        fits_without = "yes" if without.total_bytes <= SRAM_BUDGET_BYTES else "NO"
        rows.append((name, len(clf.ruleset), f"{kb_without:.0f}",
                     f"{kb_with:.0f}", f"{ratio:.3f}", fits_without, fits))
        data[name] = {
            "rules": len(clf.ruleset),
            "bytes_without": without.total_bytes,
            "bytes_with": with_agg.total_bytes,
            "ratio": ratio,
        }
    text = render_table(
        "Figure 6: Space aggregation effect (SRAM usage, KB)",
        ["Rule set", "Rules", "w/o aggregation", "with aggregation",
         "ratio", "fits 4x8MB w/o", "fits 4x8MB w/"],
        rows,
    )
    return ExperimentResult("fig6", "Space aggregation effect", text, data)
