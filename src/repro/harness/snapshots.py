"""Crash-safe, integrity-verified snapshot persistence.

The build cache used to ``pickle.load`` whatever bytes it found under
``.repro_cache/`` and silently swallow any failure — the exact failure
mode that matters on the paper's platform, where the XScale core must
hand the microengines a *valid* SRAM image every time: a torn write, a
bit flip, or a stale structure from an older code version means
classifying garbage at 7 Gbps.

Every snapshot is now a self-describing file::

    offset 0   MAGIC            8 bytes  b"RPSNAP01"
    offset 8   header length    4 bytes  big-endian uint32
    offset 12  header           JSON (utf-8), see SnapshotHeader
    ...        payload          pickle bytes, exactly header.payload_bytes

The header carries the snapshot format version, the library's
:data:`~repro.harness.cache.CACHE_VERSION`, the kind of object stored, a
params digest, build info (python version, library version, git
describe) and the SHA-256 of the payload.  **Loads verify everything —
magic, lengths, versions, checksum — before a single pickle byte is
interpreted**; any mismatch raises
:class:`~repro.core.errors.SnapshotIntegrityError` and callers
quarantine the file (rename to ``*.corrupt``) and rebuild from source.

Writes are atomic and durable: payload and header are written to a
temp file in the same directory, ``fsync``\\ ed, then ``os.replace``\\ d
over the destination, so a crash mid-write leaves either the old
snapshot or none — never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import platform
import re
import struct
import subprocess
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path

from itertools import count

from ..core.errors import SnapshotIntegrityError
from ..obs import metrics_scope, obs_warn

#: File magic: 8 bytes, includes the binary format generation.
MAGIC = b"RPSNAP01"
#: Magic of chained delta records (the RPDELTA01 format; magics are
#: fixed at 8 bytes, so the generation digit is carried by the name).
DELTA_MAGIC = b"RPDELTA1"
#: On-disk snapshot container format version (the header schema).
FORMAT_VERSION = 1
#: Suffix of snapshot files.
SNAPSHOT_SUFFIX = ".snap"
#: Suffix of chained delta records (``<base>.snap.<epoch>.delta``).
DELTA_SUFFIX = ".delta"
#: Suffix quarantined files are renamed to.
QUARANTINE_SUFFIX = ".corrupt"
#: Sanity cap on the JSON header (a corrupt length field must not make
#: the loader try to slurp gigabytes).
_MAX_HEADER_BYTES = 1 << 20

_LEN = struct.Struct(">I")


@lru_cache(maxsize=1)
def build_info() -> dict[str, str]:
    """Provenance stamped into every snapshot header.

    ``git`` is best-effort (``git describe --always --dirty``): absent
    in tarball installs, but invaluable when a quarantined file needs to
    be traced back to the build that wrote it.
    """
    info = {"python": platform.python_version()}
    try:
        import repro

        info["repro"] = getattr(repro, "__version__", "unknown")
    except Exception:  # pragma: no cover - repro is always importable here
        info["repro"] = "unknown"
    try:
        described = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
        if described.returncode == 0:
            info["git"] = described.stdout.strip()
    except Exception:
        pass
    return info


@dataclass(frozen=True)
class SnapshotHeader:
    """The verified metadata preceding a snapshot payload."""

    format_version: int
    cache_version: int
    kind: str
    digest: str
    build: dict
    payload_bytes: int
    sha256: str


def _pack(header: SnapshotHeader, magic: bytes = MAGIC) -> bytes:
    blob = json.dumps(asdict(header), sort_keys=True).encode("utf-8")
    return magic + _LEN.pack(len(blob)) + blob


#: Per-process serial for temp-file names (see :func:`write_snapshot`).
_TMP_SERIAL = count()


def _atomic_write(path: Path, head: bytes, payload: bytes) -> None:
    """Write ``head + payload`` crash-safely (tmp + fsync + rename)."""
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_SERIAL)}.tmp")
    try:
        with tmp.open("wb") as fh:
            fh.write(head)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        try:  # directory durability is best-effort (not all FS support it)
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
    finally:
        tmp.unlink(missing_ok=True)


def write_snapshot(path: Path, obj: object, *, kind: str,
                   cache_version: int, digest: str = "") -> SnapshotHeader:
    """Atomically persist ``obj`` as a verified snapshot at ``path``.

    The temp file lives in the destination directory so ``os.replace``
    is a same-filesystem atomic rename; both the file and (best-effort)
    the directory are fsynced before the rename becomes visible.  The
    temp name embeds the writer's pid and a per-process serial: the
    fabric's supervisor and worker processes may republish the same
    shard snapshot concurrently, and two writers sharing one ``.tmp``
    path would interleave into a torn file.  (The ``.tmp`` suffix is
    load-bearing — :func:`gc_store` sweeps the debris by that glob.)
    """
    path = Path(path)
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = SnapshotHeader(
        format_version=FORMAT_VERSION,
        cache_version=cache_version,
        kind=kind,
        digest=digest,
        build=build_info(),
        payload_bytes=len(payload),
        sha256=hashlib.sha256(payload).hexdigest(),
    )
    _atomic_write(path, _pack(header), payload)
    metrics_scope("snapshots").counter("writes").inc()
    return header


def _read_raw_header(path: Path, magic: bytes) -> tuple[dict, int]:
    """Parse one container's magic + length-prefixed JSON header.

    Returns the decoded field dict and the payload's byte offset.
    Shared by snapshots and delta records; raises
    :class:`SnapshotIntegrityError` on any structural problem.
    """
    try:
        with path.open("rb") as fh:
            got = fh.read(len(magic))
            if len(got) < len(magic):
                raise SnapshotIntegrityError(path, "truncated magic")
            if got != magic:
                raise SnapshotIntegrityError(path, "bad magic")
            raw_len = fh.read(_LEN.size)
            if len(raw_len) < _LEN.size:
                raise SnapshotIntegrityError(path, "truncated header length")
            (header_len,) = _LEN.unpack(raw_len)
            if header_len > _MAX_HEADER_BYTES:
                raise SnapshotIntegrityError(
                    path, f"implausible header length {header_len}")
            blob = fh.read(header_len)
            if len(blob) < header_len:
                raise SnapshotIntegrityError(path, "truncated header")
    except OSError as exc:
        raise SnapshotIntegrityError(path, f"unreadable: {exc}") from exc
    try:
        fields = json.loads(blob.decode("utf-8"))
        if not isinstance(fields, dict):
            raise TypeError("header is not an object")
    except (ValueError, TypeError) as exc:
        raise SnapshotIntegrityError(path, f"undecodable header: {exc}") from exc
    return fields, len(magic) + _LEN.size + header_len


def read_header(path: Path) -> tuple[SnapshotHeader, int]:
    """Parse and sanity-check a snapshot's header (no payload read).

    Returns the header and the payload's byte offset.  Raises
    :class:`SnapshotIntegrityError` on any structural problem.
    """
    path = Path(path)
    fields, offset = _read_raw_header(path, MAGIC)
    try:
        header = SnapshotHeader(**fields)
    except TypeError as exc:
        raise SnapshotIntegrityError(path, f"undecodable header: {exc}") from exc
    if header.format_version != FORMAT_VERSION:
        raise SnapshotIntegrityError(
            path, f"format version skew (file {header.format_version}, "
                  f"library {FORMAT_VERSION})")
    if not isinstance(header.payload_bytes, int) or header.payload_bytes < 0:
        raise SnapshotIntegrityError(path, "invalid payload length")
    return header, offset


def read_snapshot(path: Path, *, kind: str | None = None,
                  cache_version: int | None = None,
                  digest: str | None = None) -> object:
    """Verify and load one snapshot; the only unpickle point.

    Verification order: container structure (magic, lengths, format
    version), then expectations (``cache_version`` skew, ``kind``,
    ``digest``), then the payload SHA-256.  ``pickle.loads`` runs only
    after every check passes — a file failing *any* of them never
    reaches the unpickler.
    """
    path = Path(path)
    header, offset = read_header(path)
    if cache_version is not None and header.cache_version != cache_version:
        raise SnapshotIntegrityError(
            path, f"cache version skew (file {header.cache_version}, "
                  f"library {cache_version})")
    if kind is not None and header.kind != kind:
        raise SnapshotIntegrityError(
            path, f"kind mismatch (file {header.kind!r}, wanted {kind!r})")
    if digest is not None and header.digest != digest:
        raise SnapshotIntegrityError(
            path, f"params digest mismatch (file {header.digest!r}, "
                  f"wanted {digest!r})")
    value = _read_verified_payload(path, offset, header.payload_bytes,
                                   header.sha256)
    metrics_scope("snapshots").counter("loads").inc()
    return value


def _read_verified_payload(path: Path, offset: int, payload_bytes: int,
                           sha256: str) -> object:
    """Read, checksum-verify, then unpickle one container's payload."""
    try:
        with path.open("rb") as fh:
            fh.seek(offset)
            payload = fh.read(payload_bytes + 1)
    except OSError as exc:
        raise SnapshotIntegrityError(path, f"unreadable: {exc}") from exc
    if len(payload) < payload_bytes:
        raise SnapshotIntegrityError(path, "truncated payload")
    if len(payload) > payload_bytes:
        raise SnapshotIntegrityError(path, "trailing bytes after payload")
    if hashlib.sha256(payload).hexdigest() != sha256:
        raise SnapshotIntegrityError(path, "payload checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        # Checksummed bytes that still fail to unpickle mean the writer's
        # object graph no longer matches the code (e.g. a renamed class).
        raise SnapshotIntegrityError(path, f"unpickle failed: {exc}") from exc


def quarantine(path: Path, reason: str = "corrupt") -> Path | None:
    """Move a failed snapshot aside as ``*.corrupt`` for post-mortems.

    Never raises: quarantine runs on the failure path, where a second
    error must not mask the first.  Returns the new path, or ``None``
    when the rename itself failed.
    """
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    serial = 0
    while target.exists():
        serial += 1
        target = path.with_name(f"{path.name}{QUARANTINE_SUFFIX}.{serial}")
    try:
        os.replace(path, target)
    except OSError:
        return None
    scope = metrics_scope("snapshots")
    scope.counter("quarantined").inc()
    obs_warn(f"snapshot quarantined: {path} -> {target.name} ({reason})")
    return target


# -- delta records (RPDELTA01) -----------------------------------------------
#
# A delta record persists one epoch's ordered edit log against a base
# snapshot, so a warm restart replays ``base + deltas`` instead of
# rebuilding from source after every rule-table change.  Records chain
# cryptographically::
#
#     base.snap                     payload sha = B
#     base.snap.00000001.delta      base_sha=B  prev_sha=B   sha = D1
#     base.snap.00000002.delta      base_sha=B  prev_sha=D1  sha = D2
#     ...
#
# ``base_sha`` pins every record to one exact base payload; ``prev_sha``
# pins it to its predecessor, so a missing, reordered, stale or corrupt
# link is detected *before* any pickle byte is interpreted.  Loaders
# salvage the longest verified prefix and quarantine the broken suffix.


@dataclass(frozen=True)
class DeltaHeader:
    """The verified metadata preceding a delta record's payload."""

    format_version: int
    cache_version: int
    kind: str
    epoch: int
    base_sha: str
    prev_sha: str
    build: dict
    payload_bytes: int
    sha256: str


_DELTA_NAME_RE = re.compile(
    r"^(?P<base>.+" + re.escape(SNAPSHOT_SUFFIX) + r")"
    r"\.(?P<epoch>\d{8})" + re.escape(DELTA_SUFFIX) + r"$")


def delta_path(base_path: Path, epoch: int) -> Path:
    """The canonical name of a delta record: ``<base>.snap.<epoch>.delta``.

    The zero-padded epoch makes lexicographic directory order equal
    replay order (epochs are bounded well below 10^8 in practice).
    """
    base_path = Path(base_path)
    if epoch <= 0:
        raise ValueError(f"delta epoch must be positive, got {epoch}")
    return base_path.with_name(f"{base_path.name}.{epoch:08d}{DELTA_SUFFIX}")


def delta_base_and_epoch(path: Path) -> tuple[Path, int] | None:
    """Invert :func:`delta_path`; ``None`` for non-conforming names."""
    path = Path(path)
    match = _DELTA_NAME_RE.match(path.name)
    if match is None:
        return None
    return path.with_name(match.group("base")), int(match.group("epoch"))


def write_delta(path: Path, ops: object, *, kind: str, cache_version: int,
                epoch: int, base_sha: str, prev_sha: str) -> DeltaHeader:
    """Atomically persist one epoch's edit log as a chained delta record.

    ``base_sha`` is the base snapshot's payload SHA-256; ``prev_sha`` is
    the previous delta's payload SHA-256 (for the first delta of a
    chain, the base's — i.e. ``prev_sha == base_sha``).
    """
    path = Path(path)
    if epoch <= 0:
        raise ValueError(f"delta epoch must be positive, got {epoch}")
    payload = pickle.dumps(ops, protocol=pickle.HIGHEST_PROTOCOL)
    header = DeltaHeader(
        format_version=FORMAT_VERSION,
        cache_version=cache_version,
        kind=kind,
        epoch=epoch,
        base_sha=base_sha,
        prev_sha=prev_sha,
        build=build_info(),
        payload_bytes=len(payload),
        sha256=hashlib.sha256(payload).hexdigest(),
    )
    _atomic_write(path, _pack(header, magic=DELTA_MAGIC), payload)
    metrics_scope("snapshots").counter("delta_writes").inc()
    return header


def read_delta_header(path: Path) -> tuple[DeltaHeader, int]:
    """Parse and sanity-check a delta record's header (no payload read)."""
    path = Path(path)
    fields, offset = _read_raw_header(path, DELTA_MAGIC)
    try:
        header = DeltaHeader(**fields)
    except TypeError as exc:
        raise SnapshotIntegrityError(path, f"undecodable header: {exc}") from exc
    if header.format_version != FORMAT_VERSION:
        raise SnapshotIntegrityError(
            path, f"format version skew (file {header.format_version}, "
                  f"library {FORMAT_VERSION})")
    if not isinstance(header.payload_bytes, int) or header.payload_bytes < 0:
        raise SnapshotIntegrityError(path, "invalid payload length")
    if not isinstance(header.epoch, int) or header.epoch <= 0:
        raise SnapshotIntegrityError(path, "invalid epoch")
    return header, offset


def read_delta(path: Path, *, kind: str | None = None,
               cache_version: int | None = None, epoch: int | None = None,
               base_sha: str | None = None,
               prev_sha: str | None = None) -> tuple[DeltaHeader, object]:
    """Verify and load one delta record.

    Same discipline as :func:`read_snapshot`: container structure, then
    expectations (version skew, kind, epoch, chain hashes), then the
    payload checksum — ``pickle.loads`` runs only after every check
    passes.  Returns ``(header, ops)``.
    """
    path = Path(path)
    header, offset = read_delta_header(path)
    if cache_version is not None and header.cache_version != cache_version:
        raise SnapshotIntegrityError(
            path, f"cache version skew (file {header.cache_version}, "
                  f"library {cache_version})")
    if kind is not None and header.kind != kind:
        raise SnapshotIntegrityError(
            path, f"kind mismatch (file {header.kind!r}, wanted {kind!r})")
    if epoch is not None and header.epoch != epoch:
        raise SnapshotIntegrityError(
            path, f"epoch mismatch (file {header.epoch}, wanted {epoch})")
    if base_sha is not None and header.base_sha != base_sha:
        raise SnapshotIntegrityError(
            path, "base hash mismatch (delta belongs to a different base)")
    if prev_sha is not None and header.prev_sha != prev_sha:
        raise SnapshotIntegrityError(
            path, "chain hash mismatch (missing or reordered predecessor)")
    ops = _read_verified_payload(path, offset, header.payload_bytes,
                                 header.sha256)
    metrics_scope("snapshots").counter("delta_loads").inc()
    return header, ops


@dataclass
class DeltaChain:
    """Outcome of :func:`load_chain`: a verified base plus the longest
    verified prefix of its delta records, in replay order."""

    base_path: Path
    base: object
    base_header: SnapshotHeader
    deltas: list[tuple[int, object]]
    quarantined: list[Path]
    broken: str | None = None

    @property
    def epoch(self) -> int:
        """The epoch the chain settles at after replay (0 = base only)."""
        return self.deltas[-1][0] if self.deltas else 0

    @property
    def intact(self) -> bool:
        return self.broken is None


def load_chain(base_path: Path, *, kind: str,
               cache_version: int | None = None,
               delta_kind: str | None = None,
               digest: str | None = None) -> DeltaChain:
    """Load a base snapshot and replay-verify its delta chain.

    The base is loaded with full verification (propagating
    :class:`SnapshotIntegrityError` — a bad base means cold rebuild, and
    the caller owns that quarantine).  Deltas are then walked in epoch
    order, each checked against the chain (``base_sha`` == base payload
    hash, ``prev_sha`` == predecessor's payload hash, contiguous
    epochs).  The first failure **quarantines that delta and every later
    one** — a broken link makes the suffix unreplayable — and the good
    prefix is returned with ``broken`` describing the cut.
    """
    base_path = Path(base_path)
    base_header, _ = read_header(base_path)
    base = read_snapshot(base_path, kind=kind, cache_version=cache_version,
                         digest=digest)
    chain = DeltaChain(base_path, base, base_header, [], [])

    candidates: list[tuple[int, Path]] = []
    for path in sorted(base_path.parent.glob(
            f"{base_path.name}.*{DELTA_SUFFIX}")):
        parsed = delta_base_and_epoch(path)
        if parsed is None or parsed[0] != base_path:
            continue
        candidates.append((parsed[1], path))
    candidates.sort()

    # The chain may start at any epoch (a compacted base is republished
    # at the fabric's current epoch): the first link is authenticated by
    # ``prev_sha == base_sha``, later ones must also be contiguous.
    prev_sha = base_header.sha256
    next_epoch: int | None = None
    for i, (name_epoch, path) in enumerate(candidates):
        try:
            if next_epoch is not None and name_epoch != next_epoch:
                raise SnapshotIntegrityError(
                    path, f"missing epoch {next_epoch} before this record")
            header, ops = read_delta(
                path, kind=delta_kind, cache_version=cache_version,
                epoch=name_epoch, base_sha=base_header.sha256,
                prev_sha=prev_sha)
        except SnapshotIntegrityError as exc:
            chain.broken = f"{path.name}: {exc.reason}"
            for _, bad in candidates[i:]:
                moved = quarantine(bad, f"delta chain broken: {exc.reason}")
                if moved is not None:
                    chain.quarantined.append(moved)
            break
        chain.deltas.append((name_epoch, ops))
        prev_sha = header.sha256
        next_epoch = name_epoch + 1
    return chain


@dataclass
class StoreReport:
    """Outcome of :func:`verify_store` / :func:`gc_store` over one dir."""

    directory: Path
    ok: list[Path]
    corrupt: list[tuple[Path, str]]
    quarantined: list[Path]
    removed: list[Path]

    @property
    def healthy(self) -> bool:
        return not self.corrupt

    def summary(self) -> str:
        return (f"{self.directory}: {len(self.ok)} ok, "
                f"{len(self.corrupt)} corrupt, "
                f"{len(self.quarantined)} quarantined file(s) present, "
                f"{len(self.removed)} removed")


def verify_store(directory: Path, *, cache_version: int | None = None,
                 full: bool = True) -> StoreReport:
    """Check every ``*.snap`` and ``*.delta`` under ``directory``.

    ``full=True`` verifies payload checksums (reads every byte);
    ``full=False`` checks headers only.  Nothing is modified — pair with
    :func:`gc_store` to act on the findings.  Chain linkage between
    deltas and bases is a *liveness* property, not corruption: it is
    judged (and acted on) by :func:`gc_store`, not here.
    """
    directory = Path(directory)
    report = StoreReport(directory, [], [], [], [])
    for path in sorted(directory.glob(f"*{SNAPSHOT_SUFFIX}")):
        try:
            if full:
                read_snapshot(path, cache_version=cache_version)
            else:
                header, _ = read_header(path)
                if (cache_version is not None
                        and header.cache_version != cache_version):
                    raise SnapshotIntegrityError(
                        path, f"cache version skew (file "
                              f"{header.cache_version}, library {cache_version})")
            report.ok.append(path)
        except SnapshotIntegrityError as exc:
            report.corrupt.append((path, exc.reason))
    for path in sorted(directory.glob(f"*{DELTA_SUFFIX}")):
        try:
            if full:
                read_delta(path, cache_version=cache_version)
            else:
                header, _ = read_delta_header(path)
                if (cache_version is not None
                        and header.cache_version != cache_version):
                    raise SnapshotIntegrityError(
                        path, f"cache version skew (file "
                              f"{header.cache_version}, library {cache_version})")
            report.ok.append(path)
        except SnapshotIntegrityError as exc:
            report.corrupt.append((path, exc.reason))
    report.quarantined = sorted(directory.glob(f"*{QUARANTINE_SUFFIX}*"))
    return report


def _orphaned_deltas(directory: Path, ok: list[Path]) -> list[tuple[Path, str]]:
    """Structurally-sound delta records that can never be replayed.

    A delta is orphaned when its base snapshot is gone or unhealthy,
    when its ``base_sha`` names a *different* (republished) base
    payload, or when the verified chain from the base breaks before
    reaching it (missing epoch, ``prev_sha`` mismatch).  Bases are
    never judged here: a healthy base with referenced deltas must
    survive collection no matter what its deltas look like.
    """
    ok_names = {path.name for path in ok}
    base_sha: dict[str, str] = {}
    for path in ok:
        if path.name.endswith(SNAPSHOT_SUFFIX):
            try:
                base_sha[path.name] = read_header(path)[0].sha256
            except SnapshotIntegrityError:  # pragma: no cover - ok implies readable
                pass

    chains: dict[str, list[tuple[int, Path, DeltaHeader]]] = {}
    orphans: list[tuple[Path, str]] = []
    for path in ok:
        if not path.name.endswith(DELTA_SUFFIX):
            continue
        parsed = delta_base_and_epoch(path)
        if parsed is None:
            orphans.append((path, "unparseable delta name"))
            continue
        base_path, epoch = parsed
        if base_path.name not in ok_names or base_path.name not in base_sha:
            orphans.append((path, "base snapshot missing or unhealthy"))
            continue
        try:
            header, _ = read_delta_header(path)
        except SnapshotIntegrityError:  # pragma: no cover - ok implies readable
            continue
        if header.base_sha != base_sha[base_path.name]:
            orphans.append((path, "base republished (base hash mismatch)"))
            continue
        chains.setdefault(base_path.name, []).append((epoch, path, header))

    for base_name, records in chains.items():
        records.sort()
        prev_sha = base_sha[base_name]
        next_epoch: int | None = None
        broken = False
        for epoch, path, header in records:
            if (broken or (next_epoch is not None and epoch != next_epoch)
                    or header.prev_sha != prev_sha):
                orphans.append((path, "chain broken upstream"))
                broken = True
                continue
            prev_sha = header.sha256
            next_epoch = epoch + 1
    return orphans


def gc_store(directory: Path, *, cache_version: int | None = None) -> StoreReport:
    """Garbage-collect one snapshot directory.

    Quarantines corrupt/version-skewed ``*.snap`` and ``*.delta``
    files, deletes all quarantined files and stray ``*.tmp``/legacy
    ``*.pkl`` debris, then deletes orphaned deltas — records whose base
    is missing, republished, or whose chain is broken upstream (see
    :func:`_orphaned_deltas`).  Healthy current-version snapshots are
    untouched; a base is never collected because of its deltas.
    """
    directory = Path(directory)
    report = verify_store(directory, cache_version=cache_version)
    for path, reason in report.corrupt:
        moved = quarantine(path, reason)
        if moved is not None:
            report.quarantined.append(moved)
    removed: list[Path] = []
    debris = (list(report.quarantined)
              + sorted(directory.glob("*.tmp"))
              + sorted(directory.glob("*.pkl")))
    for path, reason in _orphaned_deltas(directory, report.ok):
        obs_warn(f"orphaned delta collected: {path.name} ({reason})")
        debris.append(path)
        report.ok.remove(path)
    for path in debris:
        try:
            path.unlink()
            removed.append(path)
        except OSError:
            pass
    report.removed = removed
    report.quarantined = sorted(directory.glob(f"*{QUARANTINE_SUFFIX}*"))
    metrics_scope("snapshots").counter("gc_removed").inc(len(removed))
    return report
