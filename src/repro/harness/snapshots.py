"""Crash-safe, integrity-verified snapshot persistence.

The build cache used to ``pickle.load`` whatever bytes it found under
``.repro_cache/`` and silently swallow any failure — the exact failure
mode that matters on the paper's platform, where the XScale core must
hand the microengines a *valid* SRAM image every time: a torn write, a
bit flip, or a stale structure from an older code version means
classifying garbage at 7 Gbps.

Every snapshot is now a self-describing file::

    offset 0   MAGIC            8 bytes  b"RPSNAP01"
    offset 8   header length    4 bytes  big-endian uint32
    offset 12  header           JSON (utf-8), see SnapshotHeader
    ...        payload          pickle bytes, exactly header.payload_bytes

The header carries the snapshot format version, the library's
:data:`~repro.harness.cache.CACHE_VERSION`, the kind of object stored, a
params digest, build info (python version, library version, git
describe) and the SHA-256 of the payload.  **Loads verify everything —
magic, lengths, versions, checksum — before a single pickle byte is
interpreted**; any mismatch raises
:class:`~repro.core.errors.SnapshotIntegrityError` and callers
quarantine the file (rename to ``*.corrupt``) and rebuild from source.

Writes are atomic and durable: payload and header are written to a
temp file in the same directory, ``fsync``\\ ed, then ``os.replace``\\ d
over the destination, so a crash mid-write leaves either the old
snapshot or none — never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import platform
import struct
import subprocess
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path

from itertools import count

from ..core.errors import SnapshotIntegrityError
from ..obs import metrics_scope, obs_warn

#: File magic: 8 bytes, includes the binary format generation.
MAGIC = b"RPSNAP01"
#: On-disk snapshot container format version (the header schema).
FORMAT_VERSION = 1
#: Suffix of snapshot files.
SNAPSHOT_SUFFIX = ".snap"
#: Suffix quarantined files are renamed to.
QUARANTINE_SUFFIX = ".corrupt"
#: Sanity cap on the JSON header (a corrupt length field must not make
#: the loader try to slurp gigabytes).
_MAX_HEADER_BYTES = 1 << 20

_LEN = struct.Struct(">I")


@lru_cache(maxsize=1)
def build_info() -> dict[str, str]:
    """Provenance stamped into every snapshot header.

    ``git`` is best-effort (``git describe --always --dirty``): absent
    in tarball installs, but invaluable when a quarantined file needs to
    be traced back to the build that wrote it.
    """
    info = {"python": platform.python_version()}
    try:
        import repro

        info["repro"] = getattr(repro, "__version__", "unknown")
    except Exception:  # pragma: no cover - repro is always importable here
        info["repro"] = "unknown"
    try:
        described = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
        if described.returncode == 0:
            info["git"] = described.stdout.strip()
    except Exception:
        pass
    return info


@dataclass(frozen=True)
class SnapshotHeader:
    """The verified metadata preceding a snapshot payload."""

    format_version: int
    cache_version: int
    kind: str
    digest: str
    build: dict
    payload_bytes: int
    sha256: str


def _pack(header: SnapshotHeader) -> bytes:
    blob = json.dumps(asdict(header), sort_keys=True).encode("utf-8")
    return MAGIC + _LEN.pack(len(blob)) + blob


#: Per-process serial for temp-file names (see :func:`write_snapshot`).
_TMP_SERIAL = count()


def write_snapshot(path: Path, obj: object, *, kind: str,
                   cache_version: int, digest: str = "") -> SnapshotHeader:
    """Atomically persist ``obj`` as a verified snapshot at ``path``.

    The temp file lives in the destination directory so ``os.replace``
    is a same-filesystem atomic rename; both the file and (best-effort)
    the directory are fsynced before the rename becomes visible.  The
    temp name embeds the writer's pid and a per-process serial: the
    fabric's supervisor and worker processes may republish the same
    shard snapshot concurrently, and two writers sharing one ``.tmp``
    path would interleave into a torn file.  (The ``.tmp`` suffix is
    load-bearing — :func:`gc_store` sweeps the debris by that glob.)
    """
    path = Path(path)
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = SnapshotHeader(
        format_version=FORMAT_VERSION,
        cache_version=cache_version,
        kind=kind,
        digest=digest,
        build=build_info(),
        payload_bytes=len(payload),
        sha256=hashlib.sha256(payload).hexdigest(),
    )
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_SERIAL)}.tmp")
    try:
        with tmp.open("wb") as fh:
            fh.write(_pack(header))
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        try:  # directory durability is best-effort (not all FS support it)
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
    finally:
        tmp.unlink(missing_ok=True)
    metrics_scope("snapshots").counter("writes").inc()
    return header


def read_header(path: Path) -> tuple[SnapshotHeader, int]:
    """Parse and sanity-check a snapshot's header (no payload read).

    Returns the header and the payload's byte offset.  Raises
    :class:`SnapshotIntegrityError` on any structural problem.
    """
    path = Path(path)
    try:
        with path.open("rb") as fh:
            magic = fh.read(len(MAGIC))
            if len(magic) < len(MAGIC):
                raise SnapshotIntegrityError(path, "truncated magic")
            if magic != MAGIC:
                raise SnapshotIntegrityError(path, "bad magic")
            raw_len = fh.read(_LEN.size)
            if len(raw_len) < _LEN.size:
                raise SnapshotIntegrityError(path, "truncated header length")
            (header_len,) = _LEN.unpack(raw_len)
            if header_len > _MAX_HEADER_BYTES:
                raise SnapshotIntegrityError(
                    path, f"implausible header length {header_len}")
            blob = fh.read(header_len)
            if len(blob) < header_len:
                raise SnapshotIntegrityError(path, "truncated header")
    except OSError as exc:
        raise SnapshotIntegrityError(path, f"unreadable: {exc}") from exc
    try:
        fields = json.loads(blob.decode("utf-8"))
        header = SnapshotHeader(**fields)
    except (ValueError, TypeError) as exc:
        raise SnapshotIntegrityError(path, f"undecodable header: {exc}") from exc
    if header.format_version != FORMAT_VERSION:
        raise SnapshotIntegrityError(
            path, f"format version skew (file {header.format_version}, "
                  f"library {FORMAT_VERSION})")
    if not isinstance(header.payload_bytes, int) or header.payload_bytes < 0:
        raise SnapshotIntegrityError(path, "invalid payload length")
    return header, len(MAGIC) + _LEN.size + header_len


def read_snapshot(path: Path, *, kind: str | None = None,
                  cache_version: int | None = None,
                  digest: str | None = None) -> object:
    """Verify and load one snapshot; the only unpickle point.

    Verification order: container structure (magic, lengths, format
    version), then expectations (``cache_version`` skew, ``kind``,
    ``digest``), then the payload SHA-256.  ``pickle.loads`` runs only
    after every check passes — a file failing *any* of them never
    reaches the unpickler.
    """
    path = Path(path)
    header, offset = read_header(path)
    if cache_version is not None and header.cache_version != cache_version:
        raise SnapshotIntegrityError(
            path, f"cache version skew (file {header.cache_version}, "
                  f"library {cache_version})")
    if kind is not None and header.kind != kind:
        raise SnapshotIntegrityError(
            path, f"kind mismatch (file {header.kind!r}, wanted {kind!r})")
    if digest is not None and header.digest != digest:
        raise SnapshotIntegrityError(
            path, f"params digest mismatch (file {header.digest!r}, "
                  f"wanted {digest!r})")
    try:
        with path.open("rb") as fh:
            fh.seek(offset)
            payload = fh.read(header.payload_bytes + 1)
    except OSError as exc:
        raise SnapshotIntegrityError(path, f"unreadable: {exc}") from exc
    if len(payload) < header.payload_bytes:
        raise SnapshotIntegrityError(path, "truncated payload")
    if len(payload) > header.payload_bytes:
        raise SnapshotIntegrityError(path, "trailing bytes after payload")
    if hashlib.sha256(payload).hexdigest() != header.sha256:
        raise SnapshotIntegrityError(path, "payload checksum mismatch")
    try:
        value = pickle.loads(payload)
    except Exception as exc:
        # Checksummed bytes that still fail to unpickle mean the writer's
        # object graph no longer matches the code (e.g. a renamed class).
        raise SnapshotIntegrityError(path, f"unpickle failed: {exc}") from exc
    metrics_scope("snapshots").counter("loads").inc()
    return value


def quarantine(path: Path, reason: str = "corrupt") -> Path | None:
    """Move a failed snapshot aside as ``*.corrupt`` for post-mortems.

    Never raises: quarantine runs on the failure path, where a second
    error must not mask the first.  Returns the new path, or ``None``
    when the rename itself failed.
    """
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    serial = 0
    while target.exists():
        serial += 1
        target = path.with_name(f"{path.name}{QUARANTINE_SUFFIX}.{serial}")
    try:
        os.replace(path, target)
    except OSError:
        return None
    scope = metrics_scope("snapshots")
    scope.counter("quarantined").inc()
    obs_warn(f"snapshot quarantined: {path} -> {target.name} ({reason})")
    return target


@dataclass
class StoreReport:
    """Outcome of :func:`verify_store` / :func:`gc_store` over one dir."""

    directory: Path
    ok: list[Path]
    corrupt: list[tuple[Path, str]]
    quarantined: list[Path]
    removed: list[Path]

    @property
    def healthy(self) -> bool:
        return not self.corrupt

    def summary(self) -> str:
        return (f"{self.directory}: {len(self.ok)} ok, "
                f"{len(self.corrupt)} corrupt, "
                f"{len(self.quarantined)} quarantined file(s) present, "
                f"{len(self.removed)} removed")


def verify_store(directory: Path, *, cache_version: int | None = None,
                 full: bool = True) -> StoreReport:
    """Check every ``*.snap`` under ``directory``.

    ``full=True`` verifies payload checksums (reads every byte);
    ``full=False`` checks headers only.  Nothing is modified — pair with
    :func:`gc_store` to act on the findings.
    """
    directory = Path(directory)
    report = StoreReport(directory, [], [], [], [])
    for path in sorted(directory.glob(f"*{SNAPSHOT_SUFFIX}")):
        try:
            if full:
                read_snapshot(path, cache_version=cache_version)
            else:
                header, _ = read_header(path)
                if (cache_version is not None
                        and header.cache_version != cache_version):
                    raise SnapshotIntegrityError(
                        path, f"cache version skew (file "
                              f"{header.cache_version}, library {cache_version})")
            report.ok.append(path)
        except SnapshotIntegrityError as exc:
            report.corrupt.append((path, exc.reason))
    report.quarantined = sorted(directory.glob(f"*{QUARANTINE_SUFFIX}*"))
    return report


def gc_store(directory: Path, *, cache_version: int | None = None) -> StoreReport:
    """Garbage-collect one snapshot directory.

    Quarantines corrupt/version-skewed ``*.snap`` files, then deletes
    all quarantined files and stray ``*.tmp``/legacy ``*.pkl`` debris.
    Healthy current-version snapshots are untouched.
    """
    directory = Path(directory)
    report = verify_store(directory, cache_version=cache_version)
    for path, reason in report.corrupt:
        moved = quarantine(path, reason)
        if moved is not None:
            report.quarantined.append(moved)
    removed: list[Path] = []
    debris = (list(report.quarantined)
              + sorted(directory.glob("*.tmp"))
              + sorted(directory.glob("*.pkl")))
    for path in debris:
        try:
            path.unlink()
            removed.append(path)
        except OSError:
            pass
    report.removed = removed
    report.quarantined = sorted(directory.glob(f"*{QUARANTINE_SUFFIX}*"))
    metrics_scope("snapshots").counter("gc_removed").inc(len(removed))
    return report
