"""Adversarial-soak — graceful degradation under traffic that fights back.

Not a paper figure: this experiment drives a
:class:`~repro.serve.service.ClassificationService` (two
``UpdatableClassifier(ExpCuts)`` replicas behind a
:class:`~repro.serve.guard.FloodGuard`) through the four scenarios of
:mod:`repro.traffic.scenarios`, one phase each:

* **mixed** — the no-adversary baseline: stateful flow mixes (bulk /
  multimedia / interactive), handshake abandons and checksum noise, but
  nothing hostile.  Its legitimate-flow goodput is the yardstick every
  attack phase is measured against.
* **syn-flood** — spoofed-source handshake openers at 8x the legitimate
  arrival rate.  The guard's half-open budget engages SYN
  authentication: first SYNs of unknown connections are shed and only
  retransmitted (proven) SYNs admitted.  Spoofed sources never
  retransmit, so the flood sheds at the front door while real clients
  pay one extra round trip.
* **cache-bust** — an ACK-scan whose every packet is a distinct
  5-tuple, the pessimal input for the exact-match flow cache.  The
  phase quantifies the collapse *per traffic class*: the scan's own
  hit rate pins to zero while the legitimate classes keep their
  locality — visible only because the cache attributes hits and misses
  by class.
* **worst-case** — replayed headers mined from ``DecisionTrace`` output
  to saturate the classifier's tree depth (an algorithmic-complexity
  attack).  The oracle audit must stay clean even on the nastiest
  inputs, and the mined depth amplification is reported.

All time is simulated (:class:`~repro.serve.ManualClock`, seeded
arrivals from :func:`repro.traffic.scenario_arrivals`), so the run
reproduces bit-for-bit.  Acceptance, checked loudly:

* **zero oracle divergences** in every phase — adversarial traffic must
  never cause a wrong answer, only (bounded) degraded throughput;
* flood-phase **attack shed fraction >= 0.9** — the guard stops the
  flood, not the admission queue behind it;
* flood-phase **legit goodput >= 0.7x** the mixed baseline — shedding
  the attack must not starve the victims;
* scan-phase per-class cache metrics show the **collapse is
  attributable**: the scan class's hit rate sits far below the
  legitimate classes' own locality.

The full run emits ``BENCH_adversarial_soak.json`` with the degradation
quantities in ``metrics`` (rate-compared by
``scripts/check_bench_regression.py``) and the per-phase accounting in
``extra``.
"""

from __future__ import annotations

import time

from ..classifiers import ALGORITHMS
from ..classifiers.updates import UpdatableClassifier
from ..core.errors import AdmissionRejected, ReproError
from ..npsim.flowcache import simulate_class_hit_rates
from ..obs.perf import write_bench_record
from ..obs.trace import DecisionTrace
from ..serve import (
    ClassificationService,
    FloodGuard,
    ManualClock,
    Replica,
    RetryPolicy,
    ServicePolicy,
)
from ..traffic import ATTACK_CLASSES, build_scenario, scenario_arrivals
from ..traffic.scenarios import SCENARIOS
from .cache import get_ruleset
from .experiments import ExperimentResult
from .report import render_table

#: Simulated service time per replica lookup.
PRIMARY_SERVICE_S = 60e-6
STANDBY_SERVICE_S = 90e-6

#: Legitimate arrival rate; adversarial packets arrive this much faster.
BASE_RATE_PER_S = 3_000.0
ATTACK_FACTOR = 8.0

#: Exact-match flow-cache capacity for the per-class hit-rate model.
CACHE_CAPACITY = 256
CACHE_CAPACITY_QUICK = 128

#: Half-open budget for the guard.  Tighter than the library default:
#: the guard admits up to this many unknown SYNs before SYN
#: authentication engages, and that pre-engagement leak must stay well
#: under 10% of even the quick run's flood volume.
HALF_OPEN_BUDGET = 32

#: Phase order: the baseline must run first — attack phases are judged
#: against its goodput.
PHASES = ("mixed", "syn-flood", "cache-bust", "worst-case")

#: Acceptance bar (see module docstring).
MIN_ATTACK_SHED = 0.90
MIN_LEGIT_GOODPUT_RATIO = 0.70
#: The scan's hit rate must sit at least this far below the best
#: legitimate class's for the collapse to count as "attributed".
MIN_CLASS_HIT_GAP = 0.30

POLICY = ServicePolicy(
    max_in_flight=64,
    rate_limit_per_s=8_000.0,
    burst=48,
    default_deadline_s=300e-6,
    retry=RetryPolicy(max_attempts=3, base_s=100e-6, max_backoff_s=2e-3,
                      jitter=0.5, seed=2009),
    breaker_window=32,
    breaker_min_calls=8,
    failure_rate_threshold=0.5,
    slow_call_rate_threshold=0.8,
    slow_call_s=200e-6,
    open_s=50e-3,
    half_open_probes=3,
    shadow=False,
    oracle_check=True,  # the acceptance criterion
)


def _charge_hook(clock: ManualClock, service_s: float):
    """Charge a fixed simulated service time per lookup (no faults —
    the hazard in this soak is the traffic, not the hardware)."""

    def hook(now: float) -> None:
        clock.advance(service_s)

    return hook


def _depth_stats(classifier, strace, sample_every: int = 16) -> dict:
    """Mean/max lookup depth for attack vs legitimate headers.

    The service charges a flat simulated cost per lookup, so the
    worst-case scenario's amplification is measured where it actually
    lives: in the classifier's decision traces.
    """
    stats = {"legit": [0, 0, 0], "attack": [0, 0, 0]}  # n, sum, max
    for idx in range(0, len(strace), max(1, sample_every)):
        pkt = strace.packet(idx)
        trace = DecisionTrace()
        classifier.classify(pkt.header, trace=trace)
        side = "attack" if pkt.klass in ATTACK_CLASSES else "legit"
        stats[side][0] += 1
        stats[side][1] += trace.depth
        stats[side][2] = max(stats[side][2], trace.depth)
    return {
        side: {"sampled": n, "mean_depth": round(total / n, 3) if n else 0.0,
               "max_depth": peak}
        for side, (n, total, peak) in stats.items()
    }


def _run_phase(name: str, ruleset, packets: int, seed: int,
               cache_capacity: int) -> dict:
    """One scenario end-to-end through guard + service, fully simulated."""
    strace = build_scenario(name, ruleset, packets, seed=seed)
    arrivals = scenario_arrivals(strace, base_rate_per_s=BASE_RATE_PER_S,
                                 attack_factor=ATTACK_FACTOR, seed=seed)
    clock = ManualClock()
    expcuts = ALGORITHMS["expcuts"]
    replicas = [
        Replica(rep_name, UpdatableClassifier(ruleset, expcuts,
                                              rebuild_threshold=8),
                fault_hook=_charge_hook(clock, service_s))
        for rep_name, service_s in (("sram0", PRIMARY_SERVICE_S),
                                    ("sram1", STANDBY_SERVICE_S))
    ]
    service = ClassificationService(replicas, policy=POLICY, clock=clock,
                                    sleep=clock.sleep)
    guard = FloodGuard(service.classify, service.metrics.scope("guard"),
                       half_open_budget=HALF_OPEN_BUDGET)

    sides = {side: {"offered": 0, "served": 0, "shed": 0, "error": 0}
             for side in ("legit", "attack")}
    for idx in range(len(strace)):
        if arrivals[idx] > clock.now:
            clock.advance(arrivals[idx] - clock.now)
        pkt = strace.packet(idx)
        side = "attack" if pkt.klass in ATTACK_CLASSES else "legit"
        sides[side]["offered"] += 1
        try:
            guard.submit(pkt.header, kind=pkt.kind,
                         checksum_ok=pkt.checksum_ok, klass=pkt.klass)
        except AdmissionRejected:
            sides[side]["shed"] += 1
        except ReproError:
            sides[side]["error"] += 1
        else:
            sides[side]["served"] += 1
    service.stop(drain=True)
    counters = service.report()["metrics"]["counters"]
    span_s = clock.now

    legit = sides["legit"]
    attack = sides["attack"]
    return {
        "scenario": name,
        "sides": sides,
        "class_counts": strace.class_counts(),
        "divergences": counters.get("serve.oracle.divergences", 0),
        "oracle_checks": counters.get("serve.oracle.checks", 0),
        "guard": guard.report(),
        "guard_shed_reasons": {
            k.removeprefix("guard.shed."): v
            for k, v in sorted(counters.items())
            if k.startswith("guard.shed.")},
        "service_shed_reasons": {
            k.removeprefix("serve.shed."): v
            for k, v in sorted(counters.items())
            if k.startswith("serve.shed.")},
        "sim_span_s": round(span_s, 6),
        "legit_served_fraction": round(
            legit["served"] / max(1, legit["offered"]), 4),
        "attack_shed_fraction": round(
            attack["shed"] / max(1, attack["offered"]), 4)
            if attack["offered"] else 0.0,
        "legit_goodput_kpps": round(
            legit["served"] / span_s / 1e3, 3) if span_s > 0 else 0.0,
        "flow_cache": simulate_class_hit_rates(
            strace.trace, cache_capacity, strace.classes),
        "_strace": strace,
    }


def run_adversarial_soak(quick: bool = False) -> ExperimentResult:
    wall_start = time.time()
    ruleset_name = "FW01" if quick else "CR01"
    packets = 700 if quick else 3_000
    cache_capacity = CACHE_CAPACITY_QUICK if quick else CACHE_CAPACITY
    ruleset = get_ruleset(ruleset_name)

    phases = {name: _run_phase(name, ruleset, packets, seed=13,
                               cache_capacity=cache_capacity)
              for name in PHASES}
    assert set(PHASES) <= set(SCENARIOS), "phase list drifted from catalog"

    # Depth amplification for the mined worst-case headers, measured on
    # a fresh build of the same algorithm the replicas serve.
    classifier = ALGORITHMS["expcuts"].build(ruleset)
    depth = _depth_stats(classifier, phases["worst-case"].pop("_strace"))
    for phase in phases.values():
        phase.pop("_strace", None)

    baseline = phases["mixed"]
    flood = phases["syn-flood"]
    scan = phases["cache-bust"]

    total_divergences = sum(p["divergences"] for p in phases.values())
    attack_shed = flood["attack_shed_fraction"]
    baseline_frac = baseline["legit_served_fraction"]
    goodput_ratio = (flood["legit_served_fraction"] / baseline_frac
                     if baseline_frac else 0.0)

    cache = scan["flow_cache"]
    legit_rates = {k: v["hit_rate"] for k, v in cache.items()
                   if k not in ATTACK_CLASSES and k != "overall"}
    scan_rate = cache.get("scan", {}).get("hit_rate", 0.0)
    best_legit_rate = max(legit_rates.values()) if legit_rates else 0.0
    hit_gap = best_legit_rate - scan_rate

    # -- acceptance criteria (fail loudly, not quietly) --------------------
    if total_divergences:
        raise AssertionError(
            f"adversarial-soak returned {total_divergences} wrong answers "
            f"(oracle divergences); hostile traffic may degrade throughput "
            f"but never correctness")
    if attack_shed < MIN_ATTACK_SHED:
        raise AssertionError(
            f"syn-flood shed only {attack_shed:.1%} of attack traffic "
            f"(floor {MIN_ATTACK_SHED:.0%}); the guard is letting the "
            f"flood through")
    if goodput_ratio < MIN_LEGIT_GOODPUT_RATIO:
        raise AssertionError(
            f"legit goodput under flood fell to {goodput_ratio:.2f}x of "
            f"baseline (floor {MIN_LEGIT_GOODPUT_RATIO:.2f}): shedding the "
            f"attack starved the victims")
    if hit_gap < MIN_CLASS_HIT_GAP:
        raise AssertionError(
            f"scan-phase cache collapse not attributable: best legit class "
            f"hit rate {best_legit_rate:.2f} vs scan {scan_rate:.2f} "
            f"(gap {hit_gap:.2f} < {MIN_CLASS_HIT_GAP:.2f})")

    metrics = {
        "attack_shed_fraction": round(attack_shed, 4),
        "legit_goodput_ratio": round(goodput_ratio, 4),
        "legit_goodput_kpps": flood["legit_goodput_kpps"],
    }
    extra = {
        "ruleset": ruleset_name,
        "packets_per_phase": packets,
        "cache_capacity": cache_capacity,
        "baseline_legit_served_fraction": baseline_frac,
        "flood_legit_served_fraction": flood["legit_served_fraction"],
        "scan_hit_rate": round(scan_rate, 4),
        "best_legit_hit_rate": round(best_legit_rate, 4),
        "class_hit_gap": round(hit_gap, 4),
        "worst_case_depth": depth,
        "phases": phases,
    }

    rows = []
    for name in PHASES:
        p = phases[name]
        legit, attack = p["sides"]["legit"], p["sides"]["attack"]
        rows.append((
            name,
            f"{legit['served']}/{legit['offered']} legit, "
            f"{attack['shed']}/{attack['offered']} attack shed",
            f"cache hit {p['flow_cache']['overall']['hit_rate']:.2f}, "
            f"divergences {p['divergences']}",
        ))
    rows.extend([
        ("attack shed (flood)", f"{attack_shed:.1%}",
         f"floor {MIN_ATTACK_SHED:.0%} — SYN auth at the guard"),
        ("legit goodput ratio", f"{goodput_ratio:.2f}x baseline",
         f"floor {MIN_LEGIT_GOODPUT_RATIO:.2f}"),
        ("cache collapse (scan)",
         f"scan {scan_rate:.2f} vs legit {best_legit_rate:.2f}",
         f"per-class attribution, gap >= {MIN_CLASS_HIT_GAP:.2f}"),
        ("worst-case depth",
         f"attack {depth['attack']['mean_depth']} vs "
         f"legit {depth['legit']['mean_depth']} mean",
         f"max {depth['attack']['max_depth']}"),
        ("oracle divergences", str(total_divergences), "must be 0"),
    ])
    text = render_table(
        f"Adversarial-soak: stateful scenarios vs the serving stack "
        f"({ruleset_name}, {packets} packets/phase, guard + 2 replicas)",
        ["Phase / quantity", "Value", "Note"],
        rows,
    )
    text += ("\nEvery served answer audited against the linear oracle; "
             "attacks degrade throughput only, never correctness.")

    wall = time.time() - wall_start
    if not quick:
        write_bench_record("adversarial_soak", metrics, wall, extra=extra)
    return ExperimentResult(
        "adversarial-soak",
        "Graceful degradation under adversarial traffic scenarios", text,
        {"metrics": metrics, "extra": extra},
    )


#: Registry-compatible alias (the registry falls back to ``run``).
run = run_adversarial_soak
