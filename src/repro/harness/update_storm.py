"""Update-storm — the fabric under sustained rule churn while serving.

Not a paper figure: this soak drives a
:class:`~repro.serve.fabric.Fabric` (three supervised ``ExpCuts`` shard
workers) through a seeded churn sequence
(:func:`~repro.rulesets.generator.churn_sequence`) of **over 1000 rule
updates per simulated second** — inserts, removes, flapping rules,
locality bursts — while bursty traffic keeps flowing.  Every update
batch is one fabric epoch: applied to the parent's kept bases, persisted
as a chained delta record next to each shard's snapshot, and fanned to
the workers over the pipes.  The run layers **update-path faults**
(:class:`~repro.npsim.faults.UpdateFault`) on top of a worker kill:

* **lose / dup / reorder** — one epoch's fan-out message is dropped,
  doubled or delivered after its successor; the worker's in-order apply
  (duplicates drop, gaps buffer) plus the tick-driven anti-entropy pump
  must converge every time;
* **corrupt_delta** — a just-written delta record is bit-flipped, so the
  next warm restart must quarantine the broken chain suffix, serve the
  last intact epoch, and catch up over the pipe;
* **crash_mid_compaction** — the shard's base is republished and the
  worker killed before the superseded deltas are swept; the restart must
  reject the stale records by base-hash mismatch;
* **worker kills** — a SIGKILL while the shard's delta chain is long,
  so the warm restart actually *replays* base + deltas (the acceptance
  criterion checks the replay count).

All reported numbers are simulated time (:class:`~repro.serve.ManualClock`),
so the run reproduces bit-for-bit.

Acceptance criteria (raise, loudly, instead of shipping bad numbers):

* **zero settled-epoch oracle divergences** — every served answer equals
  the linear first match over the rule version its worker had applied
  (a lagging worker is *stale*, never *wrong*);
* sustained update rate **>= 1000 updates per simulated second**;
* p99 **epoch lag** under the staleness SLO (stale answers are visible
  and bounded, not silent);
* at least one restart **replayed deltas**, and the corrupt-delta
  restart survived via quarantine + catch-up;
* after the storm the fabric **drains**: rebuild backlog and epoch lag
  both reach zero.

The full run emits ``BENCH_update_storm.json`` with goodput, update
rate and staleness headroom in ``metrics`` (rate-compared by
``scripts/check_bench_regression.py``) and the churn accounting in
``extra``.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..core.errors import AdmissionRejected, ReproError
from ..core.rule import RuleSet
from ..npsim import FaultPlan, UpdateFault, WorkerFault
from ..obs.metrics import LogHistogram
from ..obs.perf import write_bench_record
from ..obs.slo import SLO, SLOMonitor
from ..obs.span import StageTimer
from ..rulesets.generator import churn_sequence
from ..serve import Fabric, ManualClock, ServicePolicy, SupervisionPolicy
from ..traffic import burst_arrivals
from .cache import cache_dir, get_ruleset, get_trace
from .experiments import ExperimentResult
from .report import render_table

#: Simulated service time per fabric lookup.
LOOKUP_COST_S = 60e-6

#: Update ops per batch and packets between batches.  At the trace's
#: 3000 pps base arrival rate, one 4-op batch per 4 packets sustains
#: ~3000 updates per simulated second — 3x the acceptance floor.
BATCH_OPS = 4
BATCH_EVERY_PACKETS = 4

#: Staleness SLO: served answers may lag the newest epoch by at most
#: this many epochs at p99.
EPOCH_LAG_SLO = 8

#: Fraction of served answers allowed to come from a lagging epoch in
#: any SLO window (fault recovery makes some staleness legitimate).
STALE_RATE_CEILING = 0.5

POLICY = ServicePolicy(
    max_in_flight=64,
    rate_limit_per_s=None,
    breaker_window=16,
    breaker_min_calls=4,
    failure_rate_threshold=0.5,
    open_s=4e-3,
    half_open_probes=2,
    shadow=False,
    oracle_check=True,  # settled-epoch audit: the acceptance criterion
)

SUPERVISION = SupervisionPolicy(
    heartbeat_interval_s=0.02,
    heartbeat_timeout_s=0.5,
    liveness_misses=2,
    reply_timeout_s=10.0,
    ready_timeout_s=120.0,
    restart_backoff_base_s=2e-3,
    restart_backoff_mult=2.0,
    restart_backoff_max_s=0.1,
    warm_restart_cost_s=2e-3,
    cold_restart_cost_s=10e-3,
    crash_loop_window_s=5.0,
    crash_loop_budget=4,
)

SLO_WINDOW_S = 0.25
SLO_WINDOW_QUICK_S = 0.05


def _slos() -> list[SLO]:
    """The storm's acceptance bar as burn-rate SLOs.

    Correctness carries no error budget; staleness and goodput do —
    fault recovery windows legitimately serve lagging answers and shed
    a restarting shard's traffic.
    """
    return [
        SLO("no-divergence", "divergences", 0.0, kind="ceiling"),
        SLO("goodput-floor", "goodput_kpps", 1.0, kind="floor",
            budget_fraction=0.3),
        SLO("staleness-ceiling", "stale_rate", STALE_RATE_CEILING,
            kind="ceiling", budget_fraction=0.3),
        SLO("p99-latency", "latency_us_p99", 500.0, kind="ceiling",
            budget_fraction=0.2),
    ]


def _fault_plan(quick: bool) -> FaultPlan:
    """The seeded fault schedule: update faults keyed by epoch, worker
    kills keyed by packet index.

    The kills land while the victims' delta chains are long (between
    compactions at every 64th epoch), so the warm restarts genuinely
    replay deltas; the shard0 kill lands right after its corrupt-delta
    injection, so that restart must quarantine the broken suffix.
    """
    if quick:
        update_faults = (
            UpdateFault("shard0", "lose_update", 20),
            UpdateFault("shard1", "dup_update", 40),
            UpdateFault("shard2", "reorder_update", 60),
            UpdateFault("shard0", "corrupt_delta", 80),
            UpdateFault("shard1", "crash_mid_compaction", 120),
        )
        worker_faults = (
            WorkerFault("shard0", "kill", 330),
            WorkerFault("shard2", "kill", 570),
        )
    else:
        update_faults = (
            UpdateFault("shard0", "lose_update", 100),
            UpdateFault("shard1", "dup_update", 300),
            UpdateFault("shard2", "reorder_update", 500),
            UpdateFault("shard0", "corrupt_delta", 700),
            UpdateFault("shard1", "crash_mid_compaction", 900),
            UpdateFault("shard2", "lose_update", 1100),
            UpdateFault("shard0", "reorder_update", 1300),
        )
        worker_faults = (
            WorkerFault("shard0", "kill", 2830),
            WorkerFault("shard2", "kill", 4570),
            WorkerFault("shard1", "kill", 5390),
        )
    return FaultPlan(seed=2007, worker_faults=worker_faults,
                     update_faults=update_faults)


def run_update_storm(quick: bool = False) -> ExperimentResult:
    wall_start = time.time()
    ruleset_name = "FW01" if quick else "CR01"
    packets = 800 if quick else 6_000
    ruleset = get_ruleset(ruleset_name)
    trace = get_trace(ruleset_name, count=packets, seed=13)
    arrivals = burst_arrivals(packets, base_rate_per_s=3_000.0,
                              burst_factor=3.0, period_s=0.05,
                              burst_fraction=0.25, seed=13)
    total_updates = (packets // BATCH_EVERY_PACKETS) * BATCH_OPS
    churn = churn_sequence(RuleSet(list(ruleset), name=ruleset_name),
                           total_updates, seed=13,
                           insert_fraction=0.5, flap_rate=0.3, locality=0.6)
    plan = _fault_plan(quick)
    kill_schedule = plan.worker_fault_schedule()
    update_schedule = plan.update_fault_schedule()

    clock = ManualClock()
    timer = StageTimer(clock=clock)
    snapshot_dir = cache_dir() / "fabric_storm"
    fabric = Fabric(list(ruleset), snapshot_dir, num_shards=3,
                    policy=POLICY, supervision=SUPERVISION,
                    algorithm="expcuts", clock=clock, charge=clock.advance,
                    lookup_cost_s=LOOKUP_COST_S, stage_timer=timer,
                    incremental=True, compact_every=64)
    monitor = SLOMonitor(_slos(), window_s=SLO_WINDOW_QUICK_S if quick
                         else SLO_WINDOW_S)
    request_latency = LogHistogram("request_latency_us")
    backlog_track = LogHistogram("rebuild_backlog")
    divergence_counter = fabric.metrics.counter("fabric.oracle.divergences")

    outcomes = {"served": 0, "shed": 0, "error": 0, "stale": 0}
    churn_cursor = 0
    updates_applied = 0
    kills = 0
    try:
        for idx in range(packets):
            if arrivals[idx] > clock.now:
                with timer.span("idle"):
                    clock.advance(arrivals[idx] - clock.now)
            # One epoch of churn between every BATCH_EVERY_PACKETS
            # packets, with that epoch's scheduled faults armed first.
            if idx % BATCH_EVERY_PACKETS == 0 and churn_cursor < len(churn):
                next_epoch = fabric.epoch + 1
                for fault in update_schedule.get(next_epoch, ()):
                    fabric.inject_update_fault(fault.shard, fault.kind)
                batch = churn[churn_cursor:churn_cursor + BATCH_OPS]
                churn_cursor += len(batch)
                with timer.span("update"):
                    fabric.apply_updates(batch)
                updates_applied += len(batch)
            for fault in kill_schedule.get(idx, ()):
                fabric.supervisor.inject_kill(fault.shard)
                fabric.probe(fault.shard, clock.now)
                kills += 1
            fabric.tick(clock.now)
            backlog_track.observe(fabric.rebuild_backlog())
            header = trace.header(idx)
            shard = fabric.specs[fabric.plan.route(header)].name
            t0 = clock.now
            divergences_before = divergence_counter.value
            monitor.count(t0, "offered")
            try:
                fabric.classify(header)
            except AdmissionRejected:
                outcomes["shed"] += 1
                monitor.count(t0, "shed")
            except ReproError:
                outcomes["error"] += 1
                monitor.count(t0, "errors")
            else:
                outcomes["served"] += 1
                monitor.count(t0, "served")
                handle = fabric.supervisor.handles[shard]
                if handle.applied_epoch < fabric.epoch:
                    outcomes["stale"] += 1
                    monitor.count(t0, "stale")
                latency_us = (clock.now - t0) * 1e6
                request_latency.observe(latency_us)
                monitor.observe_latency(t0, latency_us)
            delta = divergence_counter.value - divergences_before
            if delta:
                monitor.count(t0, "divergences", delta)
        storm_span_s = clock.now
        # Quiesce: finish restarts, pump stragglers, then drain the
        # update machinery — compactions absorb backlog, the delta
        # chains reset, every worker converges to the newest epoch.
        for _ in range(1_000):
            if (not fabric.supervisor.any_down()
                    and fabric.max_epoch_lag() == 0):
                break
            with timer.span("idle"):
                clock.advance(5e-3)
            fabric.tick(clock.now)
        drain = fabric.settle(clock.now)
        for _ in range(200):
            if drain["rebuild_backlog"] == 0 and drain["max_epoch_lag"] == 0:
                break
            with timer.span("idle"):
                clock.advance(5e-3)
            fabric.tick(clock.now)
            drain = fabric.settle(clock.now)
        # Post-drain differential sweep: the fabric's answers against a
        # fresh linear oracle over the final rule list, end to end.
        final_oracle = RuleSet(list(fabric.rules), name="final-oracle")
        sweep = min(packets, 200)
        sweep_headers = [trace.header(i) for i in range(sweep)]
        sweep_out = fabric.classify_batch(sweep_headers)
        sweep_mismatch = sum(
            1 for header, out in zip(sweep_headers, sweep_out)
            if out.get("status") == "served"
            and out["rule"] != final_oracle.first_match(header))
        state = fabric.stop(snapshot_path=cache_dir() / "fabric_storm.snap")
    finally:
        fabric.supervisor.stop()

    report = fabric.report()
    counters = state["metrics"]["counters"]

    def c(name: str, default: int = 0):
        return counters.get(f"fabric.{name}", default)

    divergences = c("oracle.divergences")
    replayed = sum(w.get("replayed_deltas", 0)
                   for w in report["supervision"].values())
    lag_hist = fabric.metrics.log_histogram("fabric.epoch_lag")
    lag_p99 = lag_hist.percentile(0.99)
    updates_per_s = updates_applied / storm_span_s if storm_span_s else 0.0

    # -- acceptance criteria (fail loudly, not quietly) --------------------
    if divergences:
        raise AssertionError(
            f"update-storm served {divergences} wrong answers (settled-"
            f"epoch oracle divergences); a churning fabric may serve "
            f"stale answers but never wrong ones")
    if sweep_mismatch:
        raise AssertionError(
            f"{sweep_mismatch} post-drain answers disagree with the "
            f"final rule list; the storm's edits did not converge")
    if updates_per_s < 1000.0:
        raise AssertionError(
            f"sustained only {updates_per_s:.0f} updates/s "
            f"(floor 1000); the storm is not a storm")
    if lag_p99 > EPOCH_LAG_SLO:
        raise AssertionError(
            f"p99 epoch lag {lag_p99:.1f} exceeds the staleness SLO "
            f"({EPOCH_LAG_SLO} epochs); updates are not propagating")
    if c("worker_deaths") < kills:
        raise AssertionError(
            f"only {c('worker_deaths')} worker deaths for {kills} "
            f"injected kills; supervision is missing deaths")
    if replayed < 1:
        raise AssertionError(
            "no restart replayed deltas; the kills landed on empty "
            "chains and the warm-replay path went untested")
    if not c("update_faults.corrupt_delta"):
        raise AssertionError("the corrupt-delta fault was never injected")
    if not c("update_faults.crash_mid_compaction"):
        raise AssertionError(
            "the crash-mid-compaction fault was never injected")
    if drain["rebuild_backlog"] != 0 or drain["max_epoch_lag"] != 0:
        raise AssertionError(
            f"the fabric did not drain: backlog "
            f"{drain['rebuild_backlog']}, lag {drain['max_epoch_lag']}")

    span_s = clock.now
    attribution = timer.check_attribution(span_s)
    slo_report = monitor.check()
    served = outcomes["served"]
    goodput_kpps = served / span_s / 1e3 if span_s > 0 else 0.0
    staleness_headroom = EPOCH_LAG_SLO - lag_p99
    metrics = {
        "goodput_kpps": round(goodput_kpps, 3),
        "updates_per_s": round(updates_per_s, 1),
        "staleness_headroom_epochs": round(staleness_headroom, 3),
    }
    extra = {
        "packets_offered": packets,
        "served": served,
        "shed": outcomes["shed"],
        "errors": outcomes["error"],
        "stale_served": outcomes["stale"],
        "updates_applied": updates_applied,
        "epochs": c("epochs"),
        "worker_kills": kills,
        "worker_deaths": c("worker_deaths"),
        "restarts": c("restarts"),
        "replayed_deltas": replayed,
        "delta_compactions": c("delta_compactions"),
        "update_repairs": c("update_repairs"),
        "stale_recycles": c("stale_recycles"),
        "update_faults": {
            kind: c(f"update_faults.{kind}")
            for kind in ("lose_update", "dup_update", "reorder_update",
                         "corrupt_delta", "crash_mid_compaction")
        },
        "oracle_checks": c("oracle.checks"),
        "oracle_divergences": divergences,
        "oracle_unauditable": c("oracle.unauditable"),
        "sweep_answers": sweep,
        "sweep_mismatches": sweep_mismatch,
        "epoch_lag_p50": round(lag_hist.percentile(0.50), 3),
        "epoch_lag_p99": round(lag_p99, 3),
        "epoch_lag_max": round(lag_hist.max, 3),
        "backlog_p50": round(backlog_track.percentile(0.50), 3),
        "backlog_p99": round(backlog_track.percentile(0.99), 3),
        "backlog_max": round(backlog_track.max, 3),
        "drained_backlog": drain["rebuild_backlog"],
        "drained_lag": drain["max_epoch_lag"],
        "final_rules": len(fabric.rules),
        "request_latency_us_p50": round(request_latency.percentile(0.50), 3),
        "request_latency_us_p99": round(request_latency.percentile(0.99), 3),
        "request_latency_us_max": round(request_latency.max, 3),
        "storm_span_s": round(storm_span_s, 6),
        "sim_span_s": round(span_s, 6),
        "stage_breakdown": {
            name: {"seconds": round(stage["seconds"], 6),
                   "fraction": round(stage["fraction"], 4),
                   "calls": stage["calls"]}
            for name, stage in attribution["stages"].items()
        },
        "stage_coverage": round(attribution["coverage"], 6),
        "slo": {
            name: {"violations": s["violations"],
                   "windows": s["windows_evaluated"],
                   "compliant": s["compliant"]}
            for name, s in slo_report["slos"].items()
        },
        "slo_windows": slo_report["windows"],
    }

    rows = [
        ("offered / served / shed",
         f"{packets} / {served} / {outcomes['shed']}", ""),
        ("updates applied", f"{updates_applied} "
         f"({updates_per_s:.0f}/s)", "floor 1000/s"),
        ("epochs / compactions",
         f"{extra['epochs']} / {extra['delta_compactions']}",
         f"chains capped at 64 deltas"),
        ("epoch lag p50 / p99 / max",
         f"{extra['epoch_lag_p50']:.1f} / {lag_p99:.1f} / "
         f"{lag_hist.max:.0f}",
         f"SLO: p99 <= {EPOCH_LAG_SLO}"),
        ("stale answers", f"{outcomes['stale']}",
         "correct for their epoch, audited as such"),
        ("kills / deaths / delta replays",
         f"{kills} / {extra['worker_deaths']} / {replayed}",
         "warm restarts replay base + chained deltas"),
        ("update faults",
         ", ".join(f"{k.split('_')[0]} x{v}"
                   for k, v in extra["update_faults"].items() if v),
         "lose/dup/reorder + corrupt + mid-compaction crash"),
        ("goodput", f"{goodput_kpps:.1f} kpps",
         f"while churning {updates_per_s:.0f} rules/s"),
        ("drain", f"backlog {drain['rebuild_backlog']}, "
         f"lag {drain['max_epoch_lag']}", "both must reach 0"),
        ("oracle divergences", str(divergences),
         f"settled-epoch audit; post-drain sweep {sweep_mismatch} wrong"),
    ]
    text = render_table(
        f"Update-storm: live churn with epoch-consistent propagation "
        f"({ruleset_name}, 3 shard workers, simulated {span_s:.2f}s)",
        ["Quantity", "Value", "Note"],
        rows,
    )
    text += ("\nEvery served answer audited against the linear oracle at "
             "the epoch its worker had applied; every restart replayed "
             "base + verified delta chain (broken suffixes quarantined).")
    compliant = sum(1 for s in slo_report["slos"].values() if s["compliant"])
    text += (f"\nSLOs: {compliant}/{len(slo_report['slos'])} compliant over "
             f"{slo_report['windows']} windows of "
             f"{monitor.window_s * 1e3:.0f} ms")

    wall = time.time() - wall_start
    if not quick:
        write_bench_record("update_storm", metrics, wall, extra=extra)
    return ExperimentResult(
        "update-storm",
        "Fabric update-storm: live churn under update-path faults", text,
        {"metrics": metrics, "extra": extra, "outcomes": outcomes,
         "fault_plan": plan.to_dict(), "drain": drain,
         "supervision": {name: {"state": s["state"], "starts": s["starts"]}
                         for name, s in report["supervision"].items()}},
    )


#: Registry-compatible alias (the registry falls back to ``run``).
run = run_update_storm
