"""Experiment harness: regenerate every table and figure of the paper."""

from .cache import get_classifier, get_ruleset, get_trace
from .experiments import ExperimentResult, REGISTRY, list_experiments, run_experiment
from .report import render_grouped_series, render_series, render_table

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "get_classifier",
    "get_ruleset",
    "get_trace",
    "list_experiments",
    "render_grouped_series",
    "render_series",
    "render_table",
    "run_experiment",
]
