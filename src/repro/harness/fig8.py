"""Figure 8 — the linear-search effect on throughput.

Two complementary reproductions of the paper's figure (whose x axis is
"number of rules" scanned linearly at a leaf):

* **forced-scan microbenchmark** (the headline series): a HiCuts-shaped
  tree walk followed by exactly N six-word rule reads with compares, the
  whole structure on one SRAM channel — the configuration the paper's
  statement "more than 8 rules → below 3 Gbps" describes;
* **binth sweep**: real HiCuts builds on CR04 with binth ∈ {2..20},
  simulated on recorded traces, reporting the mean rules actually
  scanned.  (binth = 1 is excluded: without HABS-style aggregation the
  tree suffers exactly the "memory burst" §4.2.2 predicts.)
"""

from __future__ import annotations

from ..npsim import simulate_throughput, synthetic_program_set
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_series, render_table

#: Tree-walk prefix of the synthetic program: five internal levels, one
#: header + one pointer word each (measured shape of CR04 HiCuts walks).
TREE_LEVELS = 5
RULE_WORDS = 6
COMPARE_CYCLES = 12

FORCED_N = tuple(range(1, 21))
BINTH_SWEEP = (2, 4, 8, 12, 16, 20)
RULESET = "CR04"


def forced_scan_program(num_rules: int):
    """Tree walk + exactly ``num_rules`` linear-search rule reads."""
    reads = [("tree", level * 2, 1, 5) for level in range(TREE_LEVELS * 2)]
    for idx in range(num_rules):
        reads.append(("tree", 1000 + idx * RULE_WORDS, RULE_WORDS, COMPARE_CYCLES))
    return synthetic_program_set(reads, tail_compute=COMPARE_CYCLES,
                                 name=f"linear{num_rules}", copies=8)


def run_fig8(quick: bool = False) -> ExperimentResult:
    from ..npsim import IXP2850, place
    from ..classifiers.base import MemoryRegion

    forced = FORCED_N[1::4] if quick else FORCED_N
    max_packets = 3_000 if quick else 10_000
    points = []
    data = {"forced": [], "binth": []}
    for n in forced:
        ps = forced_scan_program(n)
        placement = place(
            [MemoryRegion("tree", 4096, 1.0)], list(IXP2850.sram_channels),
            "single_channel",
        )
        res = simulate_throughput(ps, num_threads=71, max_packets=max_packets,
                                  placement=placement)
        points.append((n, res.gbps * 1000))
        data["forced"].append({"rules": n, "mbps": res.gbps * 1000})
    text = render_series(
        "Figure 8: Linear search effect (forced N-rule scan, one channel)",
        "rules", "throughput (Mbps)", points,
    )

    if not quick:
        trace = get_trace(RULESET)
        rows = []
        for binth in BINTH_SWEEP:
            try:
                clf = get_classifier(RULESET, "hicuts", binth=binth)
            except MemoryError:
                # Small binth without HABS-style aggregation is exactly
                # the "memory burst" §4.2.2 predicts; report it as such.
                rows.append((binth, "-", "memory burst", "> cap"))
                data["binth"].append({"binth": binth, "mean_scanned": None,
                                      "mbps": None, "memory_kb": None})
                continue
            res = simulate_throughput(clf, trace, num_threads=71,
                                      max_packets=max_packets)
            scanned = _mean_scanned(clf, trace, samples=200)
            rows.append((binth, f"{scanned:.1f}", f"{res.gbps * 1000:.0f}",
                         f"{clf.memory_bytes() / 1024:.0f}"))
            data["binth"].append({
                "binth": binth, "mean_scanned": scanned,
                "mbps": res.gbps * 1000,
                "memory_kb": clf.memory_bytes() / 1024,
            })
        text += "\n\n" + render_table(
            f"Figure 8 (companion): real HiCuts binth sweep on {RULESET}",
            ["binth", "mean rules scanned", "throughput (Mbps)", "memory (KB)"],
            rows,
        )
    return ExperimentResult("fig8", "Linear search effect", text, data)


def _mean_scanned(clf, trace, samples: int) -> float:
    total = 0
    count = min(samples, len(trace))
    for idx in range(count):
        lookup = clf.access_trace(trace.header(idx))
        total += sum(1 for read in lookup.reads if read.nwords == RULE_WORDS)
    return total / count
