"""Figure 5 — the application mapping, run as a staged simulation.

The paper's Figure 5 is a block diagram of the application on the
IXP2850 (receive -> processing -> scheduling -> transmit over scratch
rings).  Here the mapping *runs*: every stage simulated with its own MEs,
programs and ring back-pressure, reporting end-to-end throughput, the
bottleneck stage, per-stage occupancy, and the processing-ME scaling that
underlies Figure 7's thread sweep.
"""

from __future__ import annotations

from ..npsim.application import build_application
from ..npsim.pipeline import MicroengineAllocation
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_table

RULESET = "CR04"
ME_SWEEP = (1, 3, 5, 7, 9)


def run_fig5(quick: bool = False) -> ExperimentResult:
    ruleset = "CR01" if quick else RULESET
    clf = get_classifier(ruleset, "expcuts")
    trace = get_trace(ruleset)
    max_packets = 3_000 if quick else 8_000
    sweep = ME_SWEEP[::2] if quick else ME_SWEEP

    rows = []
    data = {"ruleset": ruleset, "sweep": []}
    for processing_mes in sweep:
        allocation = MicroengineAllocation(processing=processing_mes)
        sim = build_application(clf, trace, allocation=allocation,
                                trace_limit=300 if quick else 600)
        res = sim.run(max_packets)
        rows.append((
            processing_mes,
            f"{res.gbps(1400.0, trace.packet_bytes) * 1000:.0f}",
            res.bottleneck_stage,
            " / ".join(f"{r.name[:4]}:{r.me_busy_fraction:.0%}"
                       for r in res.stage_reports),
        ))
        data["sweep"].append({
            "processing_mes": processing_mes,
            "mbps": res.gbps(1400.0, trace.packet_bytes) * 1000,
            "bottleneck": res.bottleneck_stage,
            "stage_busy": {r.name: r.me_busy_fraction
                           for r in res.stage_reports},
        })
    text = render_table(
        f"Figure 5 (running): staged application on {ruleset} "
        "(rx 2 ME / sched 3 / tx 2)",
        ["Processing MEs", "Throughput (Mbps)", "Bottleneck",
         "Stage ME busy"],
        rows,
    )
    return ExperimentResult("fig5", "Application mapping simulation", text, data)
