"""Serve-soak — the serving layer under bursty overload and faults.

Not a paper figure: this experiment drives a
:class:`~repro.serve.service.ClassificationService` (two
``UpdatableClassifier(ExpCuts)`` replicas, ``sram0``/``sram1``) with the
full robustness gauntlet at once:

* **bursty traffic** from :func:`repro.traffic.burst_arrivals` whose
  burst peaks overrun the admission token bucket (sheds, by reason);
* a seeded :class:`~repro.npsim.faults.FaultPlan` replayed against the
  replicas (1 simulated cycle ≡ 1 µs of serving time): a latency spike
  makes the primary miss its deadline until the slow-call breaker trips,
  and a channel outage makes it raise transient errors until the
  recovery window ends — both exercising retry, failover and the
  half-open probe cycle;
* **mid-soak updates** (inserts/removes through the service, plus
  periodic :meth:`~repro.serve.service.ClassificationService.poll`
  ticks) so rebuilds happen while traffic flows;
* a per-request **linear-oracle audit** proving every answer actually
  returned was exact — the acceptance criterion is *zero* divergences.

The run is fully simulated time (:class:`~repro.serve.ManualClock`,
seeded jitter, seeded arrivals), so its numbers reproduce bit-for-bit;
the full run emits ``BENCH_serve_soak.json`` with goodput in
``metrics`` (rate-compared by ``scripts/check_bench_regression.py``)
and latency percentiles / shed rates in ``extra`` (recorded, never
rate-compared — lower is better there).
"""

from __future__ import annotations

import time

from ..classifiers import ALGORITHMS
from ..classifiers.updates import UpdatableClassifier
from ..core.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    ReproError,
    TransientServiceError,
)
from ..npsim import ChannelFailure, FaultPlan, LatencySpike
from ..obs.metrics import LogHistogram
from ..obs.perf import write_bench_record
from ..obs.slo import SLO, SLOMonitor
from ..obs.span import StageTimer
from ..serve import (
    ClassificationService,
    FloodGuard,
    ManualClock,
    Replica,
    RetryPolicy,
    ServicePolicy,
)
from ..traffic import build_scenario, burst_arrivals
from .cache import cache_dir, get_ruleset, get_trace
from .experiments import ExperimentResult
from .report import render_table

#: Serving-time convention for FaultPlan replay: 1 cycle ≡ 1 µs.
CYCLE_S = 1e-6

#: Base service time per replica lookup (seconds of simulated time).
PRIMARY_SERVICE_S = 60e-6
STANDBY_SERVICE_S = 90e-6

POLICY = ServicePolicy(
    max_in_flight=64,
    rate_limit_per_s=8_000.0,
    burst=48,
    default_deadline_s=300e-6,
    retry=RetryPolicy(max_attempts=3, base_s=100e-6, max_backoff_s=2e-3,
                      jitter=0.5, seed=2007),
    breaker_window=32,
    breaker_min_calls=8,
    failure_rate_threshold=0.5,
    slow_call_rate_threshold=0.8,
    slow_call_s=200e-6,
    open_s=50e-3,
    half_open_probes=3,
    shadow=False,  # the oracle audit below is the stronger check
    oracle_check=True,
)


#: SLO evaluation window (simulated seconds).  The full soak spans a
#: couple of simulated seconds, so 0.25 s windows give a dozen-odd
#: verdicts; the quick soak is ~10x shorter.
SLO_WINDOW_S = 0.25
SLO_WINDOW_QUICK_S = 0.05


def _slos(shed_ceiling: float = 0.6) -> list[SLO]:
    """The soak's acceptance bar, as burn-rate SLOs per time window.

    Latency objectives judge *request-level* latency (admission to
    answer, retries and backoff included) — the number a client would
    see — so the bounds sit above the per-attempt deadline.  Bursts
    legitimately shed and the fault windows legitimately slow the
    primary, hence the non-zero error budgets everywhere except
    correctness, which tolerates nothing.  ``shed_ceiling`` is raised
    for adversarial scenarios, where shedding the attack volume is the
    *success* condition, not a violation.
    """
    return [
        SLO("no-divergence", "divergences", 0.0, kind="ceiling"),
        SLO("goodput-floor", "goodput_kpps", 1.0, kind="floor",
            budget_fraction=0.25),
        SLO("p99-request-latency", "latency_us_p99",
            2.0 * POLICY.default_deadline_s * 1e6, kind="ceiling",
            budget_fraction=0.2),
        SLO("shed-ceiling", "shed_rate", shed_ceiling, kind="ceiling",
            budget_fraction=0.25),
    ]


def _fault_plan(quick: bool) -> FaultPlan:
    """The soak's seeded hazard schedule (cycles, i.e. µs of serving)."""
    if quick:
        return FaultPlan(
            seed=2007,
            latency_spikes=(LatencySpike("sram0", 30_000.0, 70_000.0, 6.0),),
            channel_failures=(ChannelFailure("sram0", 90_000.0),),
            recovery_cycles=30_000.0,
        )
    return FaultPlan(
        seed=2007,
        latency_spikes=(LatencySpike("sram0", 250_000.0, 450_000.0, 6.0),),
        channel_failures=(ChannelFailure("sram0", 650_000.0),),
        recovery_cycles=150_000.0,
    )


def _replica_hook(clock: ManualClock, plan: FaultPlan, channel: str,
                  base_service_s: float):
    """Replay one channel's faults against a replica.

    Called with the current simulated time before every lookup: inside
    an outage window the lookup fails fast with a retryable error (the
    SRAM image is gone until the control plane re-places it); otherwise
    the hook charges the lookup's service time, stretched by any active
    latency spike.
    """
    outages = [(s * CYCLE_S, e * CYCLE_S) for s, e in plan.outage_windows(channel)]
    spikes = [(s * CYCLE_S, e * CYCLE_S, f)
              for s, e, f in plan.slow_windows(channel)]

    def hook(now: float) -> None:
        for start, end in outages:
            if start <= now < end:
                raise TransientServiceError(
                    f"{channel} offline until t={end * 1e3:.0f}ms "
                    f"(injected channel failure)")
        service_s = base_service_s
        for start, end, factor in spikes:
            if start <= now < end:
                service_s *= factor
        clock.advance(service_s)

    return hook


def run_serve_soak(quick: bool = False,
                   scenario: str | None = None) -> ExperimentResult:
    wall_start = time.time()
    ruleset_name = "FW01" if quick else "CR01"
    packets = 1_200 if quick else 8_000
    ruleset = get_ruleset(ruleset_name)
    # ``scenario`` swaps the sampled stateless trace for a stateful
    # scenario trace (same packet count, same seed) while keeping the
    # burst arrival process identical, so the existing acceptance bar
    # (sheds from bursts, breaker opens from the fault plan) still
    # applies; the BENCH record is only written for the canonical
    # no-scenario full run.
    strace = None
    if scenario is not None:
        strace = build_scenario(scenario, ruleset, packets, seed=7)
        trace = strace.trace
    else:
        trace = get_trace(ruleset_name, count=packets, seed=7)
    arrivals = burst_arrivals(packets, base_rate_per_s=3_000.0,
                              burst_factor=8.0, period_s=0.05,
                              burst_fraction=0.25, seed=7)

    clock = ManualClock()
    plan = _fault_plan(quick)
    expcuts = ALGORITHMS["expcuts"]
    replicas = [
        Replica(name, UpdatableClassifier(ruleset, expcuts,
                                          rebuild_threshold=8),
                fault_hook=_replica_hook(clock, plan, name, service_s))
        for name, service_s in (("sram0", PRIMARY_SERVICE_S),
                                ("sram1", STANDBY_SERVICE_S))
    ]
    timer = StageTimer(clock=clock)
    service = ClassificationService(replicas, policy=POLICY, clock=clock,
                                    sleep=clock.sleep, stage_timer=timer)
    shed_ceiling = 0.6
    if strace is not None and strace.attack_count:
        # An attack scenario's sheds are the defense working; lift the
        # ceiling by the attack's share of offered traffic.
        shed_ceiling = min(0.95, 0.6 + strace.attack_count / len(strace))
    monitor = SLOMonitor(_slos(shed_ceiling),
                         window_s=SLO_WINDOW_QUICK_S if quick
                         else SLO_WINDOW_S)
    #: Request-level latency (admission to answer, retries and backoff
    #: included) — the per-attempt ``serve.latency_us`` histogram can't
    #: see a retried request's full story.
    request_latency = LogHistogram("request_latency_us")
    divergence_counter = service.metrics.counter("serve.oracle.divergences")
    guard = None
    if strace is not None:
        guard = FloodGuard(service.classify, service.metrics.scope("guard"))

    # Churn source: re-insert clones of existing rules and remove them
    # again, so the live rule count oscillates and rebuilds trigger.
    update_every = 120 if quick else 400
    poll_every = 500 if quick else 1_000
    inserted_positions: list[int] = []
    outcomes = {"served": 0, "shed": 0, "deadline": 0, "error": 0}
    for idx in range(packets):
        if arrivals[idx] > clock.now:
            # Waiting for the next arrival is where simulated time not
            # spent serving goes; spanning it keeps the stage sum equal
            # to the end-to-end clock.
            with timer.span("idle"):
                clock.advance(arrivals[idx] - clock.now)
        if idx and idx % update_every == 0:
            if len(inserted_positions) >= 8:
                service.remove(inserted_positions.pop())
            else:
                rule = ruleset[(idx // update_every) % len(ruleset)]
                inserted_positions.append(service.insert(rule))
        if idx and idx % poll_every == 0:
            service.poll()
        header = trace.header(idx)
        t0 = clock.now
        divergences_before = divergence_counter.value
        monitor.count(t0, "offered")
        try:
            if guard is not None:
                pkt = strace.packet(idx)
                guard.submit(pkt.header, kind=pkt.kind,
                             checksum_ok=pkt.checksum_ok, klass=pkt.klass)
            else:
                service.classify(header)
        except AdmissionRejected:
            outcomes["shed"] += 1
            monitor.count(t0, "shed")
        except DeadlineExceeded:
            outcomes["deadline"] += 1
            monitor.count(t0, "errors")
        except ReproError:
            outcomes["error"] += 1
            monitor.count(t0, "errors")
        else:
            outcomes["served"] += 1
            monitor.count(t0, "served")
            latency_us = (clock.now - t0) * 1e6
            request_latency.observe(latency_us)
            monitor.observe_latency(t0, latency_us)
        delta = divergence_counter.value - divergences_before
        if delta:
            monitor.count(t0, "divergences", delta)

    snapshot_path = cache_dir() / "serve_soak_state.snap"
    state = service.stop(drain=True, snapshot_path=snapshot_path)
    report = service.report()
    counters = report["metrics"]["counters"]
    latency = service.metrics.log_histogram("serve.latency_us")

    span_s = clock.now
    # The accounting audit: every simulated microsecond must fall inside
    # exactly one stage span, or this raises with the gap spelled out.
    attribution = timer.check_attribution(span_s)
    slo_report = monitor.check()
    served = outcomes["served"]
    shed = sum(v for k, v in counters.items() if k.startswith("serve.shed."))
    divergences = counters.get("serve.oracle.divergences", 0)
    breaker_opens = sum(report["replicas"][r]["open_count"]
                       for r in report["replicas"])
    transitions = sum(len(report["replicas"][r]["transitions"])
                      for r in report["replicas"])

    # Acceptance criteria — fail the experiment loudly, not quietly.
    if divergences:
        raise AssertionError(
            f"serve-soak returned {divergences} wrong answers "
            f"(oracle divergences); the service must never serve stale "
            f"or incorrect results")
    if not shed:
        raise AssertionError("serve-soak shed nothing; the burst traffic "
                             "no longer overruns admission")
    if not breaker_opens:
        raise AssertionError("serve-soak never opened a breaker; the "
                             "fault plan no longer degrades the primary")

    goodput_kpps = served / span_s / 1e3 if span_s > 0 else 0.0
    metrics = {
        "goodput_kpps": round(goodput_kpps, 3),
        "served_fraction": round(served / packets, 4),
    }
    extra = {
        "packets_offered": packets,
        "served": served,
        "shed": shed,
        "shed_rate": round(shed / packets, 4),
        "shed_reasons": {k.removeprefix("serve.shed."): v
                         for k, v in sorted(counters.items())
                         if k.startswith("serve.shed.")},
        "deadline_exceeded": counters.get("serve.deadline_exceeded", 0),
        "transient_failures": counters.get("serve.transient_failures", 0),
        "retries": counters.get("serve.retries", 0),
        "failovers": counters.get("serve.failovers", 0),
        "latency_us_p50": round(latency.percentile(0.50), 3),
        "latency_us_p99": round(latency.percentile(0.99), 3),
        "latency_us_p999": round(latency.percentile(0.999), 3),
        "latency_us_max": round(latency.max, 3),
        "request_latency_us_p50": round(request_latency.percentile(0.50), 3),
        "request_latency_us_p99": round(request_latency.percentile(0.99), 3),
        "request_latency_us_p999": round(request_latency.percentile(0.999), 3),
        "request_latency_us_max": round(request_latency.max, 3),
        "breaker_opens": breaker_opens,
        "breaker_transitions": transitions,
        "oracle_checks": counters.get("serve.oracle.checks", 0),
        "oracle_divergences": divergences,
        "drained": state["drained"],
        "sim_span_s": round(span_s, 6),
        "stage_breakdown": {
            name: {"seconds": round(stage["seconds"], 6),
                   "fraction": round(stage["fraction"], 4),
                   "calls": stage["calls"]}
            for name, stage in attribution["stages"].items()
        },
        "stage_coverage": round(attribution["coverage"], 6),
        "slo": {
            name: {"violations": s["violations"],
                   "windows": s["windows_evaluated"],
                   "compliant": s["compliant"]}
            for name, s in slo_report["slos"].items()
        },
        "slo_windows": slo_report["windows"],
    }
    if strace is not None:
        extra["scenario"] = strace.scenario
        extra["scenario_class_counts"] = strace.class_counts()
        extra["guard"] = guard.report()
        extra["guard_shed_reasons"] = {
            k.removeprefix("guard.shed."): v
            for k, v in sorted(counters.items())
            if k.startswith("guard.shed.")}

    rows = [
        ("offered / served / shed",
         f"{packets} / {served} / {shed}", ""),
        ("goodput", f"{goodput_kpps:.1f} kpps",
         f"{served / packets * 100:.1f}% of offered"),
        ("attempt latency p50 / p99 / p99.9",
         f"{latency.percentile(0.5):.0f} / {latency.percentile(0.99):.0f} / "
         f"{latency.percentile(0.999):.0f} µs",
         f"deadline {POLICY.default_deadline_s * 1e6:.0f} µs"),
        ("request latency p50 / p99 / p99.9",
         f"{request_latency.percentile(0.5):.0f} / "
         f"{request_latency.percentile(0.99):.0f} / "
         f"{request_latency.percentile(0.999):.0f} µs",
         "retries and backoff included"),
        ("deadline misses", str(extra["deadline_exceeded"]),
         "late answers dropped, never returned"),
        ("retries / failovers",
         f"{extra['retries']} / {extra['failovers']}", ""),
        ("breaker opens / transitions",
         f"{breaker_opens} / {transitions}", "primary spiked then lost"),
        ("oracle divergences", str(divergences), "must be 0"),
    ]
    if guard is not None:
        guard_shed = sum(v for k, v in counters.items()
                         if k.startswith("guard.shed."))
        rows.insert(1, ("guard sheds", str(guard_shed),
                        f"scenario '{strace.scenario}', "
                        f"engaged={guard.engaged}"))
    scenario_tag = "" if strace is None else f", scenario {strace.scenario}"
    text = render_table(
        f"Serve-soak: bursty overload + fault plan ({ruleset_name}, "
        f"2 replicas, simulated {span_s:.2f}s{scenario_tag})",
        ["Quantity", "Value", "Note"],
        rows,
    )
    text += ("\nEvery answer audited against the linear oracle; "
             f"final state snapshot: {snapshot_path.name} "
             f"(drained={state['drained']})")
    text += "\n\n" + render_table(
        f"Stage attribution (simulated time, coverage "
        f"{attribution['coverage'] * 100:.2f}%)",
        ["Stage", "Time", "Share"],
        timer.table_rows(span_s),
    )
    compliant = sum(1 for s in slo_report["slos"].values() if s["compliant"])
    text += (f"\nSLOs: {compliant}/{len(slo_report['slos'])} compliant over "
             f"{slo_report['windows']} windows of "
             f"{monitor.window_s * 1e3:.0f} ms")

    wall = time.time() - wall_start
    if not quick and scenario is None:
        write_bench_record("serve_soak", metrics, wall, extra=extra)
    return ExperimentResult(
        "serve-soak", "Serving-layer soak under overload and faults", text,
        {"metrics": metrics, "extra": extra, "outcomes": outcomes,
         "fault_plan": plan.to_dict(),
         "replicas": {name: {"state": rep["state"],
                             "open_count": rep["open_count"]}
                      for name, rep in report["replicas"].items()}},
    )


#: Registry-compatible alias (the registry falls back to ``run``).
run = run_serve_soak
