"""Table 5 — SRAM channel impacts (throughput vs number of channels).

The paper: 4963 / 5357 / 6483 / 7261 Mbps for 1–4 channels; one channel
cannot carry the 13-level lookup's bandwidth, and the gain flattens as
the bottleneck shifts from channel bandwidth to the ME pipelines.
Channel subsets take the least-utilised channels first (the paper's
single-channel point is consistent with the dedicated, otherwise-idle
channel).
"""

from __future__ import annotations

from ..npsim import simulate_throughput
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_table

RULESET = "CR04"
CHANNEL_SWEEP = (1, 2, 3, 4)


def run_table5(quick: bool = False) -> ExperimentResult:
    ruleset = "CR01" if quick else RULESET
    clf = get_classifier(ruleset, "expcuts")
    trace = get_trace(ruleset)
    max_packets = 3_000 if quick else 10_000
    rows = []
    data = []
    for num in CHANNEL_SWEEP:
        res = simulate_throughput(clf, trace, num_threads=71,
                                  num_channels=num, max_packets=max_packets)
        rows.append((num, f"{res.gbps * 1000:.0f}", res.bounds.binding))
        data.append({"channels": num, "mbps": res.gbps * 1000,
                     "binding": res.bounds.binding})
    text = render_table(
        f"Table 5: SRAM channel impacts ({ruleset}, 71 threads)",
        ["Num. of channels", "Throughput (Mbps)", "Binding resource"],
        rows,
    )
    return ExperimentResult("table5", "SRAM channel impacts", text,
                            {"sweep": data})
