"""Plain-text rendering of experiment tables and series.

Every experiment renders through these helpers so the harness output
reads like the paper's tables/figures: a caption, aligned columns, and
for series an ASCII bar profile that makes the shape (linear speedup,
knees, crossovers) visible in a terminal log.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width table with a caption line."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, xlabel: str, ylabel: str,
                  points: Sequence[tuple[object, float]],
                  width: int = 46) -> str:
    """One-series 'figure': x, y and a bar proportional to y."""
    lines = [title, "=" * len(title)]
    if not points:
        return "\n".join(lines + ["(no data)"])
    ymax = max(y for _, y in points) or 1.0
    xw = max(len(_fmt(x)) for x, _ in points + [(xlabel, 0.0)])
    yw = max(len(f"{y:.2f}") for _, y in points + [(0, 0.0)])
    lines.append(f"{xlabel.ljust(xw)} | {ylabel}")
    for x, y in points:
        bar = "#" * max(1, round(y / ymax * width)) if y > 0 else ""
        lines.append(f"{_fmt(x).ljust(xw)} | {f'{y:.2f}'.rjust(yw)} {bar}")
    return "\n".join(lines)


def render_grouped_series(
    title: str, xlabel: str, ylabel: str,
    groups: dict[str, Sequence[tuple[object, float]]],
    width: int = 40,
) -> str:
    """Several named series over the same x values (Figure 9 style)."""
    lines = [title, "=" * len(title)]
    all_points = [p for series in groups.values() for p in series]
    if not all_points:
        return "\n".join(lines + ["(no data)"])
    ymax = max(y for _, y in all_points) or 1.0
    xs: list[object] = []
    for series in groups.values():
        for x, _ in series:
            if x not in xs:
                xs.append(x)
    xw = max(len(_fmt(x)) for x in xs + [xlabel])
    gw = max(len(g) for g in groups)
    lines.append(f"({ylabel}; bar scale common across series)")
    for x in xs:
        lines.append(f"{_fmt(x).ljust(xw)}")
        for gname, series in groups.items():
            match = [y for sx, y in series if sx == x]
            if not match:
                continue
            y = match[0]
            bar = "#" * max(1, round(y / ymax * width)) if y > 0 else ""
            lines.append(f"  {gname.ljust(gw)} | {y:8.2f} {bar}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
