"""Command-line entry: ``python -m repro.harness <experiment> [--quick]``.

``all`` regenerates every table and figure in paper order.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .experiments import REGISTRY, list_experiments, run_experiment

ORDER = ("table1", "table2", "table3", "table4", "table5",
         "fig5", "fig6", "fig7", "fig8", "fig9")


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: normal exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment id (e.g. fig9), or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="reduced packet counts / sweep density")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write each experiment's data as "
                             "DIR/<experiment>.json")
    profile_group = parser.add_argument_group(
        "profile options", "only honoured by the 'profile' experiment")
    profile_group.add_argument("--algorithms", default=None,
                               help="comma-separated algorithm list "
                                    "(default: expcuts,hicuts)")
    profile_group.add_argument("--ruleset", default=None,
                               help="rule set to profile (default: CR04, "
                                    "CR01 with --quick)")
    profile_group.add_argument("--out", default="results",
                               help="directory for profile reports and "
                                    "Chrome traces (default: results/)")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print("Available experiments:")
        for name, desc in list_experiments():
            print(f"  {name:8s} {desc}")
        return 0

    names = ORDER if args.experiment == "all" else (args.experiment,)
    for name in names:
        if name not in REGISTRY:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        start = time.time()
        if name == "profile" and (args.algorithms or args.ruleset
                                  or args.out != "results"):
            from .profile import DEFAULT_ALGORITHMS, run_profile

            algorithms = (tuple(a.strip() for a in args.algorithms.split(",")
                                if a.strip())
                          if args.algorithms else DEFAULT_ALGORITHMS)
            result = run_profile(quick=args.quick, algorithms=algorithms,
                                 ruleset=args.ruleset, out_dir=args.out)
        else:
            result = run_experiment(name, quick=args.quick)
        print(result.text)
        print(f"[{name} regenerated in {time.time() - start:.1f}s]")
        print()
        if args.json:
            out_dir = Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "experiment": result.experiment,
                "title": result.title,
                "quick": args.quick,
                "data": result.data,
            }
            path = out_dir / f"{name}.json"
            path.write_text(json.dumps(payload, indent=2, default=str))
            print(f"[data written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
