"""Command-line entry: ``python -m repro.harness <experiment> [--quick]``.

``all`` regenerates every table and figure in paper order.
``snapshots verify|gc`` audits/cleans the on-disk build cache.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
import time
from pathlib import Path

from ..core.errors import ReproError
from .experiments import REGISTRY, list_experiments, run_experiment

ORDER = ("table1", "table2", "table3", "table4", "table5",
         "fig5", "fig6", "fig7", "fig8", "fig9")


def _unknown(name: str, choices, what: str) -> str:
    """A friendly unknown-name message with did-you-mean suggestions."""
    hints = difflib.get_close_matches(name, list(choices), n=3, cutoff=0.5)
    msg = f"unknown {what} {name!r}"
    if hints:
        msg += "; did you mean " + " or ".join(repr(h) for h in hints) + "?"
    msg += f"\nvalid {what}s: {', '.join(sorted(choices))}"
    return msg


def _snapshots_main(argv: list[str]) -> int:
    """``repro-harness snapshots verify|gc`` — audit the build cache."""
    parser = argparse.ArgumentParser(
        prog="repro-harness snapshots",
        description="Verify or garbage-collect the on-disk snapshot store.",
    )
    parser.add_argument("action", choices=("verify", "gc"),
                        help="verify: report integrity (exit 1 on corruption);"
                             " gc: quarantine corrupt files and delete debris")
    parser.add_argument("--dir", default=None,
                        help="snapshot directory (default: the build cache)")
    parser.add_argument("--any-version", action="store_true",
                        help="accept snapshots from other CACHE_VERSIONs")
    parser.add_argument("--headers-only", action="store_true",
                        help="verify headers without reading payloads")
    args = parser.parse_args(argv)

    from . import snapshots
    from .cache import CACHE_VERSION, cache_dir

    directory = Path(args.dir) if args.dir else cache_dir()
    version = None if args.any_version else CACHE_VERSION
    if args.action == "verify":
        report = snapshots.verify_store(directory, cache_version=version,
                                        full=not args.headers_only)
    else:
        report = snapshots.gc_store(directory, cache_version=version)
    print(report.summary())
    for path, reason in report.corrupt:
        print(f"  corrupt: {path.name}: {reason}")
    if args.action == "verify":
        return 0 if report.healthy else 1
    return 0


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: normal exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        # Every library failure carries a stable machine-readable code
        # (``repro.core.errors``); surface it instead of a stack trace so
        # scripts can branch on the class of failure.
        print(f"error[{exc.code}]: {exc}", file=sys.stderr)
        return 1


def _main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "snapshots":
        return _snapshots_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment id (e.g. fig9), or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="reduced packet counts / sweep density")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write each experiment's data as "
                             "DIR/<experiment>.json")
    profile_group = parser.add_argument_group(
        "profile options",
        "only honoured by the 'profile' and 'perf-report' experiments")
    profile_group.add_argument("--algorithms", default=None,
                               help="comma-separated algorithm list "
                                    "(default: expcuts,hicuts)")
    profile_group.add_argument("--ruleset", default=None,
                               help="rule set to profile (default: CR04, "
                                    "CR01 with --quick)")
    profile_group.add_argument("--out", default="results",
                               help="directory for profile/perf-report "
                                    "artifacts (default: results/)")
    soak_group = parser.add_argument_group(
        "soak options",
        "only honoured by the 'serve-soak' and 'chaos-soak' experiments")
    soak_group.add_argument("--scenario", default=None,
                            help="traffic scenario to drive the soak with "
                                 "(see repro.traffic.scenarios.SCENARIOS; "
                                 "default: the canonical sampled trace)")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print("Available experiments:")
        for name, desc in list_experiments():
            print(f"  {name:8s} {desc}")
        print("  snapshots verify|gc   audit the on-disk build cache")
        return 0

    names = ORDER if args.experiment == "all" else (args.experiment,)
    for name in names:
        if name not in REGISTRY:
            print(_unknown(name, tuple(REGISTRY) + ("all",), "experiment"),
                  file=sys.stderr)
            return 2
        start = time.time()
        if name == "profile" and (args.algorithms or args.ruleset
                                  or args.out != "results"):
            from ..classifiers import ALGORITHMS
            from ..rulesets import PROFILES
            from .profile import DEFAULT_ALGORITHMS, run_profile

            algorithms = (tuple(a.strip() for a in args.algorithms.split(",")
                                if a.strip())
                          if args.algorithms else DEFAULT_ALGORITHMS)
            for algorithm in algorithms:
                if algorithm not in ALGORITHMS:
                    print(_unknown(algorithm, ALGORITHMS, "algorithm"),
                          file=sys.stderr)
                    return 2
            if args.ruleset is not None and args.ruleset not in PROFILES:
                print(_unknown(args.ruleset, PROFILES, "ruleset"),
                      file=sys.stderr)
                return 2
            result = run_profile(quick=args.quick, algorithms=algorithms,
                                 ruleset=args.ruleset, out_dir=args.out)
        elif name == "perf-report" and args.out != "results":
            from .perf_report import run_perf_report

            result = run_perf_report(quick=args.quick, out_dir=args.out)
        elif args.scenario is not None:
            from ..traffic.scenarios import SCENARIOS

            if name not in ("serve-soak", "chaos-soak"):
                print(f"--scenario is only honoured by serve-soak and "
                      f"chaos-soak, not {name!r}", file=sys.stderr)
                return 2
            if args.scenario not in SCENARIOS:
                print(_unknown(args.scenario, SCENARIOS, "scenario"),
                      file=sys.stderr)
                return 2
            if name == "serve-soak":
                from .serve_soak import run_serve_soak

                result = run_serve_soak(quick=args.quick,
                                        scenario=args.scenario)
            else:
                from .chaos_soak import run_chaos_soak

                result = run_chaos_soak(quick=args.quick,
                                        scenario=args.scenario)
        else:
            result = run_experiment(name, quick=args.quick)
        print(result.text)
        print(f"[{name} regenerated in {time.time() - start:.1f}s]")
        print()
        if args.json:
            out_dir = Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "experiment": result.experiment,
                "title": result.title,
                "quick": args.quick,
                "data": result.data,
            }
            path = out_dir / f"{name}.json"
            path.write_text(json.dumps(payload, indent=2, default=str))
            print(f"[data written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
