"""Experiment registry: one entry per table/figure of the paper.

Each experiment module exposes ``run(quick=False) -> ExperimentResult``;
``quick`` trades packet counts and sweep density for speed (used by the
pytest benchmarks' shape assertions, while the full settings regenerate
the EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """The outcome of one regenerated table/figure."""

    experiment: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


#: experiment id -> (module, description).
REGISTRY: dict[str, tuple[str, str]] = {
    "table1": ("repro.harness.config_tables",
               "Table 1: IXP2850 hardware overview (from the chip model)"),
    "table2": ("repro.harness.table2",
               "Table 2: multiprocessing vs context-pipelining"),
    "table3": ("repro.harness.config_tables",
               "Table 3: microengine allocation of the application"),
    "table4": ("repro.harness.table4",
               "Table 4: SRAM utilisation/headroom and level placement"),
    "table5": ("repro.harness.table5",
               "Table 5: throughput vs number of SRAM channels"),
    "fig5": ("repro.harness.fig5",
             "Figure 5: the application mapping, run as a staged simulation"),
    "fig6": ("repro.harness.fig6",
             "Figure 6: space aggregation effect on SRAM usage"),
    "fig7": ("repro.harness.fig7",
             "Figure 7: ExpCuts relative speedups vs thread count"),
    "fig8": ("repro.harness.fig8",
             "Figure 8: linear search effect on throughput"),
    "fig9": ("repro.harness.fig9",
             "Figure 9: ExpCuts vs HiCuts vs HSM on all rule sets"),
    "resilience": ("repro.harness.resilience",
                   "Resilience: throughput under injected SRAM channel loss"),
    "serve-soak": ("repro.harness.serve_soak",
                   "Serve-soak: the serving layer under bursty overload, "
                   "faults and live updates (writes BENCH_serve_soak.json)"),
    "chaos-soak": ("repro.harness.chaos_soak",
                   "Chaos-soak: the multi-process fabric under worker "
                   "kills, hangs and snapshot corruption "
                   "(writes BENCH_chaos_soak.json)"),
    "adversarial-soak": ("repro.harness.adversarial_soak",
                         "Adversarial-soak: stateful & adversarial traffic "
                         "scenarios vs the guarded serving stack "
                         "(writes BENCH_adversarial_soak.json)"),
    "update-storm": ("repro.harness.update_storm",
                     "Update-storm: the fabric under >=1000 live rule "
                     "updates/s with epoch-consistent propagation and "
                     "update-path faults (writes BENCH_update_storm.json)"),
    "profile": ("repro.harness.profile",
                "Profile: lookup depth/access histograms, hot nodes and "
                "DES timeline export (writes results/profile_*.json)"),
    "perf-report": ("repro.harness.perf_report",
                    "Perf-report: pipeline stage attribution, log-bucketed "
                    "latency histograms and SLO burn rates "
                    "(writes results/perf_report_*.json|.prom and "
                    "BENCH_perf_report.json)"),
}


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        module_name, _ = REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(REGISTRY)}"
        ) from None
    module = importlib.import_module(module_name)
    runner = getattr(module, f"run_{name}", None) or getattr(module, "run")
    return runner(quick=quick)


def list_experiments() -> list[tuple[str, str]]:
    return [(name, desc) for name, (_, desc) in REGISTRY.items()]
