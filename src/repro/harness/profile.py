"""Profile — where do lookups actually spend their memory budget?

Not a paper figure: this experiment drives the observability layer
(:mod:`repro.obs`) end to end and writes machine-readable profile
reports under ``results/``.  For each algorithm it

* traces every lookup of the evaluation trace with a
  :class:`~repro.obs.trace.DecisionTrace`, aggregating depth, access
  and linear-search-length histograms plus the hottest nodes (the
  addresses a cache or scratch placement should pin);
* measures the exact-match flow-cache hit rate on the same traffic
  (the paper's §1 argument about header diversity, quantified);
* runs the DES with a :class:`~repro.obs.timeline.TimelineRecorder`
  attached, exporting the event stream as Chrome-trace JSON
  (``results/profile_<alg>_<ruleset>.trace.json``, viewable in
  chrome://tracing or Perfetto) and per-channel utilization
  timeseries.

The combined report lands in ``results/profile_<ruleset>.json``.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from pathlib import Path

from ..npsim import simulate_hit_rate, simulate_throughput
from ..obs import (
    DecisionTrace,
    MetricsRegistry,
    TimelineRecorder,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
)
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_table

DEFAULT_ALGORITHMS = ("expcuts", "hicuts")
RULESET = "CR04"
#: Exact-match flow-cache sizes swept for the hit-rate column.
CACHE_CAPACITY = 2048
#: Hottest node addresses retained per algorithm in the JSON report.
HOT_NODES = 20
#: Sample decision traces embedded in the report (min/median/max depth).
SAMPLE_TRACES = 3


def _histogram(values: list[int]) -> dict[str, object]:
    """Exact integer histogram plus the usual summary stats."""
    tally = TallyCounter(values)
    total = len(values) or 1
    ordered = sorted(values)
    return {
        "count": len(values),
        "min": ordered[0] if ordered else 0,
        "max": ordered[-1] if ordered else 0,
        "mean": sum(values) / total,
        "p50": ordered[len(ordered) // 2] if ordered else 0,
        "p99": ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]
        if ordered else 0,
        "buckets": {str(k): tally[k] for k in sorted(tally)},
    }


def _profile_algorithm(algorithm: str, ruleset: str, *,
                       max_packets: int, lookup_limit: int | None,
                       out_dir: Path) -> dict:
    """Trace, cache-model and simulate one algorithm; return its report."""
    clf = get_classifier(ruleset, algorithm)
    trace = get_trace(ruleset)
    headers = list(trace.headers())
    if lookup_limit is not None:
        headers = headers[:lookup_limit]

    depths: list[int] = []
    accesses: list[int] = []
    words: list[int] = []
    linear: list[int] = []
    hot: TallyCounter = TallyCounter()
    samples: list[DecisionTrace] = []
    for header in headers:
        dtrace = DecisionTrace()
        result = clf.classify(header, trace=dtrace)
        assert dtrace.result == result
        depths.append(dtrace.depth)
        accesses.append(dtrace.total_accesses)
        words.append(dtrace.total_words)
        linear.append(dtrace.linear_search_length)
        for step in dtrace.steps:
            if step.kind == "node":
                hot[(step.region, step.addr)] += 1
        samples.append(dtrace)

    samples.sort(key=lambda t: t.depth)
    picks = {0, len(samples) // 2, len(samples) - 1}
    sample_dumps = [samples[i].to_dict()
                    for i in sorted(picks)][:SAMPLE_TRACES]

    timeline = TimelineRecorder()
    sim = simulate_throughput(clf, trace, num_threads=71,
                              max_packets=max_packets, timeline=timeline)
    trace_path = out_dir / f"profile_{algorithm}_{ruleset}.trace.json"
    timeline.write_chrome_trace(trace_path)

    report = {
        "algorithm": algorithm,
        "ruleset": ruleset,
        "lookups_traced": len(headers),
        "depth_histogram": _histogram(depths),
        "access_histogram": _histogram(accesses),
        "words_histogram": _histogram(words),
        "linear_search_histogram": _histogram(linear),
        "worst_case_accesses": clf.worst_case_accesses(),
        "hot_nodes": [
            {"region": region, "addr": addr, "visits": visits}
            for (region, addr), visits in hot.most_common(HOT_NODES)
        ],
        "flow_cache": {
            "capacity": CACHE_CAPACITY,
            "hit_rate": simulate_hit_rate(trace, CACHE_CAPACITY),
        },
        "simulated": {
            "gbps": sim.gbps,
            "mpps": sim.mpps,
            "me_busy_fraction": sim.me_busy_fraction,
            "chrome_trace": trace_path.name,
            "channels": [
                {
                    "name": rep.name,
                    "utilization": rep.utilization,
                    "utilization_timeseries": rep.utilization_timeseries,
                }
                for rep in sim.channel_reports
            ],
        },
        "sample_traces": sample_dumps,
    }
    return report


def run_profile(quick: bool = False,
                algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
                ruleset: str | None = None,
                out_dir: str | Path = "results") -> ExperimentResult:
    """Profile ``algorithms`` on ``ruleset`` and write reports to ``out_dir``."""
    if ruleset is None:
        ruleset = "CR01" if quick else RULESET
    max_packets = 2_000 if quick else 8_000
    lookup_limit = 300 if quick else None
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    # Record metrics for the duration of the profile without clobbering a
    # registry the caller may already have enabled.
    had_metrics = metrics_enabled()
    if not had_metrics:
        enable_metrics(MetricsRegistry())
    try:
        reports = [
            _profile_algorithm(alg, ruleset, max_packets=max_packets,
                               lookup_limit=lookup_limit, out_dir=out)
            for alg in algorithms
        ]
    finally:
        if not had_metrics:
            disable_metrics()

    report_path = out / f"profile_{ruleset}.json"
    report_path.write_text(json.dumps(
        {"ruleset": ruleset, "algorithms": reports}, indent=2))

    rows = []
    for rep in reports:
        depth = rep["depth_histogram"]
        acc = rep["access_histogram"]
        lin = rep["linear_search_histogram"]
        busiest = max(rep["simulated"]["channels"],
                      key=lambda ch: ch["utilization"])
        rows.append((
            rep["algorithm"],
            f"{depth['mean']:.1f}/{depth['max']}",
            f"{acc['mean']:.1f}/{acc['max']}",
            f"{lin['mean']:.1f}/{lin['max']}",
            f"{rep['simulated']['gbps']:.2f}",
            f"{busiest['name']} {busiest['utilization']:.0%}",
        ))
    text = render_table(
        f"Lookup profile on {ruleset} "
        f"({reports[0]['lookups_traced']} traced lookups, "
        f"flow-cache hit rate "
        f"{reports[0]['flow_cache']['hit_rate']:.0%} @ {CACHE_CAPACITY})",
        ["Algorithm", "Depth avg/max", "Accesses avg/max",
         "Linear avg/max", "Gbps", "Busiest channel"],
        rows,
    )
    text += f"\n[profile report: {report_path}]"
    for rep in reports:
        text += (f"\n[chrome trace: "
                 f"{out / rep['simulated']['chrome_trace']}]")
    return ExperimentResult(
        "profile", "Lookup and simulator profile", text,
        {"ruleset": ruleset, "report_path": str(report_path),
         "algorithms": reports},
    )
