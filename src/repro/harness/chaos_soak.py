"""Chaos-soak — the multi-process fabric under worker-level chaos.

Not a paper figure: this experiment drives a
:class:`~repro.serve.fabric.Fabric` (three supervised ``ExpCuts`` shard
workers, range-partitioned on source IP) through a seeded schedule of
**process-level faults** while bursty traffic flows:

* **worker kills** — SIGKILL mid-run, detection via pipe EOF, warm
  restart from the shard's content-verified snapshot;
* a **corrupt-snapshot restart** — the published snapshot is bit-flipped
  on disk before the kill, so the restart must quarantine it, rebuild
  cold under the build budget, and the fabric re-publishes a healthy
  image (the *next* restart is warm again);
* a **hang** — the worker stays alive but stops answering; only the
  heartbeat liveness deadline can catch this;
* a **slow start** — the next restart's simulated cost is stretched,
  widening the recovery window the goodput criterion measures.

Every fault is injected at a fixed packet index from the plan's
:meth:`~repro.npsim.faults.FaultPlan.worker_fault_schedule` and is
immediately followed by supervision probes, so *detection* is as
deterministic as injection.  All reported numbers are simulated time
(:class:`~repro.serve.ManualClock`: arrivals, lookup service time,
restart backoff and restart costs), so the run reproduces bit-for-bit;
real wall-clock only bounds pipe waits, where dead workers answer never
and healthy workers answer always.

Acceptance criteria (raise, loudly, instead of shipping bad numbers):

* **zero oracle divergences** — every served answer equals the
  full-ruleset linear first match, audited in-lock;
* every injected death is visible in ``fabric.*`` metrics (worker
  deaths, restarts, heartbeat misses, cold/corrupt restarts, sheds
  with reason ``shard_down``);
* goodput inside recovery windows (≥ 1 shard down) stays within 50% of
  healthy-window goodput — a dead shard sheds its own traffic, it does
  not take the fabric down with it.

The full run emits ``BENCH_chaos_soak.json`` with goodput in
``metrics`` (rate-compared by ``scripts/check_bench_regression.py``)
and the chaos accounting in ``extra``.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..core.errors import AdmissionRejected, ReproError
from ..npsim import FaultPlan, WorkerFault
from ..obs.metrics import LogHistogram
from ..obs.perf import write_bench_record
from ..obs.slo import SLO, SLOMonitor
from ..obs.span import StageTimer
from ..serve import Fabric, FloodGuard, ManualClock, ServicePolicy, SupervisionPolicy
from ..traffic import build_scenario, burst_arrivals
from .cache import cache_dir, get_ruleset, get_trace
from .experiments import ExperimentResult
from .report import render_table

#: Simulated service time per fabric lookup.
LOOKUP_COST_S = 60e-6

POLICY = ServicePolicy(
    max_in_flight=64,
    rate_limit_per_s=None,  # overload is PR 4's soak; chaos is this one's
    breaker_window=16,
    breaker_min_calls=4,
    failure_rate_threshold=0.5,
    open_s=4e-3,
    half_open_probes=2,
    shadow=False,
    oracle_check=True,  # the acceptance criterion
)

SUPERVISION = SupervisionPolicy(
    heartbeat_interval_s=0.02,
    heartbeat_timeout_s=0.5,  # real; a healthy worker answers in ms
    liveness_misses=2,
    reply_timeout_s=10.0,
    ready_timeout_s=120.0,
    restart_backoff_base_s=2e-3,
    restart_backoff_mult=2.0,
    restart_backoff_max_s=0.1,
    warm_restart_cost_s=2e-3,
    cold_restart_cost_s=10e-3,
    crash_loop_window_s=5.0,
    crash_loop_budget=4,
)


#: SLO evaluation window (simulated seconds).
SLO_WINDOW_S = 0.25
SLO_WINDOW_QUICK_S = 0.05


def _slos(shed_ceiling: float = 0.7) -> list[SLO]:
    """The chaos soak's acceptance bar as burn-rate SLOs.

    Recovery windows legitimately shed a downed shard's traffic, so
    the shed-rate ceiling and goodput floor both carry error budget;
    correctness carries none.  ``shed_ceiling`` is raised for
    adversarial scenarios, where shedding attack volume is intended.
    """
    return [
        SLO("no-divergence", "divergences", 0.0, kind="ceiling"),
        SLO("goodput-floor", "goodput_kpps", 1.0, kind="floor",
            budget_fraction=0.3),
        SLO("p99-latency", "latency_us_p99", 500.0, kind="ceiling",
            budget_fraction=0.2),
        SLO("shed-ceiling", "shed_rate", shed_ceiling, kind="ceiling",
            budget_fraction=0.3),
    ]


def _fault_plan(quick: bool) -> FaultPlan:
    """The seeded chaos schedule, keyed by packet index.

    Both modes satisfy the acceptance floor — three kills plus one
    corrupt-snapshot restart — and add a hang (liveness-deadline
    detection) and a slow start (stretched recovery window).
    """
    if quick:
        faults = (
            WorkerFault("shard0", "kill", 100),
            WorkerFault("shard1", "kill", 290),
            WorkerFault("shard2", "corrupt_snapshot", 470),
            WorkerFault("shard0", "hang", 650),
            WorkerFault("shard1", "slow_start", 790, factor=4.0),
            WorkerFault("shard1", "kill", 800),
        )
    else:
        faults = (
            WorkerFault("shard0", "kill", 700),
            WorkerFault("shard1", "kill", 1900),
            WorkerFault("shard2", "corrupt_snapshot", 3100),
            WorkerFault("shard0", "hang", 4300),
            WorkerFault("shard1", "slow_start", 5190, factor=4.0),
            WorkerFault("shard1", "kill", 5200),
            WorkerFault("shard2", "kill", 5600),
        )
    return FaultPlan(seed=2007, worker_faults=faults)


def _corrupt_file(path: Path) -> None:
    """Flip one mid-payload byte: header parses, checksum must not."""
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def _apply_fault(fabric: Fabric, fault: WorkerFault, now: float) -> None:
    """Inject one fault, then force deterministic detection.

    The probes right after injection are the supervision layer doing
    exactly what a heartbeat tick would — pulled forward so discovery
    latency does not depend on where the heartbeat cadence happened to
    fall relative to the injection index.
    """
    if fault.kind == "kill":
        fabric.supervisor.inject_kill(fault.shard)
        fabric.probe(fault.shard, now)
    elif fault.kind == "hang":
        fabric.supervisor.inject_hang(fault.shard)
        # A hung worker eats the probe without answering; the liveness
        # deadline (N consecutive misses) is the only detector.
        for _ in range(SUPERVISION.liveness_misses):
            fabric.probe(fault.shard, now)
    elif fault.kind == "corrupt_snapshot":
        spec = next(s for s in fabric.specs if s.name == fault.shard)
        _corrupt_file(Path(spec.snapshot_path))
        fabric.supervisor.inject_kill(fault.shard)
        fabric.probe(fault.shard, now)
    elif fault.kind == "slow_start":
        fabric.supervisor.arm_slow_start(fault.shard, fault.factor)


def run_chaos_soak(quick: bool = False,
                   scenario: str | None = None) -> ExperimentResult:
    wall_start = time.time()
    ruleset_name = "FW01" if quick else "CR01"
    packets = 900 if quick else 6_000
    ruleset = get_ruleset(ruleset_name)
    # As in serve-soak, ``scenario`` swaps in a stateful scenario trace
    # (same count, same seed, same burst arrivals) in front of the same
    # chaos schedule; the BENCH record stays scenario-free.
    strace = None
    if scenario is not None:
        strace = build_scenario(scenario, ruleset, packets, seed=11)
        trace = strace.trace
    else:
        trace = get_trace(ruleset_name, count=packets, seed=11)
    arrivals = burst_arrivals(packets, base_rate_per_s=3_000.0,
                              burst_factor=3.0, period_s=0.05,
                              burst_fraction=0.25, seed=11)
    plan = _fault_plan(quick)
    schedule = plan.worker_fault_schedule()

    clock = ManualClock()
    timer = StageTimer(clock=clock)
    snapshot_dir = cache_dir() / "fabric_chaos"
    fabric = Fabric(list(ruleset), snapshot_dir, num_shards=3,
                    policy=POLICY, supervision=SUPERVISION,
                    algorithm="expcuts", clock=clock, charge=clock.advance,
                    lookup_cost_s=LOOKUP_COST_S, stage_timer=timer)
    shed_ceiling = 0.7
    if strace is not None and strace.attack_count:
        # Attack sheds are the defense working, not an SLO violation.
        shed_ceiling = min(0.95, 0.7 + strace.attack_count / len(strace))
    monitor = SLOMonitor(_slos(shed_ceiling),
                         window_s=SLO_WINDOW_QUICK_S if quick
                         else SLO_WINDOW_S)
    request_latency = LogHistogram("request_latency_us")
    divergence_counter = fabric.metrics.counter("fabric.oracle.divergences")
    guard = None
    if strace is not None:
        guard = FloodGuard(fabric.classify, fabric.metrics.scope("guard"))

    outcomes = {"served": 0, "shed": 0, "error": 0}
    window = {True: {"offered": 0, "served": 0},    # >= 1 shard down
              False: {"offered": 0, "served": 0}}   # all shards up
    injected = 0
    try:
        for idx in range(packets):
            if arrivals[idx] > clock.now:
                with timer.span("idle"):
                    clock.advance(arrivals[idx] - clock.now)
            for fault in schedule.get(idx, ()):
                _apply_fault(fabric, fault, clock.now)
                injected += 1
            fabric.tick(clock.now)
            in_recovery = fabric.supervisor.any_down()
            window[in_recovery]["offered"] += 1
            t0 = clock.now
            divergences_before = divergence_counter.value
            monitor.count(t0, "offered")
            try:
                if guard is not None:
                    pkt = strace.packet(idx)
                    guard.submit(pkt.header, kind=pkt.kind,
                                 checksum_ok=pkt.checksum_ok,
                                 klass=pkt.klass)
                else:
                    fabric.classify(trace.header(idx))
            except AdmissionRejected:
                outcomes["shed"] += 1
                monitor.count(t0, "shed")
            except ReproError:
                outcomes["error"] += 1
                monitor.count(t0, "errors")
            else:
                outcomes["served"] += 1
                window[in_recovery]["served"] += 1
                monitor.count(t0, "served")
                latency_us = (clock.now - t0) * 1e6
                request_latency.observe(latency_us)
                monitor.observe_latency(t0, latency_us)
            delta = divergence_counter.value - divergences_before
            if delta:
                monitor.count(t0, "divergences", delta)
        # Quiesce: let supervision finish backed-off restarts injected
        # near the end of the trace, so the run's accounting covers
        # every fault's full detect->restart->recover arc.
        for _ in range(1_000):
            if not fabric.supervisor.any_down():
                break
            with timer.span("idle"):
                clock.advance(5e-3)
            fabric.tick(clock.now)
        state = fabric.stop(snapshot_path=cache_dir() / "fabric_state.snap")
    finally:
        # Never leak worker processes, even when acceptance fails.
        fabric.supervisor.stop()

    report = fabric.report()
    counters = state["metrics"]["counters"]

    def c(name: str, default: int = 0):
        return counters.get(f"fabric.{name}", default)

    divergences = c("oracle.divergences")
    deaths = c("worker_deaths")
    restarts = c("restarts")
    kills = sum(1 for f in plan.worker_faults
                if f.kind in ("kill", "corrupt_snapshot"))

    # -- acceptance criteria (fail loudly, not quietly) --------------------
    if divergences:
        raise AssertionError(
            f"chaos-soak served {divergences} wrong answers (oracle "
            f"divergences); a restarting fabric must never serve stale "
            f"or mis-sharded results")
    if deaths < kills:
        raise AssertionError(
            f"only {deaths} worker deaths recorded for {kills} injected "
            f"kills; supervision is missing deaths")
    if restarts < kills:
        raise AssertionError(
            f"only {restarts} restarts for {kills} injected kills; "
            f"workers are staying dead")
    if not c("heartbeat_misses"):
        raise AssertionError("no heartbeat misses recorded; the hang "
                             "injection no longer exercises liveness")
    if not c("corrupt_snapshot_restarts"):
        raise AssertionError("no corrupt-snapshot restart recorded; the "
                             "quarantine-and-rebuild path went untested")
    if not c("shed.shard_down"):
        raise AssertionError("no shard_down sheds; recovery windows were "
                             "invisible to callers, which cannot be right")
    rec, healthy = window[True], window[False]
    healthy_rate = healthy["served"] / max(1, healthy["offered"])
    recovery_rate = rec["served"] / max(1, rec["offered"])
    goodput_ratio = recovery_rate / healthy_rate if healthy_rate else 0.0
    if rec["offered"] and goodput_ratio < 0.5:
        raise AssertionError(
            f"recovery-window goodput collapsed to "
            f"{goodput_ratio:.2f}x of healthy (floor 0.5): a dead shard "
            f"must shed its own traffic only")

    span_s = clock.now
    attribution = timer.check_attribution(span_s)
    slo_report = monitor.check()
    attempt_latency = fabric.metrics.log_histogram("fabric.latency_us")
    served = outcomes["served"]
    goodput_kpps = served / span_s / 1e3 if span_s > 0 else 0.0
    metrics = {
        "goodput_kpps": round(goodput_kpps, 3),
        "served_fraction": round(served / packets, 4),
        "recovery_goodput_ratio": round(goodput_ratio, 4),
    }
    extra = {
        "packets_offered": packets,
        "served": served,
        "shed": outcomes["shed"],
        "errors": outcomes["error"],
        "faults_injected": injected,
        "worker_deaths": deaths,
        "deaths_by_cause": {k.removeprefix("fabric.deaths."): v
                            for k, v in sorted(counters.items())
                            if k.startswith("fabric.deaths.")},
        "restarts": restarts,
        "warm_restarts": c("warm_restarts"),
        "cold_restarts": c("cold_restarts"),
        "corrupt_snapshot_restarts": c("corrupt_snapshot_restarts"),
        "snapshot_reseeds": c("snapshot_reseeds"),
        "heartbeat_misses": c("heartbeat_misses"),
        "shed_shard_down": c("shed.shard_down"),
        "breaker_opens": sum(b["open_count"]
                             for b in report["breakers"].values()),
        "oracle_checks": c("oracle.checks"),
        "oracle_divergences": divergences,
        "recovery_offered": rec["offered"],
        "recovery_served": rec["served"],
        "healthy_rate": round(healthy_rate, 4),
        "recovery_rate": round(recovery_rate, 4),
        "replication_factor": round(
            report["plan"]["replication_factor"], 4),
        "drained": state["drained"],
        "sim_span_s": round(span_s, 6),
        "outages": len(report["outages"]),
        "latency_us_p50": round(attempt_latency.percentile(0.50), 3),
        "latency_us_p99": round(attempt_latency.percentile(0.99), 3),
        "latency_us_p999": round(attempt_latency.percentile(0.999), 3),
        "latency_us_max": round(attempt_latency.max, 3),
        "request_latency_us_p50": round(request_latency.percentile(0.50), 3),
        "request_latency_us_p99": round(request_latency.percentile(0.99), 3),
        "request_latency_us_p999": round(request_latency.percentile(0.999), 3),
        "request_latency_us_max": round(request_latency.max, 3),
        "stage_breakdown": {
            name: {"seconds": round(stage["seconds"], 6),
                   "fraction": round(stage["fraction"], 4),
                   "calls": stage["calls"]}
            for name, stage in attribution["stages"].items()
        },
        "stage_coverage": round(attribution["coverage"], 6),
        "slo": {
            name: {"violations": s["violations"],
                   "windows": s["windows_evaluated"],
                   "compliant": s["compliant"]}
            for name, s in slo_report["slos"].items()
        },
        "slo_windows": slo_report["windows"],
    }
    if strace is not None:
        extra["scenario"] = strace.scenario
        extra["scenario_class_counts"] = strace.class_counts()
        extra["guard"] = guard.report()
        extra["guard_shed_reasons"] = {
            k.removeprefix("guard.shed."): v
            for k, v in sorted(counters.items())
            if k.startswith("guard.shed.")}

    rows = [
        ("offered / served / shed",
         f"{packets} / {served} / {outcomes['shed']}", ""),
        ("faults injected", str(injected),
         "kills + corrupt snapshot + hang + slow start"),
        ("worker deaths / restarts", f"{deaths} / {restarts}",
         f"warm {extra['warm_restarts']}, cold {extra['cold_restarts']}"),
        ("corrupt-snapshot restarts",
         str(extra["corrupt_snapshot_restarts"]),
         f"quarantined, rebuilt, reseeded x{extra['snapshot_reseeds']}"),
        ("heartbeat misses", str(extra["heartbeat_misses"]),
         "hang caught by the liveness deadline"),
        ("goodput", f"{goodput_kpps:.1f} kpps",
         f"recovery/healthy ratio {goodput_ratio:.2f} (floor 0.50)"),
        ("request latency p50 / p99 / p99.9",
         f"{request_latency.percentile(0.5):.0f} / "
         f"{request_latency.percentile(0.99):.0f} / "
         f"{request_latency.percentile(0.999):.0f} µs",
         "shard pipe + simulated lookup cost"),
        ("oracle divergences", str(divergences), "must be 0"),
    ]
    if guard is not None:
        guard_shed = sum(v for k, v in counters.items()
                         if k.startswith("guard.shed."))
        rows.insert(1, ("guard sheds", str(guard_shed),
                        f"scenario '{strace.scenario}', "
                        f"engaged={guard.engaged}"))
    scenario_tag = "" if strace is None else f", scenario {strace.scenario}"
    text = render_table(
        f"Chaos-soak: worker kills, hangs and snapshot corruption "
        f"({ruleset_name}, 3 shard workers, simulated {span_s:.2f}s{scenario_tag})",
        ["Quantity", "Value", "Note"],
        rows,
    )
    text += ("\nEvery served answer audited in-lock against the "
             "full-ruleset linear oracle; every death restarted warm "
             "from a verified snapshot (cold only after the injected "
             "corruption, then reseeded).")
    text += "\n\n" + render_table(
        f"Stage attribution (simulated time, coverage "
        f"{attribution['coverage'] * 100:.2f}%)",
        ["Stage", "Time", "Share"],
        timer.table_rows(span_s),
    )
    compliant = sum(1 for s in slo_report["slos"].values() if s["compliant"])
    text += (f"\nSLOs: {compliant}/{len(slo_report['slos'])} compliant over "
             f"{slo_report['windows']} windows of "
             f"{monitor.window_s * 1e3:.0f} ms")

    wall = time.time() - wall_start
    if not quick and scenario is None:
        write_bench_record("chaos_soak", metrics, wall, extra=extra)
    return ExperimentResult(
        "chaos-soak", "Fabric chaos-soak under process-level faults", text,
        {"metrics": metrics, "extra": extra, "outcomes": outcomes,
         "fault_plan": plan.to_dict(),
         "supervision": {name: {"state": s["state"], "starts": s["starts"]}
                         for name, s in report["supervision"].items()}},
    )


#: Registry-compatible alias (the registry falls back to ``run``).
run = run_chaos_soak
