"""``python -m repro.harness`` entry point."""

from .cli import main

raise SystemExit(main())
