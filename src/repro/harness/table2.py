"""Table 2 — multiprocessing vs context-pipelining.

The paper's Table 2 is qualitative; we reproduce the qualitative rows
*and* quantify the trade-off the simulator exposes: the same packet work
partitioned as context-pipelining pays a ring hand-off plus per-stage
state reloads per packet, so at a fixed ME budget the multiprocessing
mapping sustains higher throughput (which is why the paper's application
uses it on the processing path).
"""

from __future__ import annotations

from ..npsim import mapping_tradeoffs, simulate_throughput
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_table

RULESET = "CR04"


def run_table2(quick: bool = False) -> ExperimentResult:
    ruleset = "CR01" if quick else RULESET
    clf = get_classifier(ruleset, "expcuts")
    trace = get_trace(ruleset)
    max_packets = 3_000 if quick else 10_000
    rows = []
    data = {}
    for mapping in ("multiprocessing", "context_pipelining"):
        res = simulate_throughput(clf, trace, num_threads=71,
                                  max_packets=max_packets, mapping=mapping)
        rows.append((mapping, f"{res.gbps * 1000:.0f}",
                     f"{res.me_busy_fraction:.2f}", res.bounds.binding))
        data[mapping] = res.gbps * 1000
    text = render_table(
        f"Table 2 (quantified): task partitioning on {ruleset}, 71 threads",
        ["Mapping", "Throughput (Mbps)", "ME busy", "Binding resource"],
        rows,
    )
    qualitative = mapping_tradeoffs()
    lines = [text, "", "Qualitative trade-offs (paper Table 2):"]
    for mapping, sides in qualitative.items():
        lines.append(f"  {mapping}:")
        for adv in sides["advantages"]:
            lines.append(f"    + {adv}")
        for dis in sides["disadvantages"]:
            lines.append(f"    - {dis}")
    return ExperimentResult("table2", "Task partitioning", "\n".join(lines),
                            {"throughput": data, "qualitative": qualitative})
