"""Perf-report — one instrumented serving run rolled up into artifacts.

Not a paper figure: this experiment replays the serve-soak's traffic
and fault schedule through a fully instrumented
:class:`~repro.serve.service.ClassificationService` and turns the run
into the repository's performance-observability artifacts:

* a **stage-attribution table** — where every simulated microsecond
  went (idle, admission, classify, backoff, audit, drain), audited so
  the stage sum matches the end-to-end clock within 1%;
* **log-bucketed latency histograms** (per-attempt and request-level,
  retries and backoff included), exported both as JSON and in the
  Prometheus text exposition format;
* an **SLO burn-rate report** with the per-window metric timeseries
  the windows were judged on.

Everything runs on a :class:`~repro.serve.ManualClock` with seeded
arrivals, jitter and faults, so the artifacts are bit-reproducible:
``results/perf_report_<ruleset>.json`` and ``.prom`` contain no wall
times, hostnames or dates.  The full run also writes
``BENCH_perf_report.json`` (goodput in ``metrics``, the breakdown in
``extra``) so the committed perf trajectory picks the report up;
``scripts/bench_trend.py`` renders that history.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from ..classifiers import ALGORITHMS
from ..classifiers.updates import UpdatableClassifier
from ..core.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    ReproError,
)
from ..obs.export import write_prometheus
from ..obs.perf import write_bench_record
from ..obs.slo import SLOMonitor
from ..obs.span import StageTimer
from ..serve import ClassificationService, ManualClock, Replica
from ..traffic import burst_arrivals
from .cache import get_ruleset, get_trace
from .experiments import ExperimentResult
from .report import render_table
from .serve_soak import (
    POLICY,
    PRIMARY_SERVICE_S,
    SLO_WINDOW_QUICK_S,
    SLO_WINDOW_S,
    STANDBY_SERVICE_S,
    _fault_plan,
    _replica_hook,
    _slos,
)


def _json_safe(obj):
    """Replace non-finite floats (an SLO's infinite burn rate) with
    ``None`` so the artifact stays strict JSON."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


def run_perf_report(quick: bool = False,
                    out_dir: str | Path = "results") -> ExperimentResult:
    wall_start = time.time()
    ruleset_name = "FW01" if quick else "CR01"
    packets = 1_200 if quick else 8_000
    ruleset = get_ruleset(ruleset_name)
    trace = get_trace(ruleset_name, count=packets, seed=7)
    arrivals = burst_arrivals(packets, base_rate_per_s=3_000.0,
                              burst_factor=8.0, period_s=0.05,
                              burst_fraction=0.25, seed=7)

    clock = ManualClock()
    timer = StageTimer(clock=clock)
    plan = _fault_plan(quick)
    expcuts = ALGORITHMS["expcuts"]
    replicas = [
        Replica(name, UpdatableClassifier(ruleset, expcuts,
                                          rebuild_threshold=8),
                fault_hook=_replica_hook(clock, plan, name, service_s))
        for name, service_s in (("sram0", PRIMARY_SERVICE_S),
                                ("sram1", STANDBY_SERVICE_S))
    ]
    service = ClassificationService(replicas, policy=POLICY, clock=clock,
                                    sleep=clock.sleep, stage_timer=timer)
    monitor = SLOMonitor(_slos(),
                         window_s=SLO_WINDOW_QUICK_S if quick
                         else SLO_WINDOW_S)
    # Driver-side instruments live in the service's registry so one
    # export captures the whole story (they get the ``driver.`` scope).
    request_latency = service.metrics.log_histogram(
        "driver.request_latency_us")
    divergence_counter = service.metrics.counter("serve.oracle.divergences")

    outcomes = {"served": 0, "shed": 0, "deadline": 0, "error": 0}
    for idx in range(packets):
        if arrivals[idx] > clock.now:
            with timer.span("idle"):
                clock.advance(arrivals[idx] - clock.now)
        header = trace.header(idx)
        t0 = clock.now
        divergences_before = divergence_counter.value
        monitor.count(t0, "offered")
        try:
            service.classify(header)
        except AdmissionRejected:
            outcomes["shed"] += 1
            monitor.count(t0, "shed")
        except DeadlineExceeded:
            outcomes["deadline"] += 1
            monitor.count(t0, "errors")
        except ReproError:
            outcomes["error"] += 1
            monitor.count(t0, "errors")
        else:
            outcomes["served"] += 1
            monitor.count(t0, "served")
            latency_us = (clock.now - t0) * 1e6
            request_latency.observe(latency_us)
            monitor.observe_latency(t0, latency_us)
        delta = divergence_counter.value - divergences_before
        if delta:
            monitor.count(t0, "divergences", delta)
    service.stop(drain=True)

    span_s = clock.now
    attribution = timer.check_attribution(span_s)
    slo_report = monitor.evaluate()
    attempt_latency = service.metrics.log_histogram("serve.latency_us")
    served = outcomes["served"]
    goodput_kpps = served / span_s / 1e3 if span_s > 0 else 0.0

    # -- artifacts ---------------------------------------------------------
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    report_payload = _json_safe({
        "experiment": "perf-report",
        "ruleset": ruleset_name,
        "quick": quick,
        "packets_offered": packets,
        "outcomes": outcomes,
        "sim_span_s": round(span_s, 9),
        "goodput_kpps": round(goodput_kpps, 3),
        "stage_attribution": attribution,
        "histograms": {
            "attempt_latency_us": attempt_latency.to_dict(),
            "request_latency_us": request_latency.to_dict(),
        },
        "slo": slo_report,
        "counters": dict(sorted(
            service.metrics.snapshot()["counters"].items())),
    })
    json_path = out / f"perf_report_{ruleset_name}.json"
    json_path.write_text(json.dumps(report_payload, indent=2,
                                    sort_keys=True) + "\n")
    prom_path = write_prometheus(service.metrics,
                                 out / f"perf_report_{ruleset_name}.prom")

    metrics = {
        "goodput_kpps": round(goodput_kpps, 3),
        "served_fraction": round(served / packets, 4),
    }
    compliant = sum(1 for s in slo_report["slos"].values() if s["compliant"])
    extra = {
        "packets_offered": packets,
        "served": served,
        "shed": outcomes["shed"],
        "latency_us_p50": round(attempt_latency.percentile(0.50), 3),
        "latency_us_p99": round(attempt_latency.percentile(0.99), 3),
        "latency_us_p999": round(attempt_latency.percentile(0.999), 3),
        "request_latency_us_p50": round(request_latency.percentile(0.50), 3),
        "request_latency_us_p99": round(request_latency.percentile(0.99), 3),
        "request_latency_us_p999": round(request_latency.percentile(0.999),
                                         3),
        "request_latency_us_max": round(request_latency.max, 3),
        "stage_breakdown": {
            name: {"seconds": round(stage["seconds"], 6),
                   "fraction": round(stage["fraction"], 4),
                   "calls": stage["calls"]}
            for name, stage in attribution["stages"].items()
        },
        "stage_coverage": round(attribution["coverage"], 6),
        "slo_compliant": compliant,
        "slo_total": len(slo_report["slos"]),
        "slo_windows": slo_report["windows"],
        "sim_span_s": round(span_s, 6),
    }

    rows = timer.table_rows(span_s)
    text = render_table(
        f"Perf-report: stage attribution ({ruleset_name}, "
        f"simulated {span_s:.2f}s, coverage "
        f"{attribution['coverage'] * 100:.2f}%)",
        ["Stage", "Time", "Share"],
        rows,
    )
    text += "\n" + render_table(
        "Latency (log-bucketed histograms)",
        ["Quantity", "Value", "Note"],
        [
            ("attempt p50 / p99 / p99.9",
             f"{attempt_latency.percentile(0.5):.0f} / "
             f"{attempt_latency.percentile(0.99):.0f} / "
             f"{attempt_latency.percentile(0.999):.0f} µs",
             f"{attempt_latency.total} attempts"),
            ("request p50 / p99 / p99.9",
             f"{request_latency.percentile(0.5):.0f} / "
             f"{request_latency.percentile(0.99):.0f} / "
             f"{request_latency.percentile(0.999):.0f} µs",
             "retries and backoff included"),
            ("request max", f"{request_latency.max:.0f} µs",
             f"exact (not a bucket edge); {served} served"),
        ],
    )
    text += (f"\nSLOs: {compliant}/{len(slo_report['slos'])} compliant over "
             f"{slo_report['windows']} windows of "
             f"{monitor.window_s * 1e3:.0f} ms simulated time"
             f"\nArtifacts: {json_path} (breakdown, histograms, per-window "
             f"timeseries), {prom_path} (Prometheus text exposition)")

    wall = time.time() - wall_start
    if not quick:
        write_bench_record("perf_report", metrics, wall, extra=extra)
    return ExperimentResult(
        "perf-report",
        "Stage attribution, latency histograms and SLO burn rates",
        text,
        {"metrics": metrics, "extra": extra, "outcomes": outcomes,
         "artifacts": [str(json_path), str(prom_path)]},
    )


#: Registry-compatible alias (the registry falls back to ``run``).
run = run_perf_report
