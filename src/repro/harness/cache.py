"""Build cache for classifiers and traces.

Classifier construction dominates harness wall time (tens of seconds for
ExpCuts/HSM on CR04), and every experiment wants the same seven builds.
This module memoises builds in-process and, unless ``REPRO_CACHE=0``,
persists them under ``.repro_cache/`` next to the working directory so
repeated harness/benchmark invocations start hot.

Disk entries are **verified snapshots** (:mod:`repro.harness.snapshots`):
a versioned header plus a SHA-256-checksummed pickle payload, written
atomically.  A load that fails *any* check — bad magic, truncation,
checksum mismatch, version skew — is logged with its path and reason,
counted in the ``snapshots.load_failures`` metric, quarantined as
``*.corrupt``, and falls through to a clean rebuild.  Unverified bytes
never reach the unpickler, and a failure is never silent.

Cache keys include a schema version — bump :data:`CACHE_VERSION` whenever
a change alters built structures, or stale snapshots would silently
shadow new code.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from ..classifiers import ALGORITHMS, PacketClassifier
from ..core.errors import SnapshotIntegrityError
from ..core.rule import RuleSet
from ..obs import metrics_scope, obs_warn
from ..rulesets import paper_ruleset
from ..traffic import Trace, matched_trace
from . import snapshots

CACHE_VERSION = 5

#: Telemetry knobs never change the built structure, so they are stripped
#: before keying — a traced build and a plain build share one cache entry.
_TELEMETRY_PARAMS = frozenset({"trace", "metrics", "telemetry", "timeline"})

_memory_cache: dict[str, object] = {}


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _disk_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def _load(key: str, kind: str):
    if key in _memory_cache:
        return _memory_cache[key]
    if _disk_enabled():
        path = cache_dir() / f"{key}{snapshots.SNAPSHOT_SUFFIX}"
        if path.exists():
            try:
                value = snapshots.read_snapshot(
                    path, kind=kind, cache_version=CACHE_VERSION, digest=key)
            except SnapshotIntegrityError as exc:
                obs_warn(f"snapshot load failed: {path} ({exc.reason}); "
                         f"rebuilding from source")
                metrics_scope("snapshots").counter("load_failures").inc()
                snapshots.quarantine(path, exc.reason)
                return None
            _memory_cache[key] = value
            return value
    return None


def _store(key: str, value, kind: str) -> None:
    _memory_cache[key] = value
    if _disk_enabled():
        path = cache_dir() / f"{key}{snapshots.SNAPSHOT_SUFFIX}"
        try:
            snapshots.write_snapshot(
                path, value, kind=kind, cache_version=CACHE_VERSION,
                digest=key)
        except Exception as exc:
            # A failed store only costs a rebuild next run — but say so.
            obs_warn(f"snapshot store failed: {path} ({exc!r})")
            metrics_scope("snapshots").counter("store_failures").inc()


def _key(*parts: object) -> str:
    blob = repr((CACHE_VERSION,) + parts).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def get_ruleset(name: str) -> RuleSet:
    """The synthetic twin of one of the paper's sets (memoised)."""
    from ..rulesets import PROFILES

    key = _key("ruleset", name, repr(PROFILES[name]))
    cached = _load(key, "ruleset")
    if cached is None:
        cached = paper_ruleset(name)
        _store(key, cached, "ruleset")
    return cached


def _ruleset_digest(name: str) -> str:
    """Content digest so classifier/trace caches track profile changes."""
    ruleset = get_ruleset(name)
    blob = repr([(tuple(r.intervals), r.action) for r in ruleset]).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def get_trace(ruleset_name: str, count: int = 1500, seed: int = 42,
              matched_fraction: float = 0.65) -> Trace:
    """The evaluation trace for one rule set (memoised).

    ``matched_fraction`` defaults to a mixed accept/miss blend: real
    gateway traffic includes headers no non-default rule matches, which
    is what exercises full leaf scans in linear-search algorithms.
    """
    key = _key("trace", ruleset_name, _ruleset_digest(ruleset_name),
               count, seed, matched_fraction)
    cached = _load(key, "trace")
    if cached is None:
        cached = matched_trace(get_ruleset(ruleset_name), count, seed=seed,
                               matched_fraction=matched_fraction)
        _store(key, cached, "trace")
    return cached


def get_classifier(ruleset_name: str, algorithm: str,
                   **params) -> PacketClassifier:
    """A built classifier for a paper rule set (memoised, incl. on disk).

    Telemetry parameters (:data:`_TELEMETRY_PARAMS`) are stripped before
    keying: they affect observation, never the built structure, so they
    must not fragment (or poison) the cache.
    """
    build_params = {k: v for k, v in params.items()
                    if k not in _TELEMETRY_PARAMS}
    key = _key("classifier", ruleset_name, _ruleset_digest(ruleset_name),
               algorithm, tuple(sorted(build_params.items())))
    cached = _load(key, "classifier")
    if cached is None:
        ruleset = get_ruleset(ruleset_name)
        cached = ALGORITHMS[algorithm].build(ruleset, **build_params)
        _store(key, cached, "classifier")
    return cached


def clear_memory_cache() -> None:
    """Drop the in-process cache (tests use this to isolate state)."""
    _memory_cache.clear()
