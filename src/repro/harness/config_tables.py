"""Tables 1 and 3 — configuration tables regenerated from the models."""

from __future__ import annotations

from ..npsim import DEFAULT_ALLOCATION, IXP2850, hardware_overview
from .experiments import ExperimentResult
from .report import render_table


def run_table1(quick: bool = False) -> ExperimentResult:
    """Table 1: hardware overview of IXP2850 (paper §3.1)."""
    rows = hardware_overview(IXP2850)
    text = render_table(
        "Table 1: Hardware overview of IXP2850",
        ["Component", "Description"], rows,
    )
    return ExperimentResult("table1", "IXP2850 hardware overview", text,
                            {"rows": rows})


def run_table3(quick: bool = False) -> ExperimentResult:
    """Table 3: microengine allocation (paper §5.2)."""
    rows = [(task, f"{count}" if task != "Processing" else f"1~{count}")
            for task, count in DEFAULT_ALLOCATION.rows()]
    text = render_table(
        "Table 3: Microengine allocation",
        ["Task", "#MEs"], rows,
    )
    return ExperimentResult("table3", "Microengine allocation", text,
                            {"rows": DEFAULT_ALLOCATION.rows(),
                             "total": DEFAULT_ALLOCATION.total})
