"""Figure 7 — ExpCuts relative speedups on CR04, 64-byte TCP packets.

The paper's sweep: 7, 15, …, 71 parallel threads (1–9 processing MEs,
eight contexts each, one context of the last ME reserved for exception
handling), all four SRAM channels holding the level-distributed tree.
Speedup should be near-linear, reaching ≈7 Gbps at 71 threads.
"""

from __future__ import annotations

from ..npsim import compile_programs, simulate_throughput
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_series

#: The paper's x axis: threads = 8 * MEs - 1.
THREAD_SWEEP = (7, 15, 23, 31, 39, 47, 55, 63, 71)

RULESET = "CR04"


def run_fig7(quick: bool = False) -> ExperimentResult:
    ruleset = "CR01" if quick else RULESET
    clf = get_classifier(ruleset, "expcuts")
    trace = get_trace(ruleset)
    sweep = THREAD_SWEEP[::4] if quick else THREAD_SWEEP
    max_packets = 3_000 if quick else 12_000
    # Record programs once; reuse across all sweep points.
    program_set = compile_programs(clf, trace, limit=500 if quick else 1500)
    regions = clf.memory_regions()
    points = []
    data = {"ruleset": ruleset, "series": []}
    from ..npsim import IXP2850, place

    placement = place(regions, list(IXP2850.sram_channels))
    for threads in sweep:
        res = simulate_throughput(
            program_set, num_threads=threads, max_packets=max_packets,
            placement=placement,
        )
        points.append((threads, res.gbps * 1000))
        data["series"].append({
            "threads": threads,
            "mbps": res.gbps * 1000,
            "mpps": res.mpps,
            "me_busy": res.me_busy_fraction,
            "binding": res.bounds.binding,
        })
    base = points[0][1] / points[0][0]
    data["linearity"] = points[-1][1] / (base * points[-1][0]) if base else 0.0
    text = render_series(
        f"Figure 7: ExpCuts relative speedups ({ruleset}, 64B packets)",
        "threads", "throughput (Mbps)", points,
    )
    return ExperimentResult("fig7", "ExpCuts relative speedups", text, data)
