"""Figure 9 — ExpCuts vs HiCuts vs HSM across all seven rule sets.

The paper's conclusions this figure carries: (1) ExpCuts has the best and
*stable* throughput on every set; (2) HSM is fast on small sets but
degrades as the rule count grows (Θ(log N) search); (3) HiCuts stays
lowest, capped by leaf linear search.
"""

from __future__ import annotations

from ..npsim import simulate_throughput
from ..rulesets import PAPER_ORDER
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_grouped_series

ALGORITHMS = ("expcuts", "hicuts", "hsm")
QUICK_SETS = ("FW01", "CR01")


def run_fig9(quick: bool = False) -> ExperimentResult:
    names = QUICK_SETS if quick else PAPER_ORDER
    max_packets = 3_000 if quick else 10_000
    trace_limit = 400 if quick else 1200
    groups: dict[str, list[tuple[object, float]]] = {a: [] for a in ALGORITHMS}
    data: dict[str, dict[str, float]] = {}
    for name in names:
        trace = get_trace(name)
        data[name] = {}
        for algo in ALGORITHMS:
            clf = get_classifier(name, algo)
            res = simulate_throughput(clf, trace, num_threads=71,
                                      max_packets=max_packets,
                                      trace_limit=trace_limit)
            groups[algo].append((name, res.gbps * 1000))
            data[name][algo] = res.gbps * 1000
    text = render_grouped_series(
        "Figure 9: Algorithm comparison (71 threads, 4 SRAM channels)",
        "rule set", "throughput (Mbps)", groups,
    )
    return ExperimentResult("fig9", "Algorithm comparison", text, data)
