"""Resilience — throughput under injected SRAM channel loss.

Not a paper figure: this experiment exercises the fault-injection layer
(:mod:`repro.npsim.faults`) end to end.  A 4-channel run loses one SRAM
channel mid-run; with the ``failover`` placement hot regions fail over
to their replicas, cold regions are remapped by the control plane after
the recovery window, and the run completes with degraded — but non-zero
— throughput instead of crashing.
"""

from __future__ import annotations

from ..npsim import ChannelFailure, FaultPlan, simulate_throughput
from .cache import get_classifier, get_trace
from .experiments import ExperimentResult
from .report import render_table

RULESET = "CR04"
#: Cycle at which the victim channel goes dark (mid-run for the default
#: packet budgets).
FAILURE_CYCLE = 60_000.0


def run_resilience(quick: bool = False) -> ExperimentResult:
    ruleset = "CR01" if quick else RULESET
    clf = get_classifier(ruleset, "expcuts")
    trace = get_trace(ruleset)
    max_packets = 2_000 if quick else 8_000

    baseline = simulate_throughput(
        clf, trace, num_threads=71, num_channels=4,
        placement_policy="failover", max_packets=max_packets,
    )

    plan = FaultPlan(channel_failures=(ChannelFailure("sram1", FAILURE_CYCLE),))
    degraded = simulate_throughput(
        clf, trace, num_threads=71, num_channels=4,
        placement_policy="failover", max_packets=max_packets,
        fault_plan=plan,
    )
    rep = degraded.resilience
    assert rep is not None

    rows = [
        ("healthy (4 channels)", f"{baseline.gbps * 1000:.0f}", "-", "-"),
        ("sram1 lost mid-run", f"{degraded.gbps * 1000:.0f}",
         f"{rep.throughput_before_gbps * 1000:.0f}",
         f"{rep.throughput_after_gbps * 1000:.0f}"),
    ]
    text = render_table(
        f"Resilience: 1-of-4 SRAM channel loss ({ruleset}, 71 threads)",
        ["Scenario", "Throughput (Mbps)", "Before failure", "After failure"],
        rows,
    )
    text += "\n" + rep.summary()
    return ExperimentResult(
        "resilience", "Channel-loss resilience", text,
        {
            "healthy_mbps": baseline.gbps * 1000,
            "degraded_mbps": degraded.gbps * 1000,
            "before_mbps": rep.throughput_before_gbps * 1000,
            "after_mbps": rep.throughput_after_gbps * 1000,
            "events": [(e.time, e.kind, e.detail) for e in rep.events],
            "packets_dropped": rep.packets_dropped,
            "packets_corrupted": rep.packets_corrupted,
            "packets_lost_to_regions": rep.packets_lost_to_regions,
            "replica_reads": rep.replica_reads,
            "remapped_reads": rep.remapped_reads,
        },
    )
