"""Table 4 — optimized memory allocation of tree levels to SRAM channels.

Reproduces the headroom-proportional placement over the paper's measured
per-channel utilisation (56 % / 0 % / 47 % / 31 %).  The paper's own
grouping (levels 0–1 / 2–6 / 7–9 / 10–13) counts 14 levels where a w=8
tree has 13 (0–12); our apportionment yields the same pattern over 13
levels (2 / 5 / 3 / 3) — the discrepancy is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from ..npsim import IXP2850, allocation_table, place
from .cache import get_classifier
from .experiments import ExperimentResult
from .report import render_table

RULESET = "CR04"


def run_table4(quick: bool = False) -> ExperimentResult:
    ruleset = "CR01" if quick else RULESET
    clf = get_classifier(ruleset, "expcuts")
    regions = clf.memory_regions()
    channels = list(IXP2850.sram_channels)
    placement = place(regions, channels, "headroom_proportional")
    rows_data = allocation_table(regions, channels, placement)
    rows = [
        (row["channel"], f"{row['utilization']:.0%}", f"{row['headroom']:.0%}",
         row["allocation"], f"{row['words'] * 4 / 1024:.0f}")
        for row in rows_data
    ]
    text = render_table(
        f"Table 4: Optimized memory allocations ({ruleset} ExpCuts tree)",
        ["Channel", "Utilization", "Headroom", "Allocation", "KB placed"],
        rows,
    )
    return ExperimentResult("table4", "Optimized memory allocations", text,
                            {"rows": rows_data, "policy": placement.policy})
