"""repro — ExpCuts packet classification for multi-core network processors.

A from-scratch reproduction of Qi et al., "Towards Optimized Packet
Classification Algorithms for Multi-Core Network Processors" (ICPP 2007):
the ExpCuts algorithm with HABS space aggregation, the HiCuts and HSM
baselines it is evaluated against, and a discrete-event simulator of the
Intel IXP2850 network processor the paper ran on.

Quick start::

    from repro import Rule, RuleSet, ExpCutsClassifier

    rules = RuleSet([
        Rule.from_prefixes(sip="10.0.0.0/8", dport=(0, 1023), proto=6),
        Rule.from_prefixes(dip="192.168.1.0/24"),
    ]).with_default()
    clf = ExpCutsClassifier.build(rules)
    clf.classify((0x0A000001, 0xC0A80105, 12345, 80, 6))   # -> 0
"""

from .classifiers import (
    ABVClassifier,
    BitVectorClassifier,
    ExpCutsClassifier,
    HiCutsClassifier,
    HSMClassifier,
    HyperCutsClassifier,
    LinearSearchClassifier,
    PacketClassifier,
    RFCClassifier,
    TupleSpaceClassifier,
)
from .classifiers.updates import UpdatableClassifier
from .core import (
    ExpCutsConfig,
    ExpCutsEngine,
    ExpCutsTree,
    Field,
    Header,
    Interval,
    Rule,
    RuleSet,
    build_expcuts,
    pack_tree,
)

__version__ = "1.0.0"

__all__ = [
    "ABVClassifier",
    "BitVectorClassifier",
    "ExpCutsClassifier",
    "ExpCutsConfig",
    "ExpCutsEngine",
    "ExpCutsTree",
    "Field",
    "HSMClassifier",
    "Header",
    "HiCutsClassifier",
    "HyperCutsClassifier",
    "Interval",
    "LinearSearchClassifier",
    "PacketClassifier",
    "RFCClassifier",
    "Rule",
    "RuleSet",
    "TupleSpaceClassifier",
    "UpdatableClassifier",
    "build_expcuts",
    "pack_tree",
    "__version__",
]
