"""Worker-process transport for the sharded serving fabric.

One fabric shard = one OS process running :func:`worker_main` over a
duplex pipe.  The module defines the *entire* parent/worker contract so
the supervisor and the worker cannot drift apart:

parent → worker messages::

    ("ping", seq)          liveness probe; a healthy worker answers pong
    ("classify", headers)  classify a batch; answers ("result", [...])
    ("stop",)              graceful shutdown; answers ("bye", stats)
    ("hang",)              chaos hook: stop reading the pipe forever
    ("exit", code)         chaos hook: abrupt os._exit (no goodbye)

worker → parent messages::

    ("ready", info)        sent once after the serving structure exists
    ("pong", seq, stats)   liveness answer
    ("result", answers)    global rule indices for one classify batch
    ("error", message)     a lookup failed; the request is retryable
    ("bye", stats)         graceful-stop acknowledgement

The worker is **expendable by design**: all durable state lives in the
shard's content-verified snapshot (:mod:`repro.harness.snapshots`), so a
SIGKILL at any instant costs only the restart.  On start the worker
walks the same degradation ladder the single-process service uses:

1. **warm** — load the shard's snapshot (verified before unpickling);
2. **cold** — on a missing or corrupt snapshot (quarantined first),
   rebuild from the shard's rules under the budget-guarded
   :class:`~repro.classifiers.updates.UpdatableClassifier` chain
   (coarser parameters → linear slow path);
3. **linear** — if even the cold build raises, serve the linear scan:
   always correct, merely slow.

Answers are *global* rule indices: the worker classifies within its
shard and maps the local result through ``spec.global_map``, so the
fabric can audit every answer against the full-ruleset linear oracle.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..classifiers import ALGORITHMS, LinearSearchClassifier
from ..classifiers.updates import UpdatableClassifier
from ..core.budget import BuildBudget
from ..core.errors import ReproError, SnapshotIntegrityError
from ..core.rule import Rule, RuleSet

#: Snapshot ``kind`` for a shard's published build (rules + structure).
SHARD_SNAPSHOT_KIND = "fabric-shard"


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to serve one shard.

    Specs travel to the worker by fork-time inheritance (cheap, no
    serialisation); the snapshot at ``snapshot_path`` additionally
    carries the *built* structure so a restart is warm.  ``rules`` are
    the shard's rules in global priority order and ``global_map[i]`` is
    the global index of local rule ``i``.
    """

    name: str
    rules: tuple[Rule, ...]
    global_map: tuple[int, ...]
    snapshot_path: str
    algorithm: str = "expcuts"
    build_params: dict = field(default_factory=dict)
    budget: BuildBudget | None = None
    rebuild_threshold: int = 32
    #: Test hook: die before sending ``ready`` (exercises the
    #: supervisor's failed-start and crash-loop paths).
    crash_on_start: bool = False

    def __post_init__(self) -> None:
        if len(self.rules) != len(self.global_map):
            raise ValueError("global_map must cover every shard rule")


def write_shard_snapshot(path: Path, spec: ShardSpec, base) -> None:
    """Publish one shard's immutable build as a verified snapshot."""
    from ..harness.cache import CACHE_VERSION
    from ..harness.snapshots import write_snapshot

    payload = {
        "shard": spec.name,
        "rules": list(spec.rules),
        "global_map": list(spec.global_map),
        "base": base,
    }
    write_snapshot(Path(path), payload, kind=SHARD_SNAPSHOT_KIND,
                   cache_version=CACHE_VERSION)


def _load_or_build(spec: ShardSpec) -> tuple[object, dict]:
    """The worker-side start ladder: warm snapshot → cold rebuild → linear.

    Returns ``(classifier, info)`` where ``info`` is the ``ready``
    payload (``warm``, ``degradation``, ``quarantined``).
    """
    from ..harness.cache import CACHE_VERSION
    from ..harness.snapshots import quarantine, read_snapshot

    info: dict = {"shard": spec.name, "pid": os.getpid(),
                  "warm": False, "quarantined": False, "degradation": None}
    path = Path(spec.snapshot_path)
    if path.exists():
        try:
            payload = read_snapshot(path, kind=SHARD_SNAPSHOT_KIND,
                                    cache_version=CACHE_VERSION)
            info["warm"] = True
            return payload["base"], info
        except SnapshotIntegrityError as exc:
            # The published image is unusable: set it aside for the
            # post-mortem and fall through to a cold rebuild — the
            # restart must *survive* corruption, not crash on it.
            quarantine(path, exc.reason)
            info["quarantined"] = True
            info["quarantine_reason"] = exc.reason
    ruleset = RuleSet(list(spec.rules), name=f"shard-{spec.name}")
    try:
        classifier = UpdatableClassifier(
            ruleset, ALGORITHMS[spec.algorithm],
            rebuild_threshold=spec.rebuild_threshold,
            budget=spec.budget, degrade=True, **spec.build_params)
        info["degradation"] = classifier.degradation
        return classifier, info
    except ReproError as exc:
        # Last rung: the linear scan over the shard's rules is the
        # oracle itself — slow, but a worker that serves slowly beats a
        # shard that stays dark.
        info["degradation"] = "linear"
        info["build_error"] = repr(exc)
        return LinearSearchClassifier(ruleset), info


def worker_main(conn, spec: ShardSpec) -> None:
    """Process target: serve one shard until told (or made) to stop."""
    if spec.crash_on_start:
        os._exit(3)
    classifier, info = _load_or_build(spec)
    conn.send(("ready", info))
    served = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away: nothing left to serve
        kind = message[0]
        if kind == "ping":
            conn.send(("pong", message[1], {"served": served}))
        elif kind == "classify":
            headers: Sequence[Sequence[int]] = message[1]
            try:
                answers = []
                for header in headers:
                    local = classifier.classify(header)
                    answers.append(None if local is None
                                   else spec.global_map[local])
                served += len(headers)
                conn.send(("result", answers))
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                conn.send(("error", repr(exc)))
        elif kind == "stop":
            conn.send(("bye", {"served": served}))
            break
        elif kind == "hang":
            # Chaos hook: alive but unresponsive — only the liveness
            # deadline can catch this failure mode.
            while True:
                time.sleep(3600.0)
        elif kind == "exit":
            os._exit(message[1])
        else:
            conn.send(("error", f"unknown message kind {kind!r}"))
    conn.close()
