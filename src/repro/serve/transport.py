"""Worker-process transport for the sharded serving fabric.

One fabric shard = one OS process running :func:`worker_main` over a
duplex pipe.  The module defines the *entire* parent/worker contract so
the supervisor and the worker cannot drift apart:

parent → worker messages::

    ("ping", seq)          liveness probe; a healthy worker answers pong
    ("classify", headers)  classify a batch; answers ("result", ...)
    ("update", epoch, ops) one epoch's shard-local rule edits (one-way)
    ("stop",)              graceful shutdown; answers ("bye", stats)
    ("hang",)              chaos hook: stop reading the pipe forever
    ("exit", code)         chaos hook: abrupt os._exit (no goodbye)

worker → parent messages::

    ("ready", info)        sent once after the serving structure exists
    ("pong", seq, stats)   liveness answer (stats carry ``applied_epoch``)
    ("result", answers, applied_epoch)
                           global rule indices for one classify batch,
                           stamped with the epoch they were served at
    ("error", message)     a lookup failed; the request is retryable
    ("bye", stats)         graceful-stop acknowledgement

**Update epochs.**  Rule updates arrive as ``("update", epoch, ops)``
with a fabric-wide monotonic epoch per batch.  The worker applies
batches strictly in epoch order: a duplicate (epoch already applied) is
dropped and counted, a gap (an epoch arrived early) is buffered until
the missing predecessors arrive — so lost, duplicated, or reordered
update messages can delay convergence but can never corrupt it.  Each
``ops`` batch is a tuple of shard-local edits::

    ("insert", local_pos, rule, global_pos)   rule lands on this shard
    ("remove", local_pos, global_pos)         a shard-local rule leaves
    ("shift", global_pos, +1 | -1)            global renumbering only

applied by :func:`apply_shard_ops` — the same function the parent uses
on its kept base and the restart path uses to replay persisted delta
records (:mod:`repro.harness.snapshots`), so all three views of a shard
evolve identically.

The worker is **expendable by design**: all durable state lives in the
shard's content-verified snapshot (:mod:`repro.harness.snapshots`), so a
SIGKILL at any instant costs only the restart.  On start the worker
walks the same degradation ladder the single-process service uses:

1. **warm** — load the shard's snapshot (verified before unpickling);
2. **cold** — on a missing or corrupt snapshot (quarantined first),
   rebuild from the shard's rules under the budget-guarded
   :class:`~repro.classifiers.updates.UpdatableClassifier` chain
   (coarser parameters → linear slow path);
3. **linear** — if even the cold build raises, serve the linear scan:
   always correct, merely slow.

Answers are *global* rule indices: the worker classifies within its
shard and maps the local result through ``spec.global_map``, so the
fabric can audit every answer against the full-ruleset linear oracle.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..classifiers import ALGORITHMS, LinearSearchClassifier
from ..classifiers.updates import UpdatableClassifier
from ..core.budget import BuildBudget
from ..core.errors import ReproError, SnapshotIntegrityError, UpdateError
from ..core.rule import Rule, RuleSet

#: Snapshot ``kind`` for a shard's published build (rules + structure).
SHARD_SNAPSHOT_KIND = "fabric-shard"
#: Delta-record ``kind`` for one epoch's shard-local edit log.
SHARD_DELTA_KIND = "fabric-shard-delta"


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to serve one shard.

    Specs travel to the worker by fork-time inheritance (cheap, no
    serialisation); the snapshot at ``snapshot_path`` additionally
    carries the *built* structure so a restart is warm.  ``rules`` are
    the shard's rules in global priority order and ``global_map[i]`` is
    the global index of local rule ``i``.
    """

    name: str
    rules: tuple[Rule, ...]
    global_map: tuple[int, ...]
    snapshot_path: str
    algorithm: str = "expcuts"
    build_params: dict = field(default_factory=dict)
    budget: BuildBudget | None = None
    rebuild_threshold: int = 32
    #: The fabric update epoch this spec's ``rules``/``global_map``
    #: reflect; a cold build from the spec serves at exactly this epoch.
    epoch: int = 0
    #: Let worker builds absorb inserts by in-place structure edits
    #: (:meth:`~repro.classifiers.updates.UpdatableClassifier`).
    incremental: bool = False
    #: Test hook: die before sending ``ready`` (exercises the
    #: supervisor's failed-start and crash-loop paths).
    crash_on_start: bool = False

    def __post_init__(self) -> None:
        if len(self.rules) != len(self.global_map):
            raise ValueError("global_map must cover every shard rule")


def write_shard_snapshot(path: Path, spec: ShardSpec, base):
    """Publish one shard's build as a verified snapshot.

    Returns the written :class:`~repro.harness.snapshots.SnapshotHeader`
    — its payload SHA-256 anchors the shard's delta chain.
    """
    from ..harness.cache import CACHE_VERSION
    from ..harness.snapshots import write_snapshot

    payload = {
        "shard": spec.name,
        "rules": list(spec.rules),
        "global_map": list(spec.global_map),
        "epoch": spec.epoch,
        "base": base,
    }
    return write_snapshot(Path(path), payload, kind=SHARD_SNAPSHOT_KIND,
                          cache_version=CACHE_VERSION)


def apply_shard_ops(classifier, global_map: list[int], ops) -> None:
    """Apply one epoch's shard-local edit batch (see module docstring).

    ``global_map`` stays sorted ascending (shard rules are kept in
    global priority order), so local edit positions computed by the
    parent at translation time remain valid here.  The classifier is an
    :class:`~repro.classifiers.updates.UpdatableClassifier` (or, on the
    last degradation rung, a bare linear classifier whose live rule
    list is edited directly — its scalar ``classify`` reads that list).
    """
    for op in ops:
        kind = op[0]
        if kind == "insert":
            _, local_pos, rule, global_pos = op
            for i, g in enumerate(global_map):
                if g >= global_pos:
                    global_map[i] = g + 1
            global_map.insert(local_pos, global_pos)
            if hasattr(classifier, "insert"):
                classifier.insert(rule, local_pos)
            else:
                classifier.ruleset.rules.insert(local_pos, rule)
        elif kind == "remove":
            _, local_pos, global_pos = op
            if hasattr(classifier, "remove"):
                classifier.remove(local_pos)
            else:
                classifier.ruleset.rules.pop(local_pos)
            del global_map[local_pos]
            for i, g in enumerate(global_map):
                if g > global_pos:
                    global_map[i] = g - 1
        elif kind == "shift":
            _, global_pos, delta = op
            if delta > 0:
                for i, g in enumerate(global_map):
                    if g >= global_pos:
                        global_map[i] = g + delta
            else:
                for i, g in enumerate(global_map):
                    if g > global_pos:
                        global_map[i] = g + delta
        else:
            raise UpdateError(f"unknown shard op kind {kind!r}")


def _load_or_build(spec: ShardSpec) -> tuple[object, list[int], int, dict]:
    """The worker-side start ladder: warm snapshot → cold rebuild → linear.

    Returns ``(classifier, global_map, applied_epoch, info)`` where
    ``info`` is the ``ready`` payload (``warm``, ``degradation``,
    ``quarantined``, ``applied_epoch``, ``replayed_deltas``).  A warm
    start loads the verified base snapshot **and replays its delta
    chain** — a broken link quarantines the unreplayable suffix (inside
    :func:`~repro.harness.snapshots.load_chain`) and the worker serves
    the salvaged epoch; the parent's anti-entropy pump repairs the lag
    over the pipe.
    """
    from ..harness.cache import CACHE_VERSION
    from ..harness.snapshots import load_chain, quarantine

    info: dict = {"shard": spec.name, "pid": os.getpid(),
                  "warm": False, "quarantined": False, "degradation": None,
                  "applied_epoch": spec.epoch, "replayed_deltas": 0}
    path = Path(spec.snapshot_path)
    if path.exists():
        try:
            chain = load_chain(path, kind=SHARD_SNAPSHOT_KIND,
                               cache_version=CACHE_VERSION,
                               delta_kind=SHARD_DELTA_KIND)
            payload = chain.base
            classifier = payload["base"]
            global_map = list(payload["global_map"])
            applied = int(payload.get("epoch", 0))
            for epoch, ops in chain.deltas:
                try:
                    apply_shard_ops(classifier, global_map, ops)
                except ReproError as exc:
                    # A verified record that still fails to apply means
                    # the parent's state diverged from ours; serve the
                    # last good epoch and let the pump repair the lag.
                    info["replay_error"] = repr(exc)
                    break
                applied = epoch
                info["replayed_deltas"] += 1
            info["warm"] = True
            info["applied_epoch"] = applied
            if not chain.intact:
                info["chain_broken"] = chain.broken
            return classifier, global_map, applied, info
        except SnapshotIntegrityError as exc:
            # The published image is unusable: set it aside for the
            # post-mortem and fall through to a cold rebuild — the
            # restart must *survive* corruption, not crash on it.
            quarantine(path, exc.reason)
            info["quarantined"] = True
            info["quarantine_reason"] = exc.reason
    ruleset = RuleSet(list(spec.rules), name=f"shard-{spec.name}")
    global_map = list(spec.global_map)
    try:
        classifier = UpdatableClassifier(
            ruleset, ALGORITHMS[spec.algorithm],
            rebuild_threshold=spec.rebuild_threshold,
            budget=spec.budget, degrade=True,
            incremental=spec.incremental, **spec.build_params)
        info["degradation"] = classifier.degradation
        return classifier, global_map, spec.epoch, info
    except ReproError as exc:
        # Last rung: the linear scan over the shard's rules is the
        # oracle itself — slow, but a worker that serves slowly beats a
        # shard that stays dark.
        info["degradation"] = "linear"
        info["build_error"] = repr(exc)
        return LinearSearchClassifier(ruleset), global_map, spec.epoch, info


def worker_main(conn, spec: ShardSpec) -> None:
    """Process target: serve one shard until told (or made) to stop."""
    if spec.crash_on_start:
        os._exit(3)
    classifier, global_map, applied_epoch, info = _load_or_build(spec)
    conn.send(("ready", info))
    served = 0
    dup_updates = 0
    applied_updates = 0
    #: Out-of-order buffer: epochs that arrived before their predecessors.
    pending_epochs: dict[int, object] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away: nothing left to serve
        kind = message[0]
        if kind == "ping":
            backlog = getattr(classifier, "rebuild_backlog", 0)
            conn.send(("pong", message[1], {
                "served": served,
                "applied_epoch": applied_epoch,
                "applied_updates": applied_updates,
                "dup_updates": dup_updates,
                "rebuild_backlog": int(backlog),
            }))
        elif kind == "classify":
            headers: Sequence[Sequence[int]] = message[1]
            try:
                answers = []
                for header in headers:
                    local = classifier.classify(header)
                    answers.append(None if local is None
                                   else global_map[local])
                served += len(headers)
                conn.send(("result", answers, applied_epoch))
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                conn.send(("error", repr(exc)))
        elif kind == "update":
            # Strict in-order application: duplicates drop, gaps buffer.
            # An op that raises kills the worker (crash-only: supervision
            # restarts it warm and the delta chain replays the truth).
            epoch, ops = message[1], message[2]
            if epoch <= applied_epoch:
                dup_updates += 1
            else:
                pending_epochs[epoch] = ops
                while applied_epoch + 1 in pending_epochs:
                    apply_shard_ops(classifier, global_map,
                                    pending_epochs.pop(applied_epoch + 1))
                    applied_epoch += 1
                    applied_updates += 1
        elif kind == "stop":
            conn.send(("bye", {"served": served,
                               "applied_epoch": applied_epoch,
                               "applied_updates": applied_updates,
                               "dup_updates": dup_updates}))
            break
        elif kind == "hang":
            # Chaos hook: alive but unresponsive — only the liveness
            # deadline can catch this failure mode.
            while True:
                time.sleep(3600.0)
        elif kind == "exit":
            os._exit(message[1])
        else:
            conn.send(("error", f"unknown message kind {kind!r}"))
    conn.close()
