"""Overload-safe serving layer for classifier replicas.

``ClassificationService`` fronts one or more classifiers (typically
:class:`~repro.classifiers.updates.UpdatableClassifier` replicas) and
enforces end-to-end robustness policy on every request: bounded
admission with load shedding, per-request deadlines, retry with
deterministic backoff, per-replica circuit breakers with failover, and
graceful drain/stop.  See ``docs/serving.md``.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerTransition, CircuitBreaker
from .policy import ManualClock, RetryPolicy, ServicePolicy, TokenBucket
from .service import RETRYABLE_ERRORS, ClassificationService, Replica

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BreakerTransition",
    "CircuitBreaker",
    "ClassificationService",
    "ManualClock",
    "RETRYABLE_ERRORS",
    "Replica",
    "RetryPolicy",
    "ServicePolicy",
    "TokenBucket",
]
