"""Overload-safe serving layer for classifier replicas.

``ClassificationService`` fronts one or more classifiers (typically
:class:`~repro.classifiers.updates.UpdatableClassifier` replicas) and
enforces end-to-end robustness policy on every request: bounded
admission with load shedding, per-request deadlines, retry with
deterministic backoff, per-replica circuit breakers with failover, and
graceful drain/stop.

``Fabric`` scales the same guarantees across OS processes: the ruleset
is range-partitioned into shards served by supervised worker processes
that restart warm from content-verified snapshots; a dead shard sheds
with a typed reason instead of blocking.  See ``docs/serving.md``.
"""

from .admission import AdmissionGate
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerTransition, CircuitBreaker
from .fabric import Fabric, ShardPlan
from .guard import FloodGuard
from .policy import ManualClock, RetryPolicy, ServicePolicy, TokenBucket
from .service import RETRYABLE_ERRORS, ClassificationService, Replica
from .supervisor import (
    DOWN,
    OutageRecord,
    PARKED,
    RUNNING,
    SPAWNING,
    STOPPED,
    SupervisionPolicy,
    Supervisor,
    WorkerHandle,
)
from .transport import (
    SHARD_DELTA_KIND,
    SHARD_SNAPSHOT_KIND,
    ShardSpec,
    apply_shard_ops,
    write_shard_snapshot,
)

__all__ = [
    "AdmissionGate",
    "CLOSED",
    "DOWN",
    "HALF_OPEN",
    "OPEN",
    "PARKED",
    "RUNNING",
    "SPAWNING",
    "STOPPED",
    "BreakerTransition",
    "CircuitBreaker",
    "ClassificationService",
    "Fabric",
    "FloodGuard",
    "ManualClock",
    "OutageRecord",
    "RETRYABLE_ERRORS",
    "Replica",
    "RetryPolicy",
    "SHARD_DELTA_KIND",
    "SHARD_SNAPSHOT_KIND",
    "ServicePolicy",
    "ShardPlan",
    "ShardSpec",
    "SupervisionPolicy",
    "Supervisor",
    "TokenBucket",
    "WorkerHandle",
    "apply_shard_ops",
    "write_shard_snapshot",
]
