"""`FloodGuard`: connection-aware front line for a classification service.

The admission gate and breakers (:mod:`repro.serve.admission`,
:mod:`repro.serve.breaker`) defend against *volume*; they are blind to
*connection semantics*, which is exactly where a SYN flood lives — every
flood packet is cheap, well-formed, and individually indistinguishable
from a legitimate handshake opener.  The guard sits in front of a
classify callable and applies the stateful checks a hardware gateway
performs before spending classification work:

1. **Checksum verification** — a packet flagged ``checksum_ok=False``
   is shed (``bad_checksum``) before anything else; corrupt payloads
   must never consume lookup capacity.
2. **Half-open accounting** — every admitted SYN opens a bounded LRU
   half-open entry; the handshake-completing ACK retires it into the
   established table.  When the half-open table reaches its budget the
   guard *engages*.
3. **SYN authentication while engaged** — the first SYN of an unknown
   connection is shed (``syn_unproven``) and its connection key
   recorded; a *retransmitted* SYN finds the record and is admitted.
   Real clients retransmit lost SYNs (that is TCP); spoofed flood
   sources never see the loss and never retransmit, so the flood sheds
   at the guard while legitimate flows pay one extra round trip.  This
   is the classic syn-cookie/syn-authentication trade made explicit.

Non-SYN packets of unknown connections pass through (mid-flow packets
on asymmetric paths are normal for a classifier-in-the-middle) — which
is deliberately *not* a defense against ACK scans; those are caught by
flow-cache attribution (:meth:`repro.npsim.flowcache.FlowCache.class_report`)
instead, because shedding them would also shed legitimate asymmetric
traffic.

Every decision is counted under the guard's metric scope, globally
(``<scope>.shed.<reason>``) and per traffic class
(``<scope>.class.<klass>.offered/served/shed``), so scenario-level
attribution — "who was shed, and why" — is a metrics query, not a
forensic exercise.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Sequence

from ..core.errors import AdmissionRejected, ConfigurationError
from ..obs.metrics import MetricScope
from ..traffic.scenarios import ACK, FIN, FINACK, SYN

#: Default half-open budget: how many un-ACKed handshakes the guard
#: tolerates before engaging SYN authentication.
HALF_OPEN_BUDGET = 64

#: Default capacity of the proof table (shed-SYN records awaiting a
#: retransmission).  Bounded because a spoofed flood writes one entry
#: per packet — the table must not become the memory attack itself.
PROOF_CAPACITY = 4096

#: Default capacity of the established-connection table.
ESTABLISHED_CAPACITY = 8192


class FloodGuard:
    """Stateful TCP-aware policing in front of a classify callable.

    ``classify`` is whatever answers a header —
    :meth:`~repro.serve.service.ClassificationService.classify`, a bare
    classifier's ``classify``, or a fabric's.  The guard never alters
    an answer; it only decides whether the packet deserves one.
    """

    def __init__(self, classify: Callable[[Sequence[int]], int | None],
                 scope: MetricScope, *,
                 half_open_budget: int = HALF_OPEN_BUDGET,
                 proof_capacity: int = PROOF_CAPACITY,
                 established_capacity: int = ESTABLISHED_CAPACITY) -> None:
        if half_open_budget < 1:
            raise ConfigurationError("half_open_budget must be >= 1")
        if proof_capacity < 1 or established_capacity < 1:
            raise ConfigurationError("table capacities must be >= 1")
        self._classify = classify
        self._scope = scope
        self._budget = half_open_budget
        self._proof_capacity = proof_capacity
        self._established_capacity = established_capacity
        self._half_open: OrderedDict[tuple, None] = OrderedDict()
        self._proof: OrderedDict[tuple, None] = OrderedDict()
        self._established: OrderedDict[tuple, None] = OrderedDict()
        self._engagements = 0

    # -- connection identity ----------------------------------------------

    @staticmethod
    def connection_key(header: Sequence[int]) -> tuple:
        """Direction-independent connection identity.

        Both directions of one connection (SYN out, SYN/ACK back) must
        map to the same key, so the endpoints are ordered canonically.
        """
        a = (int(header[0]), int(header[2]))
        b = (int(header[1]), int(header[3]))
        lo, hi = (a, b) if a <= b else (b, a)
        return (lo, hi, int(header[4]))

    # -- state ------------------------------------------------------------

    @property
    def engaged(self) -> bool:
        """SYN authentication active (half-open table at budget)?"""
        return len(self._half_open) >= self._budget

    @property
    def half_open_count(self) -> int:
        return len(self._half_open)

    @property
    def established_count(self) -> int:
        return len(self._established)

    def report(self) -> dict:
        return {
            "half_open": len(self._half_open),
            "established": len(self._established),
            "proof_pending": len(self._proof),
            "engaged": self.engaged,
            "engagements": self._engagements,
        }

    # -- the decision path -------------------------------------------------

    def submit(self, header: Sequence[int], kind: str = "DATA",
               checksum_ok: bool = True,
               klass: str = "default") -> int | None:
        """Police one packet, then classify it.

        Raises :class:`AdmissionRejected` with reason ``bad_checksum``
        or ``syn_unproven`` when the packet is shed; otherwise returns
        whatever the wrapped ``classify`` returns (or raises).
        """
        self._scope.counter("offered").inc()
        klass_scope = self._scope.scope(f"class.{klass}")
        klass_scope.counter("offered").inc()
        if not checksum_ok:
            self._shed("bad_checksum", klass_scope)
        key = self.connection_key(header)
        if kind == SYN:
            self._police_syn(key, klass_scope)
        elif kind == ACK:
            if key in self._half_open:
                del self._half_open[key]
                self._remember(self._established, key,
                               self._established_capacity)
                self._scope.counter("handshakes_completed").inc()
        elif kind in (FIN, FINACK):
            self._half_open.pop(key, None)
            self._established.pop(key, None)
        result = self._classify(header)
        self._scope.counter("served").inc()
        klass_scope.counter("served").inc()
        return result

    def _police_syn(self, key: tuple, klass_scope: MetricScope) -> None:
        if key in self._established:
            return  # stray SYN on a live connection; let it through
        if key in self._half_open:
            self._half_open.move_to_end(key)
            return  # retransmission of an already-open handshake
        if self.engaged:
            if key in self._proof:
                # Proven by retransmission: a real client came back.
                del self._proof[key]
                self._scope.counter("syn_proven").inc()
                self._open(key)
                return
            self._remember(self._proof, key, self._proof_capacity)
            self._shed("syn_unproven", klass_scope)
        self._open(key)

    def _open(self, key: tuple) -> None:
        self._half_open[key] = None
        if len(self._half_open) > self._budget:
            # Reclaim the oldest half-open entry (the timeout a real
            # stack would apply), keeping the table exactly at budget.
            self._half_open.popitem(last=False)
        if len(self._half_open) >= self._budget:
            self._engagements += 1

    @staticmethod
    def _remember(table: OrderedDict, key: tuple, capacity: int) -> None:
        table[key] = None
        if len(table) > capacity:
            table.popitem(last=False)

    def _shed(self, reason: str, klass_scope: MetricScope) -> None:
        self._scope.counter(f"shed.{reason}").inc()
        klass_scope.counter("shed").inc()
        klass_scope.counter(f"shed.{reason}").inc()
        raise AdmissionRejected(reason)
