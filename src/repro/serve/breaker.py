"""Per-replica circuit breaker: closed → open → half-open → closed.

The breaker watches a rolling window of completed calls on one replica
and takes it out of rotation when the replica is degraded — failing
(transient faults, rebuild windows) or slow (latency spikes, a
budget-degraded linear slow path).  State machine::

            failure- or slow-rate over threshold
    CLOSED ────────────────────────────────────────▶ OPEN
      ▲                                              │
      │ half_open_probes                             │ open_s cool-down
      │ consecutive successes                        ▼
      └───────────────────────────────────────── HALF_OPEN
                        (any failed or slow probe re-opens)

Every transition is timestamped in :attr:`CircuitBreaker.transitions`
and counted under ``serve.breaker.<replica>.*`` so a soak run can
assert the breaker actually exercised.  Not internally locked: the
owning :class:`~repro.serve.service.ClassificationService` serialises
all breaker calls under its own lock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from .policy import ServicePolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerTransition:
    """One timestamped state change (``reason`` says what tripped it)."""

    at: float
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Rolling-window failure/slow-call breaker for one replica."""

    def __init__(self, policy: ServicePolicy,
                 clock: Callable[[], float] | None = None,
                 name: str = "replica") -> None:
        self.policy = policy
        self.name = name
        self._clock = clock or time.monotonic
        self.state = CLOSED
        self.transitions: list[BreakerTransition] = []
        #: (ok, slow) per completed call, newest last.
        self._window: deque[tuple[bool, bool]] = deque(maxlen=policy.breaker_window)
        self._opened_at = 0.0
        self._half_open_in_flight = 0
        self._half_open_successes = 0

    # -- state queries -----------------------------------------------------

    def allow(self) -> bool:
        """May a call be dispatched to this replica right now?

        An OPEN breaker flips to HALF_OPEN once the cool-down elapses;
        HALF_OPEN admits at most ``half_open_probes`` concurrent probes.
        """
        if self.state == CLOSED:
            return True
        now = self._clock()
        if self.state == OPEN:
            if now - self._opened_at < self.policy.open_s:
                return False
            self._transition(HALF_OPEN, "cool-down elapsed")
        if self._half_open_in_flight >= self.policy.half_open_probes:
            return False
        self._half_open_in_flight += 1
        return True

    # -- outcome recording -------------------------------------------------

    def record_success(self, elapsed_s: float, degraded: bool = False) -> None:
        """A call completed with an answer.

        ``degraded`` marks answers served off a degraded structure (the
        linear slow path): correct but over the latency contract, so
        they count as slow regardless of measured time.
        """
        slow = degraded or elapsed_s >= self.policy.slow_call_s
        self._record(ok=True, slow=slow)

    def record_failure(self, elapsed_s: float = 0.0) -> None:
        """A call failed (transient error, timeout, fault)."""
        self._record(ok=False, slow=elapsed_s >= self.policy.slow_call_s)

    def _record(self, ok: bool, slow: bool) -> None:
        if self.state == HALF_OPEN:
            self._half_open_in_flight = max(0, self._half_open_in_flight - 1)
            if not ok:
                self._open("half-open probe failed")
                return
            if slow:
                # A slow probe means the replica is still degraded: a
                # latency spike must not re-close the breaker mid-spike.
                self._open("half-open probe slow")
                return
            self._half_open_successes += 1
            if self._half_open_successes >= self.policy.half_open_probes:
                self._transition(CLOSED, "probes succeeded")
                self._window.clear()
            return
        if self.state == OPEN:
            # Stragglers dispatched before the trip: informational only.
            return
        self._window.append((ok, slow))
        if len(self._window) < self.policy.breaker_min_calls:
            return
        n = len(self._window)
        failures = sum(1 for call_ok, _ in self._window if not call_ok)
        slows = sum(1 for _, call_slow in self._window if call_slow)
        if failures / n >= self.policy.failure_rate_threshold:
            self._open(f"failure rate {failures}/{n}")
        elif slows / n >= self.policy.slow_call_rate_threshold:
            self._open(f"slow-call rate {slows}/{n}")

    # -- transitions -------------------------------------------------------

    def _open(self, reason: str) -> None:
        self._opened_at = self._clock()
        self._transition(OPEN, reason)
        self._window.clear()

    def _transition(self, to_state: str, reason: str) -> None:
        self.transitions.append(BreakerTransition(
            self._clock(), self.state, to_state, reason))
        self.state = to_state
        if to_state == HALF_OPEN:
            self._half_open_in_flight = 0
            self._half_open_successes = 0

    def open_count(self) -> int:
        return sum(1 for t in self.transitions if t.to_state == OPEN)
