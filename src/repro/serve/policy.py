"""Admission and retry policy for the serving layer.

Everything here is deterministic under an injectable clock and a seed:

* :class:`ManualClock` — a hand-advanced clock for tests and the
  ``serve-soak`` simulation (the serving analogue of the injectable
  ``BuildBudget.clock``).
* :class:`TokenBucket` — the admission rate limiter: ``rate_per_s``
  sustained, ``burst`` tokens of headroom.
* :class:`RetryPolicy` — exponential backoff with **deterministic
  seeded jitter**: the delay for (request, attempt) is a pure function
  of the seed, so a soak run is reproducible bit-for-bit regardless of
  thread interleaving.
* :class:`ServicePolicy` — the one bundle of knobs a
  :class:`~repro.serve.service.ClassificationService` is configured
  with (admission, deadlines, retries, breaker thresholds, shadowing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.errors import ConfigurationError
from ..npsim.faults import seeded_uniform


class ManualClock:
    """A monotonically advancing fake clock (seconds).

    ``sleep`` advances the clock rather than blocking, so it doubles as
    the service's injectable ``sleep`` in simulated runs: retry backoff
    then consumes *simulated* time, which the deadline sees.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("clock cannot go backwards")
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))


class TokenBucket:
    """Classic token bucket: ``rate_per_s`` refill, ``burst`` capacity.

    Deterministic under an injectable clock; refill is computed lazily
    on each acquire, so an idle bucket costs nothing.
    """

    __slots__ = ("rate_per_s", "burst", "_tokens", "_clock", "_last")

    def __init__(self, rate_per_s: float, burst: float,
                 clock: Callable[[], float] | None = None) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        if burst < 1:
            raise ConfigurationError("burst must be >= 1")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock or time.monotonic
        self._last = self._clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
            self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``delay(request, attempt)`` is a pure function: base × mult^attempt,
    capped, then jittered by ±``jitter`` of itself using
    :func:`repro.npsim.faults.seeded_uniform` over (seed, request,
    attempt) — full reproducibility without shared RNG state between
    threads.
    """

    max_attempts: int = 3
    base_s: float = 100e-6
    multiplier: float = 2.0
    max_backoff_s: float = 10e-3
    jitter: float = 0.5
    seed: int = 2007

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be within [0, 1]")

    def delay(self, request_seq: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of a request."""
        raw = min(self.max_backoff_s,
                  self.base_s * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0:
            return raw
        u = seeded_uniform(self.seed, request_seq * 97 + attempt)
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass(frozen=True)
class ServicePolicy:
    """Every knob of one :class:`ClassificationService`.

    Grouped by concern; see ``docs/serving.md`` for the tuning guide.
    """

    # -- admission ---------------------------------------------------------
    #: Maximum concurrently admitted (in-flight) requests; beyond this
    #: the request is shed with reason ``queue_full``.
    max_in_flight: int = 64
    #: Sustained admission rate; ``None`` disables the token bucket.
    rate_limit_per_s: float | None = None
    #: Token-bucket burst capacity.
    burst: int = 32

    # -- deadlines ---------------------------------------------------------
    #: Deadline applied when the caller does not pass one; ``None``
    #: means no default deadline.
    default_deadline_s: float | None = None

    # -- retries -----------------------------------------------------------
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    # -- circuit breaker ---------------------------------------------------
    #: Rolling window length (completed calls) per replica.
    breaker_window: int = 32
    #: Calls required in the window before rates are trusted.
    breaker_min_calls: int = 8
    #: Failure fraction that opens the breaker.
    failure_rate_threshold: float = 0.5
    #: Slow-call fraction that opens the breaker.
    slow_call_rate_threshold: float = 0.8
    #: A call at or above this duration counts as slow.
    slow_call_s: float = 1e-3
    #: Time the breaker stays open before probing half-open.
    open_s: float = 50e-3
    #: Successful half-open probes required to close again.
    half_open_probes: int = 3

    # -- differential checking --------------------------------------------
    #: Shadow every answered request on the standby replica and count
    #: divergences (a runtime differential check).
    shadow: bool = False
    #: Check every answered request against the linear oracle over the
    #: serving replica's live rules (exactness audit; costs a scan).
    oracle_check: bool = False

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1")
        if self.rate_limit_per_s is not None and self.rate_limit_per_s <= 0:
            raise ConfigurationError("rate_limit_per_s must be positive")
        if self.burst < 1:
            raise ConfigurationError("burst must be >= 1")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigurationError("default_deadline_s must be positive")
        if self.breaker_window < 1 or self.breaker_min_calls < 1:
            raise ConfigurationError("breaker window/min_calls must be >= 1")
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ConfigurationError("failure_rate_threshold must be in (0, 1]")
        if not 0.0 < self.slow_call_rate_threshold <= 1.0:
            raise ConfigurationError("slow_call_rate_threshold must be in (0, 1]")
        if self.slow_call_s <= 0 or self.open_s <= 0:
            raise ConfigurationError("slow_call_s and open_s must be positive")
        if self.half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")
