"""`ClassificationService`: overload-safe serving over classifier replicas.

The rest of the library answers "is the classification fast and
correct?"; this module answers "does it stay correct and bounded when
the caller is hostile" — too many requests, tight deadlines, replicas
mid-rebuild or faulted.  Every request runs the same pipeline:

1. **Admission** — a bounded in-flight limit plus an optional token
   bucket; excess load is shed immediately with a typed
   :class:`~repro.core.errors.AdmissionRejected` whose ``reason`` is
   counted under ``serve.shed.<reason>``.  Shedding early is the point:
   a request that cannot meet its deadline anyway should cost nothing.
2. **Deadline** — each admitted request gets a
   :class:`~repro.core.budget.Deadline`; it is checked before every
   attempt and *after* the answer is produced, so the service returns
   :class:`~repro.core.errors.DeadlineExceeded` rather than a late
   (stale-to-the-SLO) answer.
3. **Retry + failover** — transient failures (snapshot loads, rebuild
   windows, injected SRAM channel faults) are retried with capped
   exponential backoff and deterministic seeded jitter; each attempt is
   routed to the first replica whose circuit breaker admits it.
4. **Circuit breaking** — per-replica closed/open/half-open breakers
   trip on failure-rate or slow-call-rate (a budget-degraded linear
   slow path counts as slow), removing a degraded replica from rotation
   until its half-open probes succeed.
5. **Differential checking** — optional shadowing of every answer on
   the standby replica, and an optional linear-oracle audit, both
   feeding divergence counters: the runtime analogue of the test
   suite's equivalence checks.

The service is thread-safe: one lock serialises structure access (the
overlay/rebuild machinery of :class:`UpdatableClassifier` is not safe
under concurrent mutation) and a condition variable lets
:meth:`ClassificationService.stop` drain in-flight requests before
snapshotting state through :mod:`repro.harness.snapshots`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from ..classifiers.updates import UpdatableClassifier
from ..core.budget import Deadline
from ..core.errors import (
    ChannelOfflineError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceeded,
    RetriesExhausted,
    SnapshotError,
    TransientServiceError,
)
from ..core.rule import Rule
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.span import NULL_STAGE_TIMER, StageTimer
from .admission import AdmissionGate
from .breaker import CircuitBreaker
from .policy import ServicePolicy

#: Failure classes the retry policy absorbs; anything else propagates
#: (a programming mistake must not be retried into the logs).
RETRYABLE_ERRORS = (TransientServiceError, ChannelOfflineError, SnapshotError)


class Replica:
    """One serving endpoint: a classifier plus its circuit breaker.

    ``fault_hook(now)`` is the injection point for the soak harness and
    tests: called before every lookup with the current clock reading, it
    may raise a retryable error (modelling an SRAM channel outage or a
    rebuild window) and may advance a :class:`ManualClock` to model
    service time.  Production replicas leave it ``None``.
    """

    def __init__(self, name: str, classifier,
                 fault_hook: Callable[[float], None] | None = None) -> None:
        self.name = name
        self.classifier = classifier
        self.fault_hook = fault_hook
        self.breaker: CircuitBreaker | None = None  # wired by the service

    def is_degraded(self) -> bool:
        """Serving off the linear slow path (budget-degraded swap)?"""
        return getattr(self.classifier, "degradation", None) == "linear"

    def lookup(self, header: Sequence[int], now: float) -> int | None:
        if self.fault_hook is not None:
            self.fault_hook(now)
        return self.classifier.classify(header)


class ClassificationService:
    """Front one or more classifier replicas with robustness policy.

    ``replicas`` may be :class:`Replica` objects or bare classifiers
    (wrapped and named ``replica0``, ``replica1``, ...).  All updates go
    through the service so every replica sees the same rule list.
    """

    def __init__(self, replicas: Sequence[Replica | object],
                 policy: ServicePolicy | None = None,
                 clock: Callable[[], float] | None = None,
                 sleep: Callable[[float], None] | None = None,
                 stage_timer: StageTimer | None = None) -> None:
        if not replicas:
            raise ConfigurationError("need at least one replica")
        self.policy = policy or ServicePolicy()
        self._clock = clock or time.monotonic
        self._sleep = sleep or time.sleep
        # Stage attribution is opt-in: without a timer the shared null
        # timer makes every span a no-op (see repro.obs.span).
        self.stages = stage_timer or NULL_STAGE_TIMER
        self.replicas: list[Replica] = []
        for idx, rep in enumerate(replicas):
            if not isinstance(rep, Replica):
                rep = Replica(f"replica{idx}", rep)
            rep.breaker = CircuitBreaker(self.policy, clock=self._clock,
                                         name=rep.name)
            self.replicas.append(rep)
        # The serving layer observes itself even when process metrics
        # are off: its counters are the interface the acceptance checks
        # (zero divergences, nonzero sheds) read.
        self.metrics = MetricsRegistry()
        self._serve = self.metrics.scope("serve")
        bucket = None
        if self.policy.rate_limit_per_s is not None:
            from .policy import TokenBucket

            bucket = TokenBucket(self.policy.rate_limit_per_s,
                                 self.policy.burst, clock=self._clock)
        # Admission (shed early, shed typed) is shared with the fabric;
        # the gate owns the lock so structure access below serialises
        # under the same lock admission decisions take.
        self._gate = AdmissionGate(self._serve, self.policy.max_in_flight,
                                   bucket=bucket)
        self._lock = self._gate.lock

    # -- the request pipeline ---------------------------------------------

    def classify(self, header: Sequence[int],
                 deadline_s: float | None = None) -> int | None:
        """First-match rule index for ``header`` under full policy.

        Raises :class:`AdmissionRejected` (shed), :class:`DeadlineExceeded`,
        :class:`CircuitOpenError` (no replica available) or
        :class:`RetriesExhausted`; any answer actually returned was
        produced within the deadline by a breaker-approved replica.
        """
        with self.stages.span("admission"):
            seq = self._gate.admit()
        try:
            budget = (self.policy.default_deadline_s
                      if deadline_s is None else deadline_s)
            deadline = Deadline(budget, clock=self._clock)
            return self._classify_admitted(header, seq, deadline)
        finally:
            self._gate.release()

    def _classify_admitted(self, header, seq: int,
                           deadline: Deadline) -> int | None:
        retry = self.policy.retry
        last_error: BaseException | None = None
        failed_here: set[int] = set()
        for attempt in range(1, retry.max_attempts + 1):
            try:
                deadline.check()
            except DeadlineExceeded:
                self._serve.counter("deadline_exceeded").inc()
                raise
            try:
                replica = self._pick_replica(failed_here)
            except CircuitOpenError:
                # A breaker may reach half-open after the cool-down, so
                # an all-open moment is itself a transient condition.
                if attempt >= retry.max_attempts:
                    raise
                self._serve.counter("retries").inc()
                self._backoff(retry.delay(seq, attempt), deadline)
                continue
            start = self._clock()
            try:
                with self.stages.span("classify"), self._lock:
                    result = replica.lookup(header, start)
                    # Capture the differential answers under the SAME
                    # lock hold as the lookup: an update landing between
                    # lookup and audit would otherwise be compared
                    # against a newer rule list and flagged as a false
                    # divergence.
                    audit = self._capture_audit(replica, header)
            except RETRYABLE_ERRORS as exc:
                elapsed = self._clock() - start
                with self._lock:
                    replica.breaker.record_failure(elapsed)
                self._serve.counter("transient_failures").inc()
                failed_here.add(id(replica))
                last_error = exc
                if attempt < retry.max_attempts:
                    self._serve.counter("retries").inc()
                    self._backoff(retry.delay(seq, attempt), deadline)
                continue
            elapsed = self._clock() - start
            with self._lock:
                replica.breaker.record_success(elapsed,
                                               degraded=replica.is_degraded())
            try:
                deadline.check()
            except DeadlineExceeded:
                # Too late: the caller's SLO is gone, a late answer is a
                # wrong answer.  Count it, drop it, raise typed.
                self._serve.counter("deadline_exceeded").inc()
                raise
            with self.stages.span("audit"):
                self._check_audit(audit, result)
            self._serve.counter("served").inc()
            self._serve.log_histogram("latency_us").observe(elapsed * 1e6)
            return result
        self._serve.counter("retries_exhausted").inc()
        raise RetriesExhausted(
            f"no replica answered within {retry.max_attempts} attempts "
            f"(last: {last_error!r})",
            attempts=retry.max_attempts, last=last_error,
        )

    def _pick_replica(self, failed_here: set[int] = frozenset()) -> Replica:
        """First breaker-approved replica in priority order.

        ``failed_here`` holds replicas that already failed *this*
        request: a retry prefers a fresh replica (per-request failover)
        and only returns to a failed one when nothing else is allowed.
        """
        with self._lock:
            fallback: tuple[int, Replica] | None = None
            for idx, replica in enumerate(self.replicas):
                if not replica.breaker.allow():
                    continue
                if id(replica) in failed_here:
                    if fallback is None:
                        fallback = (idx, replica)
                    continue
                if idx > 0:
                    self._serve.counter("failovers").inc()
                return replica
            if fallback is not None:
                idx, replica = fallback
                if idx > 0:
                    self._serve.counter("failovers").inc()
                return replica
        self._serve.counter("breaker_open_rejections").inc()
        raise CircuitOpenError(
            f"all {len(self.replicas)} replica breakers are open")

    def _backoff(self, delay: float, deadline: Deadline) -> None:
        """Sleep before a retry, never past the deadline."""
        remaining = deadline.remaining()
        if remaining != float("inf"):
            delay = min(delay, remaining)
        if delay > 0:
            with self.stages.span("backoff"):
                self._sleep(delay)

    def _capture_audit(self, replica: Replica, header) -> dict:
        """Gather the differential answers (policy-gated).

        Must run under the same lock hold that produced the primary
        answer, so shadow and oracle see the exact rule state the answer
        was served from.  Counter increments are deferred to
        :meth:`_check_audit` so a deadline-dropped answer is never
        counted as audited.
        """
        audit: dict = {}
        if self.policy.shadow and len(self.replicas) > 1:
            standby = next(r for r in self.replicas if r is not replica)
            try:
                audit["shadow"] = standby.classifier.classify(header)
            except Exception:
                audit["shadow_error"] = True
        if self.policy.oracle_check and isinstance(replica.classifier,
                                                   UpdatableClassifier):
            audit["oracle"] = (replica.classifier.current_ruleset()
                               .first_match(header))
        return audit

    def _check_audit(self, audit: dict, result: int | None) -> None:
        """Compare the captured differential answers; count divergences."""
        if "shadow_error" in audit:
            self._serve.counter("shadow.checks").inc()
            self._serve.counter("shadow.errors").inc()
        elif "shadow" in audit:
            self._serve.counter("shadow.checks").inc()
            if audit["shadow"] != result:
                self._serve.counter("shadow.divergences").inc()
        if "oracle" in audit:
            self._serve.counter("oracle.checks").inc()
            if audit["oracle"] != result:
                self._serve.counter("oracle.divergences").inc()

    # -- updates (applied to every replica) --------------------------------

    def insert(self, rule: Rule, position: int | None = None) -> int:
        with self._lock:
            used = None
            for replica in self.replicas:
                used = replica.classifier.insert(rule, position)
                if position is None:
                    position = used  # keep replicas' priorities aligned
            return used

    def remove(self, position: int) -> Rule:
        with self._lock:
            removed = None
            for replica in self.replicas:
                removed = replica.classifier.remove(position)
            return removed

    def rebuild(self) -> bool:
        with self._lock:
            return all(replica.classifier.rebuild()
                       for replica in self.replicas)

    def poll(self) -> None:
        """Periodic health tick: give deferred rebuild retries a chance.

        A low-write-rate service never crosses the rebuild threshold, so
        :meth:`UpdatableClassifier.poll` is how its wall-clock retry
        interval actually fires.
        """
        with self._lock:
            for replica in self.replicas:
                poll = getattr(replica.classifier, "poll", None)
                if poll is not None:
                    poll()

    # -- lifecycle ---------------------------------------------------------

    def stop(self, drain: bool = True, snapshot_path=None,
             drain_timeout_s: float = 5.0) -> dict:
        """Stop serving: drain in-flight requests, reject new ones.

        With ``drain=True`` new requests are shed (``stopping``) while
        in-flight ones finish; ``drain_timeout_s`` bounds the wait in
        *real* seconds (drain waits on OS threads, so the injectable
        clock deliberately does not govern it).  With ``snapshot_path``
        set, final state — the live rule list and the service's metric
        counters — is persisted through the verified snapshot store, so
        a restart can rebuild exactly what was serving.

        Returns a summary dict (also the snapshot payload).
        """
        with self._lock:
            self._gate.begin_drain()
            with self.stages.span("drain"):
                drained = (self._gate.wait_drained(drain_timeout_s) if drain
                           else self._gate.in_flight == 0)
            self._gate.mark_stopped()
            state = {
                "rules": list(self.replicas[0].classifier.rules),
                "drained": drained,
                "stopped_at": self._clock(),
                "metrics": self.metrics.snapshot(),
                "replicas": {
                    r.name: {
                        "breaker": r.breaker.state,
                        "degradation": getattr(r.classifier, "degradation",
                                               None),
                    }
                    for r in self.replicas
                },
            }
        if snapshot_path is not None:
            from ..harness.cache import CACHE_VERSION
            from ..harness.snapshots import write_snapshot

            write_snapshot(snapshot_path, state, kind="serve-state",
                           cache_version=CACHE_VERSION)
        return state

    # -- reporting ---------------------------------------------------------

    def counter(self, name: str) -> int | float:
        """Convenience read of one ``serve.*`` counter value."""
        return self.metrics.counter(f"serve.{name}").value

    def report(self) -> dict:
        """JSON-friendly view: metrics plus per-replica breaker history."""
        with self._lock:
            return {
                "metrics": self.metrics.snapshot(),
                "replicas": {
                    r.name: {
                        "state": r.breaker.state,
                        "open_count": r.breaker.open_count(),
                        "transitions": [
                            (t.at, t.from_state, t.to_state, t.reason)
                            for t in r.breaker.transitions
                        ],
                        "degradation": getattr(r.classifier, "degradation",
                                               None),
                    }
                    for r in self.replicas
                },
            }

    def publish_metrics(self) -> None:
        """Fold the private registry into the process registry (if on)."""
        registry = get_registry()
        if registry is not None:
            registry.merge(self.metrics)
