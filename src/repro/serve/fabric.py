"""Sharded, crash-tolerant multi-process serving fabric.

The single-process :class:`~repro.serve.service.ClassificationService`
survives hostile *load*; this module survives hostile *processes*.  The
ruleset is range-partitioned on the source-IP dimension into shards,
each served by a supervised worker process
(:mod:`repro.serve.transport`, :mod:`repro.serve.supervisor`) that is
expendable by design: SIGKILL any worker at any instant and the fabric
sheds that shard's traffic with a typed reason while supervision
restarts it warm from its content-verified snapshot.

**Routing is correctness-preserving.**  Shard ``i`` owns the dim-0
value range ``[start_i, end_i]`` and receives every rule whose dim-0
interval *overlaps* that range (wildcard rules replicate to all
shards).  A header routes by its dim-0 value, and any rule matching the
header necessarily contains that value, hence overlaps the routed
shard's range, hence lives on that shard — so the shard-local first
match (mapped through the shard's ``global_map``) *is* the global first
match.  The in-lock linear-oracle audit re-proves this on live traffic.

Routing by source address is also the fabric's **flow affinity**: every
packet of a flow carries the same source IP, so a flow always lands on
the same worker and observes monotone rule-version history even while
other shards restart.

Failure handling lifts the service's machinery to fabric level:

- admission (in-flight bound + token bucket + drain/stop) through the
  shared :class:`~repro.serve.admission.AdmissionGate`, counted under
  ``fabric.*``;
- a per-shard :class:`~repro.serve.breaker.CircuitBreaker` — a dead or
  restarting shard *sheds* (:class:`~repro.core.errors.ShardUnavailable`,
  reason ``shard_down``) and trips its breaker instead of blocking the
  caller behind the restart;
- supervision restarts with exponential backoff under a crash-loop
  budget; a corrupt snapshot is quarantined, rebuilt cold, and the
  fabric re-publishes a healthy snapshot from its kept base.

**Live rule updates** propagate with epoch consistency
(:meth:`Fabric.apply_updates`): each update batch bumps a fabric-wide
monotonic epoch, is translated into shard-local edits, applied to the
parent's kept bases, persisted as a chained delta record next to each
shard's snapshot (:mod:`repro.harness.snapshots`), and fanned to the
workers over the existing pipes.  Workers apply batches strictly in
epoch order (duplicates drop, gaps buffer), report their applied epoch
on every pong and classify result, and answers are oracle-audited
against exactly the rule version they were served at — a lagging worker
is *stale*, never *wrong*.  A restarted worker replays base + deltas
before rejoining; a worker lagging beyond the retained op history is
reseeded and recycled.  Anti-entropy (:meth:`Fabric.pump_updates`, run
from :meth:`Fabric.tick`) re-sends missed epochs, so lost, duplicated
or reordered update messages delay convergence but never corrupt it.

Deliberate non-goals (see ``docs/serving.md``): the fabric does not do
deadlines or retries — those belong to the caller-facing service
layer.  A down shard never blocks: the caller retries after
supervision recovers it.
"""

from __future__ import annotations

import dataclasses
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..classifiers import ALGORITHMS
from ..classifiers.updates import UpdatableClassifier
from ..core.budget import BuildBudget
from ..core.errors import (
    AdmissionRejected,
    ConfigurationError,
    ShardUnavailable,
    UpdateError,
)
from ..core.fields import FIELD_WIDTHS
from ..core.rule import Rule, RuleSet
from ..npsim.faults import UPDATE_FAULT_KINDS
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.span import NULL_STAGE_TIMER, StageTimer
from .admission import AdmissionGate
from .breaker import CircuitBreaker
from .policy import ServicePolicy
from .supervisor import RUNNING, SupervisionPolicy, Supervisor
from .transport import (
    SHARD_DELTA_KIND,
    ShardSpec,
    apply_shard_ops,
    write_shard_snapshot,
)


@dataclass(frozen=True)
class ShardPlan:
    """Range partition of a ruleset over one header dimension.

    ``bounds[i]`` is shard ``i``'s closed value range on ``dim`` and
    ``assignments[i]`` the global indices of the rules whose ``dim``
    interval overlaps it, in global priority order.
    """

    dim: int
    bounds: tuple[tuple[int, int], ...]
    assignments: tuple[tuple[int, ...], ...]

    @classmethod
    def build(cls, rules: Sequence[Rule], num_shards: int,
              dim: int = 0) -> "ShardPlan":
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if not 0 <= dim < len(FIELD_WIDTHS):
            raise ConfigurationError(f"no header dimension {dim}")
        span = 1 << FIELD_WIDTHS[dim]
        if num_shards > span:
            raise ConfigurationError(
                f"cannot cut a {FIELD_WIDTHS[dim]}-bit dimension "
                f"into {num_shards} shards")
        width = span // num_shards
        bounds = []
        for i in range(num_shards):
            lo = i * width
            hi = span - 1 if i == num_shards - 1 else (i + 1) * width - 1
            bounds.append((lo, hi))
        assignments: list[tuple[int, ...]] = []
        for lo, hi in bounds:
            picked = tuple(
                idx for idx, rule in enumerate(rules)
                if rule.intervals[dim].lo <= hi and rule.intervals[dim].hi >= lo
            )
            assignments.append(picked)
        return cls(dim, tuple(bounds), tuple(assignments))

    @property
    def num_shards(self) -> int:
        return len(self.bounds)

    def route(self, header: Sequence[int]) -> int:
        """The shard owning ``header`` (by its ``dim`` value)."""
        value = header[self.dim]
        starts = [lo for lo, _ in self.bounds]
        return min(bisect_right(starts, value) - 1, self.num_shards - 1)

    def replication_factor(self) -> float:
        """Mean copies per rule (1.0 = perfect cut, N = all wildcards)."""
        total_rules = max(1, len({i for a in self.assignments for i in a}))
        return sum(len(a) for a in self.assignments) / total_rules


class Fabric:
    """Front a ruleset with supervised, sharded worker processes.

    Thread-safe under the same single-lock discipline as the service:
    the admission gate's lock serialises routing, breaker updates,
    supervision and the oracle audit.  Construction builds each shard's
    structure once, publishes it as a verified snapshot (so worker
    starts — including every restart — are warm), then spawns the
    workers.
    """

    def __init__(self, rules: Sequence[Rule], snapshot_dir,
                 num_shards: int = 3,
                 policy: ServicePolicy | None = None,
                 supervision: SupervisionPolicy | None = None,
                 algorithm: str = "expcuts",
                 build_params: dict | None = None,
                 budget: BuildBudget | None = None,
                 clock: Callable[[], float] | None = None,
                 charge: Callable[[float], None] | None = None,
                 lookup_cost_s: float = 0.0,
                 start: bool = True,
                 stage_timer: StageTimer | None = None,
                 incremental: bool = True,
                 epoch_history: int = 1024,
                 compact_every: int = 64) -> None:
        """``incremental`` lets shard bases absorb inserts by in-place
        structure edits; ``epoch_history`` bounds how many past epochs
        of oracle copies and per-shard op batches are retained (for
        settled-epoch audits and anti-entropy re-sends — a worker
        lagging further is reseeded and recycled); ``compact_every``
        caps a shard's delta-chain length before its base is
        republished and the chain reset."""
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        if epoch_history < 1:
            raise ConfigurationError("epoch_history must be >= 1")
        if compact_every < 1:
            raise ConfigurationError("compact_every must be >= 1")
        self.policy = policy or ServicePolicy()
        self._clock = clock or time.monotonic
        self.stages = stage_timer or NULL_STAGE_TIMER
        self._charge = charge
        self._lookup_cost_s = lookup_cost_s
        self.rules = list(rules)
        self._oracle = RuleSet(self.rules, name="fabric-oracle")
        self.plan = ShardPlan.build(self.rules, num_shards)
        self.metrics = MetricsRegistry()
        self._fabric = self.metrics.scope("fabric")
        bucket = None
        if self.policy.rate_limit_per_s is not None:
            from .policy import TokenBucket

            bucket = TokenBucket(self.policy.rate_limit_per_s,
                                 self.policy.burst, clock=self._clock)
        self._gate = AdmissionGate(self._fabric, self.policy.max_in_flight,
                                   bucket=bucket)
        self._lock = self._gate.lock

        snapshot_dir = Path(snapshot_dir)
        snapshot_dir.mkdir(parents=True, exist_ok=True)
        build_params = dict(build_params or {})
        self.incremental = incremental
        #: Fabric-wide monotonic update epoch (0 = the built base).
        self.epoch = 0
        self._epoch_history_limit = epoch_history
        self._compact_every = compact_every
        #: Frozen oracle copies per epoch, for settled-epoch audits of
        #: answers served by lagging workers.
        self._oracles: dict[int, RuleSet] = {0: RuleSet(list(self.rules),
                                                        name="oracle@0")}
        #: Per-shard retained op batches, for anti-entropy re-sends.
        self._shard_ops_history: dict[str, dict[int, tuple]] = {}
        #: Per-shard delta-chain cursor: base/prev payload hashes and
        #: the live delta paths (swept on compaction).
        self._delta_chain: dict[str, dict] = {}
        #: Armed control-plane faults (see :meth:`inject_update_fault`).
        self._armed_update_faults: dict[str, list[str]] = {}
        #: Updates held back by an armed ``reorder_update``.
        self._held_updates: dict[str, list[tuple[int, tuple]]] = {}
        self.specs: list[ShardSpec] = []
        self._bases: dict[str, object] = {}
        self._shard_map: dict[str, list[int]] = {}
        self.breakers: dict[str, CircuitBreaker] = {}
        for i, assignment in enumerate(self.plan.assignments):
            name = f"shard{i}"
            spec = ShardSpec(
                name=name,
                rules=tuple(self.rules[g] for g in assignment),
                global_map=tuple(assignment),
                snapshot_path=str(snapshot_dir / f"{name}.snap"),
                algorithm=algorithm,
                build_params=build_params,
                budget=budget,
                incremental=incremental,
            )
            self.specs.append(spec)
            self._shard_map[name] = list(assignment)
            self._shard_ops_history[name] = {}
            self._publish_shard(spec)
            self.breakers[name] = CircuitBreaker(self.policy,
                                                 clock=self._clock, name=name)
        self.supervisor = Supervisor(
            self.specs,
            policy=supervision,
            clock=self._clock,
            charge=charge,
            metrics=self._fabric,
            reseed_snapshot=self._reseed_shard,
            stage_timer=self.stages,
        )
        if start:
            self.supervisor.start()

    # -- snapshot publication ----------------------------------------------

    def _publish_shard(self, spec: ShardSpec) -> None:
        """Build the shard's structure and publish it as its snapshot.

        The built base is kept in the parent so a corruption-triggered
        cold restart can be healed by re-publishing from memory rather
        than paying a second build.  The spec is refreshed to the
        fabric's current epoch first, so the published image and any
        future cold build agree on what epoch they represent; the
        republished base starts a fresh delta chain, and deltas of the
        previous base (now unreplayable) are swept.
        """
        base = self._bases.get(spec.name)
        if base is None:
            ruleset = RuleSet(list(spec.rules), name=f"shard-{spec.name}")
            base = UpdatableClassifier(
                ruleset, ALGORITHMS[spec.algorithm],
                rebuild_threshold=spec.rebuild_threshold,
                budget=spec.budget, degrade=True,
                incremental=spec.incremental, **spec.build_params)
            self._bases[spec.name] = base
        spec = self._refresh_spec(spec.name)
        header = write_shard_snapshot(Path(spec.snapshot_path), spec, base)
        self._sweep_deltas(spec.name)
        self._delta_chain[spec.name] = {
            "base_sha": header.sha256, "prev_sha": header.sha256,
            "paths": [],
        }

    def _refresh_spec(self, name: str) -> ShardSpec:
        """Re-derive one shard's spec from the parent's live state
        (current rules, global map, epoch) and install it everywhere a
        future worker start would read it."""
        index = next(i for i, s in enumerate(self.specs) if s.name == name)
        base = self._bases[name]
        spec = dataclasses.replace(
            self.specs[index],
            rules=tuple(base.rules),
            global_map=tuple(self._shard_map[name]),
            epoch=self.epoch,
        )
        self.specs[index] = spec
        supervisor = getattr(self, "supervisor", None)
        if supervisor is not None:
            supervisor.refresh_spec(name, spec)
        return spec

    def _sweep_deltas(self, name: str) -> None:
        """Delete the delta files of a shard's superseded base."""
        state = self._delta_chain.get(name)
        stale = list(state["paths"]) if state else []
        if not stale:
            # No cursor yet (first publish): sweep by glob so a reused
            # snapshot directory cannot leak another run's records.
            path = Path(self._spec(name).snapshot_path)
            stale = sorted(path.parent.glob(f"{path.name}.*.delta"))
        for old in stale:
            try:
                Path(old).unlink()
            except OSError:
                pass

    def _spec(self, name: str) -> ShardSpec:
        return next(s for s in self.specs if s.name == name)

    def _reseed_shard(self, spec: ShardSpec) -> None:
        """Supervision callback after a corrupt-snapshot cold start."""
        self._publish_shard(spec)
        self._fabric.counter("snapshot_reseeds").inc()

    # -- live rule updates -------------------------------------------------

    def apply_updates(self, ops: Sequence[tuple]) -> int:
        """Apply one batch of global rule edits as a new update epoch.

        ``ops`` is an ordered sequence of ``("insert", position, rule)``
        / ``("remove", position)`` against the evolving global rule
        list.  The batch is atomic from the fabric's point of view: the
        global list, the oracle history, every shard's kept base, the
        persisted delta chain and the fan-out all advance to the same
        new epoch under the request lock.  Returns that epoch.

        Workers converge asynchronously — a request served meanwhile is
        audited against the epoch its worker had applied, and
        :meth:`pump_updates` (run from :meth:`tick`) re-sends anything
        lost on the way.
        """
        with self._lock:
            return self._apply_updates_locked(ops)

    def _apply_updates_locked(self, ops: Sequence[tuple]) -> int:
        epoch = self.epoch + 1
        shard_ops: dict[str, list[tuple]] = {s.name: [] for s in self.specs}
        for op in ops:
            if not op or op[0] not in ("insert", "remove"):
                raise UpdateError(f"unknown update op {op!r}")
            if op[0] == "insert":
                _, position, rule = op
                if not 0 <= position <= len(self.rules):
                    raise UpdateError(f"position {position} out of range")
                self.rules.insert(position, rule)
                interval = rule.intervals[self.plan.dim]
                for i, spec in enumerate(self.specs):
                    lo, hi = self.plan.bounds[i]
                    gmap = self._shard_map[spec.name]
                    if interval.lo <= hi and interval.hi >= lo:
                        local = bisect_left(gmap, position)
                        shard_op = ("insert", local, rule, position)
                    else:
                        shard_op = ("shift", position, 1)
                    shard_ops[spec.name].append(shard_op)
                    apply_shard_ops(self._bases[spec.name], gmap, (shard_op,))
            else:
                _, position = op
                if not 0 <= position < len(self.rules):
                    raise UpdateError(f"position {position} out of range")
                self.rules.pop(position)
                for spec in self.specs:
                    gmap = self._shard_map[spec.name]
                    local = bisect_left(gmap, position)
                    if local < len(gmap) and gmap[local] == position:
                        shard_op = ("remove", local, position)
                    else:
                        shard_op = ("shift", position, -1)
                    shard_ops[spec.name].append(shard_op)
                    apply_shard_ops(self._bases[spec.name], gmap, (shard_op,))
        # Every view advanced together: commit the epoch, persist and fan
        # out.  (Validation errors above leave a partial batch unapplied
        # by design only for the *failing* op onward — callers treat an
        # UpdateError as fatal for the batch source, not retryable.)
        self.epoch = epoch
        self._oracles[epoch] = RuleSet(list(self.rules),
                                       name=f"oracle@{epoch}")
        while len(self._oracles) > self._epoch_history_limit:
            self._oracles.pop(next(iter(self._oracles)))
        for spec in self.specs:
            name = spec.name
            batch = tuple(shard_ops[name])
            history = self._shard_ops_history[name]
            history[epoch] = batch
            while len(history) > self._epoch_history_limit:
                history.pop(next(iter(history)))
            self._write_delta(spec, epoch, batch)
            self._send_update(name, epoch, batch)
            armed = self._armed_update_faults.get(name, [])
            if "crash_mid_compaction" in armed:
                armed.remove("crash_mid_compaction")
                self._compact_shard(name, crash=True)
            elif len(self._delta_chain[name]["paths"]) >= self._compact_every:
                self._compact_shard(name)
        self._fabric.counter("updates_applied").inc(len(ops))
        self._fabric.counter("epochs").inc()
        self._fabric.gauge("epoch").set(epoch)
        return epoch

    def _write_delta(self, spec: ShardSpec, epoch: int, batch: tuple) -> None:
        """Persist one epoch's shard-local batch as a chained delta."""
        from ..harness.cache import CACHE_VERSION
        from ..harness.snapshots import delta_path, write_delta

        state = self._delta_chain[spec.name]
        path = delta_path(Path(spec.snapshot_path), epoch)
        header = write_delta(path, list(batch), kind=SHARD_DELTA_KIND,
                             cache_version=CACHE_VERSION, epoch=epoch,
                             base_sha=state["base_sha"],
                             prev_sha=state["prev_sha"])
        state["prev_sha"] = header.sha256
        state["paths"].append(path)
        armed = self._armed_update_faults.get(spec.name, [])
        if "corrupt_delta" in armed:
            armed.remove("corrupt_delta")
            raw = bytearray(path.read_bytes())
            raw[-1] ^= 0xFF
            path.write_bytes(bytes(raw))
            self._fabric.counter("update_faults.corrupt_delta").inc()

    def _send_update(self, shard: str, epoch: int, batch: tuple) -> None:
        """Fan one epoch to one worker, applying any armed send fault."""
        armed = self._armed_update_faults.get(shard, [])
        fault = next((k for k in ("lose_update", "dup_update",
                                  "reorder_update") if k in armed), None)
        if fault is not None:
            armed.remove(fault)
            self._fabric.counter(f"update_faults.{fault}").inc()
        if fault == "lose_update":
            return
        if fault == "reorder_update":
            self._held_updates.setdefault(shard, []).append((epoch, batch))
            return
        sends = [(epoch, batch)]
        if fault == "dup_update":
            sends.append((epoch, batch))
        # A held (reordered) epoch rides out *after* this newer one, so
        # the worker sees them out of order and must buffer the gap.
        sends.extend(self._held_updates.pop(shard, ()))
        for send_epoch, send_batch in sends:
            self.supervisor.send_update(shard, send_epoch, list(send_batch))

    def _compact_shard(self, name: str, crash: bool = False) -> None:
        """Republish the shard's base at the current epoch and reset its
        delta chain (the persistence analogue of the classifier-level
        compaction).  ``crash=True`` is the chaos hook: the new base is
        published but the worker is killed before the stale deltas are
        swept — the restart must reject them by base-hash mismatch."""
        self._publish_shard(self._spec(name))
        self._fabric.counter("delta_compactions").inc()
        if crash:
            self._fabric.counter("update_faults.crash_mid_compaction").inc()
            self.supervisor.recycle(name, "crash_mid_compaction")

    def inject_update_fault(self, shard: str, kind: str) -> None:
        """Arm one control-plane fault against ``shard``'s next update
        activity (chaos hook; see
        :data:`repro.npsim.faults.UPDATE_FAULT_KINDS`)."""
        if kind not in UPDATE_FAULT_KINDS:
            raise ConfigurationError(f"unknown update fault kind {kind!r}")
        if shard not in self._shard_map:
            raise ConfigurationError(f"unknown shard {shard!r}")
        self._armed_update_faults.setdefault(shard, []).append(kind)

    def pump_updates(self, now: float | None = None) -> None:
        """Anti-entropy: re-send missed epochs to lagging workers.

        Runs under the caller's lock (from :meth:`tick`).  A worker
        whose applied epoch fell behind the retained op history cannot
        be repaired over the pipe: its shard is compacted (base
        republished at the current epoch) and the worker recycled so it
        restarts warm on the fresh base.
        """
        for spec in self.specs:
            name = spec.name
            handle = self.supervisor.handles[name]
            if handle.state != RUNNING or handle.applied_epoch >= self.epoch:
                continue
            history = self._shard_ops_history[name]
            missing = range(handle.applied_epoch + 1, self.epoch + 1)
            if all(e in history for e in missing):
                for e in missing:
                    if not self.supervisor.send_update(name, e,
                                                       list(history[e]), now):
                        break
                self._fabric.counter("update_repairs").inc()
            else:
                self._compact_shard(name)
                self.supervisor.recycle(name, "stale_epoch", now)
                self._fabric.counter("stale_recycles").inc()

    def rebuild_backlog(self) -> int:
        """Un-absorbed update work across the parent's shard bases
        (overlay entries + tombstones + tripped garbage watermarks).
        Zero means every structure is settled."""
        return sum(base.rebuild_backlog for base in self._bases.values())

    def max_epoch_lag(self) -> int:
        """Worst staleness across running workers, in epochs."""
        lags = [self.epoch - h.applied_epoch
                for h in self.supervisor.handles.values()
                if h.state == RUNNING]
        return max(lags, default=0)

    def settle(self, now: float | None = None) -> dict:
        """Drain update state: compact shards with outstanding backlog
        or live delta chains, then pump lagging workers.  Returns the
        post-settle backlog view (the update-storm soak's drain bar)."""
        with self._lock:
            for spec in self.specs:
                base = self._bases[spec.name]
                if base.rebuild_backlog and base.rebuild():
                    base.stats.compactions += 1
                if (self._delta_chain[spec.name]["paths"]
                        or base.rebuild_backlog):
                    self._compact_shard(spec.name)
            self.pump_updates(now)
            return {
                "epoch": self.epoch,
                "rebuild_backlog": self.rebuild_backlog(),
                "max_epoch_lag": self.max_epoch_lag(),
            }

    # -- the request path --------------------------------------------------

    def classify(self, header: Sequence[int]) -> int | None:
        """Global first-match rule index for ``header``.

        Sheds with :class:`~repro.core.errors.AdmissionRejected`
        subclasses; :class:`ShardUnavailable` (reason ``shard_down``)
        when the owning shard is dead, restarting, parked, or its
        breaker is open.  Any answer returned was produced by the owning
        worker and (policy permitting) audited against the full-ruleset
        linear oracle in-lock.
        """
        with self.stages.span("admission"):
            self._gate.admit()
        try:
            with self._lock:
                return self._classify_admitted(header)
        finally:
            self._gate.release()

    def _classify_admitted(self, header: Sequence[int]) -> int | None:
        shard = self.specs[self.plan.route(header)].name
        breaker = self.breakers[shard]
        now = self._clock()
        if not breaker.allow():
            self._shed_shard(shard, "breaker_open")
        if self.supervisor.state(shard) != RUNNING:
            # Dead/restarting/parked: shed and tell the breaker, so a
            # long outage opens the circuit and later requests shed at
            # the breaker without even poking the supervisor.
            breaker.record_failure(0.0)
            phase = {"down": "restarting", "spawning": "restarting",
                     "parked": "parked"}.get(self.supervisor.state(shard),
                                             "down")
            self._shed_shard(shard, phase)
        try:
            with self.stages.span("transport"):
                answers = self.supervisor.request(shard, [tuple(header)], now)
        except ShardUnavailable:
            breaker.record_failure(self._clock() - now)
            self._fabric.counter("shed.shard_down").inc()
            self._fabric.counter("shed_phase.mid_request").inc()
            raise
        cost = self._lookup_cost_s
        if self._charge is not None and cost > 0:
            # The modelled lookup cost is the classify stage; the pipe
            # round trip above is transport (real time, so it reads as
            # zero on a simulated clock — by design).
            with self.stages.span("classify"):
                self._charge(cost)
        elapsed = max(self._clock() - now, cost)
        breaker.record_success(elapsed)
        applied = self.supervisor.handles[shard].applied_epoch
        self._fabric.log_histogram("epoch_lag").observe(
            max(0, self.epoch - applied))
        with self.stages.span("audit"):
            self._audit(header, answers[0], applied)
        self._fabric.counter("served").inc()
        self._fabric.log_histogram("latency_us").observe(elapsed * 1e6)
        return answers[0]

    def _shed_shard(self, shard: str, phase: str) -> None:
        self._fabric.counter("shed.shard_down").inc()
        self._fabric.counter(f"shed_phase.{phase}").inc()
        raise ShardUnavailable(shard, phase)

    def classify_batch(self, headers: Sequence[Sequence[int]]) -> list[dict]:
        """Classify a batch, grouping headers per shard (one pipe round
        trip per shard instead of per header).

        Never raises per-header conditions; returns one outcome dict per
        header, in order: ``{"status": "served", "rule": idx|None}`` or
        ``{"status": "shed", "reason": ..., "shard": ...}``.
        """
        outcomes: list[dict] = [{} for _ in headers]
        groups: dict[str, list[int]] = {}
        admitted = 0
        with self._lock:
            for pos, header in enumerate(headers):
                try:
                    self._gate.admit()
                except AdmissionRejected as exc:
                    outcomes[pos] = {"status": "shed", "reason": exc.reason}
                    continue
                admitted += 1
                shard = self.specs[self.plan.route(header)].name
                groups.setdefault(shard, []).append(pos)
            try:
                for shard, positions in groups.items():
                    batch = [tuple(headers[pos]) for pos in positions]
                    breaker = self.breakers[shard]
                    now = self._clock()
                    try:
                        if not breaker.allow():
                            raise ShardUnavailable(shard, "breaker_open")
                        if self.supervisor.state(shard) != RUNNING:
                            breaker.record_failure(0.0)
                            raise ShardUnavailable(shard, "restarting")
                        with self.stages.span("transport"):
                            answers = self.supervisor.request(shard, batch,
                                                              now)
                    except ShardUnavailable as exc:
                        if exc.phase not in ("breaker_open",):
                            breaker.record_failure(self._clock() - now)
                        self._fabric.counter("shed.shard_down").inc(
                            len(positions))
                        self._fabric.counter(f"shed_phase.{exc.phase}").inc(
                            len(positions))
                        for pos in positions:
                            outcomes[pos] = {"status": "shed",
                                             "reason": "shard_down",
                                             "shard": shard,
                                             "phase": exc.phase}
                        continue
                    cost = self._lookup_cost_s * len(positions)
                    if self._charge is not None and cost > 0:
                        with self.stages.span("classify"):
                            self._charge(cost)
                    breaker.record_success(max(self._clock() - now, cost))
                    applied = self.supervisor.handles[shard].applied_epoch
                    self._fabric.log_histogram("epoch_lag").observe(
                        max(0, self.epoch - applied))
                    with self.stages.span("audit"):
                        for pos, answer in zip(positions, answers):
                            self._audit(headers[pos], answer, applied)
                            outcomes[pos] = {"status": "served",
                                             "rule": answer}
                    self._fabric.counter("served").inc(len(positions))
            finally:
                for _ in range(admitted):
                    self._gate.release()
        return outcomes

    def _audit(self, header, result: int | None,
               applied_epoch: int | None = None) -> None:
        """In-lock differential check against the oracle *at the epoch
        the answering worker had applied* — a lagging worker's answer is
        correct for the rule version it served, so auditing it against a
        newer ruleset would flag staleness as wrongness.  An epoch
        evicted from history cannot be audited and is counted instead.
        """
        if not self.policy.oracle_check:
            return
        if applied_epoch is None or applied_epoch == self.epoch:
            oracle = self._oracle
        else:
            oracle = self._oracles.get(applied_epoch)
            if oracle is None:
                self._fabric.counter("oracle.unauditable").inc()
                return
        self._fabric.counter("oracle.checks").inc()
        want = oracle.first_match(header)
        if want != result:
            self._fabric.counter("oracle.divergences").inc()

    # -- supervision passthrough -------------------------------------------

    def tick(self, now: float | None = None) -> None:
        """Periodic supervision pass (heartbeats due, restarts due),
        followed by update anti-entropy for lagging workers."""
        with self._lock:
            at = self._clock() if now is None else now
            self.supervisor.tick(at)
            self.pump_updates(at)

    def probe(self, shard: str, now: float | None = None) -> bool:
        """Immediately heartbeat one shard; returns liveness."""
        with self._lock:
            return self.supervisor.probe(shard, now)

    # -- lifecycle ---------------------------------------------------------

    def stop(self, drain: bool = True, snapshot_path=None,
             drain_timeout_s: float = 5.0) -> dict:
        """Drain, stop every worker, optionally snapshot fabric state."""
        self._gate.begin_drain()
        with self.stages.span("drain"):
            drained = (self._gate.wait_drained(drain_timeout_s) if drain
                       else self._gate.in_flight == 0)
        self._gate.mark_stopped()
        with self._lock:
            worker_stats = self.supervisor.stop()
            state = {
                "rules": list(self.rules),
                "drained": drained,
                "stopped_at": self._clock(),
                "metrics": self.metrics.snapshot(),
                "workers": worker_stats,
                "supervision": self.supervisor.report(),
            }
        if snapshot_path is not None:
            from ..harness.cache import CACHE_VERSION
            from ..harness.snapshots import write_snapshot

            write_snapshot(snapshot_path, state, kind="fabric-state",
                           cache_version=CACHE_VERSION)
        return state

    # -- reporting ---------------------------------------------------------

    def counter(self, name: str) -> int | float:
        """Convenience read of one ``fabric.*`` counter value."""
        return self.metrics.counter(f"fabric.{name}").value

    def report(self) -> dict:
        """JSON-friendly view: metrics, breakers, supervision, plan."""
        with self._lock:
            return {
                "metrics": self.metrics.snapshot(),
                "updates": {
                    "epoch": self.epoch,
                    "rebuild_backlog": self.rebuild_backlog(),
                    "max_epoch_lag": self.max_epoch_lag(),
                    "applied_epochs": {
                        name: handle.applied_epoch
                        for name, handle in self.supervisor.handles.items()
                    },
                    "delta_chain_lengths": {
                        name: len(state["paths"])
                        for name, state in self._delta_chain.items()
                    },
                },
                "plan": {
                    "num_shards": self.plan.num_shards,
                    "dim": self.plan.dim,
                    "bounds": list(self.plan.bounds),
                    "rules_per_shard": [len(a) for a in
                                        self.plan.assignments],
                    "replication_factor": self.plan.replication_factor(),
                },
                "breakers": {
                    name: {
                        "state": b.state,
                        "open_count": b.open_count(),
                        "transitions": [
                            (t.at, t.from_state, t.to_state, t.reason)
                            for t in b.transitions
                        ],
                    }
                    for name, b in self.breakers.items()
                },
                "supervision": self.supervisor.report(),
                "outages": [
                    {"shard": o.shard, "down_at": o.down_at, "up_at": o.up_at,
                     "why": o.why, "warm": o.warm}
                    for o in self.supervisor.outages
                ],
            }

    def publish_metrics(self) -> None:
        """Fold the private registry into the process registry (if on)."""
        registry = get_registry()
        if registry is not None:
            registry.merge(self.metrics)
