"""Sharded, crash-tolerant multi-process serving fabric.

The single-process :class:`~repro.serve.service.ClassificationService`
survives hostile *load*; this module survives hostile *processes*.  The
ruleset is range-partitioned on the source-IP dimension into shards,
each served by a supervised worker process
(:mod:`repro.serve.transport`, :mod:`repro.serve.supervisor`) that is
expendable by design: SIGKILL any worker at any instant and the fabric
sheds that shard's traffic with a typed reason while supervision
restarts it warm from its content-verified snapshot.

**Routing is correctness-preserving.**  Shard ``i`` owns the dim-0
value range ``[start_i, end_i]`` and receives every rule whose dim-0
interval *overlaps* that range (wildcard rules replicate to all
shards).  A header routes by its dim-0 value, and any rule matching the
header necessarily contains that value, hence overlaps the routed
shard's range, hence lives on that shard — so the shard-local first
match (mapped through the shard's ``global_map``) *is* the global first
match.  The in-lock linear-oracle audit re-proves this on live traffic.

Routing by source address is also the fabric's **flow affinity**: every
packet of a flow carries the same source IP, so a flow always lands on
the same worker and observes monotone rule-version history even while
other shards restart.

Failure handling lifts the service's machinery to fabric level:

- admission (in-flight bound + token bucket + drain/stop) through the
  shared :class:`~repro.serve.admission.AdmissionGate`, counted under
  ``fabric.*``;
- a per-shard :class:`~repro.serve.breaker.CircuitBreaker` — a dead or
  restarting shard *sheds* (:class:`~repro.core.errors.ShardUnavailable`,
  reason ``shard_down``) and trips its breaker instead of blocking the
  caller behind the restart;
- supervision restarts with exponential backoff under a crash-loop
  budget; a corrupt snapshot is quarantined, rebuilt cold, and the
  fabric re-publishes a healthy snapshot from its kept base.

Deliberate non-goals (see ``docs/serving.md``): the fabric does not do
deadlines, retries, or live rule updates — deadlines and retries belong
to the caller-facing service layer, and update propagation across
worker processes is roadmap work.  A down shard never blocks: the
caller retries after supervision recovers it.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..classifiers import ALGORITHMS
from ..classifiers.updates import UpdatableClassifier
from ..core.budget import BuildBudget
from ..core.errors import (
    AdmissionRejected,
    ConfigurationError,
    ShardUnavailable,
)
from ..core.fields import FIELD_WIDTHS
from ..core.rule import Rule, RuleSet
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.span import NULL_STAGE_TIMER, StageTimer
from .admission import AdmissionGate
from .breaker import CircuitBreaker
from .policy import ServicePolicy
from .supervisor import RUNNING, SupervisionPolicy, Supervisor
from .transport import ShardSpec, write_shard_snapshot


@dataclass(frozen=True)
class ShardPlan:
    """Range partition of a ruleset over one header dimension.

    ``bounds[i]`` is shard ``i``'s closed value range on ``dim`` and
    ``assignments[i]`` the global indices of the rules whose ``dim``
    interval overlaps it, in global priority order.
    """

    dim: int
    bounds: tuple[tuple[int, int], ...]
    assignments: tuple[tuple[int, ...], ...]

    @classmethod
    def build(cls, rules: Sequence[Rule], num_shards: int,
              dim: int = 0) -> "ShardPlan":
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if not 0 <= dim < len(FIELD_WIDTHS):
            raise ConfigurationError(f"no header dimension {dim}")
        span = 1 << FIELD_WIDTHS[dim]
        if num_shards > span:
            raise ConfigurationError(
                f"cannot cut a {FIELD_WIDTHS[dim]}-bit dimension "
                f"into {num_shards} shards")
        width = span // num_shards
        bounds = []
        for i in range(num_shards):
            lo = i * width
            hi = span - 1 if i == num_shards - 1 else (i + 1) * width - 1
            bounds.append((lo, hi))
        assignments: list[tuple[int, ...]] = []
        for lo, hi in bounds:
            picked = tuple(
                idx for idx, rule in enumerate(rules)
                if rule.intervals[dim].lo <= hi and rule.intervals[dim].hi >= lo
            )
            assignments.append(picked)
        return cls(dim, tuple(bounds), tuple(assignments))

    @property
    def num_shards(self) -> int:
        return len(self.bounds)

    def route(self, header: Sequence[int]) -> int:
        """The shard owning ``header`` (by its ``dim`` value)."""
        value = header[self.dim]
        starts = [lo for lo, _ in self.bounds]
        return min(bisect_right(starts, value) - 1, self.num_shards - 1)

    def replication_factor(self) -> float:
        """Mean copies per rule (1.0 = perfect cut, N = all wildcards)."""
        total_rules = max(1, len({i for a in self.assignments for i in a}))
        return sum(len(a) for a in self.assignments) / total_rules


class Fabric:
    """Front a ruleset with supervised, sharded worker processes.

    Thread-safe under the same single-lock discipline as the service:
    the admission gate's lock serialises routing, breaker updates,
    supervision and the oracle audit.  Construction builds each shard's
    structure once, publishes it as a verified snapshot (so worker
    starts — including every restart — are warm), then spawns the
    workers.
    """

    def __init__(self, rules: Sequence[Rule], snapshot_dir,
                 num_shards: int = 3,
                 policy: ServicePolicy | None = None,
                 supervision: SupervisionPolicy | None = None,
                 algorithm: str = "expcuts",
                 build_params: dict | None = None,
                 budget: BuildBudget | None = None,
                 clock: Callable[[], float] | None = None,
                 charge: Callable[[float], None] | None = None,
                 lookup_cost_s: float = 0.0,
                 start: bool = True,
                 stage_timer: StageTimer | None = None) -> None:
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        self.policy = policy or ServicePolicy()
        self._clock = clock or time.monotonic
        self.stages = stage_timer or NULL_STAGE_TIMER
        self._charge = charge
        self._lookup_cost_s = lookup_cost_s
        self.rules = list(rules)
        self._oracle = RuleSet(self.rules, name="fabric-oracle")
        self.plan = ShardPlan.build(self.rules, num_shards)
        self.metrics = MetricsRegistry()
        self._fabric = self.metrics.scope("fabric")
        bucket = None
        if self.policy.rate_limit_per_s is not None:
            from .policy import TokenBucket

            bucket = TokenBucket(self.policy.rate_limit_per_s,
                                 self.policy.burst, clock=self._clock)
        self._gate = AdmissionGate(self._fabric, self.policy.max_in_flight,
                                   bucket=bucket)
        self._lock = self._gate.lock

        snapshot_dir = Path(snapshot_dir)
        snapshot_dir.mkdir(parents=True, exist_ok=True)
        build_params = dict(build_params or {})
        self.specs: list[ShardSpec] = []
        self._bases: dict[str, object] = {}
        self.breakers: dict[str, CircuitBreaker] = {}
        for i, assignment in enumerate(self.plan.assignments):
            name = f"shard{i}"
            spec = ShardSpec(
                name=name,
                rules=tuple(self.rules[g] for g in assignment),
                global_map=tuple(assignment),
                snapshot_path=str(snapshot_dir / f"{name}.snap"),
                algorithm=algorithm,
                build_params=build_params,
                budget=budget,
            )
            self.specs.append(spec)
            self._publish_shard(spec)
            self.breakers[name] = CircuitBreaker(self.policy,
                                                 clock=self._clock, name=name)
        self.supervisor = Supervisor(
            self.specs,
            policy=supervision,
            clock=self._clock,
            charge=charge,
            metrics=self._fabric,
            reseed_snapshot=self._reseed_shard,
            stage_timer=self.stages,
        )
        if start:
            self.supervisor.start()

    # -- snapshot publication ----------------------------------------------

    def _publish_shard(self, spec: ShardSpec) -> None:
        """Build the shard's structure and publish it as its snapshot.

        The built base is kept in the parent so a corruption-triggered
        cold restart can be healed by re-publishing from memory rather
        than paying a second build.
        """
        base = self._bases.get(spec.name)
        if base is None:
            ruleset = RuleSet(list(spec.rules), name=f"shard-{spec.name}")
            base = UpdatableClassifier(
                ruleset, ALGORITHMS[spec.algorithm],
                rebuild_threshold=spec.rebuild_threshold,
                budget=spec.budget, degrade=True, **spec.build_params)
            self._bases[spec.name] = base
        write_shard_snapshot(Path(spec.snapshot_path), spec, base)

    def _reseed_shard(self, spec: ShardSpec) -> None:
        """Supervision callback after a corrupt-snapshot cold start."""
        self._publish_shard(spec)
        self._fabric.counter("snapshot_reseeds").inc()

    # -- the request path --------------------------------------------------

    def classify(self, header: Sequence[int]) -> int | None:
        """Global first-match rule index for ``header``.

        Sheds with :class:`~repro.core.errors.AdmissionRejected`
        subclasses; :class:`ShardUnavailable` (reason ``shard_down``)
        when the owning shard is dead, restarting, parked, or its
        breaker is open.  Any answer returned was produced by the owning
        worker and (policy permitting) audited against the full-ruleset
        linear oracle in-lock.
        """
        with self.stages.span("admission"):
            self._gate.admit()
        try:
            with self._lock:
                return self._classify_admitted(header)
        finally:
            self._gate.release()

    def _classify_admitted(self, header: Sequence[int]) -> int | None:
        shard = self.specs[self.plan.route(header)].name
        breaker = self.breakers[shard]
        now = self._clock()
        if not breaker.allow():
            self._shed_shard(shard, "breaker_open")
        if self.supervisor.state(shard) != RUNNING:
            # Dead/restarting/parked: shed and tell the breaker, so a
            # long outage opens the circuit and later requests shed at
            # the breaker without even poking the supervisor.
            breaker.record_failure(0.0)
            phase = {"down": "restarting", "spawning": "restarting",
                     "parked": "parked"}.get(self.supervisor.state(shard),
                                             "down")
            self._shed_shard(shard, phase)
        try:
            with self.stages.span("transport"):
                answers = self.supervisor.request(shard, [tuple(header)], now)
        except ShardUnavailable:
            breaker.record_failure(self._clock() - now)
            self._fabric.counter("shed.shard_down").inc()
            self._fabric.counter("shed_phase.mid_request").inc()
            raise
        cost = self._lookup_cost_s
        if self._charge is not None and cost > 0:
            # The modelled lookup cost is the classify stage; the pipe
            # round trip above is transport (real time, so it reads as
            # zero on a simulated clock — by design).
            with self.stages.span("classify"):
                self._charge(cost)
        elapsed = max(self._clock() - now, cost)
        breaker.record_success(elapsed)
        with self.stages.span("audit"):
            self._audit(header, answers[0])
        self._fabric.counter("served").inc()
        self._fabric.log_histogram("latency_us").observe(elapsed * 1e6)
        return answers[0]

    def _shed_shard(self, shard: str, phase: str) -> None:
        self._fabric.counter("shed.shard_down").inc()
        self._fabric.counter(f"shed_phase.{phase}").inc()
        raise ShardUnavailable(shard, phase)

    def classify_batch(self, headers: Sequence[Sequence[int]]) -> list[dict]:
        """Classify a batch, grouping headers per shard (one pipe round
        trip per shard instead of per header).

        Never raises per-header conditions; returns one outcome dict per
        header, in order: ``{"status": "served", "rule": idx|None}`` or
        ``{"status": "shed", "reason": ..., "shard": ...}``.
        """
        outcomes: list[dict] = [{} for _ in headers]
        groups: dict[str, list[int]] = {}
        admitted = 0
        with self._lock:
            for pos, header in enumerate(headers):
                try:
                    self._gate.admit()
                except AdmissionRejected as exc:
                    outcomes[pos] = {"status": "shed", "reason": exc.reason}
                    continue
                admitted += 1
                shard = self.specs[self.plan.route(header)].name
                groups.setdefault(shard, []).append(pos)
            try:
                for shard, positions in groups.items():
                    batch = [tuple(headers[pos]) for pos in positions]
                    breaker = self.breakers[shard]
                    now = self._clock()
                    try:
                        if not breaker.allow():
                            raise ShardUnavailable(shard, "breaker_open")
                        if self.supervisor.state(shard) != RUNNING:
                            breaker.record_failure(0.0)
                            raise ShardUnavailable(shard, "restarting")
                        with self.stages.span("transport"):
                            answers = self.supervisor.request(shard, batch,
                                                              now)
                    except ShardUnavailable as exc:
                        if exc.phase not in ("breaker_open",):
                            breaker.record_failure(self._clock() - now)
                        self._fabric.counter("shed.shard_down").inc(
                            len(positions))
                        self._fabric.counter(f"shed_phase.{exc.phase}").inc(
                            len(positions))
                        for pos in positions:
                            outcomes[pos] = {"status": "shed",
                                             "reason": "shard_down",
                                             "shard": shard,
                                             "phase": exc.phase}
                        continue
                    cost = self._lookup_cost_s * len(positions)
                    if self._charge is not None and cost > 0:
                        with self.stages.span("classify"):
                            self._charge(cost)
                    breaker.record_success(max(self._clock() - now, cost))
                    with self.stages.span("audit"):
                        for pos, answer in zip(positions, answers):
                            self._audit(headers[pos], answer)
                            outcomes[pos] = {"status": "served",
                                             "rule": answer}
                    self._fabric.counter("served").inc(len(positions))
            finally:
                for _ in range(admitted):
                    self._gate.release()
        return outcomes

    def _audit(self, header, result: int | None) -> None:
        """In-lock differential check against the full-ruleset oracle."""
        if not self.policy.oracle_check:
            return
        self._fabric.counter("oracle.checks").inc()
        want = self._oracle.first_match(header)
        if want != result:
            self._fabric.counter("oracle.divergences").inc()

    # -- supervision passthrough -------------------------------------------

    def tick(self, now: float | None = None) -> None:
        """Periodic supervision pass (heartbeats due, restarts due)."""
        with self._lock:
            self.supervisor.tick(self._clock() if now is None else now)

    def probe(self, shard: str, now: float | None = None) -> bool:
        """Immediately heartbeat one shard; returns liveness."""
        with self._lock:
            return self.supervisor.probe(shard, now)

    # -- lifecycle ---------------------------------------------------------

    def stop(self, drain: bool = True, snapshot_path=None,
             drain_timeout_s: float = 5.0) -> dict:
        """Drain, stop every worker, optionally snapshot fabric state."""
        self._gate.begin_drain()
        with self.stages.span("drain"):
            drained = (self._gate.wait_drained(drain_timeout_s) if drain
                       else self._gate.in_flight == 0)
        self._gate.mark_stopped()
        with self._lock:
            worker_stats = self.supervisor.stop()
            state = {
                "rules": list(self.rules),
                "drained": drained,
                "stopped_at": self._clock(),
                "metrics": self.metrics.snapshot(),
                "workers": worker_stats,
                "supervision": self.supervisor.report(),
            }
        if snapshot_path is not None:
            from ..harness.cache import CACHE_VERSION
            from ..harness.snapshots import write_snapshot

            write_snapshot(snapshot_path, state, kind="fabric-state",
                           cache_version=CACHE_VERSION)
        return state

    # -- reporting ---------------------------------------------------------

    def counter(self, name: str) -> int | float:
        """Convenience read of one ``fabric.*`` counter value."""
        return self.metrics.counter(f"fabric.{name}").value

    def report(self) -> dict:
        """JSON-friendly view: metrics, breakers, supervision, plan."""
        with self._lock:
            return {
                "metrics": self.metrics.snapshot(),
                "plan": {
                    "num_shards": self.plan.num_shards,
                    "dim": self.plan.dim,
                    "bounds": list(self.plan.bounds),
                    "rules_per_shard": [len(a) for a in
                                        self.plan.assignments],
                    "replication_factor": self.plan.replication_factor(),
                },
                "breakers": {
                    name: {
                        "state": b.state,
                        "open_count": b.open_count(),
                        "transitions": [
                            (t.at, t.from_state, t.to_state, t.reason)
                            for t in b.transitions
                        ],
                    }
                    for name, b in self.breakers.items()
                },
                "supervision": self.supervisor.report(),
                "outages": [
                    {"shard": o.shard, "down_at": o.down_at, "up_at": o.up_at,
                     "why": o.why, "warm": o.warm}
                    for o in self.supervisor.outages
                ],
            }

    def publish_metrics(self) -> None:
        """Fold the private registry into the process registry (if on)."""
        registry = get_registry()
        if registry is not None:
            registry.merge(self.metrics)
