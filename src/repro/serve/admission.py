"""Shared admission control for the serving front-ends.

:class:`AdmissionGate` is the one implementation of "shed early, shed
typed" used by both the single-process
:class:`~repro.serve.service.ClassificationService` and the
multi-process :class:`~repro.serve.fabric.Fabric`: a bounded in-flight
limit, an optional token bucket, and the drain/stop lifecycle, with
every decision counted under ``<scope>.requests`` / ``<scope>.admitted``
/ ``<scope>.shed.<reason>`` so the two layers expose the same metric
shape (``serve.*`` and ``fabric.*`` respectively).

The gate owns the lock it needs and exposes it (:attr:`AdmissionGate.lock`)
so an owner can serialise its own structure access under the *same*
lock — the single-lock discipline the breaker and the update machinery
rely on.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..core.errors import AdmissionRejected, ConfigurationError, ServiceStopped
from ..obs.metrics import MetricScope


class AdmissionGate:
    """Bounded, token-bucket-limited, drainable admission control.

    The decision order is fixed and documented behaviour: stopped →
    stopping → queue_full → rate_limited.  A request shed for being
    over the in-flight bound must not also consume a token.
    """

    def __init__(self, scope: MetricScope, max_in_flight: int,
                 bucket=None, lock: threading.RLock | None = None) -> None:
        if max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1")
        self._scope = scope
        self._max_in_flight = max_in_flight
        self._bucket = bucket
        self.lock = lock or threading.RLock()
        self._cond = threading.Condition(self.lock)
        self._in_flight = 0
        self._seq = 0
        self._draining = False
        self._stopped = False

    @property
    def in_flight(self) -> int:
        with self.lock:
            return self._in_flight

    @property
    def stopped(self) -> bool:
        with self.lock:
            return self._stopped

    @property
    def draining(self) -> bool:
        with self.lock:
            return self._draining

    def admit(self, tokens: float = 1.0) -> int:
        """Shed or admit; returns the request sequence number.

        Raises :class:`ServiceStopped` (reasons ``stopped``/``stopping``)
        or :class:`AdmissionRejected` (``queue_full``/``rate_limited``),
        each already counted under ``<scope>.shed.<reason>``.
        """
        with self.lock:
            self._scope.counter("requests").inc()
            if self._stopped:
                self._shed("stopped")
            if self._draining:
                self._shed("stopping")
            if self._in_flight >= self._max_in_flight:
                self._shed("queue_full")
            if self._bucket is not None and not self._bucket.try_acquire(tokens):
                self._shed("rate_limited")
            self._scope.counter("admitted").inc()
            self._in_flight += 1
            self._seq += 1
            return self._seq

    def _shed(self, reason: str) -> None:
        self._scope.counter(f"shed.{reason}").inc()
        if reason in ("stopped", "stopping"):
            raise ServiceStopped(reason)
        raise AdmissionRejected(reason)

    def release(self) -> None:
        """An admitted request finished (served or failed)."""
        with self.lock:
            self._in_flight -= 1
            self._cond.notify_all()

    # -- lifecycle ---------------------------------------------------------

    def begin_drain(self) -> None:
        """New requests shed ``stopping``; in-flight ones may finish."""
        with self.lock:
            self._draining = True

    def wait_drained(self, timeout_s: float,
                     wall: Callable[[], float] = time.monotonic) -> bool:
        """Wait (bounded, real time) for in-flight work to finish.

        Real time on purpose: drain waits on OS threads, so the owner's
        injectable clock deliberately does not govern it.
        """
        with self.lock:
            limit = wall() + timeout_s
            while self._in_flight > 0 and wall() < limit:
                self._cond.wait(timeout=0.05)
            return self._in_flight == 0

    def mark_stopped(self) -> None:
        """New requests shed ``stopped`` from here on."""
        with self.lock:
            self._draining = True
            self._stopped = True
