"""Worker lifecycle supervision for the serving fabric.

The :class:`Supervisor` owns every shard worker process: it spawns
them, probes liveness over the pipe, declares the dead dead (abrupt
exit *or* a hang past the liveness deadline), restarts them with
exponential backoff under a crash-loop budget, and keeps the whole
story visible in ``fabric.*`` metrics.  State machine per worker::

              spawn ok ("ready")
    SPAWNING ────────────────────▶ RUNNING
        ▲                           │ EOF / liveness misses /
        │ restart_at reached,       │ reply timeout
        │ budget ok                 ▼
     DOWN ◀─────────────────────── (death: SIGKILL the remains,
        │        backoff            schedule restart)
        │ crash-loop budget exhausted
        ▼
     PARKED  (no automatic restarts; requests shed with a typed reason)

Time discipline: *scheduling* (backoff, heartbeat cadence, restart
charges) runs on the injectable clock so a simulated soak reproduces
bit-for-bit, while *pipe waits* (how long to wait for a pong before
calling it a miss) are real wall-clock bounds — a dead worker never
answers regardless of how the simulated clock is driven, so outcomes
stay deterministic.

Restarts are **warm by design**: the worker reloads the shard's
content-verified snapshot; a corrupt snapshot is quarantined by the
worker and rebuilt cold (budget-guarded, degrading to the linear slow
path), after which the supervisor re-publishes a fresh snapshot via the
``reseed_snapshot`` hook so the *next* restart is warm again.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.errors import (
    ConfigurationError,
    ShardUnavailable,
    TransientServiceError,
    WorkerCrashLoop,
)
from ..obs.metrics import MetricScope, MetricsRegistry
from ..obs.span import NULL_STAGE_TIMER, StageTimer
from .transport import ShardSpec, worker_main

SPAWNING = "spawning"
RUNNING = "running"
DOWN = "down"
PARKED = "parked"
STOPPED = "stopped"


@dataclass(frozen=True)
class SupervisionPolicy:
    """Every knob of worker supervision (see ``docs/serving.md``)."""

    # -- liveness ----------------------------------------------------------
    #: Simulated-time cadence of heartbeat probes per worker.
    heartbeat_interval_s: float = 0.05
    #: Real-time wait for a pong before counting a miss.
    heartbeat_timeout_s: float = 1.0
    #: Consecutive missed heartbeats that declare a worker dead.
    liveness_misses: int = 2
    #: Real-time wait for a classify reply before declaring death.
    reply_timeout_s: float = 5.0
    #: Real-time wait for the post-spawn ``ready`` message.
    ready_timeout_s: float = 60.0

    # -- restarts ----------------------------------------------------------
    #: First restart delay after a death (simulated seconds); doubles
    #: per consecutive death up to ``restart_backoff_max_s``.
    restart_backoff_base_s: float = 0.02
    restart_backoff_mult: float = 2.0
    restart_backoff_max_s: float = 1.0
    #: Simulated cost charged for a warm (snapshot) restart.
    warm_restart_cost_s: float = 0.01
    #: Simulated cost charged for a cold (rebuild) restart.
    cold_restart_cost_s: float = 0.1

    # -- crash-loop budget -------------------------------------------------
    #: Restarts within this window (simulated seconds) that exhaust the
    #: budget and park the shard.
    crash_loop_window_s: float = 10.0
    crash_loop_budget: int = 5

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat timings must be positive")
        if self.liveness_misses < 1:
            raise ConfigurationError("liveness_misses must be >= 1")
        if self.reply_timeout_s <= 0 or self.ready_timeout_s <= 0:
            raise ConfigurationError("reply/ready timeouts must be positive")
        if self.restart_backoff_base_s < 0 or self.restart_backoff_max_s < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.restart_backoff_mult < 1.0:
            raise ConfigurationError("restart_backoff_mult must be >= 1.0")
        if self.warm_restart_cost_s < 0 or self.cold_restart_cost_s < 0:
            raise ConfigurationError("restart costs must be non-negative")
        if self.crash_loop_window_s <= 0 or self.crash_loop_budget < 1:
            raise ConfigurationError("crash-loop budget must be positive")

    def backoff(self, consecutive_deaths: int) -> float:
        """Restart delay after the Nth consecutive death (1-based)."""
        raw = (self.restart_backoff_base_s
               * self.restart_backoff_mult ** max(0, consecutive_deaths - 1))
        return min(self.restart_backoff_max_s, raw)


@dataclass(frozen=True)
class OutageRecord:
    """One completed worker outage, in simulated time."""

    shard: str
    down_at: float
    up_at: float
    why: str
    warm: bool


class WorkerHandle:
    """Supervisor-side view of one shard worker."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.state = STOPPED
        self.process = None
        self.conn = None
        self.starts = 0
        self.consecutive_deaths = 0
        self.last_heartbeat_at = float("-inf")
        self.restart_at = 0.0
        self.down_since = 0.0
        self.down_why = ""
        self.heartbeat_misses_now = 0
        self.restart_times: list[float] = []
        self.slow_start_factor = 1.0
        self.last_ready_info: dict = {}
        self.park_error: WorkerCrashLoop | None = None
        #: Last update epoch the worker reported applying (from the
        #: ``ready`` info, every pong, and every classify result).
        self.applied_epoch = spec.epoch
        #: Most recent pong stats (``rebuild_backlog`` etc.).
        self.last_stats: dict = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class Supervisor:
    """Spawn, health-check, and restart the fabric's shard workers.

    Not internally locked: the owning :class:`~repro.serve.fabric.Fabric`
    serialises all calls under its request lock, the same discipline the
    circuit breaker uses.
    """

    def __init__(self, specs: Sequence[ShardSpec],
                 policy: SupervisionPolicy | None = None,
                 clock: Callable[[], float] | None = None,
                 charge: Callable[[float], None] | None = None,
                 metrics: MetricsRegistry | MetricScope | None = None,
                 reseed_snapshot: Callable[[ShardSpec], None] | None = None,
                 start_method: str = "fork",
                 stage_timer: StageTimer | None = None) -> None:
        if not specs:
            raise ConfigurationError("need at least one shard spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate shard names in {names}")
        self.policy = policy or SupervisionPolicy()
        self._clock = clock or time.monotonic
        #: Simulated-cost sink (``ManualClock.advance`` in soaks); with a
        #: real clock the spawn itself already consumed the time.
        self._charge = charge
        self._ctx = multiprocessing.get_context(start_method)
        self._reseed = reseed_snapshot
        self._stages = stage_timer or NULL_STAGE_TIMER
        if metrics is None:
            metrics = MetricsRegistry()
        if isinstance(metrics, MetricsRegistry):
            metrics = metrics.scope("fabric")
        self._scope = metrics
        self.handles: dict[str, WorkerHandle] = {
            spec.name: WorkerHandle(spec) for spec in specs
        }
        self.outages: list[OutageRecord] = []
        self._update_available()

    # -- queries -----------------------------------------------------------

    def state(self, shard: str) -> str:
        return self.handles[shard].state

    def available(self) -> int:
        return sum(1 for h in self.handles.values() if h.state == RUNNING)

    def any_down(self) -> bool:
        return any(h.state in (DOWN, SPAWNING, PARKED)
                   for h in self.handles.values())

    def _update_available(self) -> None:
        self._scope.gauge("shards_available").set(self.available())
        self._scope.gauge("shards_total").set(len(self.handles))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker (the initial, warm-from-snapshot start)."""
        now = self._clock()
        for handle in self.handles.values():
            self._spawn(handle, now)

    def stop(self) -> dict[str, dict]:
        """Gracefully stop every worker; returns per-shard final stats."""
        stats: dict[str, dict] = {}
        for handle in self.handles.values():
            stats[handle.name] = self._stop_worker(handle)
        self._update_available()
        return stats

    def _stop_worker(self, handle: WorkerHandle) -> dict:
        final: dict = {}
        if handle.state == RUNNING and handle.conn is not None:
            try:
                handle.conn.send(("stop",))
                if handle.conn.poll(self.policy.reply_timeout_s):
                    message = handle.conn.recv()
                    if message[0] == "bye":
                        final = message[1]
            except (EOFError, BrokenPipeError, OSError):
                pass
        self._reap(handle)
        handle.state = STOPPED
        return final

    def _reap(self, handle: WorkerHandle) -> None:
        """Make very sure the OS process is gone and the pipe closed."""
        if handle.process is not None:
            try:
                if handle.process.is_alive():
                    handle.process.kill()
                handle.process.join(timeout=10.0)
            except (OSError, ValueError):
                pass
            handle.process = None
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    # -- spawning ----------------------------------------------------------

    def _spawn(self, handle: WorkerHandle, now: float) -> bool:
        """Start one worker and wait for ``ready`` (bounded, real time).

        Returns True when the worker came up; on failure the handle is
        scheduled for a backed-off retry (or parked by the budget).
        """
        handle.state = SPAWNING
        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main, args=(child, handle.spec),
            name=f"fabric-{handle.name}", daemon=True)
        process.start()
        child.close()  # the worker owns this end now; EOF must propagate
        handle.process = process
        handle.conn = parent
        handle.starts += 1
        self._scope.counter("spawns").inc()
        ready = self._await(handle, ("ready",), self.policy.ready_timeout_s)
        if ready is None:
            self._scope.counter("failed_starts").inc()
            self._note_death(handle, now, "failed_start")
            return False
        info = ready[1]
        handle.last_ready_info = info
        handle.state = RUNNING
        handle.heartbeat_misses_now = 0
        handle.last_heartbeat_at = now
        handle.applied_epoch = int(info.get("applied_epoch",
                                            handle.spec.epoch))
        cost = (self.policy.warm_restart_cost_s if info.get("warm")
                else self.policy.cold_restart_cost_s)
        cost *= handle.slow_start_factor
        handle.slow_start_factor = 1.0
        if self._charge is not None and cost > 0:
            with self._stages.span("restart"):
                self._charge(cost)
        if info.get("warm"):
            self._scope.counter("warm_restarts").inc()
        else:
            self._scope.counter("cold_restarts").inc()
            if info.get("quarantined"):
                self._scope.counter("corrupt_snapshot_restarts").inc()
                if self._reseed is not None:
                    # Re-publish a healthy snapshot so the *next* restart
                    # is warm again (self-healing store).
                    self._reseed(handle.spec)
        if handle.down_since or handle.starts > 1:
            self.outages.append(OutageRecord(
                handle.name, handle.down_since, self._clock(),
                handle.down_why, bool(info.get("warm"))))
        handle.consecutive_deaths = 0
        self._update_available()
        return True

    # -- death and restart -------------------------------------------------

    def _note_death(self, handle: WorkerHandle, now: float, why: str) -> None:
        """A worker is gone: reap it and schedule the backed-off restart."""
        self._reap(handle)
        handle.consecutive_deaths += 1
        handle.state = DOWN
        handle.down_since = now
        handle.down_why = why
        handle.restart_at = now + self.policy.backoff(handle.consecutive_deaths)
        self._scope.counter("worker_deaths").inc()
        self._scope.counter(f"deaths.{why}").inc()
        self._update_available()

    def tick(self, now: float | None = None) -> None:
        """Periodic supervision pass: heartbeats due, restarts due."""
        if now is None:
            now = self._clock()
        for handle in self.handles.values():
            if handle.state == RUNNING:
                if (now - handle.last_heartbeat_at
                        >= self.policy.heartbeat_interval_s):
                    self.probe(handle.name, now)
            elif handle.state == DOWN and now >= handle.restart_at:
                self._maybe_restart(handle, now)

    def _maybe_restart(self, handle: WorkerHandle, now: float) -> None:
        window_start = now - self.policy.crash_loop_window_s
        handle.restart_times = [t for t in handle.restart_times
                                if t >= window_start]
        if len(handle.restart_times) >= self.policy.crash_loop_budget:
            handle.state = PARKED
            handle.park_error = WorkerCrashLoop(
                handle.name, len(handle.restart_times),
                self.policy.crash_loop_window_s)
            self._scope.counter("crash_loop_parked").inc()
            self._update_available()
            return
        handle.restart_times.append(now)
        self._scope.counter("restarts").inc()
        self._spawn(handle, now)

    def probe(self, shard: str, now: float | None = None) -> bool:
        """Heartbeat one worker immediately; returns liveness.

        A missed pong counts under ``fabric.heartbeat_misses``;
        ``liveness_misses`` consecutive misses — or a closed pipe —
        declare the worker dead and schedule its restart.
        """
        handle = self.handles[shard]
        if handle.state != RUNNING or handle.conn is None:
            return False
        if now is None:
            now = self._clock()
        handle.last_heartbeat_at = now
        self._scope.counter("heartbeats").inc()
        try:
            handle.conn.send(("ping", handle.starts))
        except (BrokenPipeError, OSError):
            self._scope.counter("heartbeat_misses").inc()
            self._note_death(handle, now, "pipe_closed")
            return False
        pong = self._await(handle, ("pong",), self.policy.heartbeat_timeout_s)
        if pong is None:
            self._scope.counter("heartbeat_misses").inc()
            handle.heartbeat_misses_now += 1
            if (handle.state == RUNNING
                    and handle.heartbeat_misses_now
                    >= self.policy.liveness_misses):
                self._note_death(handle, now, "liveness")
            elif handle.state != RUNNING:
                # _await saw EOF and already declared the death.
                pass
            return False
        handle.heartbeat_misses_now = 0
        stats = pong[2] if len(pong) > 2 and isinstance(pong[2], dict) else {}
        handle.last_stats = stats
        handle.applied_epoch = int(stats.get("applied_epoch",
                                             handle.applied_epoch))
        return True

    def _await(self, handle: WorkerHandle, kinds: tuple[str, ...],
               timeout_s: float):
        """Receive the next message of one of ``kinds`` (real-time bound).

        Stale messages of other kinds (a pong that arrived after its
        probe was already counted as a miss) are drained and dropped.
        Returns ``None`` on timeout; on EOF the death is recorded and
        ``None`` returned.
        """
        wall = time.monotonic
        deadline = wall() + timeout_s
        conn = handle.conn
        while conn is not None:
            remaining = deadline - wall()
            if remaining <= 0:
                return None
            try:
                if not conn.poll(remaining):
                    return None
                message = conn.recv()
            except (EOFError, OSError):
                if handle.state == RUNNING:
                    self._note_death(handle, self._clock(), "pipe_closed")
                # During SPAWNING the caller (_spawn) records the death
                # as "failed_start" — don't double-count it here.
                return None
            if message[0] in kinds:
                return message
            self._scope.counter("stale_messages").inc()
        return None

    # -- serving -----------------------------------------------------------

    def request(self, shard: str, headers, now: float | None = None) -> list:
        """Classify ``headers`` on ``shard``; returns global rule indices.

        Raises :class:`ShardUnavailable` when the shard cannot serve
        (down, restarting, parked, or it died mid-request) and
        :class:`TransientServiceError` when the worker answered with an
        error — both retryable conditions for the caller's policy.
        """
        handle = self.handles[shard]
        if handle.state != RUNNING or handle.conn is None:
            phase = {DOWN: "restarting", PARKED: "parked",
                     SPAWNING: "restarting"}.get(handle.state, "down")
            raise ShardUnavailable(shard, phase)
        if now is None:
            now = self._clock()
        try:
            handle.conn.send(("classify", headers))
        except (BrokenPipeError, OSError):
            self._note_death(handle, now, "pipe_closed")
            raise ShardUnavailable(shard, "down") from None
        reply = self._await(handle, ("result", "error"),
                            self.policy.reply_timeout_s)
        if reply is None:
            if handle.state == RUNNING:
                # Alive but silent past the deadline: treat as hung.
                self._note_death(handle, now, "request_timeout")
            raise ShardUnavailable(shard, "down")
        if reply[0] == "error":
            raise TransientServiceError(
                f"shard {shard} lookup failed: {reply[1]}")
        if len(reply) > 2:
            # Answers are stamped with the epoch they were served at so
            # the fabric can audit against exactly that rule version.
            handle.applied_epoch = int(reply[2])
        return reply[1]

    # -- update propagation ------------------------------------------------

    def send_update(self, shard: str, epoch: int, ops,
                    now: float | None = None) -> bool:
        """Fan one epoch's shard-local edit batch to a running worker.

        One-way (the worker acknowledges via pong/result epochs); a
        closed pipe records the death exactly like a failed heartbeat.
        Returns False when the worker could not be reached — the caller
        relies on anti-entropy, not retries, to converge.
        """
        handle = self.handles[shard]
        if handle.state != RUNNING or handle.conn is None:
            return False
        try:
            handle.conn.send(("update", epoch, ops))
        except (BrokenPipeError, OSError):
            self._note_death(handle, self._clock() if now is None else now,
                             "pipe_closed")
            return False
        self._scope.counter("updates_sent").inc()
        return True

    def refresh_spec(self, shard: str, spec: ShardSpec) -> None:
        """Swap the spec future (re)starts of ``shard`` will serve from.

        The running worker is untouched — its in-memory state already
        reflects (or will converge to) the new spec's epoch via update
        messages; only the next spawn reads the spec.
        """
        if spec.name != shard:
            raise ConfigurationError(
                f"spec {spec.name!r} cannot replace shard {shard!r}")
        self.handles[shard].spec = spec

    def recycle(self, shard: str, why: str = "stale_epoch",
                now: float | None = None) -> None:
        """Deliberately kill a running worker so supervision restarts it
        from the (freshly republished) snapshot — the repair of last
        resort when a worker lags beyond the retained update history."""
        handle = self.handles[shard]
        if handle.state != RUNNING:
            return
        self.inject_kill(shard)
        self._note_death(handle, self._clock() if now is None else now, why)

    # -- chaos hooks -------------------------------------------------------
    # Used by the chaos soak and tests; deliberate, bounded, and safe to
    # call in production (they only touch this supervisor's children).

    def inject_kill(self, shard: str) -> None:
        """SIGKILL the worker *without* telling the supervisor.

        Detection must come from supervision (heartbeat/EOF), exactly
        like a real crash.  Blocks until the OS confirms the death so
        injection points stay deterministic.
        """
        handle = self.handles[shard]
        if handle.process is None or handle.pid is None:
            return
        try:
            os.kill(handle.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass
        handle.process.join(timeout=10.0)

    def inject_hang(self, shard: str) -> None:
        """Make the worker stop replying while staying alive."""
        handle = self.handles[shard]
        if handle.state != RUNNING or handle.conn is None:
            return
        try:
            handle.conn.send(("hang",))
        except (BrokenPipeError, OSError):
            pass

    def arm_slow_start(self, shard: str, factor: float) -> None:
        """Multiply the simulated cost of the shard's next restart."""
        if factor < 1.0:
            raise ConfigurationError("slow-start factor must be >= 1.0")
        self.handles[shard].slow_start_factor = factor

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """JSON-friendly per-shard supervision state (no pids: those are
        nondeterministic and belong in logs, not artifacts)."""
        return {
            name: {
                "state": handle.state,
                "starts": handle.starts,
                "consecutive_deaths": handle.consecutive_deaths,
                "warm": bool(handle.last_ready_info.get("warm")),
                "degradation": handle.last_ready_info.get("degradation"),
                "parked": handle.state == PARKED,
                "applied_epoch": handle.applied_epoch,
                "replayed_deltas": handle.last_ready_info.get(
                    "replayed_deltas", 0),
            }
            for name, handle in self.handles.items()
        }
