"""Tree and memory statistics backing Figure 6 and the §4.2.2 observations."""

from __future__ import annotations

from dataclasses import dataclass

from .expcuts import ExpCutsTree
from .layout import compression_summary
from .popcount import popcount


@dataclass
class TreeStats:
    """Structural statistics of a built ExpCuts tree."""

    num_rules: int
    num_nodes: int
    depth_bound: int
    max_depth: int
    nodes_per_level: dict[int, int]
    mean_distinct_children: float
    mean_habs_bits_set: float
    bytes_with_aggregation: int
    bytes_without_aggregation: int

    @property
    def aggregation_ratio(self) -> float:
        """Compressed / uncompressed image size (paper reports ≈ 0.15)."""
        return self.bytes_with_aggregation / max(self.bytes_without_aggregation, 1)


def distinct_children(tree: ExpCutsTree) -> list[int]:
    """Per node, the number of distinct child references.

    The paper's empirical basis for HABS: "with 256 cuttings at each
    internal-node, the average number of child nodes is less than 10".
    """
    counts = []
    for node in tree.nodes:
        counts.append(len(set(node.children.cpa)))
    return counts


def collect_stats(tree: ExpCutsTree) -> TreeStats:
    """Compute the full statistics bundle for one tree."""
    sizes = compression_summary(tree)
    children = distinct_children(tree)
    habs_bits = [popcount(node.children.habs) for node in tree.nodes]
    n = max(len(tree.nodes), 1)
    return TreeStats(
        num_rules=tree.num_rules,
        num_nodes=tree.node_count(),
        depth_bound=tree.depth_bound,
        max_depth=tree.max_depth(),
        nodes_per_level=tree.level_histogram(),
        mean_distinct_children=sum(children) / n if children else 0.0,
        mean_habs_bits_set=sum(habs_bits) / n if habs_bits else 0.0,
        bytes_with_aggregation=int(sizes["bytes_with_aggregation"]),
        bytes_without_aggregation=int(sizes["bytes_without_aggregation"]),
    )
