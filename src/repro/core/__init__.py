"""Core ExpCuts implementation: geometry, compression, tree, layout, engine."""

from .engine import ExpCutsEngine, LookupTrace, MemRead
from .expcuts import ExpCutsConfig, ExpCutsTree, build_expcuts
from .fields import FIELD_WIDTHS, Field, Header, TOTAL_HEADER_BITS, cut_schedule
from .habs import HabsArray, compress
from .interval import Interval, full_interval, prefix_to_interval
from .layout import TreeImage, compression_summary, pack_tree
from .rule import Rule, RuleSet
from .space import Box
from .stats import TreeStats, collect_stats

__all__ = [
    "Box",
    "ExpCutsConfig",
    "ExpCutsEngine",
    "ExpCutsTree",
    "FIELD_WIDTHS",
    "Field",
    "HabsArray",
    "Header",
    "Interval",
    "LookupTrace",
    "MemRead",
    "Rule",
    "RuleSet",
    "TOTAL_HEADER_BITS",
    "TreeImage",
    "TreeStats",
    "build_expcuts",
    "collect_stats",
    "compress",
    "compression_summary",
    "cut_schedule",
    "full_interval",
    "pack_tree",
    "prefix_to_interval",
]
