"""Packing an ExpCuts tree into its 32-bit SRAM word image (Figure 4).

The paper stores each internal node's 16-bit HABS together with its cutting
information in a single 32-bit long-word, followed by the Compressed
Pointer Array, "effectively loaded by the word-oriented SRAM controller
without any excessive memory accesses".  This module produces exactly that
image as one contiguous ``numpy.uint32`` array per tree level — per-level
segmentation is what lets :mod:`repro.npsim.allocator` distribute levels
across SRAM channels (Table 4 / §5.3).

Word formats
------------
Node header word::

    bits 31..24   level (validation tag)
    bits 23..20   u  (log2 sub-array length)
    bits 19..16   v  (log2 HABS bit count)
    bits 15..0    HABS (LSB = sub-array 0)

Pointer word::

    bit  31       leaf flag
    bits 30..0    leaf:     rule_id + 1  (0 means "no match")
                  internal: word offset of the child node header inside
                            the *next* level's segment

The uncompressed variant (``aggregated=False``) stores the full ``2**w``
pointer array after a header word whose HABS field is zero — it exists so
Figure 6's with/without-aggregation comparison measures real images, not
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .budget import BudgetMeter
from .expcuts import ExpCutsTree, REF_NO_MATCH

#: Pointer-word leaf flag.
LEAF_FLAG = np.uint32(0x8000_0000)
#: Leaf pointer meaning "no rule matches".
PTR_NO_MATCH = int(LEAF_FLAG)

WORD_BYTES = 4


def encode_ref(ref: int, offsets: dict[int, int]) -> int:
    """Builder reference -> pointer word (see module docstring)."""
    if ref >= 0:
        return offsets[ref]
    if ref == REF_NO_MATCH:
        return PTR_NO_MATCH
    rule_id = -ref - 2
    return int(LEAF_FLAG) | (rule_id + 1)


def decode_leaf(ptr: int) -> int | None:
    """Pointer word -> rule id (``None`` when no-match); must be a leaf."""
    if not ptr & int(LEAF_FLAG):
        raise ValueError("not a leaf pointer")
    payload = ptr & 0x7FFF_FFFF
    return None if payload == 0 else payload - 1


@dataclass
class TreeImage:
    """The packed per-level word image of one ExpCuts tree."""

    levels: list[np.ndarray]
    root_ptr: int
    stride: int
    aggregated: bool
    tree: ExpCutsTree

    @property
    def total_words(self) -> int:
        return sum(len(seg) for seg in self.levels)

    @property
    def total_bytes(self) -> int:
        return self.total_words * WORD_BYTES

    def level_words(self) -> list[int]:
        """Words per level — the allocator's placement input."""
        return [len(seg) for seg in self.levels]

    def level_bytes(self) -> list[int]:
        return [len(seg) * WORD_BYTES for seg in self.levels]


def pack_tree(tree: ExpCutsTree, aggregated: bool = True,
              meter: BudgetMeter | None = None) -> TreeImage:
    """Pack ``tree`` into per-level word segments.

    With ``aggregated=True`` each node is ``1 + len(CPA)`` words; without,
    ``1 + 2**step.width`` words.  The logical content is identical — the
    round-trip tests decompress both images and compare pointer by
    pointer.

    ``meter`` charges the *exact* emitted words per level against a
    :class:`~repro.core.budget.BuildBudget` — the builder's estimate
    already bounded the aggregated image, but the uncompressed ablation
    image is only sized here.
    """
    num_levels = len(tree.schedule)
    by_level: list[list[int]] = [[] for _ in range(num_levels)]
    for node_id, node in enumerate(tree.nodes):
        by_level[node.level].append(node_id)

    # First pass: assign each node its word offset inside its level.
    offsets: dict[int, int] = {}
    for level_nodes in by_level:
        cursor = 0
        for node_id in level_nodes:
            offsets[node_id] = cursor
            children = tree.nodes[node_id].children
            if aggregated:
                cursor += 1 + children.compressed_slots
            else:
                cursor += 1 + children.total_slots

    # Second pass: emit words.
    levels: list[np.ndarray] = []
    for level, level_nodes in enumerate(by_level):
        words: list[int] = []
        for node_id in level_nodes:
            node = tree.nodes[node_id]
            ch = node.children
            if aggregated:
                header = (
                    ((node.level & 0xFF) << 24)
                    | ((ch.u & 0xF) << 20)
                    | ((ch.v & 0xF) << 16)
                    | (ch.habs & 0xFFFF)
                )
                words.append(header)
                words.extend(encode_ref(ref, offsets) for ref in ch.cpa)
            else:
                header = ((node.level & 0xFF) << 24) | (((ch.u + ch.v) & 0xF) << 20)
                words.append(header)
                words.extend(encode_ref(ref, offsets) for ref in ch.decompress())
        if meter is not None:
            meter.add_words(len(words))
        levels.append(np.array(words, dtype=np.uint32))

    root_ptr = encode_ref(tree.root_ref, offsets)
    return TreeImage(
        levels=levels, root_ptr=root_ptr, stride=tree.stride,
        aggregated=aggregated, tree=tree,
    )


def compression_summary(tree: ExpCutsTree) -> dict[str, float]:
    """Aggregate with/without-aggregation sizes (Figure 6's two bars)."""
    with_agg = pack_tree(tree, aggregated=True)
    without = pack_tree(tree, aggregated=False)
    return {
        "bytes_with_aggregation": float(with_agg.total_bytes),
        "bytes_without_aggregation": float(without.total_bytes),
        "ratio": with_agg.total_bytes / max(without.total_bytes, 1),
        "nodes": float(tree.node_count()),
    }
