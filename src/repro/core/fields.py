"""The classic 5-tuple field layout and the 104-bit concatenated header.

The paper classifies on five header fields — source/destination IPv4
address, source/destination transport port, and protocol — totalling
``32 + 32 + 16 + 16 + 8 = 104`` bits.  ExpCuts consumes this concatenated
bit string ``w`` bits per tree level in a fixed field order, which is what
yields the explicit worst-case depth of ``ceil(104 / w)`` (13 for the
paper's ``w = 8``).
"""

from __future__ import annotations

from enum import IntEnum
from typing import NamedTuple, Sequence


class Field(IntEnum):
    """Index of each 5-tuple dimension, in ExpCuts cutting order."""

    SIP = 0
    DIP = 1
    SPORT = 2
    DPORT = 3
    PROTO = 4


#: Bit width of each field, indexed by :class:`Field`.
FIELD_WIDTHS: tuple[int, ...] = (32, 32, 16, 16, 8)

#: Total header bits classified over (the ``W`` of the paper's ``O(W/w)``).
TOTAL_HEADER_BITS: int = sum(FIELD_WIDTHS)

#: Number of dimensions.
NUM_FIELDS: int = len(FIELD_WIDTHS)

#: Bit offset of each field's MSB within the concatenated header
#: (offset 0 = the very first bit consumed by the root cut).
FIELD_BIT_OFFSETS: tuple[int, ...] = tuple(
    sum(FIELD_WIDTHS[:i]) for i in range(NUM_FIELDS)
)


class Header(NamedTuple):
    """A concrete packet header (one value per field)."""

    sip: int
    dip: int
    sport: int
    dport: int
    proto: int

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.sip, self.dip, self.sport, self.dport, self.proto)

    def validate(self) -> "Header":
        """Raise ``ValueError`` unless every field is within its width."""
        for field, value in zip(Field, self):
            if not 0 <= value < (1 << FIELD_WIDTHS[field]):
                raise ValueError(
                    f"{field.name} value {value:#x} out of range for "
                    f"{FIELD_WIDTHS[field]}-bit field"
                )
        return self


class CutStep(NamedTuple):
    """One tree level's slice of the concatenated header.

    ``field``
        Which dimension this level cuts.
    ``shift``
        Right-shift applied to the field value so that the ``width`` bits
        consumed at this level land at the bottom.
    ``width``
        Number of bits consumed (the stride ``w``, except possibly a
        shorter final step for a field whose width is not a multiple of
        ``w``).
    """

    field: Field
    shift: int
    width: int


def cut_schedule(stride: int) -> list[CutStep]:
    """The fixed per-level cutting schedule for a given stride ``w``.

    Walks the fields in declaration order, consuming ``stride`` bits per
    level from the MSB side of the current field; when fewer than
    ``stride`` bits remain in a field the step narrows rather than
    straddling the field boundary (keeps every node box an aligned
    power-of-two block in exactly one dimension per level, matching the
    paper's per-field equal-size cuttings).
    """
    if not 1 <= stride <= 16:
        raise ValueError(f"stride must be in [1, 16], got {stride}")
    schedule: list[CutStep] = []
    for field in Field:
        remaining = FIELD_WIDTHS[field]
        while remaining > 0:
            step = min(stride, remaining)
            remaining -= step
            schedule.append(CutStep(field, remaining, step))
    return schedule


def header_key(header: Sequence[int], step: CutStep) -> int:
    """Extract the child index ``n`` for ``header`` at one cut step."""
    return (header[step.field] >> step.shift) & ((1 << step.width) - 1)


def stable_header_hash(header: Sequence[int]) -> int:
    """A process-stable hash of header fields.

    Python's builtin ``hash`` is randomized per process (PYTHONHASHSEED),
    which would make *recorded* lookup programs differ across runs; every
    address-like hash in the library goes through this FNV-1a fold so all
    artifacts regenerate bit-identically.
    """
    acc = 0x811C9DC5
    for value in header:
        v = int(value)
        while True:
            acc = ((acc ^ (v & 0xFF)) * 0x01000193) & 0xFFFFFFFF
            v >>= 8
            if not v:
                break
    return acc


def pack_header(header: Sequence[int]) -> int:
    """Concatenate field values into one 104-bit integer (MSB = SIP MSB)."""
    packed = 0
    for field in Field:
        packed = (packed << FIELD_WIDTHS[field]) | header[field]
    return packed


def unpack_header(packed: int) -> Header:
    """Inverse of :func:`pack_header`."""
    values: list[int] = []
    for field in reversed(Field):
        width = FIELD_WIDTHS[field]
        values.append(packed & ((1 << width) - 1))
        packed >>= width
    return Header(*reversed(values))
