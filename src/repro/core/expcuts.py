"""ExpCuts (Explicit Cuttings) decision-tree construction — §4.2 of the paper.

ExpCuts departs from HiCuts in two ways that buy an *explicit* worst-case
search time:

* **Fixed stride.**  Every internal node cuts the current search space into
  ``2**w`` equal sub-spaces, consuming the concatenated 104-bit header in a
  fixed field order.  Tree depth is therefore exactly bounded by
  ``ceil(104 / w)`` (13 levels for ``w = 8``) — no data-dependent depth.
* **No leaf linear search.**  Cutting continues until the highest-priority
  rule intersecting a sub-space *covers* it entirely (equivalent to
  ``binth = 1``), so a leaf stores a single rule id and classification
  never scans rule lists.

Both choices would explode memory with naive ``2**w``-entry pointer arrays;
the HABS + CPA aggregation of :mod:`repro.core.habs` recovers it (Figure 6
measures the effect).

Soundness of node sharing
-------------------------
Child nodes are hash-consed on ``(level, projected-rule list)`` where each
rule is clipped to the child box and translated to the box origin.
Because every cut below a node depends only on not-yet-consumed header
bits — i.e. only on box-relative coordinates — equal projections provably
induce equal subtrees, so sharing cannot change classification results.
(Sharing on rule-id sets alone, a tempting shortcut, is *unsound* for
ranges that cover siblings partially; ``tests/core/test_expcuts.py``
contains the counterexample.)

Builder performance
-------------------
Two properties keep construction polynomial in practice (profiled per the
optimisation-workflow guide; the naive per-child partition was ~50×
slower):

* **Run-based partition.**  On the cut field, each rule occupies a
  contiguous span of children and is clipped only at its two boundary
  children, so children between consecutive span endpoints have
  *identical* projections.  The builder enumerates those uniform runs
  (≤ ``4·N + 1``, capped at ``2**w``) and builds one child per run.
* **Flat projections.**  A projected rule is a flat 11-int tuple
  ``(rule_id, lo0, hi0, …, lo4, hi4)`` — cheap to hash for the memo, cheap
  to clip.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Sequence

from .budget import BudgetMeter
from .errors import IncrementalUpdateError
from .fields import CutStep, FIELD_WIDTHS, NUM_FIELDS, cut_schedule
from .habs import HabsArray, compress
from .rule import RuleSet

#: Builder-level reference encoding: non-negative = internal node id,
#: negative = leaf.  ``REF_NO_MATCH`` is the empty leaf; other leaves
#: encode ``-(rule_id + 2)``.
REF_NO_MATCH = -1

#: A flat projected rule: (rule_id, lo0, hi0, lo1, hi1, ..., lo4, hi4).
FlatRule = tuple[int, ...]


def leaf_ref(rule_id: int) -> int:
    """Encode a matched-rule leaf reference."""
    return -(rule_id + 2)


def ref_rule_id(ref: int) -> int | None:
    """Decode a leaf reference; ``None`` for the no-match leaf."""
    if ref >= 0:
        raise ValueError("not a leaf reference")
    if ref == REF_NO_MATCH:
        return None
    return -ref - 2


def flat_projection(ruleset: RuleSet) -> tuple[FlatRule, ...]:
    """Root projections of all rules as flat tuples."""
    flat = []
    for rule_id, rule in enumerate(ruleset.rules):
        row: list[int] = [rule_id]
        for iv in rule.intervals:
            row.append(iv.lo)
            row.append(iv.hi)
        flat.append(tuple(row))
    return tuple(flat)


@dataclass(frozen=True)
class InternalNode:
    """One internal tree node: its level and its compressed child refs."""

    level: int
    children: HabsArray


@dataclass
class ExpCutsTree:
    """A built ExpCuts decision tree (pre-layout intermediate form)."""

    stride: int
    habs_bits_log2: int
    schedule: list[CutStep]
    nodes: list[InternalNode]
    root_ref: int
    num_rules: int
    #: Build-time statistics (nodes visited, memo hits, ...).
    build_stats: dict = dc_field(default_factory=dict)

    @property
    def depth_bound(self) -> int:
        """The explicit worst-case number of levels, ``len(schedule)``."""
        return len(self.schedule)

    def classify(self, header: Sequence[int]) -> int | None:
        """Reference (IR-level) lookup; returns a rule id or ``None``.

        The production path is :class:`repro.core.engine.ExpCutsEngine`
        over the packed word image — this walk exists so the tree can be
        validated independently of the layout.
        """
        ref = self.root_ref
        while ref >= 0:
            node = self.nodes[ref]
            step = self.schedule[node.level]
            key = (header[step.field] >> step.shift) & ((1 << step.width) - 1)
            ref = node.children.lookup(key)
        return ref_rule_id(ref)

    def node_count(self) -> int:
        return len(self.nodes)

    def level_histogram(self) -> dict[int, int]:
        """Number of internal nodes per level."""
        hist: dict[int, int] = {}
        for node in self.nodes:
            hist[node.level] = hist.get(node.level, 0) + 1
        return hist

    def max_depth(self) -> int:
        """Deepest level that actually holds a node, plus one."""
        if not self.nodes:
            return 0
        return max(node.level for node in self.nodes) + 1


@dataclass
class ExpCutsConfig:
    """Build parameters.

    ``stride``
        Bits consumed per level (the paper's ``w``; default 8 → 13 levels).
    ``habs_bits_log2``
        The paper's ``v``: the HABS has ``2**v`` bits (default 4 → the
        16-bit HABS that fits one word beside the cut info, Figure 4).
        For levels narrower than ``v`` bits the effective ``v`` shrinks to
        the level width.
    ``max_nodes``
        Safety valve against pathological rule sets.
    """

    stride: int = 8
    habs_bits_log2: int = 4
    max_nodes: int = 4_000_000


def _remaining_widths(schedule: Sequence[CutStep]) -> list[tuple[int, ...]]:
    """Per level, the remaining (not yet consumed) bit width of each field
    *before* that level's cut, in node-normalised coordinates."""
    widths = list(FIELD_WIDTHS)
    out: list[tuple[int, ...]] = []
    for step in schedule:
        out.append(tuple(widths))
        widths[step.field] -= step.width
    out.append(tuple(widths))  # after the last level: all zeros
    return out


class _Builder:
    """Recursive hash-consing builder (one instance per build call)."""

    def __init__(self, config: ExpCutsConfig,
                 meter: BudgetMeter | None = None) -> None:
        self.config = config
        self.meter = meter
        self.schedule = cut_schedule(config.stride)
        self.widths = _remaining_widths(self.schedule)
        # Per level, per field: the "full range" (lo, hi) pair used by the
        # cover tests, precomputed once.
        self.full_hi = [
            tuple((1 << w) - 1 for w in widths) for widths in self.widths
        ]
        self.nodes: list[InternalNode] = []
        self.memo: dict[tuple, int] = {}
        self.memo_hits = 0
        self.child_evals = 0

    def full_cover(self, rule: FlatRule, level: int) -> bool:
        full = self.full_hi[level]
        for fld in range(NUM_FIELDS):
            if rule[1 + 2 * fld] != 0 or rule[2 + 2 * fld] != full[fld]:
                return False
        return True

    def build(self, level: int, rules: tuple[FlatRule, ...]) -> int:
        if not rules:
            return REF_NO_MATCH
        if self.full_cover(rules[0], level):
            # The highest-priority rule intersecting this box covers it:
            # every point here matches it first.  This is the paper's
            # "sub-space full-covered by a certain set of rules" leaf.
            return leaf_ref(rules[0][0])
        if level == len(self.schedule):
            # All 104 bits consumed: the box is a single header point, so
            # intersecting == matching and the first rule wins.
            return leaf_ref(rules[0][0])

        key = (level, rules)
        cached = self.memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached

        step = self.schedule[level]
        fld = step.field
        pos = 1 + 2 * fld
        width = self.widths[level][fld]
        shift = width - step.width  # child-local bit count on the cut field
        nchildren = 1 << step.width
        child_full = (1 << shift) - 1
        full_next = self.full_hi[level + 1]

        # Precompute per rule: child span, whether the rule covers the full
        # remaining range of every non-cut field (for cover detection).
        spans: list[tuple[int, int, int, int, bool, FlatRule]] = []
        crit = {0, nchildren}
        for rule in rules:
            lo = rule[pos]
            hi = rule[pos + 1]
            k_lo = lo >> shift
            k_hi = hi >> shift
            others_full = True
            for other in range(NUM_FIELDS):
                if other == fld:
                    continue
                if rule[1 + 2 * other] != 0 or rule[2 + 2 * other] != full_next[other]:
                    others_full = False
                    break
            spans.append((k_lo, k_hi, lo, hi, others_full, rule))
            crit.add(k_lo)
            crit.add(k_lo + 1)
            crit.add(k_hi)
            crit.add(k_hi + 1)

        # Children between consecutive critical indices have identical
        # projections (see module docstring): build one child per run.
        run_starts = sorted(c for c in crit if 0 <= c < nchildren)
        run_starts.append(nchildren)
        refs: list[int] = [REF_NO_MATCH] * nchildren
        for run_idx in range(len(run_starts) - 1):
            start = run_starts[run_idx]
            end = run_starts[run_idx + 1]
            k = start  # representative child for the whole run
            base = k << shift
            top = base + child_full
            child_rules: list[FlatRule] = []
            for k_lo, k_hi, lo, hi, others_full, rule in spans:
                if not k_lo <= k <= k_hi:
                    continue
                clip_lo = lo - base if lo > base else 0
                clip_hi = hi - base if hi < top else child_full
                child_rules.append(
                    rule[:pos] + (clip_lo, clip_hi) + rule[pos + 2:]
                )
                if others_full and clip_lo == 0 and clip_hi == child_full:
                    break  # full cover: lower-priority rules are dead here
            self.child_evals += 1
            ref = self.build(level + 1, tuple(child_rules))
            for k2 in range(start, end):
                refs[k2] = ref

        v = min(self.config.habs_bits_log2, step.width)
        node_id = len(self.nodes)
        if node_id >= self.config.max_nodes:
            raise MemoryError(
                f"ExpCuts build exceeded max_nodes={self.config.max_nodes}"
            )
        children = compress(refs, v)
        if self.meter is not None:
            # Figure 4 word cost of this node in the aggregated image:
            # one header word plus the compressed pointer array.
            self.meter.add_node(1 + children.compressed_slots)
        self.nodes.append(InternalNode(level, children))
        self.memo[key] = node_id
        return node_id


def insert_into_tree(tree: ExpCutsTree, rule_flat: FlatRule, precedes, *,
                     edit_budget: int = 4096,
                     max_nodes: int = 4_000_000) -> int:
    """Incrementally insert one rule into a built tree (copy-on-write).

    ``rule_flat`` is the rule's root projection ``(rule_id, lo0, hi0,
    ...)``; ``precedes(existing_id)`` says whether the new rule outranks
    an existing one (priority in an ExpCuts tree lives only in which
    rule a leaf references).  Paths intersecting the rule's box are
    copied; a leaf whose covering rule the new rule outranks is replaced
    by a locally rebuilt subtree (the regular builder over the two
    rules).  Because every cut below a node depends only on box-relative
    coordinates, the edit memoises on ``(old ref, projected rule)`` —
    the same soundness argument as build-time node sharing.

    Validate-then-swap: nothing reachable from the serving ``root_ref``
    is mutated; the candidate root is probed at the rule's corner
    headers and swapped only if the probes agree.  On budget overrun or
    probe disagreement the appended nodes are discarded and
    :class:`IncrementalUpdateError` is raised.  Returns the number of
    nodes appended; replaced-node words accumulate in
    ``tree.build_stats["garbage_words"]`` for compaction watermarks.
    """
    rule_id = rule_flat[0]
    config = ExpCutsConfig(stride=tree.stride,
                           habs_bits_log2=tree.habs_bits_log2,
                           max_nodes=max_nodes)
    builder = _Builder(config)
    if len(builder.schedule) != len(tree.schedule):
        raise IncrementalUpdateError(
            "tree schedule does not match its declared stride")
    builder.nodes = tree.nodes  # append in place (copy-on-write)
    checkpoint = len(tree.nodes)
    garbage = 0
    memo: dict[tuple, int | None] = {}

    def subtree(level: int, rules: tuple[FlatRule, ...]) -> int:
        try:
            ref = builder.build(level, rules)
        except MemoryError as exc:
            raise IncrementalUpdateError(str(exc)) from exc
        if len(tree.nodes) - checkpoint > edit_budget:
            raise IncrementalUpdateError(
                f"expcuts: subtree rebuild blew edit_budget={edit_budget}")
        return ref

    def descend(ref: int, level: int, rel: FlatRule) -> int | None:
        """New ref for this subtree, or None when unchanged."""
        nonlocal garbage
        if ref == REF_NO_MATCH:
            return subtree(level, (rel,))
        if ref < 0:
            existing = ref_rule_id(ref)
            if not precedes(existing):
                return None  # the covering rule keeps outranking us
            if builder.full_cover(rel, level):
                return leaf_ref(rule_id)
            full = builder.full_hi[level]
            existing_rel: list[int] = [existing]
            for fld in range(NUM_FIELDS):
                existing_rel.extend((0, full[fld]))
            return subtree(level, (rel, tuple(existing_rel)))
        key = (ref, rel)
        if key in memo:
            return memo[key]
        node = tree.nodes[ref]
        step = tree.schedule[node.level]
        fld = step.field
        pos = 1 + 2 * fld
        width = builder.widths[node.level][fld]
        shift = width - step.width
        child_full = (1 << shift) - 1
        lo, hi = rel[pos], rel[pos + 1]
        refs = node.children.decompress()
        changed = False
        for k in range(lo >> shift, (hi >> shift) + 1):
            base = k << shift
            clip_lo = lo - base if lo > base else 0
            clip_hi = hi - base if hi < base + child_full else child_full
            child_rel = rel[:pos] + (clip_lo, clip_hi) + rel[pos + 2:]
            new_ref = descend(refs[k], node.level + 1, child_rel)
            if new_ref is not None and new_ref != refs[k]:
                refs[k] = new_ref
                changed = True
        if not changed:
            memo[key] = None
            return None
        if len(tree.nodes) - checkpoint >= edit_budget:
            raise IncrementalUpdateError(
                f"expcuts: edit touched more than edit_budget="
                f"{edit_budget} nodes")
        if len(tree.nodes) >= config.max_nodes:
            raise IncrementalUpdateError(
                f"expcuts: edit exceeded max_nodes={config.max_nodes}")
        garbage += 1 + node.children.compressed_slots
        children = compress(refs, min(tree.habs_bits_log2, step.width))
        tree.nodes.append(InternalNode(node.level, children))
        new_ref = len(tree.nodes) - 1
        memo[key] = new_ref
        return new_ref

    def rollback() -> None:
        del tree.nodes[checkpoint:]

    try:
        new_root = descend(tree.root_ref, 0, rule_flat)
    except IncrementalUpdateError:
        rollback()
        raise
    if new_root is None:
        return 0  # shadowed everywhere: the tree already agrees
    # Pre-swap probe at the rule's corners: the winner must be the new
    # rule or one that outranks it.
    corners = (tuple(rule_flat[1 + 2 * f] for f in range(NUM_FIELDS)),
               tuple(rule_flat[2 + 2 * f] for f in range(NUM_FIELDS)))
    for header in corners:
        ref = new_root
        while ref >= 0:
            node = tree.nodes[ref]
            step = tree.schedule[node.level]
            key = (header[step.field] >> step.shift) \
                & ((1 << step.width) - 1)
            ref = node.children.lookup(key)
        got = ref_rule_id(ref)
        if got is None or (got != rule_id and precedes(got)):
            rollback()
            raise IncrementalUpdateError(
                f"expcuts: edited tree answers {got!r} at a corner of "
                f"rule {rule_id}")
    tree.root_ref = new_root
    tree.num_rules = max(tree.num_rules, rule_id + 1)
    tree.build_stats["garbage_words"] = (
        tree.build_stats.get("garbage_words", 0) + garbage)
    return len(tree.nodes) - checkpoint


def build_expcuts(ruleset: RuleSet, config: ExpCutsConfig | None = None,
                  meter: BudgetMeter | None = None) -> ExpCutsTree:
    """Build an ExpCuts tree for ``ruleset``.

    Rules are taken in priority (list) order; returns the tree IR which
    :mod:`repro.core.layout` packs into the SRAM word image.  With a
    ``meter`` the build charges nodes and Figure-4 layout words as it
    allocates them and raises :class:`BuildBudgetExceeded` cooperatively.
    """
    config = config or ExpCutsConfig()
    builder = _Builder(config, meter)
    root = builder.build(0, flat_projection(ruleset))
    return ExpCutsTree(
        stride=config.stride,
        habs_bits_log2=config.habs_bits_log2,
        schedule=builder.schedule,
        nodes=builder.nodes,
        root_ref=root,
        num_rules=len(ruleset),
        build_stats={
            "memo_hits": builder.memo_hits,
            "child_evaluations": builder.child_evals,
            "unique_nodes": len(builder.nodes),
        },
    )
