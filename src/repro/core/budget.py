"""Build budgets — Figure 6's SRAM wall as an enforced contract.

On the paper's platform the XScale core builds the classifier structure
and the microengines serve it out of four 8 MB QDR SRAM channels.  The
measured ExpCuts image for the largest rule set is ~11.5 MB — well under
the 32 MB ceiling, but that ceiling is a *hard wall*: an image that does
not fit cannot be deployed, and a build that never terminates (or eats
the control core's memory) blocks every subsequent rule update.

:class:`BuildBudget` expresses those limits declaratively; a
:class:`BudgetMeter` is threaded through each algorithm's build loop and
checked *cooperatively* — builders charge nodes and layout words as they
allocate them, and the meter raises a typed
:class:`~repro.core.errors.BuildBudgetExceeded` the moment a limit is
crossed, so a runaway build fails in bounded time instead of thrashing.
The update layer (:mod:`repro.classifiers.updates`) resolves that error
through its degradation chain (coarser parameters, then the linear slow
path) rather than crashing the experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from .errors import BuildBudgetExceeded, DeadlineExceeded

#: One QDR SRAM channel on the IXP2850 (Table 1): 8 MB.
SRAM_CHANNEL_BYTES = 8 * 1024 * 1024
#: Number of SRAM channels.
SRAM_CHANNELS = 4
#: Total SRAM — the hard deployment wall of Figure 6 / Table 4.
SRAM_TOTAL_BYTES = SRAM_CHANNELS * SRAM_CHANNEL_BYTES
#: The paper's measured ExpCuts image on the largest rule set (~11.5 MB).
PAPER_IMAGE_BYTES = int(11.5 * 1024 * 1024)

#: Bytes per 32-bit SRAM word (mirrors :data:`repro.core.layout.WORD_BYTES`,
#: which cannot be imported here without a cycle).
WORD_BYTES = 4


@dataclass(frozen=True)
class BuildBudget:
    """Limits for one classifier build; ``None`` disables a limit.

    ``max_nodes``
        Tree/table node allocations (protects control-core memory and
        build time on pathological rule sets).
    ``max_layout_bytes``
        Estimated size of the packed structure image, per the Figure 6
        SRAM model (words × 4 bytes).  Use :data:`SRAM_TOTAL_BYTES` for
        the paper's deployment wall.
    ``wall_seconds``
        Cooperative build deadline, polled every
        :data:`BudgetMeter.POLL_INTERVAL` charges.

    The ``clock`` field exists so tests can drive the deadline
    deterministically; it is excluded from ``repr`` so budgets key build
    caches stably.
    """

    max_nodes: int | None = None
    max_layout_bytes: int | None = None
    wall_seconds: float | None = None
    clock: Callable[[], float] | None = field(
        default=None, repr=False, compare=False)

    @classmethod
    def paper_sram(cls, wall_seconds: float | None = None) -> "BuildBudget":
        """The deployment budget: the structure must fit total SRAM."""
        return cls(max_layout_bytes=SRAM_TOTAL_BYTES,
                   wall_seconds=wall_seconds)

    def meter(self, algorithm: str) -> "BudgetMeter":
        """Start metering one build attempt (the deadline starts now)."""
        return BudgetMeter(self, algorithm)


class BudgetMeter:
    """Mutable per-build-attempt accounting against one budget.

    Builders call :meth:`add_node` / :meth:`add_words` as they allocate;
    every charge re-checks the node and byte limits, and every
    ``POLL_INTERVAL`` charges (plus every explicit :meth:`checkpoint`)
    the wall-clock deadline — frequent enough to bound overrun, rare
    enough that ``time.monotonic`` stays off the build's hot path.
    """

    #: Charges between deadline polls.
    POLL_INTERVAL = 128

    __slots__ = ("budget", "algorithm", "nodes", "words",
                 "_clock", "_deadline", "_ticks")

    def __init__(self, budget: BuildBudget, algorithm: str) -> None:
        self.budget = budget
        self.algorithm = algorithm
        self.nodes = 0
        self.words = 0
        self._clock = budget.clock or time.monotonic
        self._deadline = (
            None if budget.wall_seconds is None
            else self._clock() + budget.wall_seconds
        )
        self._ticks = 0

    @property
    def layout_bytes(self) -> int:
        """Estimated packed-image size charged so far."""
        return self.words * WORD_BYTES

    def _exceeded(self, limit: str, observed: float, bound: float) -> None:
        raise BuildBudgetExceeded(
            f"{self.algorithm} build exceeded its {limit} budget "
            f"({observed:.0f} > {bound:.0f})",
            limit=limit, observed=observed, bound=bound,
            algorithm=self.algorithm,
        )

    def add_node(self, words: int = 0) -> None:
        """Charge one structure node (plus its layout words, if known)."""
        self.nodes += 1
        if (self.budget.max_nodes is not None
                and self.nodes > self.budget.max_nodes):
            self._exceeded("nodes", self.nodes, self.budget.max_nodes)
        if words:
            self.add_words(words)
        else:
            self._tick()

    def add_words(self, words: int) -> None:
        """Charge ``words`` 32-bit words of packed structure image."""
        self.words += words
        if (self.budget.max_layout_bytes is not None
                and self.layout_bytes > self.budget.max_layout_bytes):
            self._exceeded("layout_bytes", self.layout_bytes,
                           self.budget.max_layout_bytes)
        self._tick()

    def _tick(self) -> None:
        self._ticks += 1
        if self._ticks >= self.POLL_INTERVAL:
            self._ticks = 0
            self.checkpoint()

    def checkpoint(self) -> None:
        """Deadline poll — call explicitly between build stages."""
        if self._deadline is not None:
            now = self._clock()
            if now > self._deadline:
                self._exceeded(
                    "wall_seconds",
                    now - (self._deadline - (self.budget.wall_seconds or 0.0)),
                    self.budget.wall_seconds or 0.0,
                )


def meter_for(budget: BuildBudget | None, algorithm: str) -> BudgetMeter | None:
    """``budget.meter(...)`` that tolerates ``None`` (the common call)."""
    return None if budget is None else budget.meter(algorithm)


class Deadline:
    """A per-request wall-clock deadline (the lookup-side analogue of
    :class:`BudgetMeter`'s build deadline).

    The serving layer (:mod:`repro.serve`) starts one per admitted
    request and checks it between retry attempts and before returning an
    answer, so a request that cannot be answered in time fails with the
    typed :class:`~repro.core.errors.DeadlineExceeded` instead of
    returning late (and, to the caller's SLO, stale) data.  Like
    :class:`BuildBudget`, the clock is injectable so tests and the
    simulated soak drive it deterministically.  ``budget_s=None`` means
    "no deadline": :meth:`expired` is always False.
    """

    __slots__ = ("budget_s", "_clock", "_start", "_deadline")

    def __init__(self, budget_s: float | None,
                 clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.monotonic
        self.budget_s = budget_s
        self._start = self._clock()
        self._deadline = None if budget_s is None else self._start + budget_s

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (``inf`` without a deadline; never negative)."""
        if self._deadline is None:
            return float("inf")
        return max(0.0, self._deadline - self._clock())

    def expired(self) -> bool:
        return self._deadline is not None and self._clock() > self._deadline

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s * 1e3:.3f} ms deadline "
                f"after {self.elapsed() * 1e3:.3f} ms",
                elapsed_s=self.elapsed(), budget_s=self.budget_s,
            )
