"""Classification rules and ordered rule sets.

A rule is a conjunction of one interval per 5-tuple field plus an action;
a rule set is an ordered list where earlier rules have higher priority
(first match wins), matching firewall/ACL semantics and the paper's
evaluation rule sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable, Iterator, Sequence

from .fields import FIELD_WIDTHS, Field, Header, NUM_FIELDS
from .interval import Interval, full_interval, prefix_to_interval

#: Conventional action names; any string is allowed.
ACTION_PERMIT = "permit"
ACTION_DENY = "deny"


def _parse_ipv4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Rule:
    """One 5-dimensional classification rule.

    ``intervals`` holds one closed interval per field in :class:`Field`
    order.  Priority is positional: a rule's priority is its index inside
    the owning :class:`RuleSet`.
    """

    intervals: tuple[Interval, Interval, Interval, Interval, Interval]
    action: str = ACTION_PERMIT

    def __post_init__(self) -> None:
        if len(self.intervals) != NUM_FIELDS:
            raise ValueError(f"expected {NUM_FIELDS} intervals, got {len(self.intervals)}")
        for fld, iv in zip(Field, self.intervals):
            limit = (1 << FIELD_WIDTHS[fld]) - 1
            if not 0 <= iv.lo <= iv.hi <= limit:
                raise ValueError(f"{fld.name} interval {iv} out of range")

    @classmethod
    def any(cls, action: str = ACTION_PERMIT) -> "Rule":
        """The fully wildcarded rule (matches every packet)."""
        return cls(tuple(full_interval(w) for w in FIELD_WIDTHS), action)  # type: ignore[arg-type]

    @classmethod
    def from_ranges(
        cls,
        sip: tuple[int, int] | Interval | None = None,
        dip: tuple[int, int] | Interval | None = None,
        sport: tuple[int, int] | Interval | None = None,
        dport: tuple[int, int] | Interval | None = None,
        proto: int | tuple[int, int] | Interval | None = None,
        action: str = ACTION_PERMIT,
    ) -> "Rule":
        """Build a rule from per-field ranges; ``None`` means wildcard."""

        def coerce(spec, width: int) -> Interval:
            if spec is None:
                return full_interval(width)
            if isinstance(spec, int):
                return Interval(spec, spec)
            lo, hi = spec
            return Interval(lo, hi)

        specs = (sip, dip, sport, dport, proto)
        return cls(
            tuple(coerce(s, FIELD_WIDTHS[f]) for f, s in zip(Field, specs)),  # type: ignore[arg-type]
            action,
        )

    @classmethod
    def from_prefixes(
        cls,
        sip: str | None = None,
        dip: str | None = None,
        sport: tuple[int, int] | int | None = None,
        dport: tuple[int, int] | int | None = None,
        proto: int | None = None,
        action: str = ACTION_PERMIT,
    ) -> "Rule":
        """Build a rule from dotted-quad CIDR strings and port specs.

        Example::

            Rule.from_prefixes(sip="10.0.0.0/8", dport=(0, 1023), proto=6)
        """

        def ip_interval(text: str | None) -> Interval:
            if text is None:
                return full_interval(32)
            if "/" in text:
                addr, plen = text.split("/")
                return prefix_to_interval(_parse_ipv4(addr), int(plen), 32)
            value = _parse_ipv4(text)
            return Interval(value, value)

        def port_interval(spec) -> Interval:
            if spec is None:
                return full_interval(16)
            if isinstance(spec, int):
                return Interval(spec, spec)
            lo, hi = spec
            return Interval(lo, hi)

        proto_iv = full_interval(8) if proto is None else Interval(proto, proto)
        return cls(
            (ip_interval(sip), ip_interval(dip), port_interval(sport),
             port_interval(dport), proto_iv),
            action,
        )

    def matches(self, header: Sequence[int]) -> bool:
        """Whether ``header`` (5 field values) satisfies every conjunct."""
        return all(iv.lo <= v <= iv.hi for iv, v in zip(self.intervals, header))

    def is_wildcard(self, fld: Field) -> bool:
        """Whether this rule places no constraint on ``fld``."""
        return self.intervals[fld] == full_interval(FIELD_WIDTHS[fld])

    def sample_header(self, rng) -> Header:
        """A uniformly random header matching this rule (``rng`` is a
        :class:`numpy.random.Generator` or anything with ``integers``)."""
        return Header(*(int(rng.integers(iv.lo, iv.hi + 1)) for iv in self.intervals))

    def __str__(self) -> str:
        sip, dip, sp, dp, pr = self.intervals
        return (
            f"{_format_ipv4(sip.lo)}-{_format_ipv4(sip.hi)} "
            f"{_format_ipv4(dip.lo)}-{_format_ipv4(dip.hi)} "
            f"{sp.lo}:{sp.hi} {dp.lo}:{dp.hi} {pr.lo}:{pr.hi} -> {self.action}"
        )


@dataclass
class RuleSet:
    """An ordered, first-match-wins list of rules."""

    rules: list[Rule] = dc_field(default_factory=list)
    name: str = "ruleset"

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __getitem__(self, index: int) -> Rule:
        return self.rules[index]

    def append(self, rule: Rule) -> None:
        self.rules.append(rule)

    def extend(self, rules: Iterable[Rule]) -> None:
        self.rules.extend(rules)

    def first_match(self, header: Sequence[int]) -> int | None:
        """Index of the highest-priority matching rule, or ``None``.

        This linear scan is the semantic ground truth every classifier in
        the library is tested against.
        """
        for idx, rule in enumerate(self.rules):
            if rule.matches(header):
                return idx
        return None

    def validate(self) -> None:
        """Raise if the rule set is structurally unsound (empty is fine)."""
        for rule in self.rules:
            if len(rule.intervals) != NUM_FIELDS:
                raise ValueError("rule with wrong arity")

    def with_default(self, action: str = ACTION_DENY) -> "RuleSet":
        """A copy with a catch-all rule appended (classic implicit deny)."""
        copy = RuleSet(list(self.rules), self.name)
        copy.append(Rule.any(action))
        return copy
