"""Systematic classifier verification over elementary regions.

Random headers rarely land on the thin slices where classifiers break
(range endpoints, prefix boundaries, the single port a rule names).  The
rule projections partition each field's domain into *elementary
segments*; the cross product of one representative point per segment
partitions the whole 5-tuple space into regions within which every
classifier must answer identically.  Verifying one point per region is
therefore exhaustive over behaviours, not samples — for small rule sets
this proves equivalence outright.

For larger sets the full product explodes (`prod(segments_f)`), so
``representative_headers`` caps the enumeration with a deterministic
low-discrepancy selection that still touches every segment of every
field at least once.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .fields import FIELD_WIDTHS, NUM_FIELDS
from .interval import elementary_edges
from .rule import RuleSet


def field_segment_points(ruleset: RuleSet, fld: int) -> list[int]:
    """One representative point (the left edge) per elementary segment,
    plus each segment's right edge — both borders of every slice."""
    intervals = [rule.intervals[fld] for rule in ruleset.rules]
    edges = elementary_edges(intervals, FIELD_WIDTHS[fld])
    domain_hi = (1 << FIELD_WIDTHS[fld]) - 1
    points = set()
    for idx, edge in enumerate(edges):
        points.add(edge)
        right = (edges[idx + 1] - 1) if idx + 1 < len(edges) else domain_hi
        points.add(right)
    return sorted(points)


def region_count(ruleset: RuleSet) -> int:
    """Number of elementary regions (the exhaustive product size)."""
    total = 1
    for fld in range(NUM_FIELDS):
        intervals = [rule.intervals[fld] for rule in ruleset.rules]
        total *= len(elementary_edges(intervals, FIELD_WIDTHS[fld]))
    return total


def representative_headers(ruleset: RuleSet,
                           cap: int = 200_000) -> Iterator[tuple[int, ...]]:
    """Yield representative headers covering the elementary regions.

    If the full cross product fits within ``cap`` it is enumerated
    exhaustively; otherwise a deterministic diagonal schedule walks the
    per-field point lists at coprime-ish strides so every point of every
    field appears and combinations vary, emitting exactly ``cap``
    headers.
    """
    points = [field_segment_points(ruleset, fld) for fld in range(NUM_FIELDS)]
    sizes = [len(p) for p in points]
    total = 1
    for size in sizes:
        total *= size
    if total <= cap:
        def rec(fld: int, prefix: tuple[int, ...]):
            if fld == NUM_FIELDS:
                yield prefix
                return
            for value in points[fld]:
                yield from rec(fld + 1, prefix + (value,))
        yield from rec(0, ())
        return
    # Diagonal schedule: header i takes point (i * stride_f + f) mod size_f
    # in field f; strides near size/φ give good coverage of combinations.
    strides = [max(1, int(size * 0.618) | 1) for size in sizes]
    for i in range(cap):
        yield tuple(
            points[fld][(i * strides[fld] + fld) % sizes[fld]]
            for fld in range(NUM_FIELDS)
        )


def verify_equivalence(classifier, ruleset: RuleSet,
                       cap: int = 50_000) -> int:
    """Assert ``classifier`` equals the priority scan on every
    representative header; returns the number of headers checked.

    Raises ``AssertionError`` naming the first divergent header.
    """
    checked = 0
    for header in representative_headers(ruleset, cap=cap):
        expected = ruleset.first_match(header)
        got = classifier.classify(header)
        if got != expected:
            raise AssertionError(
                f"{type(classifier).__name__} disagrees at {header}: "
                f"got {got}, oracle says {expected}"
            )
        checked += 1
    return checked


def verify_all(classifiers: Sequence, ruleset: RuleSet,
               cap: int = 50_000) -> dict[str, int]:
    """Run :func:`verify_equivalence` for several classifiers."""
    return {
        getattr(clf, "name", type(clf).__name__): verify_equivalence(
            clf, ruleset, cap=cap
        )
        for clf in classifiers
    }
