"""Multi-dimensional search-space geometry shared by all cutting algorithms.

A :class:`Box` is the axis-aligned region of 5-tuple space covered by one
decision-tree node.  Both HiCuts and ExpCuts repeatedly cut boxes into
equal sub-boxes along one dimension; the geometry (intersection, cover
tests, projection normalisation) lives here so tree builders stay small.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from .fields import FIELD_WIDTHS, Field, NUM_FIELDS
from .interval import Interval, full_interval, split_equal
from .rule import Rule


class Box(NamedTuple):
    """An axis-aligned 5-dimensional region (one interval per field)."""

    intervals: tuple[Interval, ...]

    @classmethod
    def full(cls) -> "Box":
        """The whole 5-tuple space."""
        return cls(tuple(full_interval(w) for w in FIELD_WIDTHS))

    def contains_header(self, header: Sequence[int]) -> bool:
        return all(iv.lo <= v <= iv.hi for iv, v in zip(self.intervals, header))

    def intersects_rule(self, rule: Rule) -> bool:
        return all(a.overlaps(b) for a, b in zip(self.intervals, rule.intervals))

    def rule_covers(self, rule: Rule) -> bool:
        """Whether ``rule`` covers this entire box."""
        return all(b.contains_interval(a) for a, b in zip(self.intervals, rule.intervals))

    def cut(self, fld: Field, parts: int) -> list["Box"]:
        """Cut the box into ``parts`` equal sub-boxes along ``fld``."""
        pieces = split_equal(self.intervals[fld], parts)
        return [
            Box(self.intervals[:fld] + (piece,) + self.intervals[fld + 1:])
            for piece in pieces
        ]

    def point_count(self) -> int:
        """Number of distinct headers inside the box."""
        count = 1
        for iv in self.intervals:
            count *= iv.size
        return count

    def is_point(self) -> bool:
        return all(iv.lo == iv.hi for iv in self.intervals)


class ProjectedRule(NamedTuple):
    """A rule clipped to a node box, with intervals normalised to the box.

    ``rule_id`` is the rule's global priority index.  ``intervals`` are the
    rule's intervals intersected with the box and translated so the box
    origin is 0 in every dimension.  Two node boxes whose projected rule
    lists are identical induce *identical subtrees* when all subsequent
    cuts depend only on the not-yet-consumed header bits — this is the
    soundness condition behind node sharing (the paper's child-node reuse,
    Figure 2), and it is stronger than merely comparing rule-id sets, which
    would be unsound for partially-overlapping ranges.
    """

    rule_id: int
    intervals: tuple[Interval, ...]


def project_rules(rules: Sequence[ProjectedRule], box_origin: Sequence[int],
                  box: Box) -> tuple[ProjectedRule, ...]:
    """Clip already-projected rules to a sub-box and re-normalise.

    ``rules`` are projections relative to the parent box; ``box_origin``
    is the parent-relative origin of the child box and ``box`` the child
    box in parent-relative coordinates.  Rules that miss the child box are
    dropped; a rule that covers the child box entirely truncates the list
    (everything of lower priority behind a full cover can never match
    first... only if it also covers — so truncation happens at the caller
    where cover is detected).
    """
    projected: list[ProjectedRule] = []
    for pr in rules:
        clipped: list[Interval] = []
        for fld in range(NUM_FIELDS):
            inter = pr.intervals[fld].intersect(box.intervals[fld])
            if inter is None:
                break
            clipped.append(inter.shifted(-box_origin[fld]))
        else:
            projected.append(ProjectedRule(pr.rule_id, tuple(clipped)))
    return tuple(projected)


def initial_projection(rules: Sequence[Rule]) -> tuple[ProjectedRule, ...]:
    """The root projection: every rule relative to the full space."""
    return tuple(
        ProjectedRule(idx, tuple(rule.intervals)) for idx, rule in enumerate(rules)
    )


def covers_box_widths(pr: ProjectedRule, widths: Sequence[int]) -> bool:
    """Whether a projected rule covers a (normalised) box of given widths.

    ``widths`` holds the remaining bit width per field, i.e. the box spans
    ``[0, 2**width - 1]`` in each dimension of its own coordinate frame.
    """
    return all(
        iv.lo == 0 and iv.hi == (1 << w) - 1 for iv, w in zip(pr.intervals, widths)
    )
