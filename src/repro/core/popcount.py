"""Population count, with the IXP2850 cost model attached.

Section 5.4 of the paper: summing a Hierarchical Aggregation Bit String
with plain RISC instructions costs ~100 cycles per lookup step, while the
IXP2850's hardware ``POP_COUNT`` counts the set bits of a 32-bit word in
3 cycles (>90 % reduction).  The simulator charges whichever cost model
the experiment selects; the *functional* result is identical either way,
which the tests assert.
"""

from __future__ import annotations

import numpy as np

#: Cycles charged for one hardware POP_COUNT (IXP2850 PRM figure).
POP_COUNT_CYCLES = 3

#: Cycles charged for a software bit-count loop over a 16-bit HABS using
#: ADD/SHIFT/AND/BRANCH only (paper: "more than 100 RISC instructions").
RISC_LOOP_CYCLES = 100


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return bin(value).count("1")


def popcount_risc_model(value: int, width: int = 16) -> tuple[int, int]:
    """Software bit-count, returning ``(count, cycles)``.

    Models the shift-and-add loop an IXP microengine runs without the
    hardware instruction: microcode has no data-dependent early exit
    worth its branch penalty, so the loop walks all ``width`` bit
    positions of the HABS register at one ADD+SHIFT+AND+BRANCH bundle
    (~6 cycles) apiece — "more than 100 RISC instructions" for the
    16-bit HABS (paper §5.4), which is exactly the cost the hardware
    ``POP_COUNT`` removes.
    """
    count = 0
    v = value
    while v:
        count += v & 1
        v >>= 1
    iterations = max(width, value.bit_length())
    return count, max(6 * iterations + 4, 10)


#: 16-bit popcount lookup table for the vectorized path (HABS is 16 bits).
_POPCOUNT16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8)


def popcount_u32(values: np.ndarray) -> np.ndarray:
    """Vectorized popcount over a ``uint32`` array (table-driven)."""
    values = np.ascontiguousarray(values, dtype=np.uint32)
    return (
        _POPCOUNT16[values & np.uint32(0xFFFF)].astype(np.int64)
        + _POPCOUNT16[values >> np.uint32(16)]
    )


def popcount_u16(values: np.ndarray) -> np.ndarray:
    """Vectorized popcount over a ``uint16``-ranged array."""
    return _POPCOUNT16[np.asarray(values, dtype=np.uint32) & np.uint32(0xFFFF)].astype(np.int64)
