"""Hierarchical Aggregation Bit String (HABS) pointer-array compression.

Section 4.2.2 of the paper.  An ExpCuts internal node conceptually stores
``2**w`` child pointers.  Rather than the full array, the node keeps:

* a ``2**v``-bit HABS, one bit per aligned *sub-array* of ``2**u``
  consecutive pointers (``u = w - v``).  Bit ``m`` is set iff sub-array
  ``m`` differs from sub-array ``m - 1`` (bit 0 is always set);
* a Compressed Pointer Array (CPA) holding only the distinct sub-arrays,
  in order of first appearance.

Pointer ``n`` is recovered as::

    m = n >> u                  # which sub-array
    j = n & (2**u - 1)          # offset inside it
    i = popcount(HABS & ((1 << (m + 1)) - 1)) - 1   # CPA sub-array index
    pointer = CPA[(i << u) + j]

The paper's worked example (Figure 3): a 4-bit HABS over 16 pointers whose
sub-arrays 1..3 repeat sub-array 1's contents gives HABS bits 1,1,0,0 and
looking up sub-space 9 lands on CPA entry 5.  ``tests/core/test_habs.py``
reproduces it literally.

This module is pure compression logic — word-level encoding into the
SRAM image lives in :mod:`repro.core.layout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .popcount import popcount


@dataclass(frozen=True)
class HabsArray:
    """A pointer array compressed as HABS + CPA.

    ``habs``
        The bit string; bit ``m`` (LSB first) covers sub-array ``m``.
    ``cpa``
        Concatenation of the retained sub-arrays (length =
        ``popcount(habs) * 2**u``).
    ``u``
        log2 of the sub-array length.
    ``v``
        log2 of the number of sub-arrays (HABS width = ``2**v`` bits).
    """

    habs: int
    cpa: tuple[int, ...]
    u: int
    v: int

    @property
    def total_slots(self) -> int:
        """Logical (uncompressed) pointer-array length, ``2**(u + v)``."""
        return 1 << (self.u + self.v)

    def lookup(self, n: int) -> int:
        """Recover logical pointer ``n`` (the paper's 4-step procedure)."""
        if not 0 <= n < self.total_slots:
            raise IndexError(f"pointer index {n} out of range")
        m = n >> self.u
        j = n & ((1 << self.u) - 1)
        i = popcount(self.habs & ((1 << (m + 1)) - 1)) - 1
        return self.cpa[(i << self.u) + j]

    def decompress(self) -> list[int]:
        """The full logical pointer array (inverse of :func:`compress`)."""
        return [self.lookup(n) for n in range(self.total_slots)]

    @property
    def compressed_slots(self) -> int:
        """Number of pointer slots actually stored."""
        return len(self.cpa)


def compress(pointers: Sequence[int], v: int) -> HabsArray:
    """Compress a pointer array with a ``2**v``-bit HABS.

    The array length must be a power of two no smaller than ``2**v``;
    ``u`` is derived as ``log2(len) - v``.  Compression is lossless for
    any input, but only effective when consecutive sub-arrays repeat —
    which the fixed-stride cutting of ExpCuts makes overwhelmingly common
    (the paper measures < 10 distinct children per 256-way node on
    real-life rule sets).
    """
    size = len(pointers)
    if size == 0 or size & (size - 1):
        raise ValueError(f"pointer array length must be a power of two, got {size}")
    w = size.bit_length() - 1
    if not 0 <= v <= w:
        raise ValueError(f"v={v} out of range for array of 2**{w} pointers")
    u = w - v
    sub_len = 1 << u
    habs = 0
    cpa: list[int] = []
    prev: Sequence[int] | None = None
    for m in range(1 << v):
        sub = tuple(pointers[m * sub_len:(m + 1) * sub_len])
        if prev is None or sub != prev:
            habs |= 1 << m
            cpa.extend(sub)
            prev = sub
    return HabsArray(habs=habs, cpa=tuple(cpa), u=u, v=v)


def compression_ratio(arr: HabsArray) -> float:
    """Stored slots / logical slots — Figure 6 is this ratio aggregated
    over every node of a tree (plus headers)."""
    return arr.compressed_slots / arr.total_slots
