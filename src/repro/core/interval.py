"""Closed integer intervals and prefix/range arithmetic.

All packet-classification fields are modelled as closed integer intervals
``[lo, hi]`` over an unsigned domain of a fixed bit width.  CIDR prefixes,
exact values and wildcards are all special cases of intervals, which lets
every classifier in this library share one geometric vocabulary.
"""

from __future__ import annotations

from typing import NamedTuple


class Interval(NamedTuple):
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    @property
    def size(self) -> int:
        """Number of integer points covered by the interval."""
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is entirely inside ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        """The intersection interval, or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def shifted(self, offset: int) -> "Interval":
        """The interval translated by ``offset``."""
        return Interval(self.lo + offset, self.hi + offset)

    def is_power_of_two_aligned(self) -> bool:
        """True when the interval is an aligned power-of-two block.

        Such blocks are exactly the regions expressible as a single binary
        prefix; ExpCuts cutting only ever produces aligned blocks.
        """
        size = self.size
        if size & (size - 1):
            return False
        return self.lo % size == 0


def full_interval(width: int) -> Interval:
    """The whole domain of a ``width``-bit unsigned field."""
    if width <= 0:
        raise ValueError(f"field width must be positive, got {width}")
    return Interval(0, (1 << width) - 1)


def prefix_to_interval(value: int, prefix_len: int, width: int) -> Interval:
    """Convert a binary prefix to its covered interval.

    ``value`` holds the full ``width``-bit pattern whose top ``prefix_len``
    bits are significant (the rest are ignored), mirroring the usual
    ``a.b.c.d/len`` notation.
    """
    if not 0 <= prefix_len <= width:
        raise ValueError(f"prefix length {prefix_len} out of range for width {width}")
    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value:#x} out of range for width {width}")
    span = width - prefix_len
    lo = (value >> span) << span
    hi = lo + (1 << span) - 1
    return Interval(lo, hi)


def interval_to_prefixes(interval: Interval, width: int) -> list[tuple[int, int]]:
    """Decompose an interval into a minimal list of ``(value, prefix_len)``.

    This is the classic range-to-prefix expansion used when loading range
    rules into prefix-only structures (e.g. TCAM entries, tries); an
    arbitrary ``width``-bit range expands into at most ``2*width - 2``
    prefixes.
    """
    if not 0 <= interval.lo <= interval.hi < (1 << width):
        raise ValueError(f"interval {interval} out of range for width {width}")
    prefixes: list[tuple[int, int]] = []
    lo, hi = interval.lo, interval.hi
    while lo <= hi:
        # Largest aligned block starting at lo that still fits in [lo, hi].
        max_align = lo & -lo if lo else 1 << width
        size = 1
        while size < max_align and lo + size * 2 - 1 <= hi:
            size *= 2
        span = size.bit_length() - 1
        prefixes.append((lo, width - span))
        lo += size
    return prefixes


def split_equal(interval: Interval, parts: int) -> list[Interval]:
    """Split an interval into ``parts`` equal-size sub-intervals.

    ``parts`` must divide the interval size exactly (all cutting in this
    library operates on aligned power-of-two blocks, where that always
    holds).
    """
    size = interval.size
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if size % parts:
        raise ValueError(f"cannot split interval of size {size} into {parts} equal parts")
    step = size // parts
    return [Interval(interval.lo + i * step, interval.lo + (i + 1) * step - 1) for i in range(parts)]


def elementary_edges(intervals: list[Interval], width: int) -> list[int]:
    """Left endpoints of the elementary segments induced by ``intervals``.

    Always includes 0, so the result is a partition of the full domain:
    segment ``i`` spans ``[edges[i], edges[i+1] - 1]`` (the last one runs to
    the domain maximum).
    """
    domain_hi = (1 << width) - 1
    edges = {0}
    for iv in intervals:
        if iv.lo > 0:
            edges.add(iv.lo)
        if iv.hi < domain_hi:
            edges.add(iv.hi + 1)
    return sorted(edges)
