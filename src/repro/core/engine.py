"""Lookup engines over the packed ExpCuts word image.

Three access paths, all provably equivalent (tests cross-check them and
the tree-IR walk against the linear-search oracle):

* :meth:`ExpCutsEngine.classify` — the scalar walk a microengine thread
  performs: read the node header word, one ``POP_COUNT``, read one pointer
  word, descend.
* :meth:`ExpCutsEngine.classify_batch` — NumPy level-synchronous traversal
  of whole packet arrays (flat contiguous ``uint32`` gathers, no per-packet
  Python), per the HPC guide idioms.
* :meth:`ExpCutsEngine.access_trace` — the scalar walk instrumented to
  emit the exact memory-reference/compute sequence, which
  :mod:`repro.npsim` replays on simulated hardware threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .errors import DepthBoundExceededError
from .fields import CutStep
from .layout import LEAF_FLAG, TreeImage, decode_leaf
from .popcount import (
    POP_COUNT_CYCLES,
    popcount,
    popcount_risc_model,
    popcount_u16,
)

#: Cycles for extracting the level key from header registers (shift+mask).
KEY_EXTRACT_CYCLES = 2
#: Cycles for CPA address arithmetic (shift, add, add).
ADDRESS_ARITH_CYCLES = 3


@dataclass(frozen=True)
class MemRead:
    """One SRAM read in a lookup trace.

    ``region`` names the logical memory segment (here ``level:<n>``);
    the NP allocator maps regions to physical channels.  ``compute_before``
    is the number of ME cycles spent between the previous read's data
    arrival and this command issue.
    """

    region: str
    addr: int
    nwords: int
    compute_before: int


@dataclass
class LookupTrace:
    """The full memory/compute footprint of classifying one header."""

    reads: tuple[MemRead, ...]
    compute_after: int
    result: int | None

    @property
    def total_words(self) -> int:
        return sum(r.nwords for r in self.reads)

    @property
    def total_accesses(self) -> int:
        return len(self.reads)

    @property
    def total_compute(self) -> int:
        return sum(r.compute_before for r in self.reads) + self.compute_after


class ExpCutsEngine:
    """Classify packets against a packed :class:`TreeImage`."""

    def __init__(self, image: TreeImage, use_pop_count: bool = True) -> None:
        self.image = image
        self.schedule: list[CutStep] = image.tree.schedule
        self.use_pop_count = use_pop_count

    # -- scalar ---------------------------------------------------------

    def classify(self, header: Sequence[int]) -> int | None:
        """Return the matched rule id (or ``None``) for one header."""
        ptr = self.image.root_ptr
        level = 0
        bound = len(self.schedule)
        while not ptr & int(LEAF_FLAG):
            if level >= bound:
                # Watchdog: only a corrupted image can get here — the
                # packed tree is at most ``bound`` levels deep.
                raise DepthBoundExceededError(
                    f"lookup descended past the {bound}-level bound"
                )
            ptr = self._descend(ptr, level, header)[0]
            level += 1
        return decode_leaf(ptr)

    def _descend(self, addr: int, level: int, header: Sequence[int]) -> tuple[int, int]:
        """One level: returns ``(child pointer word, compute cycles)``."""
        seg = self.image.levels[level]
        hw = int(seg[addr])
        step = self.schedule[level]
        key = (header[step.field] >> step.shift) & ((1 << step.width) - 1)
        cycles = KEY_EXTRACT_CYCLES
        if self.image.aggregated:
            habs = hw & 0xFFFF
            u = (hw >> 20) & 0xF
            m = key >> u
            j = key & ((1 << u) - 1)
            mask = (1 << (m + 1)) - 1
            if self.use_pop_count:
                i = popcount(habs & mask) - 1
                cycles += POP_COUNT_CYCLES
            else:
                i, risc_cycles = popcount_risc_model(habs & mask)
                i -= 1
                cycles += risc_cycles
            slot = (i << u) + j
        else:
            slot = key
        cycles += ADDRESS_ARITH_CYCLES
        return int(seg[addr + 1 + slot]), cycles

    # -- instrumented ----------------------------------------------------

    def access_trace(self, header: Sequence[int]) -> LookupTrace:
        """The scalar walk, recording every SRAM reference.

        Each level costs two single-word reads — the header word, then
        (after the POP_COUNT/address computation) the pointer word — which
        is how the word-oriented IXP SRAM controller consumes Figure 4's
        data structure.
        """
        reads: list[MemRead] = []
        ptr = self.image.root_ptr
        level = 0
        bound = len(self.schedule)
        pending = KEY_EXTRACT_CYCLES  # root pointer is a register, not a read
        while not ptr & int(LEAF_FLAG):
            if level >= bound:
                raise DepthBoundExceededError(
                    f"lookup descended past the {bound}-level bound"
                )
            seg = self.image.levels[level]
            addr = ptr
            reads.append(MemRead(f"level:{level}", addr, 1, pending))
            hw = int(seg[addr])
            step = self.schedule[level]
            key = (header[step.field] >> step.shift) & ((1 << step.width) - 1)
            cycles = KEY_EXTRACT_CYCLES
            if self.image.aggregated:
                habs = hw & 0xFFFF
                u = (hw >> 20) & 0xF
                m = key >> u
                j = key & ((1 << u) - 1)
                mask = (1 << (m + 1)) - 1
                if self.use_pop_count:
                    i = popcount(habs & mask) - 1
                    cycles += POP_COUNT_CYCLES
                else:
                    i, risc = popcount_risc_model(habs & mask)
                    i -= 1
                    cycles += risc
                slot = (i << u) + j
            else:
                slot = key
            cycles += ADDRESS_ARITH_CYCLES
            reads.append(MemRead(f"level:{level}", addr + 1 + slot, 1, cycles))
            ptr = int(seg[addr + 1 + slot])
            pending = KEY_EXTRACT_CYCLES
            level += 1
        return LookupTrace(tuple(reads), compute_after=2, result=decode_leaf(ptr))

    def classify_traced(self, header: Sequence[int], trace) -> int | None:
        """The scalar walk, recording the decision path.

        ``trace`` is a :class:`repro.obs.trace.DecisionTrace`.  Each
        level records one ``node`` step carrying the cut field, stride,
        extracted key, the HABS word and its POP_COUNT result, and the
        slot the CPA arithmetic selected — the data behind the paper's
        "one POP_COUNT instead of ~100 RISC operations" claim, made
        assertable per lookup.
        """
        trace.begin("expcuts", header)
        ptr = self.image.root_ptr
        level = 0
        bound = len(self.schedule)
        while not ptr & int(LEAF_FLAG):
            if level >= bound:
                raise DepthBoundExceededError(
                    f"lookup descended past the {bound}-level bound"
                )
            seg = self.image.levels[level]
            addr = ptr
            hw = int(seg[addr])
            step = self.schedule[level]
            key = (header[step.field] >> step.shift) & ((1 << step.width) - 1)
            detail: dict = {"field": step.field, "stride": step.width, "key": key}
            if self.image.aggregated:
                habs = hw & 0xFFFF
                u = (hw >> 20) & 0xF
                m = key >> u
                j = key & ((1 << u) - 1)
                mask = (1 << (m + 1)) - 1
                pop = popcount(habs & mask)
                slot = ((pop - 1) << u) + j
                detail["habs"] = habs
                detail["popcount"] = pop
            else:
                slot = key
            detail["slot"] = slot
            # Two single-word reads per level: node header, then pointer.
            trace.node(f"level:{level}", addr, words=2, **detail)
            ptr = int(seg[addr + 1 + slot])
            level += 1
        result = decode_leaf(ptr)
        trace.leaf(f"level:{level - 1}" if level else "root", int(ptr) & 0x7FFF_FFFF,
                   rule=result)
        return trace.finish(result)

    # -- vectorized ------------------------------------------------------

    def classify_batch(self, fields: Sequence[np.ndarray]) -> np.ndarray:
        """Classify many headers at once (level-synchronous traversal).

        ``fields`` holds five equal-length integer arrays (sip, dip,
        sport, dport, proto).  Returns an ``int64`` array of rule ids with
        ``-1`` for no-match.
        """
        n = len(fields[0])
        results = np.full(n, -1, dtype=np.int64)
        field_arrays = [np.ascontiguousarray(f, dtype=np.uint32) for f in fields]

        ptr = np.full(n, self.image.root_ptr, dtype=np.uint32)
        active = np.arange(n, dtype=np.int64)

        leaf_now = (ptr & LEAF_FLAG).astype(bool)
        self._settle(results, active, ptr, leaf_now)
        active = active[~leaf_now]
        ptr = ptr[~leaf_now]

        for level, step in enumerate(self.schedule):
            if active.size == 0:
                break
            seg = self.image.levels[level]
            addr = ptr.astype(np.int64)
            hw = seg[addr]
            key = (
                (field_arrays[step.field][active] >> np.uint32(step.shift))
                & np.uint32((1 << step.width) - 1)
            ).astype(np.int64)
            if self.image.aggregated:
                habs = (hw & np.uint32(0xFFFF)).astype(np.int64)
                u = ((hw >> np.uint32(20)) & np.uint32(0xF)).astype(np.int64)
                m = key >> u
                j = key & ((np.int64(1) << u) - 1)
                mask = (np.int64(1) << (m + 1)) - 1
                i = popcount_u16(habs & mask) - 1
                slot = (i << u) + j
            else:
                slot = key
            ptr = seg[addr + 1 + slot]
            leaf_now = (ptr & LEAF_FLAG).astype(bool)
            self._settle(results, active, ptr, leaf_now)
            active = active[~leaf_now]
            ptr = ptr[~leaf_now]
        if active.size:
            raise DepthBoundExceededError("traversal exceeded the explicit depth bound")
        return results

    @staticmethod
    def _settle(results: np.ndarray, active: np.ndarray, ptr: np.ndarray,
                leaf_now: np.ndarray) -> None:
        """Write out rule ids for packets that just reached a leaf."""
        if not leaf_now.any():
            return
        done = active[leaf_now]
        payload = (ptr[leaf_now] & np.uint32(0x7FFF_FFFF)).astype(np.int64)
        results[done] = payload - 1  # payload 0 (no match) becomes -1
