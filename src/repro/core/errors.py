"""Typed exception hierarchy for the whole library.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers can catch "anything this library
objects to" with one clause while the graceful-degradation machinery
(:mod:`repro.npsim.faults`, :class:`repro.classifiers.updates.UpdatableClassifier`,
:mod:`repro.serve`) distinguishes recoverable conditions from
programming mistakes.

Each concrete class also inherits the builtin exception the same
condition used to raise (``ValueError``, ``IndexError``, ``KeyError``),
so pre-existing ``except ValueError`` call sites and tests keep working
across the migration.

Every class carries a stable machine-readable ``code`` string.  The
harness CLI prints it on failure (``error[serve.deadline]: ...``) so
scripts and CI can branch on the condition without parsing prose, and
the string is a compatibility contract: renaming a class must not
change its code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error raised by this library."""

    #: Stable, machine-readable identifier for the error condition,
    #: surfaced in CLI exit messages as ``error[<code>]: <message>``.
    code = "repro"


class ConfigurationError(ReproError, ValueError):
    """A constructor or function was given an invalid parameter value."""

    code = "config"


class GenerationError(ReproError, RuntimeError):
    """A synthetic generator could not satisfy its target (e.g. the
    requested number of distinct rules or routes is unreachable for the
    profile's value distributions)."""

    code = "generation"


class SimulationError(ReproError):
    """Something went wrong inside the NP discrete-event simulation."""

    code = "sim"


class ChannelError(SimulationError, ValueError):
    """A memory channel was misconfigured or misused."""

    code = "sim.channel"


class ChannelOfflineError(ChannelError):
    """A command was issued to a channel that is offline.

    Raised by :meth:`repro.npsim.memory.MemoryChannel.issue` when a
    fault took the channel down; the simulator routes around offline
    channels, so seeing this escape means a routing bug, not a fault.
    """

    code = "sim.channel_offline"

    def __init__(self, channel: str, at: float) -> None:
        super().__init__(f"channel {channel} is offline at cycle {at:.0f}")
        self.channel = channel
        self.at = at


class PlacementError(SimulationError, ValueError):
    """No valid region-to-channel placement exists (or policy unknown)."""

    code = "sim.placement"


class RegionUnmappedError(SimulationError, KeyError):
    """A program references a region with no channel placement."""

    code = "sim.region_unmapped"


class RuleParseError(ReproError, ValueError):
    """A rule line could not be parsed.

    Carries ``source`` (file name or ruleset name) and ``line_no`` so
    batch loaders can report exactly where the bad line sits.
    """

    code = "rule.parse"

    def __init__(self, message: str, source: str | None = None,
                 line_no: int | None = None) -> None:
        where = ""
        if source is not None:
            where += f"{source}:"
        if line_no is not None:
            where += f"line {line_no}: "
        super().__init__(f"{where}{message}")
        self.source = source
        self.line_no = line_no


class RuleFormatError(ReproError, ValueError):
    """A rule cannot be serialised to the textual format."""

    code = "rule.format"


class UpdateError(ReproError, IndexError):
    """An insert/remove targeted an invalid rule position."""

    code = "update"


class RebuildError(ReproError, RuntimeError):
    """A classifier rebuild failed or produced a structure that
    disagrees with the linear oracle (validate-then-swap rejected it)."""

    code = "rebuild"


class IncrementalUpdateError(ReproError, RuntimeError):
    """An incremental structure edit was rejected before the swap.

    Raised by the tree classifiers' ``insert_rule`` when the edit blows
    its node budget or the edited subtree fails the pre-swap validation
    probe.  The edit is rolled back (the old root keeps serving) and the
    update layer falls back to the overlay + rebuild path — seeing this
    escape :class:`repro.classifiers.updates.UpdatableClassifier` means
    the fallback chain was bypassed.
    """

    code = "update.incremental"


class DepthBoundExceededError(ReproError, RuntimeError):
    """A lookup descended past the structure's explicit depth bound.

    The per-lookup watchdog: a corrupted image or a bad pointer word
    would otherwise walk garbage forever; callers fall back to the
    linear slow path when they see this.
    """

    code = "depth_bound"


class SnapshotError(ReproError, RuntimeError):
    """Something is wrong with a persisted structure snapshot."""

    code = "snapshot"


class SnapshotIntegrityError(SnapshotError):
    """A snapshot file failed verification and must not be unpickled.

    Carries ``path`` and ``reason`` (``"bad magic"``, ``"truncated
    payload"``, ``"checksum mismatch"``, ``"version skew"``, ...) so the
    cache layer can log one precise line and quarantine the file.
    """

    code = "snapshot.integrity"

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


class BuildBudgetExceeded(ReproError, RuntimeError):
    """A classifier build ran past its :class:`repro.core.budget.BuildBudget`.

    ``limit`` names the exhausted resource (``"nodes"``, ``"layout_bytes"``
    or ``"wall_seconds"``); ``observed`` is the value that crossed it.
    The update layer's degradation chain catches this and retries with
    coarser parameters or falls back to the linear slow path — seeing it
    escape an experiment means the chain was explicitly disabled.
    """

    code = "budget.build"

    def __init__(self, message: str, *, limit: str, observed: float,
                 bound: float, algorithm: str | None = None) -> None:
        super().__init__(message)
        self.limit = limit
        self.observed = observed
        self.bound = bound
        self.algorithm = algorithm


class FaultPlanError(ConfigurationError):
    """A fault-injection plan is internally inconsistent."""

    code = "faults.plan"


# -- serving layer (repro.serve) ---------------------------------------------


class ServiceError(ReproError):
    """Base class for every error the serving layer returns to a caller."""

    code = "serve"


class AdmissionRejected(ServiceError):
    """A request was shed at admission instead of being queued.

    ``reason`` is one of the stable shed-reason strings
    (``"rate_limited"``, ``"queue_full"``, ``"stopping"``, ``"stopped"``)
    and doubles as the metrics key ``serve.shed.<reason>``.
    """

    code = "serve.shed"

    def __init__(self, reason: str) -> None:
        super().__init__(f"request shed at admission: {reason}")
        self.reason = reason


class ServiceStopped(AdmissionRejected):
    """The service is stopped (or draining) and accepts no new requests."""

    code = "serve.stopped"

    def __init__(self, reason: str = "stopped") -> None:
        super().__init__(reason)


class ShardUnavailable(AdmissionRejected):
    """The shard owning a request's flow cannot serve right now.

    Raised by the fabric when the worker process that owns the routed
    shard is dead, restarting, or parked by the crash-loop budget.  The
    fabric *sheds* instead of blocking behind the restart — the caller
    is expected to retry after the supervision layer brings the shard
    back.  ``shard`` names the worker; ``phase`` says why it cannot
    serve (``"down"``, ``"restarting"``, ``"parked"``,
    ``"breaker_open"``).  The shed reason is always ``"shard_down"``
    (metrics key ``fabric.shed.shard_down``).
    """

    code = "serve.shard_down"

    def __init__(self, shard: str, phase: str = "down") -> None:
        super().__init__("shard_down")
        self.shard = shard
        self.phase = phase
        self.args = (f"shard {shard} cannot serve: {phase}",)


class WorkerCrashLoop(ServiceError):
    """A supervised worker exhausted its crash-loop restart budget.

    The supervisor parks the shard (no further automatic restarts)
    rather than burn CPU respawning a worker that dies on arrival;
    requests routed to a parked shard shed with
    :class:`ShardUnavailable`.  ``shard`` names the worker and
    ``restarts`` counts the restarts inside the budget window.
    """

    code = "serve.crash_loop"

    def __init__(self, shard: str, restarts: int, window_s: float) -> None:
        super().__init__(
            f"shard {shard} crash-looping: {restarts} restarts within "
            f"{window_s:g}s; parking (manual intervention required)")
        self.shard = shard
        self.restarts = restarts
        self.window_s = window_s


class DeadlineExceeded(ServiceError, TimeoutError):
    """A request's deadline expired before a verified answer was ready.

    The service raises this instead of returning a stale or partial
    answer; ``elapsed_s`` and ``budget_s`` record how far past the
    deadline the request ran.
    """

    code = "serve.deadline"

    def __init__(self, message: str, *, elapsed_s: float | None = None,
                 budget_s: float | None = None) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s


class TransientServiceError(ServiceError):
    """A retryable failure: the replica is expected to recover.

    Wraps snapshot-load failures, rebuild-in-progress windows and
    injected SRAM channel faults; the retry policy backs off and tries
    again (or fails over) instead of surfacing these to the caller.
    """

    code = "serve.transient"


class CircuitOpenError(ServiceError):
    """Every replica's circuit breaker is open: nothing can serve.

    Callers treat this like a shed (retry later); the breakers will
    probe half-open after their cool-down.
    """

    code = "serve.breaker_open"


class RetriesExhausted(ServiceError):
    """The retry budget ran out before any replica answered.

    ``attempts`` counts tries; ``last`` is the final failure.
    """

    code = "serve.retries_exhausted"

    def __init__(self, message: str, *, attempts: int,
                 last: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last = last
