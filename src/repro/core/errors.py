"""Typed exception hierarchy for the whole library.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers can catch "anything this library
objects to" with one clause while the graceful-degradation machinery
(:mod:`repro.npsim.faults`, :class:`repro.classifiers.updates.UpdatableClassifier`)
distinguishes recoverable conditions from programming mistakes.

Each concrete class also inherits the builtin exception the same
condition used to raise (``ValueError``, ``IndexError``, ``KeyError``),
so pre-existing ``except ValueError`` call sites and tests keep working
across the migration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A constructor or function was given an invalid parameter value."""


class SimulationError(ReproError):
    """Something went wrong inside the NP discrete-event simulation."""


class ChannelError(SimulationError, ValueError):
    """A memory channel was misconfigured or misused."""


class ChannelOfflineError(ChannelError):
    """A command was issued to a channel that is offline.

    Raised by :meth:`repro.npsim.memory.MemoryChannel.issue` when a
    fault took the channel down; the simulator routes around offline
    channels, so seeing this escape means a routing bug, not a fault.
    """

    def __init__(self, channel: str, at: float) -> None:
        super().__init__(f"channel {channel} is offline at cycle {at:.0f}")
        self.channel = channel
        self.at = at


class PlacementError(SimulationError, ValueError):
    """No valid region-to-channel placement exists (or policy unknown)."""


class RegionUnmappedError(SimulationError, KeyError):
    """A program references a region with no channel placement."""


class RuleParseError(ReproError, ValueError):
    """A rule line could not be parsed.

    Carries ``source`` (file name or ruleset name) and ``line_no`` so
    batch loaders can report exactly where the bad line sits.
    """

    def __init__(self, message: str, source: str | None = None,
                 line_no: int | None = None) -> None:
        where = ""
        if source is not None:
            where += f"{source}:"
        if line_no is not None:
            where += f"line {line_no}: "
        super().__init__(f"{where}{message}")
        self.source = source
        self.line_no = line_no


class RuleFormatError(ReproError, ValueError):
    """A rule cannot be serialised to the textual format."""


class UpdateError(ReproError, IndexError):
    """An insert/remove targeted an invalid rule position."""


class RebuildError(ReproError, RuntimeError):
    """A classifier rebuild failed or produced a structure that
    disagrees with the linear oracle (validate-then-swap rejected it)."""


class DepthBoundExceededError(ReproError, RuntimeError):
    """A lookup descended past the structure's explicit depth bound.

    The per-lookup watchdog: a corrupted image or a bad pointer word
    would otherwise walk garbage forever; callers fall back to the
    linear slow path when they see this.
    """


class SnapshotError(ReproError, RuntimeError):
    """Something is wrong with a persisted structure snapshot."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot file failed verification and must not be unpickled.

    Carries ``path`` and ``reason`` (``"bad magic"``, ``"truncated
    payload"``, ``"checksum mismatch"``, ``"version skew"``, ...) so the
    cache layer can log one precise line and quarantine the file.
    """

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


class BuildBudgetExceeded(ReproError, RuntimeError):
    """A classifier build ran past its :class:`repro.core.budget.BuildBudget`.

    ``limit`` names the exhausted resource (``"nodes"``, ``"layout_bytes"``
    or ``"wall_seconds"``); ``observed`` is the value that crossed it.
    The update layer's degradation chain catches this and retries with
    coarser parameters or falls back to the linear slow path — seeing it
    escape an experiment means the chain was explicitly disabled.
    """

    def __init__(self, message: str, *, limit: str, observed: float,
                 bound: float, algorithm: str | None = None) -> None:
        super().__init__(message)
        self.limit = limit
        self.observed = observed
        self.bound = bound
        self.algorithm = algorithm


class FaultPlanError(ConfigurationError):
    """A fault-injection plan is internally inconsistent."""
