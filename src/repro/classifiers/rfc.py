"""RFC (Recursive Flow Classification) — Gupta & McKeown, SIGCOMM 1999.

The other field-independent scheme the paper cites alongside HSM (§2).
Instead of binary searches, RFC direct-indexes *chunk* tables (16-bit
header chunks), then folds chunk equivalence classes through a reduction
tree::

    sip_hi ──┐
             ├─ A ─┐
    sip_lo ──┘     │
    dip_hi ──┐     ├─ D ─┐
             ├─ B ─┘     │
    dip_lo ──┘           ├─ F ──> matched rule
    sport ──┐            │
            ├─ C ─ E ────┘   (E = C × proto)
    dport ──┘

Lookup is a fixed 13 single-word reads (7 chunk indexes + 4 combination
tables + 2 pipeline/result words as modelled); memory is the largest of
all algorithms here — the classic RFC trade, which is why it serves as
the memory-extreme point in the extension benchmarks.

IP chunking note: splitting a 32-bit field into two 16-bit chunks is only
product-exact when the field constraint is a *prefix*.  Arbitrary IP
ranges are therefore decomposed into their minimal prefix cover (at most
62 prefixes) and the rule is expanded into one *sub-rule per
(sip-prefix, dip-prefix) pair*, each carrying its own mask bit.  Merging
the prefixes into a single rule bit would be unsound: a header could
match one prefix's high chunk and a different prefix's low chunk — the
final stage maps sub-rule bits back to rule ids instead.  Sub-rule bits
are allocated in rule-priority order, so "lowest set bit" remains
"highest-priority match".  For real (prefix-constrained) rule sets the
expansion is exactly one sub-rule per rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.budget import BuildBudget, meter_for
from ..core.engine import LookupTrace, MemRead
from ..core.fields import Field
from ..core.interval import Interval, interval_to_prefixes, prefix_to_interval
from ..core.rule import RuleSet
from .base import MemoryRegion, PacketClassifier
from ._bitmask import cross_product, dedupe_masks, masks_to_rule_ids, words_for

#: Cycles to form a direct chunk index (shift + mask).
CHUNK_INDEX_CYCLES = 2
#: Cycles to form a combination-table index (multiply-add).
TABLE_INDEX_CYCLES = 4


@dataclass(frozen=True)
class _Chunk:
    """One phase-0 chunk: which field supplies it and how to extract it."""

    label: str
    field: Field
    shift: int
    bits: int


CHUNKS: tuple[_Chunk, ...] = (
    _Chunk("sip_hi", Field.SIP, 16, 16),
    _Chunk("sip_lo", Field.SIP, 0, 16),
    _Chunk("dip_hi", Field.DIP, 16, 16),
    _Chunk("dip_lo", Field.DIP, 0, 16),
    _Chunk("sport", Field.SPORT, 0, 16),
    _Chunk("dport", Field.DPORT, 0, 16),
    _Chunk("proto", Field.PROTO, 0, 8),
)


def _expand_subrules(ruleset: RuleSet) -> tuple[list[tuple[int, Interval, Interval]], np.ndarray]:
    """Expand each rule into (sip-prefix x dip-prefix) sub-rules.

    Returns the sub-rule list — ``(rule_id, sip_block, dip_block)`` in
    rule-priority order — and the sub-rule -> rule id mapping array.
    """
    subrules: list[tuple[int, Interval, Interval]] = []
    owners: list[int] = []
    for rule_id, rule in enumerate(ruleset.rules):
        sip_blocks = [
            prefix_to_interval(value, plen, 32)
            for value, plen in interval_to_prefixes(rule.intervals[Field.SIP], 32)
        ]
        dip_blocks = [
            prefix_to_interval(value, plen, 32)
            for value, plen in interval_to_prefixes(rule.intervals[Field.DIP], 32)
        ]
        for sip_block in sip_blocks:
            for dip_block in dip_blocks:
                subrules.append((rule_id, sip_block, dip_block))
                owners.append(rule_id)
    return subrules, np.array(owners, dtype=np.int64)


def _split_block(block: Interval, want_high: bool) -> tuple[int, int]:
    """Project an aligned 32-bit block onto its 16-bit half chunk."""
    if want_high:
        return block.lo >> 16, block.hi >> 16
    if block.size > (1 << 16):
        return 0, 0xFFFF  # low half unconstrained for short prefixes
    return block.lo & 0xFFFF, block.hi & 0xFFFF


def _chunk_masks(ruleset: RuleSet) -> tuple[list[np.ndarray], np.ndarray]:
    """Phase-0 sub-rule masks per chunk value (product-exact by
    construction; see the module docstring)."""
    subrules, owners = _expand_subrules(ruleset)
    num_bits = len(subrules)
    w = words_for(num_bits)
    out: list[np.ndarray] = []
    for chunk in CHUNKS:
        size = 1 << chunk.bits
        masks = np.zeros((size, w), dtype=np.uint64)
        for sub_id, (rule_id, sip_block, dip_block) in enumerate(subrules):
            bit = np.uint64(1 << (sub_id & 63))
            word = sub_id >> 6
            if chunk.field == Field.SIP:
                lo, hi = _split_block(sip_block, chunk.shift == 16)
            elif chunk.field == Field.DIP:
                lo, hi = _split_block(dip_block, chunk.shift == 16)
            else:
                iv = ruleset[rule_id].intervals[chunk.field]
                lo, hi = iv.lo, iv.hi
            masks[lo:hi + 1, word] |= bit
        out.append(masks)
    return out, owners


class RFCClassifier(PacketClassifier):
    """Direct-indexed recursive flow classification."""

    name = "rfc"

    def __init__(self, ruleset: RuleSet, chunk_tables: list[np.ndarray],
                 a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 d: np.ndarray, e: np.ndarray, f_rule: np.ndarray) -> None:
        super().__init__(ruleset)
        self.chunk_tables = chunk_tables
        self.a, self.b, self.c, self.d, self.e = a, b, c, d, e
        self.f_rule = f_rule

    @classmethod
    def build(cls, ruleset: RuleSet, budget: BuildBudget | None = None,
              **params) -> "RFCClassifier":
        """``budget`` is checked between reduction stages (RFC is the
        memory-extreme algorithm here — the combination tables are
        exactly what a Figure-6-style byte budget exists to catch)."""
        if params:
            raise TypeError(f"unexpected parameters: {sorted(params)}")
        meter = meter_for(budget, cls.name)
        raw, owners = _chunk_masks(ruleset)
        chunk_tables: list[np.ndarray] = []
        chunk_cls_masks: list[np.ndarray] = []
        for masks in raw:
            ids, cls_masks = dedupe_masks(masks)
            chunk_tables.append(ids)
            chunk_cls_masks.append(cls_masks)
            if meter is not None:
                meter.add_node(int(ids.size))
                meter.checkpoint()
        m = dict(zip((c.label for c in CHUNKS), chunk_cls_masks))
        stages = []
        a, ma = cross_product(m["sip_hi"], m["sip_lo"])
        stages.append(a)
        b, mb = cross_product(m["dip_hi"], m["dip_lo"])
        stages.append(b)
        c, mc = cross_product(m["sport"], m["dport"])
        stages.append(c)
        if meter is not None:
            for table in stages:
                meter.add_node(int(table.size))
            meter.checkpoint()
        d, md = cross_product(ma, mb)
        if meter is not None:
            meter.add_node(int(d.size))
            meter.checkpoint()
        e, me = cross_product(mc, m["proto"])
        if meter is not None:
            meter.add_node(int(e.size))
            meter.checkpoint()
        f, mf = cross_product(md, me)
        if meter is not None:
            meter.add_node(int(f.size))
            meter.checkpoint()
        sub_first = masks_to_rule_ids(mf)  # first-match *sub-rule* ids
        if len(owners):
            f_rule = np.where(sub_first >= 0, owners[sub_first], -1)[f]
        else:
            f_rule = np.full_like(f, -1)
        return cls(ruleset, chunk_tables, a, b, c, d, e, f_rule)

    # -- lookup -------------------------------------------------------------

    def _chunk_classes(self, header: Sequence[int]) -> list[int]:
        out = []
        for chunk, table in zip(CHUNKS, self.chunk_tables):
            value = (header[chunk.field] >> chunk.shift) & ((1 << chunk.bits) - 1)
            out.append(int(table[value]))
        return out

    def classify(self, header: Sequence[int], trace=None) -> int | None:
        if trace is not None:
            return self._classify_traced(header, trace)
        k = self._chunk_classes(header)
        ca = int(self.a[k[0], k[1]])
        cb = int(self.b[k[2], k[3]])
        cc = int(self.c[k[4], k[5]])
        cd = int(self.d[ca, cb])
        ce = int(self.e[cc, k[6]])
        rule = int(self.f_rule[cd, ce])
        return None if rule < 0 else rule

    def classify_batch(self, fields: Sequence[np.ndarray]) -> np.ndarray:
        ks = []
        for chunk, table in zip(CHUNKS, self.chunk_tables):
            values = (
                np.asarray(fields[chunk.field], dtype=np.int64) >> chunk.shift
            ) & ((1 << chunk.bits) - 1)
            ks.append(table[values])
        ca = self.a[ks[0], ks[1]]
        cb = self.b[ks[2], ks[3]]
        cc = self.c[ks[4], ks[5]]
        cd = self.d[ca, cb]
        ce = self.e[cc, ks[6]]
        return self.f_rule[cd, ce].astype(np.int64)

    # -- characterisation -----------------------------------------------------

    def access_trace(self, header: Sequence[int]) -> LookupTrace:
        reads: list[MemRead] = []
        k = []
        pending = 2
        for chunk, table in zip(CHUNKS, self.chunk_tables):
            value = (header[chunk.field] >> chunk.shift) & ((1 << chunk.bits) - 1)
            reads.append(MemRead(f"chunk:{chunk.label}", value, 1,
                                 pending + CHUNK_INDEX_CYCLES))
            pending = 0
            k.append(int(table[value]))
        ca = int(self.a[k[0], k[1]])
        reads.append(MemRead("rfc:a", k[0] * self.a.shape[1] + k[1], 1,
                             TABLE_INDEX_CYCLES))
        cb = int(self.b[k[2], k[3]])
        reads.append(MemRead("rfc:b", k[2] * self.b.shape[1] + k[3], 1,
                             TABLE_INDEX_CYCLES))
        cc = int(self.c[k[4], k[5]])
        reads.append(MemRead("rfc:c", k[4] * self.c.shape[1] + k[5], 1,
                             TABLE_INDEX_CYCLES))
        cd = int(self.d[ca, cb])
        reads.append(MemRead("rfc:d", ca * self.d.shape[1] + cb, 1,
                             TABLE_INDEX_CYCLES))
        ce = int(self.e[cc, k[6]])
        reads.append(MemRead("rfc:e", cc * self.e.shape[1] + k[6], 1,
                             TABLE_INDEX_CYCLES))
        rule = int(self.f_rule[cd, ce])
        reads.append(MemRead("rfc:f", cd * self.f_rule.shape[1] + ce, 1,
                             TABLE_INDEX_CYCLES))
        return LookupTrace(tuple(reads), compute_after=2,
                           result=None if rule < 0 else rule)

    def memory_regions(self) -> list[MemoryRegion]:
        total_reads = len(CHUNKS) + 6
        regions = [
            MemoryRegion(f"chunk:{chunk.label}", int(table.size), 1 / total_reads)
            for chunk, table in zip(CHUNKS, self.chunk_tables)
        ]
        for name, table in (("rfc:a", self.a), ("rfc:b", self.b), ("rfc:c", self.c),
                            ("rfc:d", self.d), ("rfc:e", self.e),
                            ("rfc:f", self.f_rule)):
            regions.append(MemoryRegion(name, int(table.size), 1 / total_reads))
        return regions

    def worst_case_accesses(self) -> int:
        """Fixed by construction: one read per chunk plus one per table."""
        return len(CHUNKS) + 6
