"""Incremental rule updates over rebuild-based classifiers.

Decision-tree and cross-producting structures are built for lookup speed,
not mutation — on the paper's platform the XScale control core rebuilds
the structure and hot-swaps the SRAM image while microengines keep
classifying.  This module packages that standard production scheme:

* inserts land in a small linear **overlay** consulted alongside the
  compiled base structure (priority-correct merge);
* deletes **tombstone** rules; if a lookup's base result is tombstoned the
  slow path (priority scan of the live snapshot) answers exactly;
* once the overlay or tombstone count crosses ``rebuild_threshold`` the
  base classifier is **rebuilt** from the live rule list (the hot-swap).

Semantics are always exact first-match over the *current* rule list —
``tests/classifiers/test_updates.py`` drives random update/lookup
sequences against the linear oracle, including a hypothesis state
machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Type

from ..core.rule import Rule, RuleSet
from .base import PacketClassifier


@dataclass
class UpdateStats:
    """Operation counters (exposed so tests/benchmarks can see the
    fast/slow path split)."""

    inserts: int = 0
    removes: int = 0
    rebuilds: int = 0
    base_hits: int = 0
    overlay_hits: int = 0
    slow_path_lookups: int = 0


@dataclass
class _OverlayEntry:
    rule: Rule
    #: Priority expressed as position in the live rule order.
    position: int


class UpdatableClassifier:
    """First-match classification with insert/remove over any base
    :class:`PacketClassifier`."""

    def __init__(self, ruleset: RuleSet,
                 base_class: Type[PacketClassifier],
                 rebuild_threshold: int = 32,
                 **build_params) -> None:
        if rebuild_threshold < 1:
            raise ValueError("rebuild_threshold must be >= 1")
        self.base_class = base_class
        self.build_params = build_params
        self.rebuild_threshold = rebuild_threshold
        self.rules: list[Rule] = list(ruleset.rules)
        self.name = f"updatable({base_class.name})"
        self.stats = UpdateStats()
        self._rebuild()

    # -- structure maintenance ------------------------------------------------

    def _rebuild(self) -> None:
        self._snapshot = list(self.rules)
        self.base = self.base_class.build(
            RuleSet(self._snapshot, name="snapshot"), **self.build_params
        )
        # snapshot index -> current index (None once deleted).
        self._snapshot_to_current: list[int | None] = list(range(len(self._snapshot)))
        self._overlay: list[_OverlayEntry] = []
        self._tombstones = 0
        self.stats.rebuilds += 1

    def _maybe_rebuild(self) -> None:
        if len(self._overlay) + self._tombstones >= self.rebuild_threshold:
            self._rebuild()

    @property
    def pending_updates(self) -> int:
        """Updates absorbed since the last rebuild (overlay + tombstones)."""
        return len(self._overlay) + self._tombstones

    def __len__(self) -> int:
        return len(self.rules)

    # -- updates ---------------------------------------------------------------

    def insert(self, rule: Rule, position: int | None = None) -> int:
        """Insert ``rule`` at priority ``position`` (default: lowest).

        Returns the position actually used.
        """
        if position is None:
            position = len(self.rules)
        if not 0 <= position <= len(self.rules):
            raise IndexError(f"position {position} out of range")
        self.rules.insert(position, rule)
        # Every live reference at or after the slot shifts down one.
        for idx, current in enumerate(self._snapshot_to_current):
            if current is not None and current >= position:
                self._snapshot_to_current[idx] = current + 1
        for entry in self._overlay:
            if entry.position >= position:
                entry.position += 1
        self._overlay.append(_OverlayEntry(rule, position))
        self.stats.inserts += 1
        self._maybe_rebuild()
        return position

    def remove(self, position: int) -> Rule:
        """Remove the rule at priority ``position``; returns it."""
        if not 0 <= position < len(self.rules):
            raise IndexError(f"position {position} out of range")
        removed = self.rules.pop(position)
        kept_overlay = []
        dropped_from_overlay = False
        for entry in self._overlay:
            if entry.position == position and not dropped_from_overlay:
                dropped_from_overlay = True
                continue
            if entry.position > position:
                entry.position -= 1
            kept_overlay.append(entry)
        self._overlay = kept_overlay
        if not dropped_from_overlay:
            # The victim lives in the base snapshot: tombstone it.
            for idx, current in enumerate(self._snapshot_to_current):
                if current == position:
                    self._snapshot_to_current[idx] = None
                    self._tombstones += 1
                    break
        for idx, current in enumerate(self._snapshot_to_current):
            if current is not None and current > position:
                self._snapshot_to_current[idx] = current - 1
        self.stats.removes += 1
        self._maybe_rebuild()
        return removed

    def rebuild(self) -> None:
        """Force the hot-swap rebuild immediately."""
        self._rebuild()

    # -- lookup -----------------------------------------------------------------

    def classify(self, header: Sequence[int]) -> int | None:
        """Index of the first matching rule in the *current* rule order."""
        best: int | None = None
        for entry in self._overlay:
            if entry.rule.matches(header):
                if best is None or entry.position < best:
                    best = entry.position
        base_hit = self.base.classify(header)
        if base_hit is not None:
            current = self._snapshot_to_current[base_hit]
            if current is None:
                # Tombstoned winner: the base cannot reveal its runner-up,
                # so answer from the live rule list (exact, amortised away
                # by the rebuild threshold).
                self.stats.slow_path_lookups += 1
                scan = self._scan(header)
                return scan if best is None else (
                    min(best, scan) if scan is not None else best
                )
            if best is None or current < best:
                self.stats.base_hits += 1
                return current
        if best is not None:
            self.stats.overlay_hits += 1
        return best

    def _scan(self, header: Sequence[int]) -> int | None:
        for idx, rule in enumerate(self.rules):
            if rule.matches(header):
                return idx
        return None

    def current_ruleset(self) -> RuleSet:
        """The live rule list as a RuleSet (the oracle's view)."""
        return RuleSet(list(self.rules), name="live")
