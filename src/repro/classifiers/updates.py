"""Incremental rule updates over rebuild-based classifiers.

Decision-tree and cross-producting structures are built for lookup speed,
not mutation — on the paper's platform the XScale control core rebuilds
the structure and hot-swaps the SRAM image while microengines keep
classifying.  This module packages that standard production scheme:

* inserts land in a small linear **overlay** consulted alongside the
  compiled base structure (priority-correct merge);
* deletes **tombstone** rules; if a lookup's base result is tombstoned the
  slow path (priority scan of the live snapshot) answers exactly;
* once the overlay or tombstone count crosses ``rebuild_threshold`` the
  base classifier is **rebuilt** from the live rule list (the hot-swap).

The hot-swap is **atomic, validate-then-swap**: the new structure is
built and spot-checked against the linear oracle *before* it replaces
the serving snapshot.  A rebuild that raises, or whose structure
disagrees with the oracle, is rolled back — the old snapshot keeps
serving, the failure is recorded in ``failures``, and retry is deferred
until further updates land *or*, with ``rebuild_retry_seconds`` set, a
wall-clock interval elapses (observed on the next update or
:meth:`~UpdatableClassifier.poll`).  A per-lookup **depth watchdog** catches a
lookup that escapes the base structure's explicit bound (a corrupted
image) and answers from the linear slow path instead of crashing.

Rebuilds can additionally be bounded by a
:class:`~repro.core.budget.BuildBudget` (node count, Figure-6 layout
bytes, wall-clock deadline).  A build that exceeds it raises the typed
:class:`~repro.core.errors.BuildBudgetExceeded`, which the **degradation
chain** resolves instead of crashing: retry with coarser parameters
(larger ``binth``/``stride``, from :data:`DEGRADATION_LADDERS`), else
swap in the linear slow path over the live rules — still exact, just
slow, and ``npsim`` charges it the modelled slow-path cycles because
the served :meth:`access_trace` *is* the linear scan.  Every step is
visible in :class:`UpdateStats` and the ``builds.*`` metrics scope.

Semantics are always exact first-match over the *current* rule list —
``tests/classifiers/test_updates.py`` drives random update/lookup
sequences against the linear oracle, including a hypothesis state
machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence, Type

from ..core.budget import BuildBudget
from ..core.errors import (
    BuildBudgetExceeded,
    ConfigurationError,
    IncrementalUpdateError,
    RebuildError,
    ReproError,
    UpdateError,
)
from ..core.rule import Rule, RuleSet
from ..obs import metrics_scope, obs_warn
from .base import MemoryRegion, PacketClassifier

#: Coarser-parameter retry ladders per base algorithm, tried left to
#: right when a build blows its budget.  Larger ``binth`` leaves more
#: rules per leaf (fewer nodes, more linear search); a larger ``stride``
#: gives ExpCuts fewer, fatter levels.  Algorithms without tunable
#: coarseness (HSM, RFC, ...) go straight to the linear fallback.
DEGRADATION_LADDERS: dict[str, tuple[dict[str, object], ...]] = {
    "expcuts": ({"stride": 12}, {"stride": 16}),
    "hicuts": ({"binth": 32}, {"binth": 128}),
    "hypercuts": ({"binth": 32}, {"binth": 128}),
}


@dataclass
class UpdateStats:
    """Operation counters (exposed so tests/benchmarks can see the
    fast/slow path split)."""

    inserts: int = 0
    removes: int = 0
    rebuilds: int = 0
    failed_rebuilds: int = 0
    base_hits: int = 0
    overlay_hits: int = 0
    slow_path_lookups: int = 0
    watchdog_fallbacks: int = 0
    #: Build attempts that raised BuildBudgetExceeded.
    budget_exceeded: int = 0
    #: Swaps that served a coarser-parameter structure.
    degraded_rebuilds: int = 0
    #: Swaps that fell all the way back to the linear slow path.
    linear_fallbacks: int = 0
    #: Inserts absorbed by an in-place structure edit (no overlay entry).
    incremental_inserts: int = 0
    #: In-place edits rejected (budget/probe) and diverted to the overlay.
    incremental_rejects: int = 0
    #: Watermark-triggered rebuilds that reclaimed tombstones/garbage.
    compactions: int = 0


@dataclass(frozen=True)
class RebuildFailure:
    """Record of one rejected hot-swap (the old snapshot kept serving)."""

    error: str
    rules: int
    pending_updates: int


@dataclass
class _OverlayEntry:
    rule: Rule
    #: Priority expressed as position in the live rule order.
    position: int


class UpdatableClassifier:
    """First-match classification with insert/remove over any base
    :class:`PacketClassifier`."""

    def __init__(self, ruleset: RuleSet,
                 base_class: Type[PacketClassifier],
                 rebuild_threshold: int = 32,
                 spot_check_headers: int = 32,
                 budget: BuildBudget | None = None,
                 degrade: bool = True,
                 rebuild_retry_seconds: float | None = None,
                 clock: Callable[[], float] | None = None,
                 incremental: bool = False,
                 edit_budget: int = 4096,
                 compaction_watermark: float = 0.25,
                 **build_params) -> None:
        """``spot_check_headers`` caps the validate-then-swap equivalence
        check (0 disables it).

        ``budget`` bounds every (re)build; ``degrade`` enables the
        coarser-params → linear-slow-path chain when it is exceeded.
        With ``degrade=False`` a budget overrun is treated like any
        failed rebuild: rolled back, the old snapshot keeps serving.

        ``rebuild_retry_seconds`` arms a second, wall-clock retry
        trigger after a failed rebuild: the retry fires when pending
        updates grow past the failure point **or** once that interval
        elapses (checked on the next update or :meth:`poll`).  Without
        it, a low-write-rate deployment that failed one rebuild stays
        on the overlay slow path indefinitely.  ``clock`` is injectable
        for deterministic tests (like :class:`~repro.core.budget.BuildBudget`).

        ``incremental=True`` lets inserts edit the base structure in
        place when it supports ``insert_rule`` (the cutting trees):
        copy-on-write node-local re-cuts bounded by ``edit_budget``
        appended nodes per edit, validate-then-swap at subtree
        granularity.  A rejected edit falls back to the overlay path
        transparently.  Tombstones and replaced-node garbage accumulate
        until either fraction crosses ``compaction_watermark``, which
        triggers the regular budget-guarded rebuild (the *compaction*)
        — degrading down the usual ladder when the budget trips, never
        blocking classification.
        """
        if rebuild_threshold < 1:
            raise ConfigurationError("rebuild_threshold must be >= 1")
        if spot_check_headers < 0:
            raise ConfigurationError("spot_check_headers must be non-negative")
        if rebuild_retry_seconds is not None and rebuild_retry_seconds < 0:
            raise ConfigurationError(
                "rebuild_retry_seconds must be non-negative")
        if edit_budget < 1:
            raise ConfigurationError("edit_budget must be >= 1")
        if not 0.0 < compaction_watermark <= 1.0:
            raise ConfigurationError(
                "compaction_watermark must be in (0, 1]")
        self.base_class = base_class
        self.build_params = build_params
        self.rebuild_threshold = rebuild_threshold
        self.spot_check_headers = spot_check_headers
        self.budget = budget
        self.degrade = degrade
        self.rebuild_retry_seconds = rebuild_retry_seconds
        self.incremental = incremental
        self.edit_budget = edit_budget
        self.compaction_watermark = compaction_watermark
        self._clock = clock or time.monotonic
        self.rules: list[Rule] = list(ruleset.rules)
        self.name = f"updatable({base_class.name})"
        self.stats = UpdateStats()
        self.failures: list[RebuildFailure] = []
        #: How the *serving* structure was obtained: ``None`` for a
        #: full-fidelity build, ``"params:..."`` for a coarser ladder
        #: step, ``"linear"`` for the slow-path fallback.
        self.degradation: str | None = None
        #: After a failed rebuild, retry only once pending grows past this.
        self._retry_after_pending: int | None = None
        #: ...or once the wall clock passes this (when the interval is set).
        self._retry_at: float | None = None
        self._rebuild()

    # -- structure maintenance ------------------------------------------------

    def _validate(self, snapshot: list[Rule], base: PacketClassifier) -> None:
        """Spot-check a candidate against the linear oracle; raises
        :class:`RebuildError` on the first disagreement."""
        if self.spot_check_headers > 0 and snapshot:
            oracle = RuleSet(snapshot, name="oracle")
            for rule in snapshot[:self.spot_check_headers]:
                header = tuple(iv.lo for iv in rule.intervals)
                got = base.classify(header)
                want = oracle.first_match(header)
                if got != want:
                    raise RebuildError(
                        f"candidate structure disagrees with the oracle at "
                        f"{header}: got {got}, oracle says {want}"
                    )

    def _build_and_validate(self) -> tuple[list[Rule], PacketClassifier, str | None]:
        """Build a candidate structure, degrading through the chain on
        budget exhaustion; raises rather than swapping on any problem.

        Returns ``(snapshot, base, degradation)``.  Each attempt gets a
        fresh budget meter (``BuildBudget`` is declarative, so a retry's
        deadline restarts); a :class:`BuildBudgetExceeded` from the last
        permitted attempt propagates when degradation is disabled or
        exhausted.
        """
        snapshot = list(self.rules)
        ruleset = RuleSet(snapshot, name="snapshot")
        attempts: list[tuple[dict, str | None]] = [(self.build_params, None)]
        if self.degrade and self.budget is not None:
            for step in DEGRADATION_LADDERS.get(self.base_class.name, ()):
                merged = {**self.build_params, **step}
                tag = "params:" + ",".join(
                    f"{k}={v}" for k, v in sorted(step.items()))
                attempts.append((merged, tag))
        scope = metrics_scope("builds")
        last_exc: BuildBudgetExceeded | None = None
        for params, tag in attempts:
            kwargs = dict(params)
            if self.budget is not None:
                kwargs["budget"] = self.budget
            try:
                base = self.base_class.build(ruleset, **kwargs)
            except BuildBudgetExceeded as exc:
                self.stats.budget_exceeded += 1
                scope.counter("budget_exceeded").inc()
                last_exc = exc
                continue
            self._validate(snapshot, base)
            if tag is not None:
                self.stats.degraded_rebuilds += 1
                scope.counter("degraded_rebuilds").inc()
                obs_warn(f"{self.name}: build budget exceeded "
                         f"({last_exc.limit}); serving coarser structure "
                         f"[{tag}]")
            return snapshot, base, tag
        if self.degrade and last_exc is not None:
            # End of the ladder: serve the linear slow path over the live
            # rules.  It is the oracle itself, so no spot check is needed,
            # and npsim charges its modelled per-rule scan cycles.
            from .linear import LinearSearchClassifier

            base = LinearSearchClassifier(ruleset)
            self.stats.linear_fallbacks += 1
            scope.counter("linear_fallbacks").inc()
            obs_warn(f"{self.name}: build budget exceeded on every ladder "
                     f"step ({last_exc.limit}); serving linear slow path")
            return snapshot, base, "linear"
        if last_exc is not None:
            raise last_exc
        raise AssertionError("unreachable: no build attempt ran")

    def _rebuild(self) -> bool:
        """Atomic validate-then-swap; returns False on a rolled-back
        rebuild (the previous snapshot keeps serving)."""
        try:
            snapshot, base, degradation = self._build_and_validate()
        except Exception as exc:
            if not hasattr(self, "base"):
                # No snapshot to fall back to: the initial build must work.
                raise
            self.stats.failed_rebuilds += 1
            self.failures.append(RebuildFailure(
                error=repr(exc), rules=len(self.rules),
                pending_updates=self.pending_updates,
            ))
            self._retry_after_pending = self.pending_updates
            if self.rebuild_retry_seconds is not None:
                self._retry_at = self._clock() + self.rebuild_retry_seconds
            return False
        # Swap: all serving state replaced in one step.
        self._snapshot = snapshot
        self.base = base
        self.degradation = degradation
        # snapshot index -> current index (None once deleted).
        self._snapshot_to_current: list[int | None] = list(range(len(snapshot)))
        self._overlay: list[_OverlayEntry] = []
        self._tombstones = 0
        self._retry_after_pending = None
        self._retry_at = None
        self.stats.rebuilds += 1
        return True

    def _maybe_rebuild(self) -> None:
        pending = len(self._overlay) + self._tombstones
        if pending < self.rebuild_threshold:
            return
        if (self._retry_after_pending is not None
                and pending <= self._retry_after_pending
                and not self._retry_interval_elapsed()):
            return  # back off until more updates land or the clock says go
        self._rebuild()

    def _retry_interval_elapsed(self) -> bool:
        return self._retry_at is not None and self._clock() >= self._retry_at

    def poll(self) -> bool:
        """Health tick: run any rebuild the backoff rules now permit.

        Updates trigger :meth:`_maybe_rebuild` themselves, but a
        deployment whose write rate dropped to zero after a failed
        rebuild would otherwise never retry — the wall-clock trigger
        needs *something* to observe the clock.  Serving layers call
        this periodically.  Returns True when a rebuild was attempted.
        """
        pending = self.pending_updates
        if pending < self.rebuild_threshold:
            return False
        if (self._retry_after_pending is not None
                and pending <= self._retry_after_pending
                and not self._retry_interval_elapsed()):
            return False
        self._rebuild()
        return True

    @property
    def pending_updates(self) -> int:
        """Updates absorbed since the last rebuild (overlay + tombstones)."""
        return len(self._overlay) + self._tombstones

    def _garbage_fraction(self) -> float:
        fraction = getattr(self.base, "garbage_fraction", None)
        return fraction() if callable(fraction) else 0.0

    @property
    def rebuild_backlog(self) -> int:
        """Work the next rebuild/compaction must absorb: overlay entries
        plus tombstones, plus one when the structure-garbage watermark
        has tripped but the compaction has not yet landed.  Zero means
        the structure is settled (the update-storm soak's drain bar)."""
        backlog = self.pending_updates
        if (self.incremental
                and self._garbage_fraction() >= self.compaction_watermark):
            backlog += 1
        return backlog

    def _maybe_compact(self) -> None:
        """Watermark check after an in-place edit or a remove: compact
        (full budget-guarded rebuild) once tombstones or replaced-node
        garbage cross ``compaction_watermark``."""
        if not self.incremental:
            return
        tombstone_fraction = self._tombstones / max(len(self._snapshot), 1)
        if (tombstone_fraction < self.compaction_watermark
                and self._garbage_fraction() < self.compaction_watermark):
            return
        if (self._retry_after_pending is not None
                and not self._retry_interval_elapsed()
                and self.pending_updates <= self._retry_after_pending):
            return  # a recent rebuild failed: honour its backoff
        if self._rebuild():
            self.stats.compactions += 1

    def __len__(self) -> int:
        return len(self.rules)

    # -- updates ---------------------------------------------------------------

    def insert(self, rule: Rule, position: int | None = None) -> int:
        """Insert ``rule`` at priority ``position`` (default: lowest).

        Returns the position actually used.
        """
        if position is None:
            position = len(self.rules)
        if not 0 <= position <= len(self.rules):
            raise UpdateError(f"position {position} out of range")
        self.rules.insert(position, rule)
        # Every live reference at or after the slot shifts down one.
        for idx, current in enumerate(self._snapshot_to_current):
            if current is not None and current >= position:
                self._snapshot_to_current[idx] = current + 1
        for entry in self._overlay:
            if entry.position >= position:
                entry.position += 1
        if self._insert_incremental(rule, position):
            self.stats.inserts += 1
            self._maybe_compact()
            return position
        self._overlay.append(_OverlayEntry(rule, position))
        self.stats.inserts += 1
        self._maybe_rebuild()
        return position

    def _insert_incremental(self, rule: Rule, position: int) -> bool:
        """Absorb an insert by editing the base structure in place.

        The rule is appended to the serving snapshot (the base
        classifier's ruleset wraps the same list, so the new id resolves
        there) and handed to the structure's ``insert_rule`` with a
        priority comparison derived from the snapshot→current mapping.
        Returns False — diverting to the overlay path — when incremental
        mode is off, the base cannot edit (linear fallback), or the edit
        was rejected (budget/probe).
        """
        if not self.incremental:
            return False
        insert_rule = getattr(self.base, "insert_rule", None)
        if insert_rule is None:
            return False
        new_id = len(self._snapshot)
        self._snapshot.append(rule)
        self._snapshot_to_current.append(position)

        def precedes(existing_id: int) -> bool:
            current = self._snapshot_to_current[existing_id]
            # A tombstoned winner must KEEP its leaf: the tombstone is
            # what routes lookups to the exact slow path, which may owe
            # the answer to *other* live rules the leaf no longer sees.
            # Replacing it with the new rule would mask them.
            return current is not None and position < current

        try:
            insert_rule(new_id, precedes, edit_budget=self.edit_budget)
        except IncrementalUpdateError:
            self._snapshot.pop()
            self._snapshot_to_current.pop()
            self.stats.incremental_rejects += 1
            return False
        self.stats.incremental_inserts += 1
        return True

    def remove(self, position: int) -> Rule:
        """Remove the rule at priority ``position``; returns it."""
        if not 0 <= position < len(self.rules):
            raise UpdateError(f"position {position} out of range")
        removed = self.rules.pop(position)
        kept_overlay = []
        dropped_from_overlay = False
        for entry in self._overlay:
            if entry.position == position and not dropped_from_overlay:
                dropped_from_overlay = True
                continue
            if entry.position > position:
                entry.position -= 1
            kept_overlay.append(entry)
        self._overlay = kept_overlay
        if not dropped_from_overlay:
            # The victim lives in the base snapshot: tombstone it.
            for idx, current in enumerate(self._snapshot_to_current):
                if current == position:
                    self._snapshot_to_current[idx] = None
                    self._tombstones += 1
                    break
        for idx, current in enumerate(self._snapshot_to_current):
            if current is not None and current > position:
                self._snapshot_to_current[idx] = current - 1
        self.stats.removes += 1
        if self.incremental:
            self._maybe_compact()
        else:
            self._maybe_rebuild()
        return removed

    def rebuild(self) -> bool:
        """Force the hot-swap rebuild immediately.

        Returns False when the rebuild was rejected and rolled back (the
        failure is recorded in ``failures``).
        """
        return self._rebuild()

    # -- lookup -----------------------------------------------------------------

    def classify(self, header: Sequence[int], trace=None) -> int | None:
        """Index of the first matching rule in the *current* rule order.

        ``trace`` (a :class:`repro.obs.trace.DecisionTrace`) records the
        wrapped structure's walk plus overlay/fallback annotations; the
        returned rule is unchanged.
        """
        best: int | None = None
        for entry in self._overlay:
            if entry.rule.matches(header):
                if best is None or entry.position < best:
                    best = entry.position
        if trace is not None and self._overlay:
            trace.note(overlay_entries=len(self._overlay), overlay_best=best)
        try:
            base_hit = (self.base.classify(header, trace=trace)
                        if trace is not None else self.base.classify(header))
        except (ReproError, LookupError):
            # Depth watchdog / corrupted structure: the base walked past
            # its explicit bound.  Answer exactly from the live rule list.
            self.stats.watchdog_fallbacks += 1
            self.stats.slow_path_lookups += 1
            result = self._scan(header)
            if trace is not None:
                trace.note(fallback="watchdog_linear_scan")
                trace.finish(result)
            return result
        if base_hit is not None:
            current = self._snapshot_to_current[base_hit]
            if current is None:
                # Tombstoned winner: the base cannot reveal its runner-up,
                # so answer from the live rule list (exact, amortised away
                # by the rebuild threshold).
                self.stats.slow_path_lookups += 1
                scan = self._scan(header)
                result = scan if best is None else (
                    min(best, scan) if scan is not None else best
                )
                if trace is not None:
                    trace.note(fallback="tombstone_linear_scan")
                    trace.finish(result)
                return result
            if best is None or current < best:
                self.stats.base_hits += 1
                if trace is not None:
                    trace.finish(current)
                return current
        if best is not None:
            self.stats.overlay_hits += 1
        if trace is not None:
            trace.finish(best)
        return best

    def _scan(self, header: Sequence[int]) -> int | None:
        for idx, rule in enumerate(self.rules):
            if rule.matches(header):
                return idx
        return None

    def current_ruleset(self) -> RuleSet:
        """The live rule list as a RuleSet (the oracle's view)."""
        return RuleSet(list(self.rules), name="live")

    # -- npsim delegation --------------------------------------------------------
    # The simulator sees whatever structure is actually serving, so a
    # budget-degraded swap (coarser tree, or the linear slow path) is
    # automatically charged its modelled memory accesses and cycles.

    def access_trace(self, header: Sequence[int]):
        return self.base.access_trace(header)

    def memory_regions(self) -> list[MemoryRegion]:
        return self.base.memory_regions()

    def memory_words(self) -> int:
        return self.base.memory_words()

    def worst_case_accesses(self) -> int:
        return self.base.worst_case_accesses()
