"""Incremental rule updates over rebuild-based classifiers.

Decision-tree and cross-producting structures are built for lookup speed,
not mutation — on the paper's platform the XScale control core rebuilds
the structure and hot-swaps the SRAM image while microengines keep
classifying.  This module packages that standard production scheme:

* inserts land in a small linear **overlay** consulted alongside the
  compiled base structure (priority-correct merge);
* deletes **tombstone** rules; if a lookup's base result is tombstoned the
  slow path (priority scan of the live snapshot) answers exactly;
* once the overlay or tombstone count crosses ``rebuild_threshold`` the
  base classifier is **rebuilt** from the live rule list (the hot-swap).

The hot-swap is **atomic, validate-then-swap**: the new structure is
built and spot-checked against the linear oracle *before* it replaces
the serving snapshot.  A rebuild that raises, or whose structure
disagrees with the oracle, is rolled back — the old snapshot keeps
serving, the failure is recorded in ``failures``, and retry is deferred
until further updates land.  A per-lookup **depth watchdog** catches a
lookup that escapes the base structure's explicit bound (a corrupted
image) and answers from the linear slow path instead of crashing.

Semantics are always exact first-match over the *current* rule list —
``tests/classifiers/test_updates.py`` drives random update/lookup
sequences against the linear oracle, including a hypothesis state
machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Type

from ..core.errors import ConfigurationError, RebuildError, ReproError, UpdateError
from ..core.rule import Rule, RuleSet
from .base import PacketClassifier


@dataclass
class UpdateStats:
    """Operation counters (exposed so tests/benchmarks can see the
    fast/slow path split)."""

    inserts: int = 0
    removes: int = 0
    rebuilds: int = 0
    failed_rebuilds: int = 0
    base_hits: int = 0
    overlay_hits: int = 0
    slow_path_lookups: int = 0
    watchdog_fallbacks: int = 0


@dataclass(frozen=True)
class RebuildFailure:
    """Record of one rejected hot-swap (the old snapshot kept serving)."""

    error: str
    rules: int
    pending_updates: int


@dataclass
class _OverlayEntry:
    rule: Rule
    #: Priority expressed as position in the live rule order.
    position: int


class UpdatableClassifier:
    """First-match classification with insert/remove over any base
    :class:`PacketClassifier`."""

    def __init__(self, ruleset: RuleSet,
                 base_class: Type[PacketClassifier],
                 rebuild_threshold: int = 32,
                 spot_check_headers: int = 32,
                 **build_params) -> None:
        """``spot_check_headers`` caps the validate-then-swap equivalence
        check (0 disables it)."""
        if rebuild_threshold < 1:
            raise ConfigurationError("rebuild_threshold must be >= 1")
        if spot_check_headers < 0:
            raise ConfigurationError("spot_check_headers must be non-negative")
        self.base_class = base_class
        self.build_params = build_params
        self.rebuild_threshold = rebuild_threshold
        self.spot_check_headers = spot_check_headers
        self.rules: list[Rule] = list(ruleset.rules)
        self.name = f"updatable({base_class.name})"
        self.stats = UpdateStats()
        self.failures: list[RebuildFailure] = []
        #: After a failed rebuild, retry only once pending grows past this.
        self._retry_after_pending: int | None = None
        self._rebuild()

    # -- structure maintenance ------------------------------------------------

    def _build_and_validate(self) -> tuple[list[Rule], PacketClassifier]:
        """Build a candidate structure and spot-check it against the
        linear oracle; raises rather than swapping on any problem."""
        snapshot = list(self.rules)
        base = self.base_class.build(
            RuleSet(snapshot, name="snapshot"), **self.build_params
        )
        if self.spot_check_headers > 0 and snapshot:
            oracle = RuleSet(snapshot, name="oracle")
            for rule in snapshot[:self.spot_check_headers]:
                header = tuple(iv.lo for iv in rule.intervals)
                got = base.classify(header)
                want = oracle.first_match(header)
                if got != want:
                    raise RebuildError(
                        f"candidate structure disagrees with the oracle at "
                        f"{header}: got {got}, oracle says {want}"
                    )
        return snapshot, base

    def _rebuild(self) -> bool:
        """Atomic validate-then-swap; returns False on a rolled-back
        rebuild (the previous snapshot keeps serving)."""
        try:
            snapshot, base = self._build_and_validate()
        except Exception as exc:
            if not hasattr(self, "base"):
                # No snapshot to fall back to: the initial build must work.
                raise
            self.stats.failed_rebuilds += 1
            self.failures.append(RebuildFailure(
                error=repr(exc), rules=len(self.rules),
                pending_updates=self.pending_updates,
            ))
            self._retry_after_pending = self.pending_updates
            return False
        # Swap: all serving state replaced in one step.
        self._snapshot = snapshot
        self.base = base
        # snapshot index -> current index (None once deleted).
        self._snapshot_to_current: list[int | None] = list(range(len(snapshot)))
        self._overlay: list[_OverlayEntry] = []
        self._tombstones = 0
        self._retry_after_pending = None
        self.stats.rebuilds += 1
        return True

    def _maybe_rebuild(self) -> None:
        pending = len(self._overlay) + self._tombstones
        if pending < self.rebuild_threshold:
            return
        if (self._retry_after_pending is not None
                and pending <= self._retry_after_pending):
            return  # back off until more updates land
        self._rebuild()

    @property
    def pending_updates(self) -> int:
        """Updates absorbed since the last rebuild (overlay + tombstones)."""
        return len(self._overlay) + self._tombstones

    def __len__(self) -> int:
        return len(self.rules)

    # -- updates ---------------------------------------------------------------

    def insert(self, rule: Rule, position: int | None = None) -> int:
        """Insert ``rule`` at priority ``position`` (default: lowest).

        Returns the position actually used.
        """
        if position is None:
            position = len(self.rules)
        if not 0 <= position <= len(self.rules):
            raise UpdateError(f"position {position} out of range")
        self.rules.insert(position, rule)
        # Every live reference at or after the slot shifts down one.
        for idx, current in enumerate(self._snapshot_to_current):
            if current is not None and current >= position:
                self._snapshot_to_current[idx] = current + 1
        for entry in self._overlay:
            if entry.position >= position:
                entry.position += 1
        self._overlay.append(_OverlayEntry(rule, position))
        self.stats.inserts += 1
        self._maybe_rebuild()
        return position

    def remove(self, position: int) -> Rule:
        """Remove the rule at priority ``position``; returns it."""
        if not 0 <= position < len(self.rules):
            raise UpdateError(f"position {position} out of range")
        removed = self.rules.pop(position)
        kept_overlay = []
        dropped_from_overlay = False
        for entry in self._overlay:
            if entry.position == position and not dropped_from_overlay:
                dropped_from_overlay = True
                continue
            if entry.position > position:
                entry.position -= 1
            kept_overlay.append(entry)
        self._overlay = kept_overlay
        if not dropped_from_overlay:
            # The victim lives in the base snapshot: tombstone it.
            for idx, current in enumerate(self._snapshot_to_current):
                if current == position:
                    self._snapshot_to_current[idx] = None
                    self._tombstones += 1
                    break
        for idx, current in enumerate(self._snapshot_to_current):
            if current is not None and current > position:
                self._snapshot_to_current[idx] = current - 1
        self.stats.removes += 1
        self._maybe_rebuild()
        return removed

    def rebuild(self) -> bool:
        """Force the hot-swap rebuild immediately.

        Returns False when the rebuild was rejected and rolled back (the
        failure is recorded in ``failures``).
        """
        return self._rebuild()

    # -- lookup -----------------------------------------------------------------

    def classify(self, header: Sequence[int], trace=None) -> int | None:
        """Index of the first matching rule in the *current* rule order.

        ``trace`` (a :class:`repro.obs.trace.DecisionTrace`) records the
        wrapped structure's walk plus overlay/fallback annotations; the
        returned rule is unchanged.
        """
        best: int | None = None
        for entry in self._overlay:
            if entry.rule.matches(header):
                if best is None or entry.position < best:
                    best = entry.position
        if trace is not None and self._overlay:
            trace.note(overlay_entries=len(self._overlay), overlay_best=best)
        try:
            base_hit = (self.base.classify(header, trace=trace)
                        if trace is not None else self.base.classify(header))
        except (ReproError, LookupError):
            # Depth watchdog / corrupted structure: the base walked past
            # its explicit bound.  Answer exactly from the live rule list.
            self.stats.watchdog_fallbacks += 1
            self.stats.slow_path_lookups += 1
            result = self._scan(header)
            if trace is not None:
                trace.note(fallback="watchdog_linear_scan")
                trace.finish(result)
            return result
        if base_hit is not None:
            current = self._snapshot_to_current[base_hit]
            if current is None:
                # Tombstoned winner: the base cannot reveal its runner-up,
                # so answer from the live rule list (exact, amortised away
                # by the rebuild threshold).
                self.stats.slow_path_lookups += 1
                scan = self._scan(header)
                result = scan if best is None else (
                    min(best, scan) if scan is not None else best
                )
                if trace is not None:
                    trace.note(fallback="tombstone_linear_scan")
                    trace.finish(result)
                return result
            if best is None or current < best:
                self.stats.base_hits += 1
                if trace is not None:
                    trace.finish(current)
                return current
        if best is not None:
            self.stats.overlay_hits += 1
        if trace is not None:
            trace.finish(best)
        return best

    def _scan(self, header: Sequence[int]) -> int | None:
        for idx, rule in enumerate(self.rules):
            if rule.matches(header):
                return idx
        return None

    def current_ruleset(self) -> RuleSet:
        """The live rule list as a RuleSet (the oracle's view)."""
        return RuleSet(list(self.rules), name="live")
