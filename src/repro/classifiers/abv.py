"""Aggregated Bit Vectors — Baboescu & Varghese, SIGCOMM 2001.

The classic fix for the bit-vector scheme's bandwidth problem (and thus a
natural member of this library's baseline set): alongside each segment's
N-bit rule vector, keep an *aggregate* vector with one bit per 32-bit
chunk (bit j set iff chunk j is non-zero).  A lookup ANDs the five small
aggregates first and fetches only the chunks that could still intersect —
on sparse real-world vectors this cuts the words moved per lookup by an
order of magnitude.

The well-known caveat ("false matches": aggregate bits can intersect
while the underlying chunks do not) costs extra chunk fetches, never
wrong answers; the oracle equivalence tests cover it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.engine import LookupTrace, MemRead
from ..core.fields import FIELD_WIDTHS, Field
from ..core.rule import RuleSet
from .base import MemoryRegion, PacketClassifier
from ._bitmask import segment_masks

#: Aggregation granularity: one aggregate bit per this many rule bits.
CHUNK_BITS = 32

BSEARCH_STEP_CYCLES = 4
AND_WORD_CYCLES = 2


@dataclass
class _FieldVectors:
    edges: np.ndarray
    masks: np.ndarray        # (nseg, words64) uint64 rule vectors
    aggregates: np.ndarray   # (nseg, agg_words64) uint64 aggregate vectors

    @property
    def depth(self) -> int:
        return max(1, math.ceil(math.log2(max(len(self.edges), 2))))

    def locate(self, value: int) -> int:
        return int(np.searchsorted(self.edges, value, side="right")) - 1


def _aggregate(masks: np.ndarray, num_chunks: int) -> np.ndarray:
    """Aggregate vectors: bit j = chunk j (32 rule bits) non-zero."""
    nseg = masks.shape[0]
    agg_words = max(1, (num_chunks + 63) // 64)
    out = np.zeros((nseg, agg_words), dtype=np.uint64)
    for chunk in range(num_chunks):
        word = chunk // 2           # two 32-bit chunks per uint64 word
        shift = np.uint64((chunk % 2) * 32)
        chunk_bits = (masks[:, word] >> shift) & np.uint64(0xFFFFFFFF)
        nonzero = chunk_bits != 0
        out[nonzero, chunk // 64] |= np.uint64(1 << (chunk % 64))
    return out


class ABVClassifier(PacketClassifier):
    """Bit vectors with aggregate-guided chunk fetching."""

    name = "abv"

    def __init__(self, ruleset: RuleSet, fields: list[_FieldVectors],
                 num_chunks: int) -> None:
        super().__init__(ruleset)
        self.fields = fields
        self.num_chunks = num_chunks

    @classmethod
    def build(cls, ruleset: RuleSet, budget=None, **params) -> "ABVClassifier":
        if params:
            raise TypeError(f"unexpected parameters: {sorted(params)}")
        num_chunks = max(1, (len(ruleset) + CHUNK_BITS - 1) // CHUNK_BITS)
        fields = []
        for fld in Field:
            intervals = [rule.intervals[fld] for rule in ruleset.rules]
            edges, masks = segment_masks(intervals, FIELD_WIDTHS[fld],
                                         len(ruleset))
            fields.append(_FieldVectors(
                edges=edges, masks=masks,
                aggregates=_aggregate(masks, num_chunks),
            ))
        built = cls(ruleset, fields, num_chunks)
        if budget is not None:
            # Per-segment bit vectors are sized only after segmentation,
            # so the budget is enforced on the finished footprint.
            budget.meter(cls.name).add_words(built.memory_words())
        return built

    # -- helpers -------------------------------------------------------------

    def _segments(self, header: Sequence[int]) -> list[int]:
        return [fv.locate(header[fld]) for fld, fv in enumerate(self.fields)]

    def _surviving_chunks(self, segs: list[int]) -> list[int]:
        agg = None
        for fld, fv in enumerate(self.fields):
            row = fv.aggregates[segs[fld]]
            agg = row if agg is None else agg & row
        if agg is None:
            return []
        chunks = []
        for chunk in range(self.num_chunks):
            if int(agg[chunk // 64]) >> (chunk % 64) & 1:
                chunks.append(chunk)
        return chunks

    def _chunk_value(self, fld: int, seg: int, chunk: int) -> int:
        word = chunk // 2
        shift = (chunk % 2) * 32
        return (int(self.fields[fld].masks[seg][word]) >> shift) & 0xFFFFFFFF

    # -- lookup ---------------------------------------------------------------

    def classify(self, header: Sequence[int], trace=None) -> int | None:
        if trace is not None:
            return self._classify_traced(header, trace)
        segs = self._segments(header)
        for chunk in self._surviving_chunks(segs):
            value = 0xFFFFFFFF
            for fld in range(len(self.fields)):
                value &= self._chunk_value(fld, segs[fld], chunk)
                if not value:
                    break
            if value:
                return chunk * CHUNK_BITS + (value & -value).bit_length() - 1
        return None

    def access_trace(self, header: Sequence[int]) -> LookupTrace:
        reads: list[MemRead] = []
        segs = []
        agg_words = max(1, (self.num_chunks + 31) // 32)  # in 32-bit words
        for fld, fv in enumerate(self.fields):
            name = Field(fld).name.lower()
            lo, hi = 0, len(fv.edges) - 1
            value = header[fld]
            pending = 2
            while lo < hi:
                mid = (lo + hi + 1) // 2
                reads.append(MemRead(f"abvseg:{name}", mid, 1, pending))
                pending = BSEARCH_STEP_CYCLES
                if int(fv.edges[mid]) <= value:
                    lo = mid
                else:
                    hi = mid - 1
            segs.append(lo)
            reads.append(MemRead(f"abvagg:{name}", lo * agg_words, agg_words,
                                 BSEARCH_STEP_CYCLES))
        # Fetch only the surviving chunks, one 32-bit word per field each.
        result = None
        for chunk in self._surviving_chunks(segs):
            value = 0xFFFFFFFF
            for fld in range(len(self.fields)):
                name = Field(fld).name.lower()
                reads.append(MemRead(
                    f"abvvec:{name}", segs[fld] * self.num_chunks + chunk,
                    1, AND_WORD_CYCLES,
                ))
                value &= self._chunk_value(fld, segs[fld], chunk)
            if value and result is None:
                result = chunk * CHUNK_BITS + (value & -value).bit_length() - 1
                break
        return LookupTrace(tuple(reads), compute_after=2, result=result)

    def memory_regions(self) -> list[MemoryRegion]:
        regions = []
        agg_words = max(1, (self.num_chunks + 31) // 32)
        for fld, fv in enumerate(self.fields):
            name = Field(fld).name.lower()
            nseg = len(fv.edges)
            regions.append(MemoryRegion(f"abvseg:{name}", nseg, 0.04))
            regions.append(MemoryRegion(f"abvagg:{name}", nseg * agg_words, 0.06))
            regions.append(MemoryRegion(f"abvvec:{name}",
                                        nseg * self.num_chunks, 0.10))
        return regions

    def worst_case_accesses(self) -> int:
        """All aggregates + every chunk surviving (degenerate worst case)."""
        return sum(fv.depth + 1 for fv in self.fields) + 5 * self.num_chunks
