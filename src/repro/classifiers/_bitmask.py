"""Packed rule bitmasks and cross-product equivalence classes.

Field-independent classifiers (HSM, RFC, bit-vector) all reduce to the
same machinery: represent "the set of rules matching here" as a packed
bit mask (bit ``i`` = rule ``i``), build per-field segment masks, and
combine fields by intersecting masks and renumbering the distinct results
as equivalence classes.  This module owns that machinery.

Masks are ``numpy.uint64`` rows of ``words_for(n)`` words; bit ``i`` of a
mask lives at word ``i // 64``, bit ``i % 64``.  Lower rule index = higher
priority, so "first match" is the lowest set bit.
"""

from __future__ import annotations

import numpy as np

from ..core.interval import Interval, elementary_edges


def words_for(num_rules: int) -> int:
    """uint64 words needed for ``num_rules`` bits (at least one)."""
    return max(1, (num_rules + 63) // 64)


def segment_masks(
    intervals: list[Interval], width: int, num_rules: int
) -> tuple[np.ndarray, np.ndarray]:
    """Elementary segments of one field and their rule masks.

    ``intervals[i]`` is rule ``i``'s projection onto the field.  Returns
    ``(edges, masks)`` where ``edges`` are the segment left endpoints
    (``int64``, starting at 0) and ``masks[s]`` is the packed mask of
    rules covering segment ``s``.
    """
    edges = np.asarray(elementary_edges(intervals, width), dtype=np.int64)
    nseg = len(edges)
    masks = np.zeros((nseg, words_for(num_rules)), dtype=np.uint64)
    for rule_id, iv in enumerate(intervals):
        first = int(np.searchsorted(edges, iv.lo, side="right")) - 1
        last = int(np.searchsorted(edges, iv.hi, side="right")) - 1
        masks[first:last + 1, rule_id >> 6] |= np.uint64(1 << (rule_id & 63))
    return edges, masks


def dedupe_masks(masks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Renumber identical mask rows as equivalence classes.

    Returns ``(class_ids, class_masks)``: ``class_ids[i]`` is the class of
    row ``i`` and ``class_masks[c]`` the representative mask, with class 0
    being the first distinct mask encountered (ids are first-appearance
    ordered, which keeps builds deterministic).
    """
    if masks.ndim != 2:
        raise ValueError("masks must be 2-D")
    n, w = masks.shape
    if n == 0:
        return np.zeros(0, dtype=np.int64), masks.copy()
    keys = np.ascontiguousarray(masks).view(
        np.dtype((np.void, w * masks.dtype.itemsize))
    ).ravel()
    # np.unique gives sorted-key classes; remap to first-appearance order.
    _, first_index, inverse = np.unique(keys, return_index=True, return_inverse=True)
    order = np.argsort(first_index, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))
    class_ids = rank[inverse].astype(np.int64)
    class_masks = masks[np.sort(first_index)]
    return class_ids, class_masks


def cross_product(
    masks_a: np.ndarray, masks_b: np.ndarray, chunk_rows: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Intersect every pair of masks and classify the results.

    Returns ``(table, class_masks)`` where ``table[a, b]`` is the
    equivalence class of ``masks_a[a] & masks_b[b]`` and ``class_masks``
    holds one representative mask per class.  This is the build step of
    every HSM/RFC combination stage; work is chunked over rows of ``a`` to
    bound peak memory on large tables.
    """
    na, w = masks_a.shape
    nb, wb = masks_b.shape
    if w != wb:
        raise ValueError("mask word counts differ")
    table = np.empty((na, nb), dtype=np.int64)
    class_index: dict[bytes, int] = {}
    class_rows: list[np.ndarray] = []
    void_dtype = np.dtype((np.void, w * masks_a.dtype.itemsize))
    for start in range(0, na, chunk_rows):
        stop = min(start + chunk_rows, na)
        block = masks_a[start:stop, None, :] & masks_b[None, :, :]
        flat = np.ascontiguousarray(block.reshape(-1, w))
        keys = flat.view(void_dtype).ravel()
        uniq_keys, first_index, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        local_to_global = np.empty(len(uniq_keys), dtype=np.int64)
        # Visit new keys in first-appearance order so global class ids are
        # invariant to the chunking (determinism the tests rely on).
        for local_id in np.argsort(first_index, kind="stable"):
            key_bytes = uniq_keys[local_id].tobytes()
            global_id = class_index.get(key_bytes)
            if global_id is None:
                global_id = len(class_rows)
                class_index[key_bytes] = global_id
                class_rows.append(flat[first_index[local_id]].copy())
            local_to_global[local_id] = global_id
        table[start:stop] = local_to_global[inverse].reshape(stop - start, nb)
    class_masks = (
        np.stack(class_rows) if class_rows else np.zeros((0, w), dtype=masks_a.dtype)
    )
    return table, class_masks


def first_set_bit(mask: np.ndarray) -> int | None:
    """Lowest set bit index (= highest-priority rule id), or ``None``."""
    for word_idx, word in enumerate(mask):
        w = int(word)
        if w:
            return word_idx * 64 + (w & -w).bit_length() - 1
    return None


def masks_to_rule_ids(class_masks: np.ndarray) -> np.ndarray:
    """Per class, the first-match rule id (``-1`` for the empty mask)."""
    out = np.full(len(class_masks), -1, dtype=np.int64)
    for idx, mask in enumerate(class_masks):
        bit = first_set_bit(mask)
        if bit is not None:
            out[idx] = bit
    return out
